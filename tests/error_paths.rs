//! Error-path integration tests: the pipeline must fail loudly and
//! precisely, never silently.

use br_core::{CompileError, Error, Experiment, Machine};
use br_emu::{EmuError, Emulator};
use br_isa::{abi, AluOp, AsmFunc, AsmItem, AsmProgram, MInst, Reg, Src2};

fn asm_main(machine: Machine, items: Vec<AsmItem>) -> br_isa::Program {
    let mut p = AsmProgram::new(machine);
    p.funcs.push(AsmFunc {
        name: "main".to_string(),
        items,
    });
    p.assemble().unwrap()
}

#[test]
fn executing_a_jump_table_word_is_detected() {
    // main: fall into a data word.
    let prog = asm_main(
        Machine::Baseline,
        vec![
            AsmItem::Inst(MInst::Nop { br: 0 }, None),
            AsmItem::Word(0xDEAD_BEEF, None),
        ],
    );
    let main = prog.symbol("main").unwrap();
    let mut emu = Emulator::new(&prog);
    assert_eq!(emu.run(100), Err(EmuError::ExecutedData(main + 4)));
}

#[test]
fn running_off_the_text_segment_is_detected() {
    let prog = asm_main(Machine::Baseline, vec![AsmItem::Inst(MInst::Nop { br: 0 }, None)]);
    let mut emu = Emulator::new(&prog);
    match emu.run(100) {
        Err(EmuError::BadFetch(_)) => {}
        other => panic!("expected BadFetch, got {other:?}"),
    }
}

#[test]
fn wild_memory_access_reports_pc_and_address() {
    let prog = asm_main(
        Machine::Baseline,
        vec![
            AsmItem::Inst(
                MInst::Alu {
                    op: AluOp::Add,
                    rd: Reg(2),
                    rs1: Reg(0),
                    src2: Src2::Imm(-1),
                    br: 0,
                },
                None,
            ),
            AsmItem::Inst(
                MInst::Load {
                    w: br_isa::MemWidth::Word,
                    rd: Reg(1),
                    rs1: Reg(2),
                    off: 0,
                    br: 0,
                },
                None,
            ),
        ],
    );
    let main = prog.symbol("main").unwrap();
    let mut emu = Emulator::new(&prog);
    match emu.run(100) {
        Err(EmuError::BadMem { pc, addr }) => {
            assert_eq!(pc, main + 4);
            assert_eq!(addr, u32::MAX);
        }
        other => panic!("expected BadMem, got {other:?}"),
    }
}

#[test]
fn division_by_zero_reports_pc() {
    let prog = asm_main(
        Machine::BranchReg,
        vec![AsmItem::Inst(
            MInst::Alu {
                op: AluOp::Div,
                rd: Reg(1),
                rs1: Reg(1),
                src2: Src2::Reg(Reg(0)),
                br: 0,
            },
            None,
        )],
    );
    let main = prog.symbol("main").unwrap();
    let mut emu = Emulator::new(&prog);
    assert_eq!(emu.run(100), Err(EmuError::DivByZero(main)));
}

#[test]
fn minic_divide_by_zero_surfaces_through_the_experiment_api() {
    let src = "int main() { int z = 0; return 5 / z; }";
    let exp = Experiment::new();
    match exp.run(src, Machine::Baseline) {
        Err(Error::Emu(EmuError::DivByZero(_))) => {}
        other => panic!("expected divide-by-zero, got {other:?}"),
    }
}

#[test]
fn infinite_loop_exhausts_fuel() {
    let src = "int main() { while (1) { } return 0; }";
    let exp = Experiment {
        fuel: 10_000,
        ..Experiment::new()
    };
    for machine in [Machine::Baseline, Machine::BranchReg] {
        match exp.run(src, machine) {
            Err(Error::Emu(EmuError::OutOfFuel)) => {}
            other => panic!("expected OutOfFuel on {machine}, got {other:?}"),
        }
    }
}

#[test]
fn compile_errors_carry_line_numbers() {
    let exp = Experiment::new();
    match exp.run("int main() {\n  return 1 +;\n}", Machine::Baseline) {
        Err(Error::Compile(CompileError::Frontend(e))) => assert_eq!(e.line, 2),
        other => panic!("expected compile error, got {other:?}"),
    }
}

#[test]
fn stack_registers_initialized() {
    let prog = asm_main(
        Machine::Baseline,
        vec![
            AsmItem::Inst(
                MInst::Alu {
                    op: AluOp::Add,
                    rd: Reg(1),
                    rs1: abi::BASE_SP,
                    src2: Src2::Imm(0),
                    br: 0,
                },
                None,
            ),
            AsmItem::Inst(
                MInst::Jmpl {
                    rd: Reg(0),
                    rs1: abi::BASE_LINK,
                    off: 0,
                },
                None,
            ),
            AsmItem::Inst(MInst::Nop { br: 0 }, None),
        ],
    );
    let mut emu = Emulator::new(&prog);
    assert_eq!(emu.run(100).unwrap(), abi::STACK_TOP as i32);
    assert_eq!(emu.reg(0), 0, "r0 stays zero");
    // read_word sees the data segment.
    assert!(emu.read_word(abi::DATA_BASE).is_some());
    assert!(emu.read_word(u32::MAX - 2).is_none());
}
