//! Property tests for the `br-icache` simulator: conservation laws that
//! must hold on *any* fetch/prefetch trace, LRU's stack (inclusion)
//! property under growing associativity, and seeded-trace determinism.

use br_emu::ExecHook;
use br_icache::{CacheConfig, CacheStats, ICacheSim};
use br_workloads::rng::Rng64;

/// Drive a seeded pseudo-random trace of demand fetches and prefetches
/// with loop-like locality through `sim`; returns the number of
/// prefetch *calls* made (honoured or not).
fn drive(sim: &mut ICacheSim, seed: u64, events: usize) -> u64 {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut pc: u32 = 0x1000;
    let mut prefetch_calls = 0u64;
    for _ in 0..events {
        if rng.chance(1, 5) {
            // Branch: jump somewhere in a 4 KiB hot region, sometimes
            // prefetching the target first (the BR machine's pattern).
            let target = (0x1000 + (rng.next_u64() as u32 % 0x1000)) & !3;
            if rng.chance(2, 3) {
                sim.prefetch(target);
                prefetch_calls += 1;
            }
            pc = target;
        } else {
            pc = pc.wrapping_add(4);
        }
        sim.fetch(pc);
    }
    prefetch_calls
}

/// The conservation laws every trace must satisfy.
fn check_invariants(s: &CacheStats, prefetch_calls: u64) {
    assert_eq!(
        s.fetches,
        s.hits + s.misses + s.prefetch_hits + s.late_prefetch_hits,
        "every demand fetch is exactly one of hit/miss/prefetch-hit/late"
    );
    assert_eq!(
        prefetch_calls,
        s.prefetches + s.prefetch_dropped + s.prefetch_redundant,
        "every prefetch call is honoured, dropped, or redundant"
    );
    assert_eq!(
        s.cycles,
        s.fetches + s.stall_cycles,
        "one cycle per fetch plus stalls"
    );
    assert!(
        s.prefetch_hits + s.late_prefetch_hits + s.pollution <= s.prefetches,
        "a prefetched line is used at most once or polluted at most once: \
         {} + {} + {} > {}",
        s.prefetch_hits,
        s.late_prefetch_hits,
        s.pollution,
        s.prefetches
    );
}

#[test]
fn random_traces_satisfy_the_conservation_laws() {
    for seed in 0..16u64 {
        let mut sim = ICacheSim::new(CacheConfig {
            sets: 16,
            assoc: 2,
            line_words: 4,
            miss_penalty: 8,
            prefetch_queue: 4,
            prefetch: true,
        });
        let calls = drive(&mut sim, seed, 4000);
        let s = *sim.stats();
        check_invariants(&s, calls);
        assert!(s.misses > 0, "a 4 KiB region cannot fit a 512 B cache");
        assert!(s.prefetches > 0, "seed {seed} issued no prefetches");
    }
}

#[test]
fn seeded_traces_are_deterministic() {
    let cfg = CacheConfig::default();
    let run = |seed| {
        let mut sim = ICacheSim::new(cfg);
        drive(&mut sim, seed, 4000);
        *sim.stats()
    };
    assert_eq!(run(7), run(7), "identical seed, identical stats");
    assert_ne!(
        run(7).cycles,
        run(8).cycles,
        "different seeds explore different traces"
    );
}

/// LRU's inclusion property: at a fixed set count, a more associative
/// cache's content is a superset of a less associative one's, so misses
/// can only go down. (Guaranteed for demand fetches; prefetch is
/// disabled here because its queue pressure is timing-dependent.)
#[test]
fn misses_are_monotone_in_associativity() {
    for seed in 0..8u64 {
        let mut prev = u64::MAX;
        for assoc in [1usize, 2, 4, 8] {
            let mut sim = ICacheSim::new(CacheConfig {
                sets: 16,
                assoc,
                line_words: 4,
                miss_penalty: 8,
                prefetch_queue: 4,
                prefetch: false,
            });
            drive(&mut sim, seed, 4000);
            let misses = sim.stats().misses;
            assert!(
                misses <= prev,
                "seed {seed}: {assoc}-way missed {misses} > {prev} at half the ways"
            );
            prev = misses;
        }
    }
}

/// Shrinking the cache (fewer sets, same geometry otherwise) must not
/// help a loop that thrashes it: on a simple sequential-with-reuse
/// trace the smaller cache misses at least as often.
#[test]
fn shrinking_sets_does_not_reduce_misses_on_a_looping_trace() {
    let run = |sets| {
        let mut sim = ICacheSim::new(CacheConfig {
            sets,
            assoc: 2,
            line_words: 4,
            miss_penalty: 8,
            prefetch_queue: 4,
            prefetch: false,
        });
        // A 2 KiB loop body, iterated: fits the big cache, not the small.
        for _ in 0..8 {
            for pc in (0x1000..0x1800u32).step_by(4) {
                sim.fetch(pc);
            }
        }
        sim.stats().misses
    };
    let big = run(64);
    let small = run(8);
    assert!(
        small >= big,
        "8-set cache missed {small} < {big} on the 64-set cache"
    );
    assert!(small > big, "the loop must actually thrash the small cache");
}

/// The busy-bit protocol: a demand fetch that arrives while its line is
/// still filling stalls only for the *remaining* cycles, and a fully
/// completed prefetch stalls for none. Total stall for a prefetched
/// line never exceeds the full miss penalty.
#[test]
fn prefetch_stall_never_exceeds_the_miss_penalty() {
    let cfg = CacheConfig {
        sets: 4,
        assoc: 1,
        line_words: 4,
        miss_penalty: 10,
        prefetch_queue: 2,
        prefetch: true,
    };
    for gap in 0..=12u32 {
        let mut sim = ICacheSim::new(cfg);
        sim.fetch(0x1010); // establish time; set 1
        sim.prefetch(0x2000); // set 0, ready in 10 cycles
        for i in 0..gap {
            sim.fetch(0x1010 + (i % 4) * 4); // burn cycles in set 1
        }
        let before = sim.stats().stall_cycles;
        sim.fetch(0x2000);
        let stall = sim.stats().stall_cycles - before;
        assert!(
            stall <= cfg.miss_penalty as u64,
            "gap {gap}: stalled {stall} > full penalty"
        );
        // The demand fetch itself burns one cycle, so `gap + 1` cycles
        // elapse between the prefetch and the lookup.
        if gap + 1 >= cfg.miss_penalty {
            assert_eq!(stall, 0, "gap {gap} fully hides the fill");
            assert_eq!(sim.stats().prefetch_hits, 1);
        } else {
            assert_eq!(sim.stats().late_prefetch_hits, 1, "gap {gap} is late");
            assert!(stall > 0, "gap {gap}: a late hit still stalls some");
        }
        check_invariants(sim.stats(), 1);
    }
}
