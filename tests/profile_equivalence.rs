//! Guards the observability tentpole's core invariant: profiling only
//! *observes*. Every Appendix I program, on both machines, must produce
//! byte-identical exit values and [`Measurements`] whether it runs on
//! the hook-free fast path or under the full [`ProfileHook`] — and the
//! profile itself must account for every retired instruction.

use br_core::{suite, Experiment, Machine, Scale};
use br_emu::Emulator;
use br_obs::ProfileHook;

const FUEL: u64 = 1_000_000_000;

#[test]
fn suite_measurements_identical_under_profiling() {
    let exp = Experiment::new();
    for w in suite(Scale::Test) {
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let (prog, _) = exp
                .compile(&w.source, machine)
                .unwrap_or_else(|e| panic!("{} on {machine}: {e}", w.name));

            // Hook-free fast path.
            let mut fast = Emulator::new(&prog);
            let fast_exit = fast.run(FUEL).expect("fast run");

            // The same binary under the profiler.
            let mut profiled = Emulator::new(&prog);
            let mut hook = ProfileHook::new(&prog);
            let prof_exit = profiled
                .run_with_hook(FUEL, &mut hook)
                .expect("profiled run");

            assert_eq!(fast_exit, prof_exit, "{} exit on {machine}", w.name);
            assert_eq!(
                fast.measurements(),
                profiled.measurements(),
                "{} measurements under ProfileHook on {machine}",
                w.name
            );

            // Full attribution: one retire per instruction, every retire
            // lands in an opcode bucket and a codegen basic block, and
            // nothing executed that was never emitted.
            let m = profiled.measurements().clone();
            let p = hook.finish(w.name, &m);
            assert_eq!(p.retired, m.instructions, "{} retires on {machine}", w.name);
            assert_eq!(
                p.opcodes.iter().sum::<u64>(),
                p.retired,
                "{} opcode attribution on {machine}",
                w.name
            );
            assert_eq!(
                p.blocks.iter().map(|(_, n)| n).sum::<u64>(),
                p.retired,
                "{} block attribution on {machine}",
                w.name
            );
            assert_eq!(
                p.coverage.executed & !p.coverage.emitted,
                0,
                "{} executed ⊆ emitted on {machine}",
                w.name
            );
            assert_eq!(
                p.breg.is_some(),
                machine == Machine::BranchReg,
                "{} breg stats only on the BR machine",
                w.name
            );
        }
    }
}

/// The metered compile pipeline must emit the same binary as the plain
/// one — metering reads the clock, never the program.
#[test]
fn metered_compile_is_byte_identical() {
    let exp = Experiment::new();
    for w in suite(Scale::Test).into_iter().take(6) {
        let module = br_frontend::compile(&w.source).expect("frontend");
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let (plain, plain_stats) = exp
                .compile_module_for(&module, machine)
                .unwrap_or_else(|e| panic!("{} on {machine}: {e}", w.name));
            let (metered, metered_stats, metrics) = exp
                .compile_module_metered(&module, machine)
                .unwrap_or_else(|e| panic!("{} metered on {machine}: {e}", w.name));
            assert_eq!(plain.code, metered.code, "{} code on {machine}", w.name);
            assert_eq!(plain_stats, metered_stats, "{} stats on {machine}", w.name);
            assert_eq!(
                metrics.funcs,
                module.functions.len(),
                "{} metered every function on {machine}",
                w.name
            );
        }
    }
}
