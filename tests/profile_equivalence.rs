//! Guards the observability tentpole's core invariant: profiling only
//! *observes*. Every Appendix I program, on both machines, must produce
//! byte-identical exit values and [`Measurements`] whether it runs on
//! the hook-free fast path or under the full [`ProfileHook`] — and the
//! profile itself must account for every retired instruction.

use br_core::{suite, Experiment, Machine, Scale};
use br_emu::{Emulator, ExecTier, TraceHook};
use br_obs::ProfileHook;

const FUEL: u64 = 1_000_000_000;

/// Every Appendix I program, on both machines, must be bit-for-bit
/// indistinguishable across execution tiers: same exit value, same
/// [`Measurements`], and the same fetch/prefetch/retire/store event
/// streams in the same order.
#[test]
fn suite_tiers_are_byte_identical() {
    let exp = Experiment::new();
    for w in suite(Scale::Test) {
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let (prog, _) = exp
                .compile(&w.source, machine)
                .unwrap_or_else(|e| panic!("{} on {machine}: {e}", w.name));

            let mut interp = Emulator::new(&prog);
            let mut ref_hook = TraceHook::default();
            let ref_exit = interp.run_with_hook(FUEL, &mut ref_hook).expect("interp");
            assert!(!ref_hook.truncated(), "{} trace capped", w.name);

            for tier in [ExecTier::Threaded, ExecTier::Traced] {
                let mut emu = Emulator::new(&prog).with_tier(tier);
                let mut hook = TraceHook::default();
                let exit = emu
                    .run_with_hook(FUEL, &mut hook)
                    .unwrap_or_else(|e| panic!("{} {tier} on {machine}: {e}", w.name));
                assert_eq!(ref_exit, exit, "{} exit under {tier} on {machine}", w.name);
                assert_eq!(
                    interp.measurements(),
                    emu.measurements(),
                    "{} measurements under {tier} on {machine}",
                    w.name
                );
                assert_eq!(
                    ref_hook.fetches, hook.fetches,
                    "{} fetch stream under {tier} on {machine}",
                    w.name
                );
                assert_eq!(
                    ref_hook.prefetches, hook.prefetches,
                    "{} prefetch stream under {tier} on {machine}",
                    w.name
                );
                assert_eq!(
                    ref_hook.retires, hook.retires,
                    "{} retire stream under {tier} on {machine}",
                    w.name
                );
                assert_eq!(
                    ref_hook.stores, hook.stores,
                    "{} store stream under {tier} on {machine}",
                    w.name
                );

                // The hook-free fast path of the same tier agrees too.
                let mut fast = Emulator::new(&prog).with_tier(tier);
                let fast_exit = fast.run(FUEL).expect("fast run");
                assert_eq!(ref_exit, fast_exit, "{} fast exit under {tier}", w.name);
                assert_eq!(
                    interp.measurements(),
                    fast.measurements(),
                    "{} fast measurements under {tier} on {machine}",
                    w.name
                );
            }
        }
    }
}

/// The profiler's attribution invariants hold on every tier, not just
/// the interpreter.
#[test]
fn suite_profile_attribution_holds_on_every_tier() {
    let exp = Experiment::new();
    for w in suite(Scale::Test).into_iter().take(4) {
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let (prog, _) = exp
                .compile(&w.source, machine)
                .unwrap_or_else(|e| panic!("{} on {machine}: {e}", w.name));
            for tier in ExecTier::ALL {
                let mut emu = Emulator::new(&prog).with_tier(tier);
                let mut hook = ProfileHook::new(&prog);
                emu.run_with_hook(FUEL, &mut hook)
                    .unwrap_or_else(|e| panic!("{} {tier} on {machine}: {e}", w.name));
                let m = emu.measurements().clone();
                let p = hook.finish(w.name, &m);
                assert_eq!(
                    p.retired, m.instructions,
                    "{} retires under {tier} on {machine}",
                    w.name
                );
                assert_eq!(
                    p.blocks.iter().map(|(_, n)| n).sum::<u64>(),
                    p.retired,
                    "{} block attribution under {tier} on {machine}",
                    w.name
                );
            }
        }
    }
}

#[test]
fn suite_measurements_identical_under_profiling() {
    let exp = Experiment::new();
    for w in suite(Scale::Test) {
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let (prog, _) = exp
                .compile(&w.source, machine)
                .unwrap_or_else(|e| panic!("{} on {machine}: {e}", w.name));

            // Hook-free fast path.
            let mut fast = Emulator::new(&prog);
            let fast_exit = fast.run(FUEL).expect("fast run");

            // The same binary under the profiler.
            let mut profiled = Emulator::new(&prog);
            let mut hook = ProfileHook::new(&prog);
            let prof_exit = profiled
                .run_with_hook(FUEL, &mut hook)
                .expect("profiled run");

            assert_eq!(fast_exit, prof_exit, "{} exit on {machine}", w.name);
            assert_eq!(
                fast.measurements(),
                profiled.measurements(),
                "{} measurements under ProfileHook on {machine}",
                w.name
            );

            // Full attribution: one retire per instruction, every retire
            // lands in an opcode bucket and a codegen basic block, and
            // nothing executed that was never emitted.
            let m = profiled.measurements().clone();
            let p = hook.finish(w.name, &m);
            assert_eq!(p.retired, m.instructions, "{} retires on {machine}", w.name);
            assert_eq!(
                p.opcodes.iter().sum::<u64>(),
                p.retired,
                "{} opcode attribution on {machine}",
                w.name
            );
            assert_eq!(
                p.blocks.iter().map(|(_, n)| n).sum::<u64>(),
                p.retired,
                "{} block attribution on {machine}",
                w.name
            );
            assert_eq!(
                p.coverage.executed & !p.coverage.emitted,
                0,
                "{} executed ⊆ emitted on {machine}",
                w.name
            );
            assert_eq!(
                p.breg.is_some(),
                machine == Machine::BranchReg,
                "{} breg stats only on the BR machine",
                w.name
            );
        }
    }
}

/// The metered compile pipeline must emit the same binary as the plain
/// one — metering reads the clock, never the program.
#[test]
fn metered_compile_is_byte_identical() {
    let exp = Experiment::new();
    for w in suite(Scale::Test).into_iter().take(6) {
        let module = br_frontend::compile(&w.source).expect("frontend");
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let (plain, plain_stats) = exp
                .compile_module_for(&module, machine)
                .unwrap_or_else(|e| panic!("{} on {machine}: {e}", w.name));
            let (metered, metered_stats, metrics) = exp
                .compile_module_metered(&module, machine)
                .unwrap_or_else(|e| panic!("{} metered on {machine}: {e}", w.name));
            assert_eq!(plain.code, metered.code, "{} code on {machine}", w.name);
            assert_eq!(plain_stats, metered_stats, "{} stats on {machine}", w.name);
            assert_eq!(
                metrics.funcs,
                module.functions.len(),
                "{} metered every function on {machine}",
                w.name
            );
        }
    }
}

/// A warmed superblock cache adopted by a fresh emulator of the same
/// program must change nothing observable — and a cache from different
/// program text must be rejected.
#[test]
fn trace_cache_reuse_is_byte_identical() {
    let exp = Experiment::new();
    for w in suite(Scale::Test).into_iter().take(4) {
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let (prog, _) = exp
                .compile(&w.source, machine)
                .unwrap_or_else(|e| panic!("{} on {machine}: {e}", w.name));

            let mut cold = Emulator::new(&prog).with_tier(ExecTier::Traced);
            let mut cold_hook = TraceHook::default();
            let cold_exit = cold.run_with_hook(FUEL, &mut cold_hook).expect("cold run");
            let cache = cold
                .take_trace_cache()
                .expect("traced run leaves a cache behind");

            let mut warm = Emulator::new(&prog).with_tier(ExecTier::Traced);
            assert!(
                warm.set_trace_cache(cache),
                "{} cache accepted for identical text on {machine}",
                w.name
            );
            let mut warm_hook = TraceHook::default();
            let warm_exit = warm.run_with_hook(FUEL, &mut warm_hook).expect("warm run");

            assert_eq!(cold_exit, warm_exit, "{} exit on {machine}", w.name);
            assert_eq!(
                cold.measurements(),
                warm.measurements(),
                "{} measurements on {machine}",
                w.name
            );
            assert_eq!(cold_hook.fetches, warm_hook.fetches, "{} fetches", w.name);
            assert_eq!(cold_hook.retires, warm_hook.retires, "{} retires", w.name);
            assert_eq!(cold_hook.stores, warm_hook.stores, "{} stores", w.name);
            assert!(
                warm.traced_insts() >= cold.traced_insts(),
                "{} warm start must not lose trace coverage on {machine}",
                w.name
            );

            // A cache formed for other text must be dropped untouched.
            let other = match machine {
                Machine::Baseline => Machine::BranchReg,
                Machine::BranchReg => Machine::Baseline,
            };
            let (other_prog, _) = exp
                .compile(&w.source, other)
                .unwrap_or_else(|e| panic!("{} on {other}: {e}", w.name));
            let cache = warm.take_trace_cache().expect("cache still present");
            let mut wrong = Emulator::new(&other_prog).with_tier(ExecTier::Traced);
            assert!(
                !wrong.set_trace_cache(cache),
                "{} cache rejected across machines",
                w.name
            );
        }
    }
}
