//! Property-based differential testing with *structured* random MiniC
//! programs: nested `if`/`while` statements over a small state vector,
//! executed on the IR interpreter and both machines.

use br_core::Experiment;
use br_ir::Interpreter;
use proptest::prelude::*;

/// A bounded random statement tree, rendered to MiniC. All loops are
/// guaranteed to terminate by a global step budget the generated program
/// checks itself (`if (steps++ > 500) break;`).
#[derive(Debug, Clone)]
enum Stmt {
    Assign(usize, Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    While(Expr, Vec<Stmt>),
}

#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Lit(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Lt(Box<Expr>, Box<Expr>),
}

const NVARS: usize = 4;

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        return prop_oneof![
            (0..NVARS).prop_map(Expr::Var),
            (-20i32..20).prop_map(Expr::Lit),
        ]
        .boxed();
    }
    let sub = arb_expr(depth - 1);
    prop_oneof![
        (0..NVARS).prop_map(Expr::Var),
        (-20i32..20).prop_map(Expr::Lit),
        (sub.clone(), arb_expr(depth - 1))
            .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
        (sub.clone(), arb_expr(depth - 1))
            .prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
        (sub.clone(), arb_expr(depth - 1))
            .prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
        (sub.clone(), arb_expr(depth - 1))
            .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        (sub, arb_expr(depth - 1)).prop_map(|(a, b)| Expr::Lt(Box::new(a), Box::new(b))),
    ]
    .boxed()
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let assign = (0..NVARS, arb_expr(2)).prop_map(|(v, e)| Stmt::Assign(v, e));
    if depth == 0 {
        return assign.boxed();
    }
    let block = prop::collection::vec(arb_stmt(depth - 1), 1..3);
    prop_oneof![
        3 => assign,
        1 => (arb_expr(1), block.clone(), prop::collection::vec(arb_stmt(depth - 1), 0..2))
            .prop_map(|(c, t, e)| Stmt::If(c, t, e)),
        1 => (arb_expr(1), block).prop_map(|(c, b)| Stmt::While(c, b)),
    ]
    .boxed()
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Var(v) => format!("v{v}"),
        Expr::Lit(c) => format!("({c})"),
        Expr::Add(a, b) => format!("({} + {})", render_expr(a), render_expr(b)),
        Expr::Sub(a, b) => format!("({} - {})", render_expr(a), render_expr(b)),
        Expr::Mul(a, b) => format!("({} * {})", render_expr(a), render_expr(b)),
        Expr::Xor(a, b) => format!("({} ^ {})", render_expr(a), render_expr(b)),
        Expr::Lt(a, b) => format!("({} < {})", render_expr(a), render_expr(b)),
    }
}

fn render_stmt(s: &Stmt, out: &mut String, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Assign(v, e) => {
            // Keep values bounded so multiplication chains stay tame.
            out.push_str(&format!(
                "{pad}v{v} = ({}) % 9973;\n",
                render_expr(e)
            ));
        }
        Stmt::If(c, t, e) => {
            out.push_str(&format!("{pad}if ({}) {{\n", render_expr(c)));
            for s in t {
                render_stmt(s, out, indent + 1);
            }
            if e.is_empty() {
                out.push_str(&format!("{pad}}}\n"));
            } else {
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in e {
                    render_stmt(s, out, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
        }
        Stmt::While(c, b) => {
            out.push_str(&format!("{pad}while ({}) {{\n", render_expr(c)));
            out.push_str(&format!("{pad}    if (steps > 500) break;\n"));
            out.push_str(&format!("{pad}    steps++;\n"));
            for s in b {
                render_stmt(s, out, indent + 1);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

fn render_program(stmts: &[Stmt], seeds: &[i32]) -> String {
    let mut body = String::new();
    for (i, s) in seeds.iter().enumerate() {
        body.push_str(&format!("    int v{i} = {s};\n"));
    }
    body.push_str("    int steps = 0;\n");
    for s in stmts {
        render_stmt(s, &mut body, 1);
    }
    let sum = (0..NVARS)
        .map(|i| format!("v{i}"))
        .collect::<Vec<_>>()
        .join(" + ");
    format!("int main() {{\n{body}    return ({sum} + steps) % 251;\n}}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn structured_random_programs_agree(
        stmts in prop::collection::vec(arb_stmt(2), 1..5),
        seeds in prop::collection::vec(-10i32..10, NVARS..=NVARS),
    ) {
        let src = render_program(&stmts, &seeds);
        let module = br_frontend::compile(&src)
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let expected = Interpreter::new(&module)
            .run("main", &[])
            .unwrap_or_else(|e| panic!("interp failed: {e}\n{src}"));
        let cmp = Experiment::new()
            .run_comparison("prop", &src)
            .unwrap_or_else(|e| panic!("run failed: {e}\n{src}"));
        prop_assert_eq!(cmp.baseline.exit, expected, "baseline\n{}", src);
        prop_assert_eq!(cmp.brmach.exit, expected, "branch-register\n{}", src);
    }
}
