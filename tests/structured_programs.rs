//! Differential testing with *structured* random MiniC programs: nested
//! `if`/`while` statements over a small state vector, executed on the IR
//! interpreter and both machines.
//!
//! Deterministic seeded generation (no property-test framework so the
//! build works offline); failures reproduce from the fixed seed below.
//! The heavier generator (calls, arrays, `for`, `switch`) lives in
//! `crates/torture`.

use br_core::Experiment;
use br_ir::Interpreter;
use br_workloads::rng::Rng64;

/// A bounded random statement tree, rendered to MiniC. All loops are
/// guaranteed to terminate by a global step budget the generated program
/// checks itself (`if (steps++ > 500) break;`).
#[derive(Debug, Clone)]
enum Stmt {
    Assign(usize, Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    While(Expr, Vec<Stmt>),
}

#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Lit(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Lt(Box<Expr>, Box<Expr>),
}

const NVARS: usize = 4;

fn arb_expr(r: &mut Rng64, depth: u32) -> Expr {
    let leaf = depth == 0 || r.random_range(0u32..7) < 2;
    if leaf {
        return if r.random_range(0u32..2) == 0 {
            Expr::Var(r.random_range(0usize..NVARS))
        } else {
            Expr::Lit(r.random_range(-20i32..20))
        };
    }
    let a = Box::new(arb_expr(r, depth - 1));
    let b = Box::new(arb_expr(r, depth - 1));
    match r.random_range(0u32..5) {
        0 => Expr::Add(a, b),
        1 => Expr::Sub(a, b),
        2 => Expr::Mul(a, b),
        3 => Expr::Xor(a, b),
        _ => Expr::Lt(a, b),
    }
}

fn arb_block(r: &mut Rng64, depth: u32, lo: usize, hi: usize) -> Vec<Stmt> {
    let n = r.random_range(lo..hi);
    (0..n).map(|_| arb_stmt(r, depth)).collect()
}

fn arb_stmt(r: &mut Rng64, depth: u32) -> Stmt {
    let assign = depth == 0 || r.random_range(0u32..5) < 3;
    if assign {
        return Stmt::Assign(r.random_range(0usize..NVARS), arb_expr(r, 2));
    }
    if r.random_range(0u32..2) == 0 {
        let c = arb_expr(r, 1);
        let t = arb_block(r, depth - 1, 1, 3);
        let e = arb_block(r, depth - 1, 0, 2);
        Stmt::If(c, t, e)
    } else {
        let c = arb_expr(r, 1);
        let b = arb_block(r, depth - 1, 1, 3);
        Stmt::While(c, b)
    }
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Var(v) => format!("v{v}"),
        Expr::Lit(c) => format!("({c})"),
        Expr::Add(a, b) => format!("({} + {})", render_expr(a), render_expr(b)),
        Expr::Sub(a, b) => format!("({} - {})", render_expr(a), render_expr(b)),
        Expr::Mul(a, b) => format!("({} * {})", render_expr(a), render_expr(b)),
        Expr::Xor(a, b) => format!("({} ^ {})", render_expr(a), render_expr(b)),
        Expr::Lt(a, b) => format!("({} < {})", render_expr(a), render_expr(b)),
    }
}

fn render_stmt(s: &Stmt, out: &mut String, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Assign(v, e) => {
            // Keep values bounded so multiplication chains stay tame.
            out.push_str(&format!(
                "{pad}v{v} = ({}) % 9973;\n",
                render_expr(e)
            ));
        }
        Stmt::If(c, t, e) => {
            out.push_str(&format!("{pad}if ({}) {{\n", render_expr(c)));
            for s in t {
                render_stmt(s, out, indent + 1);
            }
            if e.is_empty() {
                out.push_str(&format!("{pad}}}\n"));
            } else {
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in e {
                    render_stmt(s, out, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
        }
        Stmt::While(c, b) => {
            out.push_str(&format!("{pad}while ({}) {{\n", render_expr(c)));
            out.push_str(&format!("{pad}    if (steps > 500) break;\n"));
            out.push_str(&format!("{pad}    steps++;\n"));
            for s in b {
                render_stmt(s, out, indent + 1);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

fn render_program(stmts: &[Stmt], seeds: &[i32]) -> String {
    let mut body = String::new();
    for (i, s) in seeds.iter().enumerate() {
        body.push_str(&format!("    int v{i} = {s};\n"));
    }
    body.push_str("    int steps = 0;\n");
    for s in stmts {
        render_stmt(s, &mut body, 1);
    }
    let sum = (0..NVARS)
        .map(|i| format!("v{i}"))
        .collect::<Vec<_>>()
        .join(" + ");
    format!("int main() {{\n{body}    return ({sum} + steps) % 251;\n}}\n")
}

#[test]
fn structured_random_programs_agree() {
    let mut r = Rng64::seed_from_u64(0x57_0001);
    for _ in 0..16 {
        let stmts = arb_block(&mut r, 2, 1, 5);
        let seeds: Vec<i32> = (0..NVARS).map(|_| r.random_range(-10i32..10)).collect();
        let src = render_program(&stmts, &seeds);
        let module = br_frontend::compile(&src)
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let expected = Interpreter::new(&module)
            .run("main", &[])
            .unwrap_or_else(|e| panic!("interp failed: {e}\n{src}"));
        let cmp = Experiment::new()
            .run_comparison("prop", &src)
            .unwrap_or_else(|e| panic!("run failed: {e}\n{src}"));
        assert_eq!(cmp.baseline.exit, expected, "baseline\n{src}");
        assert_eq!(cmp.brmach.exit, expected, "branch-register\n{src}");
    }
}
