//! Regression corpus for the differential torture oracle.
//!
//! Every `tests/corpus/*.c` file replays through the full three-way
//! check (IR interpreter vs baseline machine vs branch-register machine)
//! on each test run; any program that ever exposes a divergence gets
//! minimized by `br-torture` and pinned here. A handful of fixed
//! generator seeds replay as well, so the generated dialect itself is
//! covered deterministically.

use br_torture::{
    check_src, check_src_with, generate, iter_seed, render, GenConfig, DEFAULT_FUEL,
};

#[test]
fn corpus_replays_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 5,
        "corpus should hold the regression fixtures, found {entries:?}"
    );
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("corpus file reads");
        // Replay with the br-verify stage gates on, so every corpus
        // program also exercises the static checkers.
        if let Err(d) = check_src_with(&src, DEFAULT_FUEL, true) {
            panic!("{} diverged: {d}", path.display());
        }
    }
}

#[test]
fn corpus_exit_values_are_pinned() {
    // Exact exit values for a few fixtures, so a semantics change that
    // alters all three executions in lockstep still gets flagged.
    let pinned = [
        ("switch_dense.c", 212),
        ("call_in_loop.c", 46),
        ("do_while_break.c", 56),
        ("nested_switch_tables.c", 30),
        ("preheader_calls_hoist.c", 65),
    ];
    for (file, want) in pinned {
        let path = format!(
            "{}/tests/corpus/{file}",
            env!("CARGO_MANIFEST_DIR")
        );
        let src = std::fs::read_to_string(&path).expect("corpus file reads");
        let a = check_src(&src, DEFAULT_FUEL).expect("oracle agrees");
        assert_eq!(a.exit, want, "{file} exit value drifted");
    }
}

#[test]
fn fixed_generator_seeds_replay_clean() {
    // The first iterations of the documented acceptance run
    // (`--seed 42`), pinned so the generated dialect replays forever.
    for i in 0..25u64 {
        let s = iter_seed(42, i);
        let src = render(&generate(s, GenConfig::default()));
        if let Err(d) = check_src(&src, DEFAULT_FUEL) {
            panic!("seed 42 iteration {i} diverged: {d}\n{src}");
        }
    }
}
