//! Torture-regression coverage for the fault-free/instrumented loop
//! split: arming *any* fault must route execution through the
//! instrumented loop, the fault must actually fire there, and the
//! instrumented loop must count exactly like the fast path when the
//! fired fault is a semantic no-op.
//!
//! Each [`Fault`] variant is exercised at step 0 and at a late
//! (mid-execution) step, on both machines, through the real compiler
//! pipeline rather than hand-assembled stubs.

use br_core::{Experiment, Machine};
use br_emu::{Emulator, EmuError, ExecTier, Fault, Measurements, TraceHook};
use br_isa::Program;

const FUEL: u64 = 100_000_000;

/// A workload small enough to replay many times but with loops, calls,
/// and global stores spread across its whole execution (so a late-step
/// `FailMem` always has a memory access left to fail).
const SRC: &str = "
    int acc[8];
    int mix(int a, int b) { return a * 3 + b; }
    int main() {
        int s = 0;
        for (int i = 0; i < 40; i++) {
            s = mix(s, i);
            acc[i & 7] = s;
            if (s > 100000) s = s - 100000;
        }
        return s & 255;
    }
";

fn compile(machine: Machine) -> Program {
    let (prog, _) = Experiment::new()
        .compile(SRC, machine)
        .expect("fixture compiles");
    prog
}

fn clean_run(prog: &Program) -> (i32, Measurements) {
    let mut emu = Emulator::new(prog);
    let exit = emu.run(FUEL).expect("clean run");
    (exit, emu.measurements().clone())
}

/// Run with one armed fault; every outcome must be a clean exit or a
/// typed error — never a panic or an out-of-fuel wedge.
fn run_armed(prog: &Program, fault: Fault) -> Result<(i32, Measurements), EmuError> {
    let mut emu = Emulator::new(prog);
    emu.inject(fault);
    match emu.run(FUEL) {
        Ok(exit) => Ok((exit, emu.measurements().clone())),
        Err(EmuError::OutOfFuel) => panic!("armed {fault:?} wedged the emulator"),
        Err(e) => Err(e),
    }
}

#[test]
fn armed_but_never_firing_fault_counts_like_the_fast_path() {
    for machine in [Machine::Baseline, Machine::BranchReg] {
        let prog = compile(machine);
        let (exit, meas) = clean_run(&prog);
        // The armed queue forces the instrumented loop for the whole
        // run; with the fault parked at an unreachable step the counts
        // must match the fast path bit for bit.
        let (armed_exit, armed_meas) = run_armed(
            &prog,
            Fault::CorruptReg {
                at_step: u64::MAX,
                reg: 1,
                xor_mask: -1,
            },
        )
        .expect("never-firing fault must not alter the run");
        assert_eq!(exit, armed_exit, "exit on {machine}");
        assert_eq!(meas, armed_meas, "measurements on {machine}");
    }
}

#[test]
fn corrupt_reg_fires_at_step_zero_and_late() {
    for machine in [Machine::Baseline, Machine::BranchReg] {
        let prog = compile(machine);
        let (exit, meas) = clean_run(&prog);
        let late = meas.instructions / 2;
        for at_step in [0, late] {
            // xor_mask 0 makes the firing fault a semantic no-op: it
            // proves the instrumented loop both fires the fault at the
            // right step and still counts exactly like the fast path.
            let (e, m) = run_armed(
                &prog,
                Fault::CorruptReg {
                    at_step,
                    reg: 1,
                    xor_mask: 0,
                },
            )
            .expect("no-op corruption completes");
            assert_eq!((e, &m), (exit, &meas), "no-op at step {at_step} on {machine}");

            // A destructive mask must still end in a typed outcome.
            let _ = run_armed(
                &prog,
                Fault::CorruptReg {
                    at_step,
                    reg: 3,
                    xor_mask: 0x5555_0000,
                },
            );
        }
    }
}

#[test]
fn corrupt_inst_fires_at_step_zero_and_late() {
    for machine in [Machine::Baseline, Machine::BranchReg] {
        let prog = compile(machine);
        let (exit, meas) = clean_run(&prog);
        let late = meas.instructions / 2;
        for at_step in [0, late] {
            // xor_mask 0 re-decodes the same word: the run must be
            // untouched even though the fault fired.
            let (e, m) = run_armed(&prog, Fault::CorruptInst { at_step, xor_mask: 0 })
                .expect("identity re-decode completes");
            assert_eq!((e, &m), (exit, &meas), "no-op at step {at_step} on {machine}");

            // Flipping the whole word either fails to decode
            // (WrongMachine) or runs astray into another typed error —
            // assert it stays typed.
            let _ = run_armed(
                &prog,
                Fault::CorruptInst {
                    at_step,
                    xor_mask: u32::MAX,
                },
            );
        }
    }
}

/// Fault injection is *tier-invariant*: arming any fault routes the run
/// to the instrumented interpreter no matter which [`ExecTier`] was
/// requested (the threaded and traced tiers never see faulted state).
/// Every [`Fault`] variant × hook shape × tier combination must
/// therefore reproduce the interpreter reference bit for bit — the same
/// exit and [`Measurements`] on success, the same typed [`EmuError`] on
/// failure, and under a hook the same event streams.
#[test]
fn faults_are_tier_invariant_across_hook_shapes() {
    for machine in [Machine::Baseline, Machine::BranchReg] {
        let prog = compile(machine);
        let (_, meas) = clean_run(&prog);
        let late = meas.instructions / 2;

        // Every variant, firing early, firing late, and (for the
        // armed-but-parked instrumented path) never firing at all.
        let faults = [
            Fault::CorruptReg { at_step: 0, reg: 1, xor_mask: 0 },
            Fault::CorruptReg { at_step: late, reg: 3, xor_mask: 0x5555_0000 },
            Fault::CorruptReg { at_step: u64::MAX, reg: 1, xor_mask: -1 },
            Fault::CorruptInst { at_step: 0, xor_mask: 0 },
            Fault::CorruptInst { at_step: late, xor_mask: u32::MAX },
            Fault::FailMem { at_step: 0 },
            Fault::FailMem { at_step: late },
        ];

        for fault in faults {
            // Interpreter reference, hook-free and hooked.
            let reference = run_armed_tiered(&prog, fault, ExecTier::Interp, None);
            let mut ref_hook = TraceHook::default();
            let ref_hooked = run_armed_tiered(&prog, fault, ExecTier::Interp, Some(&mut ref_hook));
            assert_eq!(
                reference, ref_hooked,
                "{fault:?} hooked interp diverges on {machine}"
            );

            for tier in ExecTier::ALL {
                let bare = run_armed_tiered(&prog, fault, tier, None);
                assert_eq!(
                    reference, bare,
                    "{fault:?} hook-free under {tier} on {machine}"
                );

                let mut hook = TraceHook::default();
                let hooked = run_armed_tiered(&prog, fault, tier, Some(&mut hook));
                assert_eq!(
                    reference, hooked,
                    "{fault:?} hooked under {tier} on {machine}"
                );
                assert_eq!(
                    ref_hook.fetches, hook.fetches,
                    "{fault:?} fetch stream under {tier} on {machine}"
                );
                assert_eq!(
                    ref_hook.retires, hook.retires,
                    "{fault:?} retire stream under {tier} on {machine}"
                );
                assert_eq!(
                    ref_hook.stores, hook.stores,
                    "{fault:?} store stream under {tier} on {machine}"
                );
            }
        }
    }
}

/// One armed run on a chosen tier, hook-free or under a [`TraceHook`];
/// panics on an out-of-fuel wedge like [`run_armed`].
fn run_armed_tiered(
    prog: &Program,
    fault: Fault,
    tier: ExecTier,
    hook: Option<&mut TraceHook>,
) -> Result<(i32, Measurements), EmuError> {
    let mut emu = Emulator::new(prog).with_tier(tier);
    emu.inject(fault);
    let res = match hook {
        Some(h) => emu.run_with_hook(FUEL, h),
        None => emu.run(FUEL),
    };
    match res {
        Ok(exit) => Ok((exit, emu.measurements().clone())),
        Err(EmuError::OutOfFuel) => panic!("armed {fault:?} wedged the emulator on {tier}"),
        Err(e) => Err(e),
    }
}

#[test]
fn fail_mem_fires_at_step_zero_and_late() {
    for machine in [Machine::Baseline, Machine::BranchReg] {
        let prog = compile(machine);
        let (_, meas) = clean_run(&prog);
        assert!(meas.data_refs > 0, "fixture must touch memory on {machine}");
        let late = meas.instructions / 2;
        for at_step in [0, late] {
            // The fixture stores a global every loop iteration, so a
            // memory access always remains after `late`; the first one
            // at or after `at_step` must report `BadMem`.
            match run_armed(&prog, Fault::FailMem { at_step }) {
                Err(EmuError::BadMem { .. }) => {}
                other => panic!("expected BadMem at step {at_step} on {machine}, got {other:?}"),
            }
        }
    }
}
