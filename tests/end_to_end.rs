//! Cross-crate integration tests: MiniC source → IR → both machines →
//! emulation, validated against the IR interpreter.

use br_core::{Experiment, Machine};
use br_ir::Interpreter;
use br_workloads::rng::Rng64;

/// Run `src` through the interpreter and both machines; all three must
/// agree on the exit value.
fn check_consistent(src: &str) -> i32 {
    let module = br_frontend::compile(src).expect("compile");
    let expected = Interpreter::new(&module).run("main", &[]).expect("interp");
    let cmp = Experiment::new().run_comparison("t", src).expect("run");
    assert_eq!(cmp.baseline.exit, expected, "baseline vs interpreter");
    assert_eq!(cmp.brmach.exit, expected, "branch-register vs interpreter");
    expected
}

#[test]
fn ackermann_stresses_calls() {
    let src = r#"
        int ack(int m, int n) {
            if (m == 0) return n + 1;
            if (n == 0) return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        }
        int main() { return ack(2, 3); }
    "#;
    assert_eq!(check_consistent(src), 9);
}

#[test]
fn collatz_long_loop() {
    let src = r#"
        int main() {
            int n = 27;
            int steps = 0;
            while (n != 1) {
                if (n % 2) n = 3 * n + 1;
                else n = n / 2;
                steps++;
            }
            return steps;
        }
    "#;
    assert_eq!(check_consistent(src), 111);
}

#[test]
fn string_reverse_in_place() {
    let src = r#"
        char buf[16] = "reproduction";
        int main() {
            int len = 0;
            while (buf[len]) len++;
            /* MiniC has no comma expressions; use a while loop */
            int i = 0, j = len - 1;
            while (i < j) {
                char t = buf[i];
                buf[i] = buf[j];
                buf[j] = t;
                i++; j--;
            }
            return buf[0] * 2 + buf[len - 1];
        }
    "#;
    // "reproduction" reversed starts with 'n' and ends with 'r'.
    assert_eq!(check_consistent(src), ('n' as i32) * 2 + 'r' as i32);
}

#[test]
fn float_accumulation_matches() {
    let src = r#"
        float series(int n) {
            float s = 0.0;
            for (int i = 1; i <= n; i++) s = s + 1.0 / (float)i;
            return s;
        }
        int main() { return (int)(series(50) * 100.0); }
    "#;
    check_consistent(src);
}

#[test]
fn deep_expression_pressure() {
    // One expression with enough temporaries to stress both register files.
    let mut expr = String::from("a");
    for i in 1..40 {
        expr.push_str(&format!(" + a * {i} % (a + {i})"));
    }
    let src = format!("int main() {{ int a = 17; return ({expr}) % 251; }}");
    check_consistent(&src);
}

#[test]
fn mutual_recursion() {
    let src = r#"
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { return is_even(20) * 10 + is_odd(7); }
    "#;
    assert_eq!(check_consistent(src), 11);
}

#[test]
fn branch_register_machine_static_code_differs() {
    let src = "int main() { int s = 0; for (int i = 0; i < 5; i++) s += i; return s; }";
    let exp = Experiment::new();
    let (pb, _) = exp.compile(src, Machine::Baseline).unwrap();
    let (pr, _) = exp.compile(src, Machine::BranchReg).unwrap();
    // Same data, different text encodings and different instruction mix.
    assert_eq!(pb.data, pr.data);
    assert_ne!(pb.code, pr.code);
    let rb = pb.listing();
    let rr = pr.listing();
    assert!(rb.contains("PC="), "baseline uses branches:\n{rb}");
    assert!(rr.contains("b[0]=b["), "BR machine uses br fields:\n{rr}");
    assert!(!rr.contains("PC="), "BR machine must have no branch instructions");
}

#[test]
fn measurements_are_deterministic() {
    let src = "int main() { int s = 0; for (int i = 0; i < 100; i++) s ^= i * 3; return s; }";
    let exp = Experiment::new();
    let a = exp.run(src, Machine::BranchReg).unwrap();
    let b = exp.run(src, Machine::BranchReg).unwrap();
    assert_eq!(a.meas, b.meas);
    assert_eq!(a.exit, b.exit);
}

// ---- randomized differential testing ----
//
// Deterministic seeded loops (no property-test framework so the build
// works offline); failures reproduce from the fixed seeds below. The
// full structured generator lives in `crates/torture`.

/// Random arithmetic expressions over two variables, avoiding division
/// (whose by-zero behaviour would need guards).
fn arb_expr(r: &mut Rng64, depth: u32) -> String {
    if depth == 0 || r.random_range(0u32..2) == 0 {
        return match r.random_range(0u32..3) {
            0 => r.random_range(0i32..200).to_string(),
            1 => "a".to_string(),
            _ => "b".to_string(),
        };
    }
    let op = *r.pick(&["+", "-", "*", "&", "|", "^"]);
    let x = arb_expr(r, depth - 1);
    let y = arb_expr(r, depth - 1);
    format!("({x} {op} {y})")
}

#[test]
fn random_expressions_agree_everywhere() {
    let mut r = Rng64::seed_from_u64(0xE2E_0001);
    for _ in 0..24 {
        let e = arb_expr(&mut r, 4);
        let a = r.random_range(-50i32..50);
        let b = r.random_range(-50i32..50);
        let src = format!(
            "int main() {{ int a = {a}; int b = {b}; return ({e}) % 251; }}"
        );
        check_consistent(&src);
    }
}

#[test]
fn random_loops_agree_everywhere() {
    let mut r = Rng64::seed_from_u64(0xE2E_0002);
    for _ in 0..24 {
        let n = r.random_range(1i32..40);
        let step = r.random_range(1i32..5);
        let e = arb_expr(&mut r, 2);
        let src = format!(
            "int main() {{
                int a = 3; int b = 7; int s = 0;
                for (int i = 0; i < {n}; i += {step}) {{
                    s += ({e}) ^ i;
                    if (s > 100000) s -= 100000;
                    a = b + i; b = s % 97;
                }}
                return s % 251;
            }}"
        );
        check_consistent(&src);
    }
}
