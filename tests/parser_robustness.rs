//! The front end must never panic: arbitrary byte soup and mutated valid
//! programs either parse or return a CompileError.
//!
//! Deterministic seeded loops (no property-test framework so the build
//! works offline); failures reproduce from the fixed seeds below.

use br_workloads::rng::Rng64;

#[test]
fn lexer_and_parser_never_panic_on_ascii_soup() {
    let mut r = Rng64::seed_from_u64(0x50FF_A5C1);
    for _ in 0..256 {
        let len = r.random_range(0usize..201);
        let s: String = (0..len)
            .map(|_| match r.random_range(0u32..20) {
                0 => '\n',
                1 => '\t',
                _ => char::from(r.random_range(0x20u8..0x7F)),
            })
            .collect();
        let _ = br_frontend::compile(&s);
    }
}

#[test]
fn mutated_valid_programs_do_not_panic() {
    const INSERT: &[u8] = b"{}();+*/abcdefgxyz0123456789 ";
    let base = "int g = 3;\n\
                int f(int a, int b) { if (a > b) return a - b; return b; }\n\
                int main() { int s = 0; for (int i = 0; i < 9; i++) s += f(i, g); return s; }";
    let mut r = Rng64::seed_from_u64(0x3D17_A5C1);
    for _ in 0..256 {
        // Only mutate at a character boundary (source is ASCII).
        let at = r.random_range(0usize..400).min(base.len());
        let n = r.random_range(0usize..7);
        let insert: String = (0..n).map(|_| char::from(*r.pick(INSERT))).collect();
        let mut s = base.to_string();
        s.insert_str(at, &insert);
        let _ = br_frontend::compile(&s);
    }
}
