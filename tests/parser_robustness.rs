//! The front end must never panic: arbitrary byte soup and mutated valid
//! programs either parse or return a CompileError.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_and_parser_never_panic_on_ascii_soup(s in "[ -~\\n\\t]{0,200}") {
        let _ = br_frontend::compile(&s);
    }

    #[test]
    fn mutated_valid_programs_do_not_panic(
        cut_at in 0usize..400,
        insert in "[{}();+*/a-z0-9 ]{0,6}",
    ) {
        let base = "int g = 3;\n\
                    int f(int a, int b) { if (a > b) return a - b; return b; }\n\
                    int main() { int s = 0; for (int i = 0; i < 9; i++) s += f(i, g); return s; }";
        let mut s = base.to_string();
        let at = cut_at.min(s.len());
        // Only mutate at a character boundary (source is ASCII).
        s.insert_str(at, &insert);
        let _ = br_frontend::compile(&s);
    }
}
