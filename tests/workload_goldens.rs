//! Golden exit values for every Appendix I workload at test scale.
//!
//! The inputs are generated from a fixed seed, so these values are fully
//! deterministic; any change is either an intentional workload edit (then
//! regenerate with `cargo run --release --example regen_goldens`) or a
//! compiler/emulator regression.

use br_core::{by_name, Experiment, Machine, Scale};

const GOLDENS: &[(&str, i32)] = &[
    ("cal", 8),
    ("cb", 240),
    ("compact", 31),
    ("diff", 192),
    ("grep", 224),
    ("nroff", 69),
    ("od", 123),
    ("sed", 22),
    ("sort", 133),
    ("spline", 209),
    ("tr", 126),
    ("wc", 50),
    ("dhrystone", 142),
    ("matmult", 224),
    ("puzzle", 229),
    ("sieve", 168),
    ("whetstone", 45),
    ("mincost", 70),
    ("vpcc", 26),
];

#[test]
fn workload_exit_values_match_goldens_on_both_machines() {
    let exp = Experiment::new();
    for &(name, expected) in GOLDENS {
        let w = by_name(name, Scale::Test).unwrap();
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let r = exp.run(&w.source, machine).unwrap_or_else(|e| {
                panic!("{name} on {machine}: {e}");
            });
            assert_eq!(r.exit, expected, "{name} on {machine}");
        }
    }
}

#[test]
fn golden_sanity_checks() {
    // sieve returns the prime count mod 256; there are exactly 168
    // primes below 1000 (the classic sieve benchmark value).
    assert!(GOLDENS.iter().any(|&(n, v)| n == "sieve" && v == 168));
    // diff: lcs*10+edits fits the encoding (checked against the IR
    // interpreter in br-core's consistency test).
    assert_eq!(GOLDENS.len(), 19);
}
