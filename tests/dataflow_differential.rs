//! Differential property test for the register allocator's dataflow
//! fast path.
//!
//! The allocator's liveness, interference graph, across-call markers,
//! and spill costs were rewritten from `HashSet` sweeps to dense bitsets
//! with a worklist fixpoint. The seed implementation is retained
//! verbatim as `br_codegen::regalloc::reference`; this test asserts the
//! two produce *exactly* the same facts — not merely equivalent
//! allocations — over a corpus of torture-generated modules covering
//! loops, calls, floats, switches, and deep expression nesting on both
//! machines.

use br_codegen::{isel, regalloc, TargetSpec};
use br_ir::{BlockId, Cfg, Dominators, LoopForest};
use br_isa::Machine;
use br_torture::gen::{generate, render, GenConfig};

#[test]
fn bitset_dataflow_matches_hashset_reference_on_torture_corpus() {
    let mut funcs_checked = 0usize;
    for seed in 0..200u64 {
        let src = render(&generate(seed, GenConfig::default()));
        let module = br_frontend::compile(&src)
            .unwrap_or_else(|e| panic!("torture seed {seed} does not compile: {e}\n{src}"));
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let target = TargetSpec::for_machine(machine);
            let mut pool = isel::ConstPool::new();
            for func in &module.functions {
                if func.blocks.is_empty() {
                    continue;
                }
                let vf = isel::select(&module, func, &target, &mut pool)
                    .unwrap_or_else(|e| panic!("seed {seed} {machine:?} {}: {e}", func.name));
                let cfg = Cfg::new(func);
                let dom = Dominators::new(&cfg);
                let loops = LoopForest::new(&cfg, &dom);
                let depth: Vec<u32> = (0..func.blocks.len())
                    .map(|i| loops.depth(BlockId(i as u32)))
                    .collect();
                let fast = regalloc::dataflow_snapshot(&vf, &depth);
                let slow = regalloc::reference::snapshot(&vf, &depth);
                assert_eq!(
                    fast, slow,
                    "dataflow diverges on seed {seed}, {machine:?}, function {}",
                    func.name
                );
                funcs_checked += 1;
            }
        }
    }
    // The corpus must actually exercise the comparison; 200 seeds yield
    // a few hundred functions per machine.
    assert!(funcs_checked >= 400, "only {funcs_checked} functions checked");
}
