//! Determinism of batched function compilation.
//!
//! `brcc --jobs N` routes through `Experiment::jobs`, which fans
//! per-function register allocation and emission across worker threads.
//! The contract is byte-identical output at every jobs level: same text
//! words, same data segment, same entry point, same codegen statistics —
//! with the br-verify stage gates both off and on.

use br_core::{suite, Experiment, Machine, Scale};

#[test]
fn batched_compilation_is_byte_identical_across_jobs_levels() {
    for verify in [false, true] {
        let serial = Experiment {
            verify,
            jobs: 1,
            ..Experiment::new()
        };
        let batched = Experiment {
            verify,
            jobs: 4,
            ..Experiment::new()
        };
        for w in suite(Scale::Test) {
            for m in [Machine::Baseline, Machine::BranchReg] {
                let (p1, s1) = serial
                    .compile(&w.source, m)
                    .unwrap_or_else(|e| panic!("{} on {m:?} (jobs=1): {e}", w.name));
                let (p4, s4) = batched
                    .compile(&w.source, m)
                    .unwrap_or_else(|e| panic!("{} on {m:?} (jobs=4): {e}", w.name));
                let ctx = format!("{} on {m:?} (verify={verify})", w.name);
                assert_eq!(p1.code, p4.code, "text differs: {ctx}");
                assert_eq!(p1.data, p4.data, "data differs: {ctx}");
                assert_eq!(p1.entry, p4.entry, "entry differs: {ctx}");
                assert_eq!(s1, s4, "stats differ: {ctx}");
            }
        }
    }
}

#[test]
fn auto_jobs_matches_serial() {
    let serial = Experiment {
        verify: false,
        jobs: 1,
        ..Experiment::new()
    };
    let auto = Experiment {
        verify: false,
        jobs: 0, // auto-detect worker count
        ..Experiment::new()
    };
    let w = &suite(Scale::Test)[0];
    for m in [Machine::Baseline, Machine::BranchReg] {
        let (p1, _) = serial.compile(&w.source, m).expect("serial compiles");
        let (pa, _) = auto.compile(&w.source, m).expect("auto compiles");
        assert_eq!(p1.code, pa.code, "{} on {m:?}", w.name);
        assert_eq!(p1.data, pa.data, "{} on {m:?}", w.name);
    }
}
