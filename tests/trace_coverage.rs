//! Coverage sanity for the traced tier: on the Appendix I suite the
//! superblock engine should capture the bulk of dynamic execution
//! (otherwise the tier silently degrades into the threaded loop plus
//! dispatch overhead).

use br_core::{suite, Experiment, Machine, Scale};
use br_emu::{Emulator, ExecTier};

const FUEL: u64 = 1_000_000_000;

/// Tight-loop throughput per tier, for optimization work on the
/// dispatch engines (`--ignored --nocapture`; wall-clock, so not run in
/// CI).
#[test]
#[ignore]
fn micro_tier_throughput() {
    let src = r#"
int a[64];
int main() {
    int i; int j; int s;
    s = 0;
    for (i = 0; i < 20000; i = i + 1) {
        for (j = 0; j < 64; j = j + 1) {
            s = s + a[j] + i - j;
            if (s > 100000000) s = s - 100000000;
        }
        a[i - (i / 64) * 64] = s;
    }
    return s;
}
"#;
    let exp = Experiment::new();
    for machine in [Machine::Baseline, Machine::BranchReg] {
        let (prog, _) = exp.compile(src, machine).expect("compile");
        // Interleave tier reps so CPU-contention drift on a shared box
        // biases every tier equally instead of whichever ran last.
        let mut best = [f64::MIN; 3];
        let mut insts = 0;
        for _ in 0..9 {
            for (t, tier) in ExecTier::ALL.into_iter().enumerate() {
                let mut emu = Emulator::new(&prog).with_tier(tier);
                let t0 = std::time::Instant::now();
                emu.run(FUEL).expect("run");
                let dt = t0.elapsed().as_secs_f64();
                insts = emu.measurements().instructions;
                best[t] = best[t].max(insts as f64 / dt);
            }
        }
        for (t, tier) in ExecTier::ALL.into_iter().enumerate() {
            println!(
                "{machine:15} {tier:8}: {insts:>9} insts, {:>12.0} insts/sec",
                best[t]
            );
        }
    }
}

#[test]
fn traces_cover_most_suite_execution() {
    let exp = Experiment::new();
    let mut total = 0u64;
    let mut traced = 0u64;
    for w in suite(Scale::Test) {
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let (prog, _) = exp
                .compile(&w.source, machine)
                .unwrap_or_else(|e| panic!("{} on {machine}: {e}", w.name));
            let mut emu = Emulator::new(&prog).with_tier(ExecTier::Traced);
            emu.run(FUEL).unwrap_or_else(|e| panic!("{} on {machine}: {e}", w.name));
            let insts = emu.measurements().instructions;
            let in_trace = emu.traced_insts();
            println!(
                "{:28} {:9}: {:>9} insts, {:>9} in traces ({:>5.1}%)",
                w.name,
                machine.to_string(),
                insts,
                in_trace,
                100.0 * in_trace as f64 / insts.max(1) as f64
            );
            total += insts;
            traced += in_trace;
        }
    }
    let pct = 100.0 * traced as f64 / total.max(1) as f64;
    println!("suite: {total} insts, {traced} in traces ({pct:.1}%)");
    assert!(
        pct > 50.0,
        "trace coverage collapsed to {pct:.1}% — the traced tier is not earning its dispatch"
    );
}
