//! Coverage sanity for the traced tier: on the Appendix I suite the
//! superblock engine should capture the bulk of dynamic execution
//! (otherwise the tier silently degrades into the threaded loop plus
//! dispatch overhead).
//!
//! The tight-loop per-tier throughput probe that used to live here as an
//! `#[ignore]`d test is now `cargo run --release -p br-bench --bin perf
//! -- micro`.

use br_core::{suite, Experiment, Machine, Scale};
use br_emu::{Emulator, ExecTier};

const FUEL: u64 = 1_000_000_000;

#[test]
fn traces_cover_most_suite_execution() {
    let exp = Experiment::new();
    let mut total = 0u64;
    let mut traced = 0u64;
    for w in suite(Scale::Test) {
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let (prog, _) = exp
                .compile(&w.source, machine)
                .unwrap_or_else(|e| panic!("{} on {machine}: {e}", w.name));
            let mut emu = Emulator::new(&prog).with_tier(ExecTier::Traced);
            emu.run(FUEL).unwrap_or_else(|e| panic!("{} on {machine}: {e}", w.name));
            let insts = emu.measurements().instructions;
            let in_trace = emu.traced_insts();
            println!(
                "{:28} {:9}: {:>9} insts, {:>9} in traces ({:>5.1}%)",
                w.name,
                machine.to_string(),
                insts,
                in_trace,
                100.0 * in_trace as f64 / insts.max(1) as f64
            );
            total += insts;
            traced += in_trace;
        }
    }
    let pct = 100.0 * traced as f64 / total.max(1) as f64;
    println!("suite: {total} insts, {traced} in traces ({pct:.1}%)");
    assert!(
        pct > 50.0,
        "trace coverage collapsed to {pct:.1}% — the traced tier is not earning its dispatch"
    );
}
