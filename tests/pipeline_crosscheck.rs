//! Cross-checks for `br-pipeline`: the analytic delay tables are pinned
//! against hand-computed Figure 5/7 values for every depth from 2 to 8
//! stages, the Figure 5–8 stage diagrams must agree cycle-for-cycle with
//! those tables, and whole-run cycle estimates must be consistent with
//! the emulator's [`Measurements`] on a real workload.

use br_core::{by_name, Experiment, Machine, Scale};
use br_pipeline::{
    br_machine_cycles, compare, cond_delay, cond_trace, cycles, uncond_delay, uncond_trace,
    BranchScheme,
};

/// Figure 5: unconditional-transfer delay per scheme, hand-computed for
/// pipelines of 2..=8 stages. The jump's target is known after decode,
/// so a conventional machine refetches `N-1` deep; the delayed branch
/// hides one slot; the branch-register machine's prefetched target
/// streams in with no bubble at any depth.
#[test]
fn figure5_unconditional_delay_table() {
    let expect = [
        (BranchScheme::NoDelayed, [1, 2, 3, 4, 5, 6, 7]),
        (BranchScheme::Delayed, [0, 1, 2, 3, 4, 5, 6]),
        (BranchScheme::BranchRegisters, [0, 0, 0, 0, 0, 0, 0]),
    ];
    for (scheme, row) in expect {
        for (i, &want) in row.iter().enumerate() {
            let stages = i as u32 + 2;
            assert_eq!(
                uncond_delay(scheme, stages),
                want,
                "{} at {stages} stages",
                scheme.name()
            );
        }
    }
}

/// Figure 7: conditional-transfer delay per scheme for 2..=8 stages.
/// The condition resolves one stage later than a jump target, so the
/// branch-register machine pays `N-3` (saturating) instead of zero.
#[test]
fn figure7_conditional_delay_table() {
    let expect = [
        (BranchScheme::NoDelayed, [1, 2, 3, 4, 5, 6, 7]),
        (BranchScheme::Delayed, [0, 1, 2, 3, 4, 5, 6]),
        (BranchScheme::BranchRegisters, [0, 0, 1, 2, 3, 4, 5]),
    ];
    for (scheme, row) in expect {
        for (i, &want) in row.iter().enumerate() {
            let stages = i as u32 + 2;
            assert_eq!(
                cond_delay(scheme, stages),
                want,
                "{} at {stages} stages",
                scheme.name()
            );
        }
    }
}

/// The rendered Figure 5/7 stage diagrams and the analytic tables are
/// two views of one model: in the diagrams' 3-stage pipeline, the last
/// instruction drains `rows + 2 + delay` cycles after the first fetch.
#[test]
fn stage_diagrams_agree_with_the_delay_tables() {
    for scheme in BranchScheme::ALL {
        let t = uncond_trace(scheme);
        assert_eq!(
            t.cycles(),
            t.rows.len() + 2 + uncond_delay(scheme, 3) as usize,
            "unconditional diagram vs table for {}",
            scheme.name()
        );
        let t = cond_trace(scheme);
        assert_eq!(
            t.cycles(),
            t.rows.len() + 2 + cond_delay(scheme, 3) as usize,
            "conditional diagram vs table for {}",
            scheme.name()
        );
    }
}

/// Whole-run estimates on a real workload must be consistent with the
/// measurements they are derived from: the baseline total is exactly
/// instructions + per-transfer delays, the BR total decomposes into its
/// three published parts, and deeper pipelines never get cheaper.
#[test]
fn cycle_estimates_are_consistent_with_measurements() {
    let w = by_name("wc", Scale::Test).expect("wc workload");
    let exp = Experiment::new();
    let base = exp.run(&w.source, Machine::Baseline).expect("baseline run");
    let brm = exp.run(&w.source, Machine::BranchReg).expect("BR run");

    for stages in 2..=8u32 {
        let e = cycles(BranchScheme::Delayed, &base.meas, stages);
        assert_eq!(
            e.total,
            base.meas.instructions
                + base.meas.cond_transfers * cond_delay(BranchScheme::Delayed, stages) as u64
                + base.meas.uncond_transfers
                    * uncond_delay(BranchScheme::Delayed, stages) as u64,
            "baseline decomposition at {stages} stages"
        );
        assert_eq!(e.total, e.instructions + e.transfer_stalls + e.prefetch_stalls);
        assert_eq!(e.prefetch_stalls, 0, "baseline never prefetches");

        let b = br_machine_cycles(&brm.meas, stages);
        assert_eq!(b.total, b.instructions + b.transfer_stalls + b.prefetch_stalls);
        assert_eq!(b.instructions, brm.meas.instructions);
        assert_eq!(
            b.transfer_stalls,
            brm.meas.cond_transfers
                * cond_delay(BranchScheme::BranchRegisters, stages) as u64,
            "BR structural stalls are conditional-only at {stages} stages"
        );
    }

    // Monotonicity in depth, and the paper's headline direction: the BR
    // machine wins at every modelled depth on this workload.
    let mut prev_base = 0;
    let mut prev_br = 0;
    for stages in 2..=8u32 {
        let c = compare(&base.meas, &brm.meas, stages);
        assert!(c.baseline_cycles >= prev_base, "baseline monotone in depth");
        assert!(c.br_cycles >= prev_br, "BR monotone in depth");
        assert!(
            c.saving > 0.0,
            "BR machine must win on wc at {stages} stages: {c:?}"
        );
        assert!((c.saving - (1.0 - c.br_cycles as f64 / c.baseline_cycles as f64)).abs() < 1e-12);
        prev_base = c.baseline_cycles;
        prev_br = c.br_cycles;
    }
}
