//! Regression test for the `TraceHook` unbounded-growth fix: tracing a
//! long-running program with a small cap must keep memory bounded (the
//! kept prefix) while still counting every dropped event, and a capped
//! trace must never change what the program computes.

use br_core::{by_name, Experiment, Machine, Scale};
use br_emu::{Emulator, TraceHook, TRACE_HOOK_DEFAULT_CAP};

const FUEL: u64 = 1_000_000_000;

#[test]
fn capped_trace_bounds_memory_and_counts_drops() {
    let w = by_name("sieve", Scale::Test).expect("sieve workload");
    let exp = Experiment::new();
    for machine in [Machine::Baseline, Machine::BranchReg] {
        let (prog, _) = exp.compile(&w.source, machine).expect("compile");

        let mut fast = Emulator::new(&prog);
        let fast_exit = fast.run(FUEL).expect("fast run");
        let insts = fast.measurements().instructions;
        assert!(insts > 1_000, "sieve must be long enough to overflow the cap");

        let cap = 256;
        let mut emu = Emulator::new(&prog);
        let mut hook = TraceHook::with_cap(cap);
        let exit = emu.run_with_hook(FUEL, &mut hook).expect("traced run");

        // Observing never perturbs: same exit, same measurements.
        assert_eq!(exit, fast_exit, "exit under capped trace on {machine}");
        assert_eq!(fast.measurements(), emu.measurements());

        // Every stream respects the cap; the prefix is kept in order.
        assert!(hook.fetches.len() <= cap, "fetches capped on {machine}");
        assert!(hook.prefetches.len() <= cap);
        assert!(hook.retires.len() <= cap);
        assert!(hook.stores.len() <= cap);
        assert!(hook.truncated(), "a long run must truncate at cap {cap}");

        // Nothing vanishes silently: kept + dropped covers at least one
        // fetch and one retire per executed instruction.
        let kept = (hook.fetches.len() + hook.prefetches.len() + hook.retires.len()
            + hook.stores.len()) as u64;
        assert!(
            kept + hook.dropped >= 2 * insts,
            "kept {kept} + dropped {} events vs {insts} instructions on {machine}",
            hook.dropped
        );

        // The kept prefix is the *start* of the run: the first fetch is
        // the entry point, and retires are monotonically observed.
        assert_eq!(hook.fetches[0], prog.entry, "trace keeps the first events");
    }
}

#[test]
fn default_cap_leaves_short_runs_untruncated() {
    let w = by_name("wc", Scale::Test).expect("wc workload");
    let exp = Experiment::new();
    let (prog, _) = exp.compile(&w.source, Machine::BranchReg).expect("compile");
    let mut emu = Emulator::new(&prog);
    let mut hook = TraceHook::default();
    emu.run_with_hook(FUEL, &mut hook).expect("run");
    assert_eq!(hook.cap, TRACE_HOOK_DEFAULT_CAP);
    assert!(!hook.truncated(), "test-scale wc fits the default cap");
    assert_eq!(hook.dropped, 0);
    assert_eq!(
        hook.retires.len() as u64,
        emu.measurements().instructions,
        "untruncated trace holds every retire"
    );
}
