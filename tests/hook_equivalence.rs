//! Guards the hook-monomorphization refactor: the emulator's measured
//! counts must not depend on *how* the hook is dispatched. The full
//! Appendix I suite runs three ways on both machines — the hook-free
//! fast path (`Emulator::run`), a statically-dispatched counting hook,
//! and the same hook behind `&mut dyn ExecHook` — and every way must
//! produce identical exit values and [`Measurements`].

use br_core::{suite, Experiment, Machine, Scale};
use br_emu::{Emulator, ExecHook, NoHook};

const FUEL: u64 = 1_000_000_000;

#[derive(Default)]
struct CountingHook {
    fetches: u64,
    prefetches: u64,
    retires: u64,
    stores: u64,
}

impl ExecHook for CountingHook {
    fn fetch(&mut self, _addr: u32) {
        self.fetches += 1;
    }

    fn prefetch(&mut self, _addr: u32) {
        self.prefetches += 1;
    }

    fn retire(&mut self, _pc: u32, store: Option<(u32, i32)>) {
        self.retires += 1;
        if store.is_some() {
            self.stores += 1;
        }
    }
}

#[test]
fn suite_measurements_identical_with_and_without_hooks() {
    let exp = Experiment::new();
    for w in suite(Scale::Test) {
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let (prog, _) = exp
                .compile(&w.source, machine)
                .unwrap_or_else(|e| panic!("{} on {machine}: {e}", w.name));

            // Hook-free fast path.
            let mut fast = Emulator::new(&prog);
            let fast_exit = fast.run(FUEL).expect("fast run");

            // Statically-dispatched counting hook (monomorphized).
            let mut counted = Emulator::new(&prog);
            let mut hook = CountingHook::default();
            let counted_exit = counted.run_with_hook(FUEL, &mut hook).expect("hooked run");

            // The same hook through virtual dispatch (the dyn-compat path
            // the icache simulator and oracle use).
            let mut virt = Emulator::new(&prog);
            let mut dyn_hook = CountingHook::default();
            let dyn_ref: &mut dyn ExecHook = &mut dyn_hook;
            let virt_exit = virt.run_with_hook(FUEL, dyn_ref).expect("dyn hooked run");

            assert_eq!(fast_exit, counted_exit, "{} exit on {machine}", w.name);
            assert_eq!(fast_exit, virt_exit, "{} dyn exit on {machine}", w.name);
            assert_eq!(
                fast.measurements(),
                counted.measurements(),
                "{} measurements under counting hook on {machine}",
                w.name
            );
            assert_eq!(
                fast.measurements(),
                virt.measurements(),
                "{} measurements under dyn hook on {machine}",
                w.name
            );

            // The hook really observed the run: one retire per executed
            // instruction, and at least as many fetches as retires.
            let m = counted.measurements();
            assert_eq!(
                hook.retires, m.instructions,
                "{} retire count on {machine}",
                w.name
            );
            assert!(hook.fetches >= hook.retires, "{} fetches on {machine}", w.name);
            assert_eq!(hook.retires, dyn_hook.retires, "{} dyn retires", w.name);
            assert_eq!(hook.fetches, dyn_hook.fetches, "{} dyn fetches", w.name);
            assert_eq!(hook.stores, dyn_hook.stores, "{} dyn stores", w.name);
            if machine == Machine::BranchReg {
                assert_eq!(
                    hook.prefetches, m.addr_calcs,
                    "{} prefetch per address calculation on {machine}",
                    w.name
                );
            } else {
                assert_eq!(hook.prefetches, 0, "{} baseline prefetches", w.name);
            }

            // NoHook through the generic path still agrees (this is the
            // monomorphized no-op instantiation the fast path relies on).
            let mut nohook = Emulator::new(&prog);
            let nohook_exit = nohook.run_with_hook(FUEL, &mut NoHook).expect("nohook run");
            assert_eq!(fast_exit, nohook_exit, "{} NoHook exit on {machine}", w.name);
            assert_eq!(
                fast.measurements(),
                nohook.measurements(),
                "{} NoHook measurements on {machine}",
                w.name
            );
        }
    }
}
