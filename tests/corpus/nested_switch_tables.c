// Two switch jump tables in one function, with a counted loop between
// them whose exit/back-edge targets are hoisted into branch registers.
// Minimized (from torture seed 0x28efe333b266f103) shape that forced the
// br-verify protocol lint to attribute each indexed bload to its own
// table: with the tables conflated, the outer dispatch appears able to
// jump straight into the inner loop, bypassing the preheader that
// defines the hoisted branch registers.
int g0;

int f(int p) {
    int acc = 0;
    switch (p & 3) {
        case 0:
            acc = 1;
            break;
        case 1:
            acc = 2;
            break;
        case 2:
            for (int i = 0; i < 9; i++) {
                switch (i & 4) {
                    case 0:
                        acc = acc + 2;
                        break;
                    case 4:
                        acc = acc + 3;
                        break;
                }
            }
            break;
        case 3:
            acc = 5;
            break;
    }
    return acc;
}

int main() {
    int t = 0;
    for (int p = 0; p < 4; p++) t = t + f(p);
    g0 = t;
    return t & 255;
}
