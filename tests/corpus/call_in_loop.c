// Calls inside nested loops — stresses branch-register save/restore on
// the BR machine (paper Section 6) against the baseline's link register.
int g0;
int g1;

int helper(int a, int b) {
    int t = a;
    if (a > b) {
        t = b;
    } else {
        t = a + b;
    }
    g1 = g1 + t;
    return t;
}

int main() {
    int s = 0;
    for (int i = 0; i < 6; i++) {
        for (int j = 0; j < 4; j++) {
            s = s + helper(i, j);
            g0 = s;
        }
    }
    return s & 255;
}
