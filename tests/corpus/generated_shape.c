// A program in the exact shape the torture generator emits (globals,
// masked array stores, unique loop counters, call DAG, byte-masked
// return) — pins the generator's source dialect as a regression.
int g0;
int g1;
int g2;
int ga[8];

int f2(int p0) {
    int v0 = 3;
    for (int L4 = 0; L4 < 5; L4++) {
        v0 = v0 + (p0 ^ L4);
        ga[(v0) & 7] = p0;
    }
    return (v0) & 255;
}

int f1(int p0, int p1) {
    int v0 = 3;
    int v1 = 6;
    int L2 = 0;
    while (L2 < 4) {
        switch (((v0 + L2) & 3)) {
            case 0:
                v0 = v0 + f2(p0);
                break;
            case 1:
                g1 = (v0 - p1);
                break;
            case 2:
                v1 = (v1 * 5) >> 2;
                break;
            case 3:
                ga[(p0) & 7] = v1;
                break;
        }
        L2 = L2 + 1;
    }
    return ((v0 + v1)) & 255;
}

int main() {
    int v0 = 3;
    int v1 = 6;
    for (int L0 = 0; L0 < 6; L0++) {
        if (v0 <= (v1 * 2)) {
            v0 = v0 + f1(L0, v1);
        } else {
            g0 = (g0 + 1);
        }
        g2 = (g2 ^ v0);
    }
    return ((v0 ^ g2)) & 255;
}
