// Calls inside a loop preheader that also computes hoisted branch-
// register targets (the shape of the `compact` workload's main). The
// calls execute before the hoisted bcalcs at the end of the preheader,
// so caller-saved branch registers are legitimately used for the
// call-free loop that follows — a clobber check that treats the whole
// preheader as "inside the loop" would reject this valid code.
int g0;
int bump(int x) { g0 = g0 + x; return g0; }
int dip(int x) { g0 = g0 - x; return g0; }

int main() {
    int a = bump(7);
    int b = dip(2);
    int s = 0;
    for (int i = 0; i < 10; i++) {
        if (i & 1) { s = s + a; } else { s = s + b; }
    }
    return (s + g0) & 255;
}
