// Wrapping arithmetic, masked shifts, and guarded division — the exact
// operator semantics the interpreter and both emulators must share.
int g0;

int main() {
    int big = 2147483647;
    int neg = -2147483647 - 1;
    int a = big + 1;            /* wraps to INT_MIN */
    int b = neg - 1;            /* wraps to INT_MAX */
    int c = (big * 3) ^ (neg >> 3);
    int d = (a >> 1) + (b << 2);
    int e = 0;
    for (int i = 1; i < 9; i++) {
        e = e + (c / ((i & 7) + 1)) % (i + 1);
    }
    g0 = a ^ b ^ c ^ d ^ e;
    return (a + b + c + d + e) & 255;
}
