// Dense switch dispatch inside a loop — exercises jump tables on both
// machines and the indirect-transfer paths of the emulators.
int g0;
int ga[8];

int main() {
    int acc = 0;
    for (int i = 0; i < 24; i++) {
        switch (i & 3) {
            case 0:
                acc = acc + 1;
                break;
            case 1:
                acc = acc + i;
                ga[i & 7] = acc;
                break;
            case 2:
                g0 = g0 + acc;
                break;
            case 3:
                acc = acc - 2;
                break;
        }
    }
    return (acc + g0) & 255;
}
