// Global array read back through its own stores — catches any machine
// difference in store/load ordering within the data segment.
int ga[8];
int g0;

int step(int k) {
    ga[(k) & 7] = ga[(k + 1) & 7] + k;
    return ga[(k) & 7];
}

int main() {
    for (int i = 0; i < 8; i++) {
        ga[i & 7] = i * i;
    }
    int s = 0;
    for (int r = 0; r < 3; r++) {
        for (int i = 0; i < 8; i++) {
            s = s + step(i + r);
        }
    }
    g0 = s;
    return s & 255;
}
