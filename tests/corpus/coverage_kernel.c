/* Coverage fixture: keeps the bitwise-or encoding live in the corpus.
 * No Appendix I program executes a plain `|` (address formation uses
 * the separate `orlo` encoding), so the ISA-coverage gate needs this
 * kernel; `srl` is unreachable from MiniC entirely and is covered by
 * br-prof's hand-built IR kernel instead. */
int g0;
int g1;

int mix(int a, int b) {
    return (a | b) ^ (a & b);
}

int main() {
    int acc = 0;
    for (int i = 1; i < 64; i = i << 1) {
        acc = acc | i;
        g0 = g0 | (acc & 21);
        g1 = mix(acc, i + 3);
    }
    return (acc + g0 + g1) % 256;
}
