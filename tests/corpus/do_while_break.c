// do-while, break, and deeply nested conditionals — irregular control
// flow that the structured generator cannot produce on its own.
int g0;
int ga[8];

int main() {
    int i = 0;
    int s = 0;
    do {
        i = i + 1;
        if (i > 5) {
            if (s > 40) {
                break;
            } else {
                s = s + 10;
            }
        }
        s = s + i;
        ga[(s) & 7] = i;
    } while (i < 20);
    g0 = s;
    return (s + i) & 255;
}
