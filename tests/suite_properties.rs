//! Whole-suite integration properties: the paper's headline effects must
//! hold over the Appendix I programs at test scale.

use br_core::{pipeline, suite, BrOptions, Experiment, Scale};

#[test]
fn table1_shape_holds_over_the_suite() {
    let report = Experiment::new().run_suite(Scale::Test).expect("suite");
    let t = report.table1();
    // Who wins and by roughly what factor (paper: -6.8% / +2.0%).
    assert!(
        t.inst_diff_pct < -3.0 && t.inst_diff_pct > -12.0,
        "instruction diff {:.2}% out of band",
        t.inst_diff_pct
    );
    assert!(
        t.refs_diff_pct > 0.0 && t.refs_diff_pct < 10.0,
        "data-ref diff {:.2}% out of band",
        t.refs_diff_pct
    );
}

#[test]
fn transfer_fraction_is_paper_like() {
    let report = Experiment::new().run_suite(Scale::Test).expect("suite");
    let (base, _) = report.totals();
    let f = base.transfer_fraction();
    // Paper: ~14% of baseline instructions are transfers.
    assert!(f > 0.08 && f < 0.25, "transfer fraction {f:.3}");
}

#[test]
fn cycle_savings_match_paper_ordering() {
    let report = Experiment::new().run_suite(Scale::Test).expect("suite");
    let (b, r) = report.totals();
    let mut prev = 0.0;
    for stages in 3..=6 {
        let c = pipeline::compare(&b, &r, stages);
        assert!(c.saving > 0.0, "BR machine must win at {stages} stages");
        assert!(
            c.saving >= prev,
            "savings must grow with pipeline depth ({stages})"
        );
        prev = c.saving;
    }
}

#[test]
fn most_transfers_are_fully_prefetched() {
    let report = Experiment::new().run_suite(Scale::Test).expect("suite");
    let (_, brm) = report.totals();
    let delayed = brm.frac_transfers_within(2);
    // Paper: 13.86%. Accept a band around it.
    assert!(
        delayed > 0.02 && delayed < 0.30,
        "delayed-transfer fraction {delayed:.4}"
    );
}

#[test]
fn fewer_branch_registers_hurt_monotonically_in_aggregate() {
    // With 2 usable branch registers (b0/b7 only → no allocatable pool)
    // the BR machine must execute more instructions than with 8.
    let mut insts = Vec::new();
    for n in [2u8, 4, 8] {
        let exp = Experiment {
            br_opts: BrOptions {
                num_bregs: n,
                ..Default::default()
            },
            ..Experiment::new()
        };
        let mut total = 0u64;
        for w in suite(Scale::Test) {
            // run_comparison also cross-checks the exit value against the
            // baseline machine (regression guard for the scratch-register
            // collision bug found at num_bregs = 4).
            let cmp = exp.run_comparison(w.name, &w.source).expect(w.name);
            total += cmp.brmach.meas.instructions;
        }
        insts.push(total);
    }
    assert!(
        insts[0] > insts[2],
        "2 bregs {} should exceed 8 bregs {}",
        insts[0],
        insts[2]
    );
    assert!(insts[1] >= insts[2], "4 bregs at least 8-breg count");
}

#[test]
fn exit_codes_stable_across_scales_where_expected() {
    // sieve's prime count mod 256 is scale-dependent, but each scale must
    // be internally consistent between machines (covered elsewhere); here
    // just ensure Paper-scale sources still compile.
    for w in suite(Scale::Paper) {
        br_frontend::compile(&w.source)
            .unwrap_or_else(|e| panic!("{} (paper scale) does not compile: {e}", w.name));
    }
}
