#!/usr/bin/env sh
# Regenerate the paper-scale golden outputs archived under results/.
#
#   scripts/regen_results.sh            rewrite results/*.txt in place
#   scripts/regen_results.sh OUTDIR     write into OUTDIR instead
#   scripts/regen_results.sh --serve    re-record the BENCH_serve.json
#                                       current section (machine-dependent
#                                       timings, so never part of the
#                                       byte-identical golden check)
#   scripts/regen_results.sh --tv       regenerate only results/tv_report.json
#                                       (the translation-validation +
#                                       static-cost report, see TV.md)
#
# The compile→emulate pipeline is deterministic, so rerunning this
# script on an unchanged tree must reproduce every file byte-identical
# (scripts/ci.sh enforces exactly that).
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--serve" ]; then
    echo "==> br-load --bench (re-recording BENCH_serve.json current section)"
    cargo run --release -p br-serve --bin br-load -- \
        --bench --requests 200 --threads 4 --record current
    exit 0
fi

if [ "${1:-}" = "--tv" ]; then
    echo "==> br-tv (regenerating results/tv_report.json)"
    cargo run --release -p br-bench --bin br-tv -- \
        --paper --jobs 4 --check --out results/tv_report.json
    exit 0
fi

outdir="${1:-results}"
mkdir -p "$outdir"

cargo build --release -p br-bench -p br-obs

for bin in table1 control_stats cycles fig2_fig4 fig5_fig7 fig6_fig8 \
           fig9_distance br_sweep cache_study; do
    echo "==> $bin"
    ./target/release/"$bin" --paper > "$outdir/$bin.txt"
done

# Paper-scale suite profile (suite + torture corpus + coverage kernel).
# No --times, so the JSON is byte-deterministic at any --jobs level.
echo "==> br-prof"
./target/release/br-prof --paper --out "$outdir/profile_suite.json"

# Translation-validation + static-cost report (TV.md). --check keeps
# the gate live even during regen; the JSON is byte-deterministic at
# any --jobs level.
echo "==> br-tv"
./target/release/br-tv --paper --jobs 4 --check --out "$outdir/tv_report.json"
