#!/usr/bin/env sh
# CI entry point: tier-1 verification plus a fixed-seed torture smoke
# run. Everything is offline and deterministic; a clean exit means the
# build, the full test suite, and a 200-iteration differential fuzz run
# (interpreter vs baseline machine vs branch-register machine) all
# passed. See TORTURE.md for what the torture harness checks.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> torture smoke run (seed 42, 200 iterations)"
cargo run --release -p br-torture -- --seed 42 --iters 200

echo "==> fault-injection demo (typed errors, no panics)"
cargo run --release -p br-torture -- --demo-fault

echo "CI OK"
