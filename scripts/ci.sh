#!/usr/bin/env sh
# CI entry point: tier-1 verification plus a fixed-seed torture smoke
# run. Everything is offline and deterministic; a clean exit means the
# build, the lint gate, the full test suite, a 200-iteration
# differential fuzz run (interpreter vs baseline machine vs
# branch-register machine, with the br-verify stage gates and the
# static translation-validation oracle enabled), a 500-seed
# execution-tier differential (interp vs threaded vs traced must be
# observationally identical), the RV32I conformance gate plus a
# 500-seed foreign-ISA ingest differential (reference interpreter vs
# both translated machines), the per-tier emulator perf gate, the
# ISA-coverage gate
# (br-prof --check-coverage), the br-tv translation-validation +
# static-cost gate, and the byte-identical golden regeneration all
# passed. See TORTURE.md for what the torture harness checks,
# VERIFY.md for the per-stage static invariants, TV.md for the
# whole-program layer, and INGEST.md for the foreign-ISA path.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> observability & timing-model cross-checks (named, for log visibility)"
cargo test -q --test profile_equivalence --test trace_hook_cap \
    --test icache_properties --test pipeline_crosscheck
cargo test -q -p br-torture --test replay_properties

echo "==> torture smoke run (seed 42, 200 iterations, verify gates + tv oracle on, 4 jobs, 60s/case budget)"
cargo run --release -p br-torture -- --seed 42 --iters 200 --verify --tv --jobs 4 --budget-ms 60000

echo "==> fault-injection demo (typed errors, no panics)"
cargo run --release -p br-torture -- --demo-fault

echo "==> execution-tier differential smoke (500 seeds: interp vs threaded vs traced)"
cargo run --release -p br-torture -- --seed 7 --iters 500 --tiers --jobs 4 --budget-ms 60000

echo "==> RV32I conformance gate (every supported encoding executes and agrees three ways)"
cargo test -q -p br-ingest --test conformance

echo "==> RV32I ingest differential smoke (500 seeds: reference vs baseline vs branch-register)"
cargo run --release -p br-torture -- --rv32 --seed 11 --iters 500 --jobs 4

echo "==> emulator perf bench + per-tier regression gate (fail below 0.5x recorded)"
cargo run --release -p br-bench --bin perf -- --reps 2 --out target/BENCH_emulator_ci.json \
    --baseline BENCH_emulator.json --check 0.5

echo "==> compile-throughput bench + regression gate (fail below 0.8x baseline)"
cargo run --release -p br-bench --bin perf -- compile --paper --reps 3 \
    --out target/BENCH_compiler_ci.json --check 0.8

echo "==> ISA-coverage gate (every legal encoding of both machines executes)"
cargo run --release -p br-obs --bin br-prof -- --jobs 4 --check-coverage

echo "==> translation-validation + static-cost gate (br-tv --check, test scale)"
cargo run --release -p br-bench --bin br-tv -- --jobs 4 --check --out target/tv_report_ci.json

echo "==> br-explore smoke (small matrix: replayed stats byte-identical to live hooks)"
cargo run --release -p br-bench --bin br-explore -- --smoke --jobs 4

echo "==> record/replay sweep bench + speedup gate (fail below 10x naive per-point emulation)"
cargo run --release -p br-bench --bin br-explore -- --bench --jobs 4 \
    --out target/BENCH_explore_ci.json --check 10

echo "==> br-serve chaos smoke (real daemon, ephemeral port, panic isolation, graceful drain)"
cargo build --release -p br-serve
port_file="target/br_serve_ci_port"
rm -f "$port_file"
./target/release/br-serve --addr 127.0.0.1:0 --chaos --port-file "$port_file" &
serve_pid=$!
i=0
while [ ! -f "$port_file" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "br-serve never wrote its port file"
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
serve_addr="$(cat "$port_file")"
./target/release/br-load --addr "$serve_addr" --smoke --chaos
./target/release/br-load --addr "$serve_addr" --shutdown
wait "$serve_pid"

echo "==> br-serve bench + regression gates (fail below 0.3x recorded throughput or above 10x recorded p99)"
cargo run --release -p br-serve --bin br-load -- --bench --requests 200 --threads 4 \
    --out target/BENCH_serve_ci.json --record current \
    --baseline BENCH_serve.json --check 0.3 --check-p99 10

echo "==> results goldens (txt + profile JSON) regenerate byte-identical"
regen_dir="target/results_regen"
rm -rf "$regen_dir"
sh scripts/regen_results.sh "$regen_dir"
for f in results/*.txt results/profile_suite.json results/tv_report.json \
         results/explore_pareto.json; do
    if ! diff -u "$f" "$regen_dir/$(basename "$f")"; then
        echo "GOLDEN DRIFT: $f no longer regenerates byte-identical"
        exit 1
    fi
done

echo "CI OK"
