//! Full suite report: run all nineteen Appendix I programs on both
//! machines and print the Table I comparison plus the headline cycle
//! savings.
//!
//! ```text
//! cargo run --release --example workload_report [--paper]
//! ```

use br_core::{pipeline, Experiment, Scale};

fn main() -> Result<(), br_core::Error> {
    let scale = if std::env::args().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Test
    };
    let exp = Experiment::new();
    let report = exp.run_suite(scale)?;

    println!(
        "{:<12} {:>6} {:>14} {:>14} {:>8}",
        "program", "exit", "base insts", "br insts", "diff"
    );
    for r in &report.rows {
        println!(
            "{:<12} {:>6} {:>14} {:>14} {:>7.2}%",
            r.name,
            r.baseline.exit,
            r.baseline.meas.instructions,
            r.brmach.meas.instructions,
            (r.brmach.meas.instructions as f64 - r.baseline.meas.instructions as f64)
                / r.baseline.meas.instructions as f64
                * 100.0
        );
    }
    let t = report.table1();
    println!();
    println!(
        "Table I totals: instructions {:+.2}% (paper -6.8%), data refs {:+.2}% (paper +2.0%)",
        t.inst_diff_pct, t.refs_diff_pct
    );
    let (b, r) = report.totals();
    for stages in [3, 4] {
        let c = pipeline::compare(&b, &r, stages);
        println!(
            "{stages}-stage pipeline: {:.1}% fewer cycles (paper: {})",
            c.saving * 100.0,
            if stages == 3 { "10.6%" } else { "12.8%" }
        );
    }
    Ok(())
}
