//! Quickstart: compile the paper's Figure 2 `strlen` for both machines,
//! show the generated code in RTL notation (Figures 3 and 4), run both,
//! and compare the dynamic counts.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use br_core::{Experiment, Machine};
use br_workloads::strlen_example;

fn main() -> Result<(), br_core::Error> {
    let src = strlen_example();
    println!("=== Figure 2: the C function ===");
    println!("{src}");

    let exp = Experiment::new();

    println!("=== Figure 3: baseline machine (delayed branches) ===");
    let (base_prog, base_stats) = exp.compile(&src, Machine::Baseline)?;
    println!("{}", base_prog.listing());
    println!(
        "(static: {} instructions; {} delay slots filled, {} left as noops)",
        base_prog.static_inst_count(),
        base_stats.slots_filled,
        base_stats.slots_noop
    );
    println!();

    println!("=== Figure 4: branch-register machine ===");
    let (br_prog, br_stats) = exp.compile(&src, Machine::BranchReg)?;
    println!("{}", br_prog.listing());
    println!(
        "(static: {} instructions; {} hoisted address calcs, {} useful carriers, {} noop carriers)",
        br_prog.static_inst_count(),
        br_stats.hoisted_calcs,
        br_stats.carriers_useful,
        br_stats.carriers_noop
    );
    println!();

    let cmp = exp.run_comparison("strlen", &src)?;
    println!("=== dynamic comparison ===");
    println!("both machines return {}", cmp.baseline.exit);
    println!(
        "baseline:        {:>6} instructions, {:>4} data refs, {:>4} transfers",
        cmp.baseline.meas.instructions, cmp.baseline.meas.data_refs, cmp.baseline.meas.transfers
    );
    println!(
        "branch register: {:>6} instructions, {:>4} data refs, {:>4} transfers",
        cmp.brmach.meas.instructions, cmp.brmach.meas.data_refs, cmp.brmach.meas.transfers
    );
    println!(
        "instruction change: {:+.1}% (the paper's whole-suite figure is -6.8%)",
        (cmp.brmach.meas.instructions as f64 - cmp.baseline.meas.instructions as f64)
            / cmp.baseline.meas.instructions as f64
            * 100.0
    );
    Ok(())
}
