//! Cache prefetch demo (Section 8): run one workload through the
//! instruction-cache simulator with and without branch-register
//! prefetching and compare fetch stalls and pollution.
//!
//! ```text
//! cargo run --example cache_prefetch [workload]
//! ```

use br_core::{by_name, CacheConfig, Experiment, Machine, Scale};

fn main() -> Result<(), br_core::Error> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "puzzle".to_string());
    let w = by_name(&name, Scale::Test)
        .unwrap_or_else(|| panic!("unknown workload '{name}'"));
    let exp = Experiment::new();

    // Use a deliberately tiny cache so misses matter.
    let small = CacheConfig {
        sets: 16,
        assoc: 2,
        line_words: 4,
        miss_penalty: 8,
        prefetch_queue: 8,
        prefetch: true,
    };
    println!(
        "workload {} on a {}-byte, {}-way cache ({}-cycle miss penalty)",
        w.name,
        small.capacity(),
        small.assoc,
        small.miss_penalty
    );
    println!();

    let (_, base) = exp.run_with_cache(&w.source, Machine::Baseline, small)?;
    let (_, off) = exp.run_with_cache(
        &w.source,
        Machine::BranchReg,
        CacheConfig {
            prefetch: false,
            ..small
        },
    )?;
    let (_, on) = exp.run_with_cache(&w.source, Machine::BranchReg, small)?;

    println!(
        "{:<26} {:>10} {:>10} {:>12} {:>10}",
        "configuration", "fetches", "misses", "stall cyc", "pollution"
    );
    for (label, s) in [
        ("baseline machine", base),
        ("br machine, no prefetch", off),
        ("br machine, prefetch", on),
    ] {
        println!(
            "{:<26} {:>10} {:>10} {:>12} {:>10}",
            label, s.fetches, s.misses, s.stall_cycles, s.pollution
        );
    }
    println!();
    println!(
        "prefetching hid {} full misses and shortened {} more; \
         {} prefetched lines were evicted unused",
        on.prefetch_hits, on.late_prefetch_hits, on.pollution
    );
    Ok(())
}
