//! Pipeline explorer: sweep pipeline depth and watch the branch-register
//! machine's advantage grow (Section 6/7), on a workload of your choice.
//!
//! ```text
//! cargo run --example pipeline_explorer [workload]
//! ```

use br_core::{by_name, pipeline, Experiment, Scale};

fn main() -> Result<(), br_core::Error> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sieve".to_string());
    let w = by_name(&name, Scale::Test)
        .unwrap_or_else(|| panic!("unknown workload '{name}' (try sieve, wc, grep, ...)"));

    let exp = Experiment::new();
    let cmp = exp.run_comparison(w.name, &w.source)?;
    println!(
        "workload: {} — {} (exit {})",
        w.name, w.description, cmp.baseline.exit
    );
    println!(
        "baseline {} instructions / branch-register {}",
        cmp.baseline.meas.instructions, cmp.brmach.meas.instructions
    );
    println!();
    println!("{:>6} {:>14} {:>14} {:>9}", "stages", "baseline cyc", "br cyc", "saving");
    for stages in 3..=8 {
        let c = pipeline::compare(&cmp.baseline.meas, &cmp.brmach.meas, stages);
        println!(
            "{:>6} {:>14} {:>14} {:>8.2}%",
            stages,
            c.baseline_cycles,
            c.br_cycles,
            c.saving * 100.0
        );
    }
    println!();
    println!("per-transfer delays at 3 stages (Figures 5/7):");
    for s in pipeline::BranchScheme::ALL {
        println!(
            "  {:<20} uncond: {} cycles, cond: {} cycles",
            s.name(),
            pipeline::uncond_delay(s, 3),
            pipeline::cond_delay(s, 3),
        );
    }
    println!();
    println!(
        "transfers whose address calc was <2 instructions away: {:.2}% (paper: 13.86%)",
        cmp.brmach.meas.frac_transfers_within(2) * 100.0
    );
    Ok(())
}
