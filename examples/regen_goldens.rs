//! Regenerate the `tests/workload_goldens.rs` table after an intentional
//! workload or input-generation change:
//!
//! ```sh
//! cargo run --release --example regen_goldens
//! ```
//!
//! Prints the `GOLDENS` array with exit values cross-checked between the
//! baseline and BR machines (the run aborts on any disagreement).

use br_core::{suite, Experiment, Scale};

fn main() {
    let exp = Experiment::new();
    println!("const GOLDENS: &[(&str, i32)] = &[");
    for w in suite(Scale::Test) {
        let cmp = exp
            .run_comparison(w.name, &w.source)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        println!("    (\"{}\", {}),", w.name, cmp.baseline.exit);
    }
    println!("];");
}
