//! `brcc` — the MiniC compiler/runner driver.
//!
//! ```text
//! brcc [options] <file.mc | workload-name>
//!
//!   --machine base|br     target machine (default: br)
//!   --emit asm            print the RTL listing instead of running
//!   --emit ir             print the optimized IR
//!   --compare             run on both machines and compare counts
//!   --stats               print dynamic measurements after running
//!   --bregs N             number of branch registers (2..=8)
//!   --no-hoist            disable branch-target hoisting
//!   --fused-compare       Section 9 fast-compare variant
//!   --fuel N              instruction budget (default 4e9)
//!   --jobs N              worker threads for batched function
//!                         compilation (0 = auto; default 1 = serial;
//!                         output is byte-identical at any level)
//!   --verify/--no-verify  force the br-verify stage gates on/off
//!                         (default: on in debug builds only)
//! ```
//!
//! The input is a path to a MiniC source file, or the name of one of the
//! Appendix I workloads (e.g. `brcc --compare wc`).

use std::process::ExitCode;

use br_core::{BrOptions, Experiment, Machine, Scale};

struct Args {
    input: Option<String>,
    machine: Machine,
    emit: Option<String>,
    compare: bool,
    stats: bool,
    opts: BrOptions,
    fuel: u64,
    jobs: usize,
    verify: Option<bool>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        machine: Machine::BranchReg,
        emit: None,
        compare: false,
        stats: false,
        opts: BrOptions::default(),
        fuel: 4_000_000_000,
        jobs: 1,
        verify: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machine" => {
                args.machine = match it.next().as_deref() {
                    Some("base") | Some("baseline") => Machine::Baseline,
                    Some("br") | Some("branch-register") => Machine::BranchReg,
                    other => return Err(format!("bad --machine {other:?}")),
                }
            }
            "--emit" => args.emit = it.next(),
            "--compare" => args.compare = true,
            "--stats" => args.stats = true,
            "--bregs" => {
                args.opts.num_bregs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --bregs")?;
            }
            "--no-hoist" => args.opts.hoisting = false,
            "--verify" => args.verify = Some(true),
            "--no-verify" => args.verify = Some(false),
            "--fused-compare" => args.opts.fused_compare = true,
            "--fuel" => {
                args.fuel = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --fuel")?;
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --jobs")?;
            }
            "--help" | "-h" => return Err(String::new()),
            other if !other.starts_with('-') => args.input = Some(other.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if args.input.is_none() {
        return Err("no input file or workload name".to_string());
    }
    Ok(args)
}

fn load_source(input: &str) -> Result<String, String> {
    if input.ends_with(".mc") || input.contains('/') {
        std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))
    } else if let Some(w) = br_core::by_name(input, Scale::Test) {
        Ok(w.source)
    } else {
        std::fs::read_to_string(input).map_err(|e| {
            format!("'{input}' is neither a readable file nor a known workload: {e}")
        })
    }
}

fn print_meas(label: &str, m: &br_core::Measurements) {
    println!(
        "{label}: {} instructions, {} data refs, {} transfers ({} cond, {:.1}% of insts), {} noops",
        m.instructions,
        m.data_refs,
        m.transfers,
        m.cond_transfers,
        m.transfer_fraction() * 100.0,
        m.noops
    );
}

fn real_main() -> Result<(), String> {
    let args = parse_args().inspect_err(|e| {
        if e.is_empty() {
            usage();
            std::process::exit(0);
        }
    })?;
    let src = load_source(args.input.as_deref().unwrap())?;
    let mut exp = Experiment {
        br_opts: args.opts,
        fuel: args.fuel,
        jobs: args.jobs,
        ..Experiment::new()
    };
    if let Some(v) = args.verify {
        exp.verify = v;
    }

    if let Some(kind) = &args.emit {
        match kind.as_str() {
            "ir" => {
                let module = br_frontend::compile(&src).map_err(|e| e.to_string())?;
                print!("{module}");
            }
            "asm" => {
                let (prog, stats) = exp
                    .compile(&src, args.machine)
                    .map_err(|e| e.to_string())?;
                print!("{}", prog.listing());
                eprintln!(
                    "({} static instructions; stats: {stats:?})",
                    prog.static_inst_count()
                );
            }
            other => return Err(format!("unknown --emit {other}")),
        }
        return Ok(());
    }

    if args.compare {
        let cmp = exp
            .run_comparison("input", &src)
            .map_err(|e| e.to_string())?;
        println!("exit value: {}", cmp.baseline.exit);
        print_meas("baseline       ", &cmp.baseline.meas);
        print_meas("branch-register", &cmp.brmach.meas);
        let d = (cmp.brmach.meas.instructions as f64 - cmp.baseline.meas.instructions as f64)
            / cmp.baseline.meas.instructions as f64
            * 100.0;
        println!("instruction change: {d:+.2}%");
        return Ok(());
    }

    let run = exp.run(&src, args.machine).map_err(|e| e.to_string())?;
    println!("exit value: {}", run.exit);
    if args.stats {
        print_meas(args.machine.name(), &run.meas);
        println!("static: {} instructions, codegen {:#?}", run.static_insts, run.stats);
    }
    Ok(())
}

fn usage() {
    eprintln!(
        "usage: brcc [--machine base|br] [--emit asm|ir] [--compare] [--stats]\n\
         \t[--bregs N] [--no-hoist] [--fused-compare] [--fuel N] [--jobs N]\n\
         \t[--verify|--no-verify] <file.mc | workload>"
    );
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("brcc: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}
