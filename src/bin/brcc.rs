//! `brcc` — the MiniC compiler/runner driver.
//!
//! ```text
//! brcc [options] <file.mc | workload-name>
//!
//!   --machine base|br     target machine (default: br)
//!   --emit asm            print the RTL listing instead of running
//!   --emit ir             print the optimized IR
//!   --compare             run on both machines and compare counts
//!   --stats               print dynamic measurements after running
//!   --bregs N             number of branch registers (2..=8)
//!   --no-hoist            disable branch-target hoisting
//!   --fused-compare       Section 9 fast-compare variant
//!   --fuel N              instruction budget (default 4e9)
//!   --jobs N              worker threads for batched function
//!                         compilation (0 = auto; default 1 = serial;
//!                         output is byte-identical at any level)
//!   --verify/--no-verify  force the br-verify stage gates on/off
//!                         (default: on in debug builds only)
//!   --profile FILE        run under the br-obs profiler and write the
//!                         JSON report (opcode histogram, hot blocks,
//!                         branch-register stats, compile metrics) here
//! ```
//!
//! The input is a path to a MiniC source file, or the name of one of the
//! Appendix I workloads (e.g. `brcc --compare wc`).

use std::process::ExitCode;

use br_core::{BrOptions, Experiment, Machine, Scale};

struct Args {
    input: Option<String>,
    machine: Machine,
    emit: Option<String>,
    compare: bool,
    stats: bool,
    opts: BrOptions,
    fuel: u64,
    jobs: usize,
    verify: Option<bool>,
    profile: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        machine: Machine::BranchReg,
        emit: None,
        compare: false,
        stats: false,
        opts: BrOptions::default(),
        fuel: 4_000_000_000,
        jobs: 1,
        verify: None,
        profile: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machine" => {
                args.machine = match it.next().as_deref() {
                    Some("base") | Some("baseline") => Machine::Baseline,
                    Some("br") | Some("branch-register") => Machine::BranchReg,
                    other => return Err(format!("bad --machine {other:?}")),
                }
            }
            "--emit" => args.emit = it.next(),
            "--compare" => args.compare = true,
            "--stats" => args.stats = true,
            "--bregs" => {
                args.opts.num_bregs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --bregs")?;
            }
            "--no-hoist" => args.opts.hoisting = false,
            "--verify" => args.verify = Some(true),
            "--no-verify" => args.verify = Some(false),
            "--fused-compare" => args.opts.fused_compare = true,
            "--fuel" => {
                args.fuel = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --fuel")?;
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --jobs")?;
            }
            "--profile" => {
                args.profile = Some(it.next().ok_or("--profile needs a file path")?);
            }
            "--help" | "-h" => return Err(String::new()),
            other if !other.starts_with('-') => args.input = Some(other.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if args.input.is_none() {
        return Err("no input file or workload name".to_string());
    }
    Ok(args)
}

fn load_source(input: &str) -> Result<String, String> {
    if input.ends_with(".mc") || input.contains('/') {
        std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))
    } else if let Some(w) = br_core::by_name(input, Scale::Test) {
        Ok(w.source)
    } else {
        std::fs::read_to_string(input).map_err(|e| {
            format!("'{input}' is neither a readable file nor a known workload: {e}")
        })
    }
}

fn print_meas(label: &str, m: &br_core::Measurements) {
    println!(
        "{label}: {} instructions, {} data refs, {} transfers ({} cond, {:.1}% of insts), {} noops",
        m.instructions,
        m.data_refs,
        m.transfers,
        m.cond_transfers,
        m.transfer_fraction() * 100.0,
        m.noops
    );
}

/// Compile (metered) and run one machine under the br-obs profiler,
/// appending the profile rows to `report`.
fn profiled_run(
    exp: &Experiment,
    module: &br_ir::Module,
    machine: Machine,
    report: &mut br_obs::Report,
) -> Result<br_core::RunResult, String> {
    let (prog, stats, metrics) = exp
        .compile_module_metered(module, machine)
        .map_err(|e| e.to_string())?;
    let mut hook = br_obs::ProfileHook::new(&prog);
    let mut emu = br_emu::Emulator::new(&prog);
    let exit = emu
        .run_with_hook(exp.fuel, &mut hook)
        .map_err(|e| e.to_string())?;
    let meas = emu.measurements().clone();
    report.programs.push(hook.finish("input", &meas));
    report.compiles.push(br_obs::CompileProfile {
        name: "input".to_string(),
        machine,
        metrics,
        stats,
    });
    Ok(br_core::RunResult {
        exit,
        meas,
        stats,
        static_insts: prog.static_inst_count(),
    })
}

fn real_main() -> Result<(), String> {
    let args = parse_args().inspect_err(|e| {
        if e.is_empty() {
            usage();
            std::process::exit(0);
        }
    })?;
    let src = load_source(args.input.as_deref().unwrap())?;
    let mut exp = Experiment {
        br_opts: args.opts,
        fuel: args.fuel,
        jobs: args.jobs,
        ..Experiment::new()
    };
    if let Some(v) = args.verify {
        exp.verify = v;
    }

    if let Some(kind) = &args.emit {
        match kind.as_str() {
            "ir" => {
                let module = br_frontend::compile(&src).map_err(|e| e.to_string())?;
                print!("{module}");
            }
            "asm" => {
                let (prog, stats) = exp
                    .compile(&src, args.machine)
                    .map_err(|e| e.to_string())?;
                print!("{}", prog.listing());
                eprintln!(
                    "({} static instructions; stats: {stats:?})",
                    prog.static_inst_count()
                );
            }
            other => return Err(format!("unknown --emit {other}")),
        }
        return Ok(());
    }

    // With --profile, runs go through the metered compile pipeline and the
    // br-obs ProfileHook; the counts printed below are byte-identical to
    // the unprofiled path (see tests/profile_equivalence.rs).
    let mut report = args.profile.as_ref().map(|_| br_obs::Report::default());

    if args.compare {
        let (base, brm) = match &mut report {
            Some(report) => {
                let module = br_frontend::compile(&src).map_err(|e| e.to_string())?;
                let base = profiled_run(&exp, &module, Machine::Baseline, report)?;
                let brm = profiled_run(&exp, &module, Machine::BranchReg, report)?;
                if base.exit != brm.exit {
                    return Err(format!(
                        "machines disagree: baseline exits {} but branch-register exits {}",
                        base.exit, brm.exit
                    ));
                }
                (base, brm)
            }
            None => {
                let cmp = exp
                    .run_comparison("input", &src)
                    .map_err(|e| e.to_string())?;
                (cmp.baseline, cmp.brmach)
            }
        };
        println!("exit value: {}", base.exit);
        print_meas("baseline       ", &base.meas);
        print_meas("branch-register", &brm.meas);
        let d = (brm.meas.instructions as f64 - base.meas.instructions as f64)
            / base.meas.instructions as f64
            * 100.0;
        println!("instruction change: {d:+.2}%");
    } else {
        let run = match &mut report {
            Some(report) => {
                let module = br_frontend::compile(&src).map_err(|e| e.to_string())?;
                profiled_run(&exp, &module, args.machine, report)?
            }
            None => exp.run(&src, args.machine).map_err(|e| e.to_string())?,
        };
        println!("exit value: {}", run.exit);
        if args.stats {
            print_meas(args.machine.name(), &run.meas);
            println!("static: {} instructions, codegen {:#?}", run.static_insts, run.stats);
        }
    }

    if let (Some(path), Some(report)) = (&args.profile, &report) {
        std::fs::write(path, report.to_json(10, true))
            .map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("profile written to {path}");
    }
    Ok(())
}

fn usage() {
    eprintln!(
        "usage: brcc [--machine base|br] [--emit asm|ir] [--compare] [--stats]\n\
         \t[--bregs N] [--no-hoist] [--fused-compare] [--fuel N] [--jobs N]\n\
         \t[--verify|--no-verify] [--profile FILE] <file.mc | workload>"
    );
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("brcc: {e}");
            usage();
            ExitCode::FAILURE
        }
    }
}
