//! **branch-registers** — a reproduction of Davidson & Whalley,
//! *Reducing the Cost of Branches by Using Registers* (ISCA 1990).
//!
//! This umbrella crate re-exports the whole pipeline; see [`br_core`]
//! for the experiment API and the `examples/` directory for runnable
//! entry points.

pub use br_codegen as codegen;
pub use br_core as core;
pub use br_emu as emu;
pub use br_frontend as frontend;
pub use br_icache as icache;
pub use br_ir as ir;
pub use br_isa as isa;
pub use br_pipeline as pipeline;
pub use br_workloads as workloads;
