//! Final code emission for the **baseline machine**: a conventional RISC
//! with condition codes and delayed branches (paper Figure 10).

use br_ir::RegClass;
use br_isa::{
    AluOp, AsmFunc, AsmItem, Cc, MInst, MemWidth, Reg, Reloc, Src2, SymRef,
};

use crate::emit::{CodegenStats, Emit, FrameLayout};
use crate::error::CodegenError;
use crate::regalloc::Allocation;
use crate::target::{BaseOptions, TargetSpec};
use crate::vcode::{FrameRef, VFunc, VInst, VSrc, VTerm, VR};

/// Number of words the callee-save area needs.
fn save_words(f: &VFunc, alloc: &Allocation) -> u32 {
    let link = if f.has_call { 1 } else { 0 };
    link + alloc.used_int_callee.len() as u32 + alloc.used_float_callee.len() as u32
}

/// Compute the worst-case outgoing argument overflow for `f` on `target`.
pub fn compute_max_out_args(f: &VFunc, target: &TargetSpec) -> u32 {
    let mut max = 0u32;
    for b in &f.blocks {
        for i in &b.insts {
            if let VInst::Call { args, .. } = i {
                let (mut ni, mut nf, mut out) = (0usize, 0usize, 0u32);
                for &a in args {
                    match f.class_of(a) {
                        RegClass::Int => {
                            if ni < target.int_args.len() {
                                ni += 1;
                            } else {
                                out += 1;
                            }
                        }
                        RegClass::Float => {
                            if nf < target.float_args.len() {
                                nf += 1;
                            } else {
                                out += 1;
                            }
                        }
                    }
                }
                max = max.max(out);
            }
        }
    }
    max
}

/// Emit one function for the baseline machine.
pub fn emit_baseline(
    f: &VFunc,
    target: &TargetSpec,
    alloc: &Allocation,
    opts: BaseOptions,
) -> Result<(AsmFunc, CodegenStats), CodegenError> {
    let layout = FrameLayout::new(f, save_words(f, alloc));
    let mut e = Emit::new(target, alloc, layout);
    let link = target
        .link
        .ok_or_else(|| CodegenError::internal(&f.name, "baseline target lacks a link register"))?;

    // ---- prologue ----
    let size = e.layout.size;
    if size > 0 {
        let src2 = e_imm(&mut e, -size);
        e.push(MInst::Alu {
            op: AluOp::Add,
            rd: target.sp,
            rs1: target.sp,
            src2,
            br: 0,
        });
    }
    let mut save_off = e.layout.save_base;
    let mut link_off = None;
    if f.has_call {
        e.frame_store_at(link, save_off);
        link_off = Some(save_off);
        save_off += 4;
    }
    let mut int_saves = Vec::new();
    for &r in &alloc.used_int_callee {
        e.frame_store_at(Reg(r), save_off);
        int_saves.push((r, save_off));
        save_off += 4;
    }
    let mut float_saves = Vec::new();
    for &r in &alloc.used_float_callee {
        e.frame_store_f_at(r, save_off);
        float_saves.push((r, save_off));
        save_off += 4;
    }
    emit_param_moves(&mut e, f);

    // ---- body ----
    let nblocks = f.blocks.len();
    for (bi, block) in f.blocks.iter().enumerate() {
        let l = e.block_label(br_ir::BlockId(bi as u32));
        e.label(l);
        for inst in &block.insts {
            match inst {
                VInst::Call { func, args, dst } => emit_call(&mut e, f, func, args, *dst),
                other => e.emit_body(f, other)?,
            }
        }
        let next = if bi + 1 < nblocks {
            Some(br_ir::BlockId((bi + 1) as u32))
        } else {
            None
        };
        emit_term(
            &mut e,
            f,
            block.term(),
            next,
            size,
            link,
            link_off,
            &int_saves,
            &float_saves,
        )?;
    }

    // ---- delay-slot filling ----
    let items = std::mem::take(&mut e.items);
    let filled = fill_delay_slots(items, opts.fill_delay_slots, &mut e.stats);
    Ok((
        AsmFunc {
            name: f.name.clone(),
            items: filled,
        },
        e.stats,
    ))
}

/// sp adjustments can exceed the immediate field; use the temp register.
fn e_imm(e: &mut Emit<'_>, v: i32) -> Src2 {
    e.legal_src2(Src2::Imm(v), e.target.temp)
}

impl<'a> Emit<'a> {
    fn frame_store_at(&mut self, rs: Reg, off: i32) {
        let (b, o) = self.legal_mem(self.target.sp, off, self.target.temp);
        self.push(MInst::Store {
            w: MemWidth::Word,
            rs,
            rs1: b,
            off: o,
            br: 0,
        });
    }
    fn frame_load_at(&mut self, rd: Reg, off: i32) {
        let (b, o) = self.legal_mem(self.target.sp, off, self.target.temp);
        self.push(MInst::Load {
            w: MemWidth::Word,
            rd,
            rs1: b,
            off: o,
            br: 0,
        });
    }
    fn frame_store_f_at(&mut self, fs: u8, off: i32) {
        let (b, o) = self.legal_mem(self.target.sp, off, self.target.temp);
        self.push(MInst::StoreF {
            fs: br_isa::FReg(fs),
            rs1: b,
            off: o,
            br: 0,
        });
    }
    fn frame_load_f_at(&mut self, fd: u8, off: i32) {
        let (b, o) = self.legal_mem(self.target.sp, off, self.target.temp);
        self.push(MInst::LoadF {
            fd: br_isa::FReg(fd),
            rs1: b,
            off: o,
            br: 0,
        });
    }
}

/// Incoming parameter placement: mirrors [`Emit::arg_plan`] on the callee
/// side, handling spilled and stack-passed parameters.
pub fn emit_param_moves(e: &mut Emit<'_>, f: &VFunc) {
    let (mut ni, mut nf, mut in_word) = (0usize, 0usize, 0u32);
    let mut int_moves: Vec<(u8, u8)> = Vec::new();
    let mut float_moves: Vec<(u8, u8)> = Vec::new();
    let mut stack_loads: Vec<(VR, u32, bool)> = Vec::new();
    let spilled = |v: VR| f.spilled_params.iter().find(|(p, _)| *p == v).map(|(_, s)| *s);
    for &(p, float) in &f.params {
        if float {
            if nf < e.target.float_args.len() {
                let src = e.target.float_args[nf];
                nf += 1;
                match spilled(p) {
                    Some(slot) => {
                        e.frame_store_f(br_isa::FReg(src), FrameRef::Spill(slot));
                    }
                    None => float_moves.push((src, e.alloc.reg(p))),
                }
            } else {
                stack_loads.push((p, in_word, true));
                in_word += 1;
            }
        } else if ni < e.target.int_args.len() {
            let src = e.target.int_args[ni].0;
            ni += 1;
            match spilled(p) {
                Some(slot) => e.frame_store(Reg(src), FrameRef::Spill(slot)),
                None => int_moves.push((src, e.alloc.reg(p))),
            }
        } else {
            stack_loads.push((p, in_word, false));
            in_word += 1;
        }
    }
    let (t, ft) = (e.target.temp.0, e.target.ftemp);
    e.parallel_move(&int_moves, t, false);
    e.parallel_move(&float_moves, ft, true);
    for (p, w, float) in stack_loads {
        match spilled(p) {
            Some(slot) => {
                // Stack arg → spill slot, via the temp register.
                if float {
                    e.frame_load_f(br_isa::FReg(e.target.ftemp), FrameRef::InArg(w));
                    e.frame_store_f(br_isa::FReg(e.target.ftemp), FrameRef::Spill(slot));
                } else {
                    e.frame_load(e.target.temp, FrameRef::InArg(w));
                    e.frame_store(e.target.temp, FrameRef::Spill(slot));
                }
            }
            None => {
                if float {
                    let fd = e.freg(p);
                    e.frame_load_f(fd, FrameRef::InArg(w));
                } else {
                    let rd = e.reg(p);
                    e.frame_load(rd, FrameRef::InArg(w));
                }
            }
        }
    }
}

/// Argument setup shared with the BR emitter: stack stores then parallel
/// register moves. Returns the number of items emitted.
pub fn emit_arg_setup(e: &mut Emit<'_>, f: &VFunc, args: &[VR]) -> usize {
    let before = e.items.len();
    let (int_moves, float_moves, stack) = e.arg_plan(f, args);
    for (v, w, float) in stack {
        if float {
            let fs = e.freg(v);
            e.frame_store_f(fs, FrameRef::OutArg(w));
        } else {
            let rs = e.reg(v);
            e.frame_store(rs, FrameRef::OutArg(w));
        }
    }
    let ft = e.target.ftemp;
    e.parallel_move(&float_moves, ft, true);
    let t = e.target.temp.0;
    e.parallel_move(&int_moves, t, false);
    e.items.len() - before
}

/// Move a call result into its destination.
pub fn emit_result_move(e: &mut Emit<'_>, f: &VFunc, dst: Option<VR>) {
    if let Some(d) = dst {
        match f.class_of(d) {
            RegClass::Int => {
                let rd = e.reg(d);
                if rd != e.target.int_ret() {
                    e.push(MInst::Alu {
                        op: AluOp::Add,
                        rd,
                        rs1: e.target.int_ret(),
                        src2: Src2::Imm(0),
                        br: 0,
                    });
                }
            }
            RegClass::Float => {
                let fd = e.freg(d);
                if fd.0 != e.target.float_ret() {
                    e.push(MInst::FMov {
                        fd,
                        fs: br_isa::FReg(e.target.float_ret()),
                        br: 0,
                    });
                }
            }
        }
    }
}

fn emit_call(e: &mut Emit<'_>, f: &VFunc, func: &str, args: &[VR], dst: Option<VR>) {
    emit_arg_setup(e, f, args);
    e.push_reloc(
        MInst::Call { disp: 0 },
        Reloc::Disp(SymRef::Func(func.to_string())),
    );
    e.push(MInst::Nop { br: 0 }); // delay slot (fill pass may use it)
    emit_result_move(e, f, dst);
}

#[allow(clippy::too_many_arguments)]
fn emit_term(
    e: &mut Emit<'_>,
    f: &VFunc,
    term: &VTerm,
    next: Option<br_ir::BlockId>,
    frame_size: i32,
    link: Reg,
    link_off: Option<i32>,
    int_saves: &[(u8, i32)],
    float_saves: &[(u8, i32)],
) -> Result<(), CodegenError> {
    match term {
        VTerm::Jump(t) => {
            if Some(*t) != next {
                let l = e.block_label(*t);
                e.push_reloc(MInst::Ba { disp: 0 }, Reloc::Disp(SymRef::Label(l)));
                e.push(MInst::Nop { br: 0 });
            }
        }
        VTerm::Branch {
            cc,
            float,
            a,
            b,
            then_bb,
            else_bb,
        } => {
            let (mut cc, mut then_bb, mut else_bb) = (*cc, *then_bb, *else_bb);
            if then_bb == else_bb {
                return emit_term(
                    e,
                    f,
                    &VTerm::Jump(then_bb),
                    next,
                    frame_size,
                    link,
                    link_off,
                    int_saves,
                    float_saves,
                );
            }
            if Some(then_bb) == next {
                cc = cc.negate();
                std::mem::swap(&mut then_bb, &mut else_bb);
            }
            if *float {
                let bv = b.vr().ok_or_else(|| {
                    CodegenError::internal(&f.name, "float compare operand is not a register")
                })?;
                let fs1 = e.freg(*a);
                let fs2 = e.freg(bv);
                e.push(MInst::FCmp { fs1, fs2 });
            } else {
                let src2 = match b {
                    VSrc::V(v) => Src2::Reg(e.reg(*v)),
                    VSrc::Imm(v) => Src2::Imm(*v),
                };
                let src2 = e.legal_src2(src2, e.target.temp);
                let rs1 = e.reg(*a);
                e.push(MInst::Cmp { rs1, src2 });
            }
            let tl = e.block_label(then_bb);
            e.push_reloc(
                MInst::Bcc {
                    cc,
                    float: *float,
                    disp: 0,
                },
                Reloc::Disp(SymRef::Label(tl)),
            );
            e.push(MInst::Nop { br: 0 });
            if Some(else_bb) != next {
                let el = e.block_label(else_bb);
                e.push_reloc(MInst::Ba { disp: 0 }, Reloc::Disp(SymRef::Label(el)));
                e.push(MInst::Nop { br: 0 });
            }
        }
        VTerm::Switch {
            idx,
            base,
            targets,
            default,
        } => {
            let (t1, t2) = (e.target.temp, e.target.temp2);
            // t1 = idx - base
            let src2 = e.legal_src2(Src2::Imm(*base), t2);
            let ri = e.reg(*idx);
            e.push(MInst::Alu {
                op: AluOp::Sub,
                rd: t1,
                rs1: ri,
                src2,
                br: 0,
            });
            let dl = e.block_label(*default);
            // bounds: t1 < 0 → default; t1 > n-1 → default
            e.push(MInst::Cmp {
                rs1: t1,
                src2: Src2::Imm(0),
            });
            e.push_reloc(
                MInst::Bcc {
                    cc: Cc::Lt,
                    float: false,
                    disp: 0,
                },
                Reloc::Disp(SymRef::Label(dl)),
            );
            e.push(MInst::Nop { br: 0 });
            let hi = e.legal_src2(Src2::Imm(targets.len() as i32 - 1), t2);
            e.push(MInst::Cmp { rs1: t1, src2: hi });
            e.push_reloc(
                MInst::Bcc {
                    cc: Cc::Gt,
                    float: false,
                    disp: 0,
                },
                Reloc::Disp(SymRef::Label(dl)),
            );
            e.push(MInst::Nop { br: 0 });
            // table dispatch
            e.push(MInst::Alu {
                op: AluOp::Sll,
                rd: t1,
                rs1: t1,
                src2: Src2::Imm(2),
                br: 0,
            });
            let tbl = e.fresh_label();
            e.push_reloc(MInst::Sethi { rd: t2, imm: 0 }, Reloc::Hi(SymRef::Label(tbl)));
            e.push_reloc(
                MInst::Alu {
                    op: AluOp::OrLo,
                    rd: t2,
                    rs1: t2,
                    src2: Src2::Imm(0),
                    br: 0,
                },
                Reloc::Lo(SymRef::Label(tbl)),
            );
            e.push(MInst::Alu {
                op: AluOp::Add,
                rd: t2,
                rs1: t2,
                src2: Src2::Reg(t1),
                br: 0,
            });
            e.push(MInst::Load {
                w: MemWidth::Word,
                rd: t2,
                rs1: t2,
                off: 0,
                br: 0,
            });
            e.push(MInst::Jmpl {
                rd: Reg(0),
                rs1: t2,
                off: 0,
            });
            e.push(MInst::Nop { br: 0 });
            e.label(tbl);
            for t in targets {
                let l = e.block_label(*t);
                e.items
                    .push(AsmItem::Word(0, Some(Reloc::Abs(SymRef::Label(l)))));
            }
        }
        VTerm::Ret(v) => {
            // Return value.
            match v {
                Some((VSrc::Imm(c), false)) => {
                    let r = e.target.int_ret();
                    e.li(r, *c);
                }
                Some((VSrc::V(vr), false)) => {
                    let rs = e.reg(*vr);
                    let rd = e.target.int_ret();
                    if rs != rd {
                        e.push(MInst::Alu {
                            op: AluOp::Add,
                            rd,
                            rs1: rs,
                            src2: Src2::Imm(0),
                            br: 0,
                        });
                    }
                }
                Some((VSrc::V(vr), true)) => {
                    let fs = e.freg(*vr);
                    let fd = br_isa::FReg(e.target.float_ret());
                    if fs != fd {
                        e.push(MInst::FMov { fd, fs, br: 0 });
                    }
                }
                Some((VSrc::Imm(_), true)) => {
                    return Err(CodegenError::internal(
                        &f.name,
                        "float immediate return not materialized via the pool",
                    ))
                }
                None => {}
            }
            // Restores.
            for &(r, off) in int_saves {
                e.frame_load_at(Reg(r), off);
            }
            for &(r, off) in float_saves {
                e.frame_load_f_at(r, off);
            }
            if let Some(off) = link_off {
                e.frame_load_at(link, off);
            }
            e.push(MInst::Jmpl {
                rd: Reg(0),
                rs1: link,
                off: 0,
            });
            // sp restore rides in the delay slot (always-filled).
            if frame_size > 0 {
                let src2 = e_imm(e, frame_size);
                e.push(MInst::Alu {
                    op: AluOp::Add,
                    rd: e.target.sp,
                    rs1: e.target.sp,
                    src2,
                    br: 0,
                });
                e.stats.slots_filled += 1;
            } else {
                e.push(MInst::Nop { br: 0 });
                e.stats.slots_noop += 1;
            }
        }
    }
    Ok(())
}

fn is_branch(i: &MInst) -> bool {
    i.is_baseline_transfer()
}

/// Registers written by an instruction (for delay-slot safety).
fn writes(i: &MInst) -> Option<Reg> {
    match i {
        MInst::Alu { rd, .. }
        | MInst::Sethi { rd, .. }
        | MInst::Load { rd, .. }
        | MInst::FtoI { rd, .. } => Some(*rd),
        _ => None,
    }
}

/// The classic fill-from-above delay-slot pass.
///
/// Pattern `[cand][branch][nop]` becomes `[branch][cand]` when `cand` is a
/// plain computational instruction the branch does not depend on. Compares
/// are never moved (they feed the condition codes), and candidates already
/// sitting in a previous branch's delay slot stay put.
fn fill_delay_slots(
    items: Vec<AsmItem>,
    enable: bool,
    stats: &mut CodegenStats,
) -> Vec<AsmItem> {
    let mut out: Vec<AsmItem> = Vec::with_capacity(items.len());
    let mut i = 0;
    while i < items.len() {
        if enable && i + 2 < items.len() {
            let cand_ok = match (&items[i], &items[i + 1], &items[i + 2]) {
                (AsmItem::Inst(c, creloc), AsmItem::Inst(b, _), AsmItem::Inst(MInst::Nop { br: 0 }, None))
                    if is_branch(b) =>
                {
                    let movable = !matches!(
                        c,
                        MInst::Cmp { .. }
                            | MInst::FCmp { .. }
                            | MInst::Nop { .. }
                            | MInst::Halt
                    ) && !is_branch(c)
                        // Position-dependent relocations cannot move.
                        && !matches!(creloc, Some(Reloc::Disp(_)))
                        // Previous item must not be a branch (we'd be
                        // stealing its delay slot).
                        && !matches!(out.last(), Some(AsmItem::Inst(p, _)) if is_branch(p));
                    let dep_ok = match b {
                        MInst::Jmpl { rs1, rd, .. } => {
                            writes(c) != Some(*rs1) && writes(c) != Some(*rd)
                        }
                        _ => true,
                    };
                    movable && dep_ok
                }
                _ => false,
            };
            if cand_ok {
                let cand = items[i].clone();
                let branch = items[i + 1].clone();
                out.push(branch);
                out.push(cand);
                stats.slots_filled += 1;
                i += 3;
                continue;
            }
        }
        // Count unfilled slots.
        if let (AsmItem::Inst(b, _), Some(AsmItem::Inst(MInst::Nop { br: 0 }, None))) =
            (&items[i], items.get(i + 1))
        {
            if is_branch(b) {
                out.push(items[i].clone());
                out.push(items[i + 1].clone());
                stats.slots_noop += 1;
                i += 2;
                continue;
            }
        }
        out.push(items[i].clone());
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isel::{select, ConstPool};
    use crate::regalloc::allocate;
    use br_isa::Machine;

    fn emit_for(src: &str, name: &str, opts: BaseOptions) -> (AsmFunc, CodegenStats) {
        let m = br_frontend::compile(src).unwrap();
        let f = m.function(name).unwrap();
        let t = TargetSpec::for_machine(Machine::Baseline);
        let mut pool = ConstPool::new();
        let mut vf = select(&m, f, &t, &mut pool).unwrap();
        vf.max_out_args = compute_max_out_args(&vf, &t);
        let depth = vec![0u32; f.blocks.len()];
        let mut vf2 = vf;
        let alloc = allocate(&mut vf2, &t, &depth).unwrap();
        emit_baseline(&vf2, &t, &alloc, opts).unwrap()
    }

    fn insts(f: &AsmFunc) -> Vec<MInst> {
        f.items
            .iter()
            .filter_map(|i| match i {
                AsmItem::Inst(m, _) => Some(*m),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn every_branch_is_followed_by_exactly_one_slot_instruction() {
        let src = r#"
            int g(int x) { return x * 2; }
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += g(i);
                return s;
            }
        "#;
        let (f, _) = emit_for(src, "f", BaseOptions::default());
        let is = insts(&f);
        for (i, inst) in is.iter().enumerate() {
            if inst.is_baseline_transfer() {
                let slot = is.get(i + 1).unwrap_or_else(|| {
                    panic!("branch at {i} has no delay slot");
                });
                assert!(
                    !slot.is_baseline_transfer(),
                    "branch in delay slot at {i}: {slot:?}"
                );
            }
        }
    }

    #[test]
    fn epilogue_fills_its_own_slot_with_the_sp_restore() {
        let src = "int f(int n) { int a[4]; a[0] = n; return a[0]; }";
        let (f, stats) = emit_for(src, "f", BaseOptions::default());
        let is = insts(&f);
        let jmpl_at = is
            .iter()
            .position(|i| matches!(i, MInst::Jmpl { .. }))
            .expect("return jmpl");
        match is[jmpl_at + 1] {
            MInst::Alu {
                op: AluOp::Add,
                rd,
                rs1,
                ..
            } => {
                assert_eq!(rd, br_isa::abi::BASE_SP);
                assert_eq!(rs1, br_isa::abi::BASE_SP);
            }
            other => panic!("expected sp restore in slot, got {other:?}"),
        }
        assert!(stats.slots_filled >= 1);
    }

    #[test]
    fn disabling_fill_leaves_noops_after_branches() {
        let src = r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += i * 3;
                return s;
            }
        "#;
        let (_, on) = emit_for(src, "f", BaseOptions::default());
        let (_, off) = emit_for(
            src,
            "f",
            BaseOptions {
                fill_delay_slots: false,
            },
        );
        // The epilogue's sp-restore slot is always filled; the general
        // scheduler must add at least one more when enabled.
        assert!(on.slots_filled > off.slots_filled);
        assert!(off.slots_noop >= on.slots_noop);
    }

    #[test]
    fn compares_never_move_into_delay_slots() {
        let src = r#"
            int f(int a, int b) {
                if (a < b) return a;
                if (a > b * 2) return b;
                return a + b;
            }
        "#;
        let (f, _) = emit_for(src, "f", BaseOptions::default());
        let is = insts(&f);
        for (i, inst) in is.iter().enumerate() {
            if inst.is_baseline_transfer() {
                assert!(
                    !matches!(is[i + 1], MInst::Cmp { .. } | MInst::FCmp { .. }),
                    "compare in delay slot at {i}"
                );
            }
        }
    }
}
