//! Final code emission for the **branch-register machine** (paper
//! Figure 11): no branch instructions — every transfer rides in the `br`
//! field of some *carrier* instruction, with target addresses computed by
//! separate `bcalc`/`sethi+bmovr` instructions that the hoisting plan may
//! have moved into loop preheaders.

use br_ir::Function;
use br_isa::{AluOp, AsmFunc, AsmItem, BReg, MInst, Reg, Reloc, Src2, SymRef};

use crate::baseline::{compute_max_out_args, emit_arg_setup, emit_param_moves, emit_result_move};
use crate::emit::{CodegenStats, Emit, FrameLayout};
use crate::error::CodegenError;
use crate::hoist::{self, Hoisted, HoistedWhat, HoistPlan};
use crate::regalloc::Allocation;
use crate::target::{BrOptions, TargetSpec};
use crate::vcode::{VFunc, VInst, VSrc, VTerm};

/// How the return address (`b[7]`) is preserved across the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetAddr {
    /// No internal transfers: return straight through `b[7]`.
    Direct,
    /// Stashed in a free caller-saved branch register (leaf functions).
    Stash(u8),
    /// Spilled to the stack (non-leaf functions).
    Spill(i32),
}

/// The branch register defined by an instruction, if any.
fn breg_def(i: &MInst) -> Option<u8> {
    match i {
        MInst::Bcalc { bd, .. }
        | MInst::BMovB { bd, .. }
        | MInst::BMovR { bd, .. }
        | MInst::BLoad { bd, .. } => Some(bd.0),
        MInst::CmpBr { .. } | MInst::FCmpBr { .. } => Some(7),
        _ => None,
    }
}

/// The data register defined by an instruction, if any.
fn reg_def(i: &MInst) -> Option<Reg> {
    match i {
        MInst::Alu { rd, .. }
        | MInst::Sethi { rd, .. }
        | MInst::Load { rd, .. }
        | MInst::FtoI { rd, .. } => Some(*rd),
        _ => None,
    }
}

/// Whether `i` reads integer register `r`.
fn reads_reg(i: &MInst, r: Reg) -> bool {
    let src2_is = |s: &Src2| matches!(s, Src2::Reg(x) if *x == r);
    match i {
        MInst::Alu { rs1, src2, .. } => *rs1 == r || src2_is(src2),
        MInst::Load { rs1, .. }
        | MInst::LoadF { rs1, .. }
        | MInst::StoreF { rs1, .. } => *rs1 == r,
        MInst::Store { rs, rs1, .. } => *rs == r || *rs1 == r,
        MInst::ItoF { rs, .. } => *rs == r,
        MInst::CmpBr { rs1, src2, .. } => *rs1 == r || src2_is(src2),
        MInst::BMovR { rs1, .. } | MInst::BStore { rs1, .. } => *rs1 == r,
        MInst::BLoad { rs1, src2, .. } => *rs1 == r || src2_is(src2),
        _ => false,
    }
}

/// The float register defined, if any.
fn freg_def(i: &MInst) -> Option<u8> {
    match i {
        MInst::LoadF { fd, .. }
        | MInst::Fpu { fd, .. }
        | MInst::FNeg { fd, .. }
        | MInst::FMov { fd, .. }
        | MInst::ItoF { fd, .. } => Some(fd.0),
        _ => None,
    }
}


/// Registers (int, float, breg) read by an instruction, conservatively.
fn reads_of(i: &MInst) -> (Vec<Reg>, Vec<u8>, Vec<u8>) {
    let mut ir = Vec::new();
    let mut fr = Vec::new();
    let mut br = Vec::new();
    let s2 = |s: &Src2, ir: &mut Vec<Reg>| {
        if let Src2::Reg(x) = s {
            ir.push(*x);
        }
    };
    match i {
        MInst::Alu { rs1, src2, .. } => {
            ir.push(*rs1);
            s2(src2, &mut ir);
        }
        MInst::Load { rs1, .. } | MInst::LoadF { rs1, .. } => ir.push(*rs1),
        MInst::Store { rs, rs1, .. } => {
            ir.push(*rs);
            ir.push(*rs1);
        }
        MInst::StoreF { fs, rs1, .. } => {
            fr.push(fs.0);
            ir.push(*rs1);
        }
        MInst::Fpu { fs1, fs2, .. } => {
            fr.push(fs1.0);
            fr.push(fs2.0);
        }
        MInst::FNeg { fs, .. } | MInst::FMov { fs, .. } => fr.push(fs.0),
        MInst::ItoF { rs, .. } => ir.push(*rs),
        MInst::FtoI { fs, .. } => fr.push(fs.0),
        MInst::CmpBr { rs1, src2, bt, .. } => {
            ir.push(*rs1);
            s2(src2, &mut ir);
            br.push(bt.0);
        }
        MInst::FCmpBr { fs1, fs2, bt, .. } => {
            fr.push(fs1.0);
            fr.push(fs2.0);
            br.push(bt.0);
        }
        MInst::BMovB { bs, .. } => br.push(bs.0),
        MInst::BMovR { rs1, .. } | MInst::BStore { rs1, .. } => ir.push(*rs1),
        MInst::BLoad { rs1, src2, .. } => {
            ir.push(*rs1);
            s2(src2, &mut ir);
        }
        _ => {}
    }
    (ir, fr, br)
}

/// Whether instruction `x` can move *past* instruction `y` (both orders
/// of memory operations are allowed only when at most one touches
/// memory; with neither aliasing info nor need, we forbid reordering two
/// memory operations).
fn can_move_past(x: &MInst, y: &MInst) -> bool {
    let (yri, yrf, yrb) = reads_of(y);
    // x's defs must not be read or redefined by y.
    if let Some(d) = reg_def(x) {
        if yri.contains(&d) || reg_def(y) == Some(d) {
            return false;
        }
    }
    if let Some(d) = freg_def(x) {
        if yrf.contains(&d) || freg_def(y) == Some(d) {
            return false;
        }
    }
    if let Some(d) = breg_def(x) {
        if yrb.contains(&d) || breg_def(y) == Some(d) {
            return false;
        }
    }
    // x must not read anything y defines.
    let (xri, xrf, xrb) = reads_of(x);
    if let Some(d) = reg_def(y) {
        if xri.contains(&d) {
            return false;
        }
    }
    if let Some(d) = freg_def(y) {
        if xrf.contains(&d) {
            return false;
        }
    }
    if let Some(d) = breg_def(y) {
        if xrb.contains(&d) {
            return false;
        }
    }
    // Two memory operations never reorder (no alias analysis).
    let mem = |i: &MInst| i.is_data_ref();
    !(mem(x) && mem(y))
}

struct BrEmit<'a, 'e> {
    e: &'a mut Emit<'e>,
    plan: &'a HoistPlan,
    opts: BrOptions,
    caller_pool: Vec<u8>,
    stash: Option<u8>,
    /// Start index of the current block's items.
    block_start: usize,
    /// Insertion point for local address calcs (after the last call).
    safe_pos: usize,
    /// Rotating cursor into the per-block scratch pool.
    scratch_cursor: usize,
    /// Scratch registers already handed out for the current block's
    /// terminator (a conditional branch plus its else-jump must not
    /// share one).
    scratch_used: Vec<u8>,
}

impl<'a, 'e> BrEmit<'a, 'e> {
    /// Free caller-saved branch registers usable as scratch in block `b`
    /// (excludes registers live for enclosing loops and the stash).
    fn scratch_for(&mut self, b: u32) -> Option<u8> {
        let reserved = self.plan.reserved_in(b);
        let pool: Vec<u8> = self
            .caller_pool
            .iter()
            .copied()
            .filter(|r| {
                Some(*r) != self.stash
                    && !self.scratch_used.contains(r)
                    && !reserved.contains(r)
            })
            .collect();
        if pool.is_empty() {
            return None;
        }
        let r = pool[self.scratch_cursor % pool.len()];
        self.scratch_cursor += 1;
        self.scratch_used.push(r);
        Some(r)
    }

    /// Emit one hoisted calculation at the current position.
    fn place_calc(&mut self, h: &Hoisted) {
        match &h.what {
            HoistedWhat::Block(t) => self.e.push_reloc(
                MInst::Bcalc {
                    bd: BReg(h.breg),
                    disp: 0,
                    br: 0,
                },
                Reloc::Disp(SymRef::Label(br_isa::Label(*t))),
            ),
            HoistedWhat::Func(f) => {
                let temp = self.e.target.temp;
                self.e.push_reloc(
                    MInst::Sethi { rd: temp, imm: 0 },
                    Reloc::Hi(SymRef::Func(f.clone())),
                );
                self.e.push_reloc(
                    MInst::BMovR {
                        bd: BReg(h.breg),
                        rs1: temp,
                        off: 0,
                        br: 0,
                    },
                    Reloc::Lo(SymRef::Func(f.clone())),
                );
            }
        }
    }

    /// Place all pending calcs; if `first_breg` is given, the calc
    /// defining it goes first (its value is needed by this terminator).
    fn place_pending(&mut self, pending: &mut Vec<Hoisted>, first_breg: Option<u8>) {
        if let Some(fb) = first_breg {
            if let Some(i) = pending.iter().position(|h| h.breg == fb) {
                let h = pending.remove(i);
                self.place_calc(&h);
            }
        }
        for h in pending.drain(..) {
            self.place_calc(&h);
        }
    }

    /// Try to tag the last emitted item with a `br` field (making it the
    /// transfer carrier). Returns true on success.
    fn tag_last(&mut self, brv: u8) -> bool {
        if self.e.items.len() <= self.block_start {
            return false;
        }
        if let Some(AsmItem::Inst(inst, _)) = self.e.items.last_mut() {
            if inst.br() == 0
                && inst.can_carry_br()
                && breg_def(inst) != Some(brv)
                && !matches!(inst, MInst::CmpBr { .. } | MInst::FCmpBr { .. })
            {
                *inst = inst.with_br(brv);
                return true;
            }
        }
        false
    }

    /// Emit an unconditional transfer to block `t` from block `b`.
    /// `pending` calcs are flushed here; one may become the carrier.
    fn emit_jump(&mut self, b: u32, t: u32, pending: &mut Vec<Hoisted>) {
        // Resolve the target's branch register.
        let hoisted = self.plan.target_breg(b, t);
        let pending_match = pending
            .iter()
            .find(|h| h.what == HoistedWhat::Block(t))
            .map(|h| h.breg);
        let (brv, local) = match hoisted.or(pending_match) {
            Some(r) => (r, false),
            None => {
                let s = self.scratch_for(b);
                (s.unwrap_or(7), s.is_none())
            }
        };
        let reloc = Reloc::Disp(SymRef::Label(br_isa::Label(t)));
        let calc = MInst::Bcalc {
            bd: BReg(brv),
            disp: 0,
            br: 0,
        };
        if hoisted.is_none() && pending_match.is_none() {
            if local {
                // b7 fallback: the calc must sit right before the carrier
                // (nothing may clobber b7 in between).
                self.place_pending(pending, None);
                self.e.push_reloc(calc, reloc);
            } else {
                // Scratch register: compute early to shorten stalls.
                let item = AsmItem::Inst(calc, Some(reloc));
                self.e.items.insert(self.safe_pos, item);
                self.safe_pos += 1;
            }
        }
        // Carrier selection: keep one pending bcalc back as the carrier
        // when noop replacement is on (the Figure 4 pattern).
        let reserve = if self.opts.noop_replacement {
            pending
                .iter()
                .position(|h| matches!(h.what, HoistedWhat::Block(_)) && h.breg != brv)
        } else {
            None
        };
        let reserved = reserve.map(|i| pending.remove(i));
        self.place_pending(pending, Some(brv));
        if let Some(h) = reserved {
            match &h.what {
                HoistedWhat::Block(ht) => {
                    self.e.push_reloc(
                        MInst::Bcalc {
                            bd: BReg(h.breg),
                            disp: 0,
                            br: brv,
                        },
                        Reloc::Disp(SymRef::Label(br_isa::Label(*ht))),
                    );
                    self.e.stats.carriers_replaced_by_calc += 1;
                }
                HoistedWhat::Func(_) => unreachable!("reserve is bcalc-kind"),
            }
        } else if self.tag_last(brv) {
            self.e.stats.carriers_useful += 1;
        } else {
            self.e.push(MInst::Nop { br: brv });
            self.e.stats.carriers_noop += 1;
        }
    }
}


/// Scan up to three instructions back for a carrier candidate that can
/// legally move past everything after it and past the compare.
fn find_held(
    ctx: &mut BrEmit<'_, '_>,
    temp: Reg,
    cmp_reads_int: &[Reg],
    cmp_reads_float: &[u8],
) -> Option<AsmItem> {
    let len = ctx.e.items.len();
    let lo = ctx.block_start.max(len.saturating_sub(3));
    for idx in (lo..len).rev() {
        let AsmItem::Inst(i, _) = &ctx.e.items[idx] else {
            break; // never move across labels or data words
        };
        let i = *i;
        if i.br() != 0 {
            break; // never move anything across an existing transfer
        }
        if !(i.can_carry_br()
            && i.br() == 0
            && breg_def(&i).is_none()
            && !reads_reg(&i, temp)
            && reg_def(&i).map(|r| !cmp_reads_int.contains(&r)).unwrap_or(true)
            && freg_def(&i)
                .map(|r| !cmp_reads_float.contains(&r))
                .unwrap_or(true))
        {
            continue;
        }
        // Must commute with every later instruction in the window.
        let mut ok = true;
        for j in idx + 1..len {
            let AsmItem::Inst(y, _) = &ctx.e.items[j] else {
                ok = false;
                break;
            };
            if y.br() != 0 {
                ok = false; // a transfer: nothing moves across it
                break;
            }
            if !can_move_past(&i, y) {
                ok = false;
                break;
            }
        }
        if ok {
            return Some(ctx.e.items.remove(idx));
        }
    }
    None
}

/// Emit one function for the branch-register machine. `loops` must be
/// the loop forest of `ir`'s CFG (the caller builds it for spill-cost
/// depths; hoisting takes it over rather than recomputing). The returned
/// [`HoistPlan`] records which branch registers hold hoisted targets in
/// which blocks, so post-emission checkers can audit the discipline.
pub fn emit_brmach(
    ir: &Function,
    vf: &mut VFunc,
    target: &TargetSpec,
    alloc: &Allocation,
    opts: BrOptions,
    loops: br_ir::LoopForest,
) -> Result<(AsmFunc, CodegenStats, HoistPlan), CodegenError> {
    emit_brmach_with(ir, vf, target, alloc, opts, loops, None)
}

/// [`emit_brmach`] with an optional slot that receives the wall time of
/// the hoisting planner, for per-stage compiler profiling; `None` skips
/// the clock reads entirely.
pub fn emit_brmach_with(
    ir: &Function,
    vf: &mut VFunc,
    target: &TargetSpec,
    alloc: &Allocation,
    opts: BrOptions,
    loops: br_ir::LoopForest,
    hoist_ns: Option<&mut u64>,
) -> Result<(AsmFunc, CodegenStats, HoistPlan), CodegenError> {
    vf.max_out_args = compute_max_out_args(vf, target);

    // Does anything clobber b[7] before the return carriers?
    let has_internal = vf.has_call
        || vf.blocks.iter().any(|b| {
            !matches!(b.term(), VTerm::Ret(_))
                && !b.term().successors().is_empty()
                || matches!(b.term(), VTerm::Switch { .. })
        });

    // Leaf functions with internal transfers stash b[7] in a caller-saved
    // branch register (no memory traffic), so withhold one from hoisting.
    let want_stash = has_internal && !vf.has_call;
    let plan = match hoist_ns {
        None => hoist::plan(ir, vf, &opts, want_stash, loops),
        Some(slot) => {
            let t = std::time::Instant::now();
            let plan = hoist::plan(ir, vf, &opts, want_stash, loops);
            *slot = t.elapsed().as_nanos() as u64;
            plan
        }
    };
    let (_, caller_pool) = opts.pools();

    // Return-address strategy.
    let assigned: Vec<u8> = plan.iter_hoisted().map(|h| h.breg).collect();
    let stash = if want_stash {
        caller_pool
            .iter()
            .rev()
            .copied()
            .find(|r| !assigned.contains(r))
    } else {
        None
    };
    let ret_mode_plan = if !has_internal {
        RetAddr::Direct
    } else if !vf.has_call {
        match stash {
            Some(s) => RetAddr::Stash(s),
            None => RetAddr::Spill(0), // offset fixed below
        }
    } else {
        RetAddr::Spill(0)
    };

    let b7_words = matches!(ret_mode_plan, RetAddr::Spill(_)) as u32;
    let save_words = b7_words
        + plan.used_callee.len() as u32
        + alloc.used_int_callee.len() as u32
        + alloc.used_float_callee.len() as u32;
    let layout = FrameLayout::new(vf, save_words);
    let mut e = Emit::new(target, alloc, layout);
    e.stats.hoisted_calcs = plan.count;

    // Fix the b7 spill offset now that the layout exists.
    let mut save_off = e.layout.save_base;
    let ret_mode = match ret_mode_plan {
        RetAddr::Spill(_) => {
            let m = RetAddr::Spill(save_off);
            save_off += 4;
            m
        }
        other => other,
    };

    // ---- prologue ----
    let size = e.layout.size;
    if size > 0 {
        let src2 = e.legal_src2(Src2::Imm(-size), target.temp);
        e.push(MInst::Alu {
            op: AluOp::Add,
            rd: target.sp,
            rs1: target.sp,
            src2,
            br: 0,
        });
    }
    match ret_mode {
        RetAddr::Spill(off) => {
            let (b, o) = e.legal_mem(target.sp, off, target.temp);
            e.push(MInst::BStore {
                bs: BReg(7),
                rs1: b,
                off: o,
                br: 0,
            });
        }
        RetAddr::Stash(s) => e.push(MInst::BMovB {
            bd: BReg(s),
            bs: BReg(7),
            br: 0,
        }),
        RetAddr::Direct => {}
    }
    let mut breg_saves = Vec::new();
    for &b in &plan.used_callee {
        let (rb, o) = e.legal_mem(target.sp, save_off, target.temp);
        e.push(MInst::BStore {
            bs: BReg(b),
            rs1: rb,
            off: o,
            br: 0,
        });
        breg_saves.push((b, save_off));
        save_off += 4;
    }
    let mut int_saves = Vec::new();
    for &r in &alloc.used_int_callee {
        let (rb, o) = e.legal_mem(target.sp, save_off, target.temp);
        e.push(MInst::Store {
            w: br_isa::MemWidth::Word,
            rs: Reg(r),
            rs1: rb,
            off: o,
            br: 0,
        });
        int_saves.push((r, save_off));
        save_off += 4;
    }
    let mut float_saves = Vec::new();
    for &r in &alloc.used_float_callee {
        let (rb, o) = e.legal_mem(target.sp, save_off, target.temp);
        e.push(MInst::StoreF {
            fs: br_isa::FReg(r),
            rs1: rb,
            off: o,
            br: 0,
        });
        float_saves.push((r, save_off));
        save_off += 4;
    }
    emit_param_moves(&mut e, vf);

    // ---- body ----
    let nblocks = vf.blocks.len();
    let mut ctx = BrEmit {
        e: &mut e,
        plan: &plan,
        opts,
        caller_pool,
        stash: match ret_mode {
            RetAddr::Stash(s) => Some(s),
            _ => None,
        },
        block_start: 0,
        safe_pos: 0,
        scratch_cursor: 0,
        scratch_used: Vec::new(),
    };

    for bi in 0..nblocks {
        let bid = br_ir::BlockId(bi as u32);
        let label = ctx.e.block_label(bid);
        ctx.e.label(label);
        ctx.block_start = ctx.e.items.len();
        ctx.safe_pos = ctx.e.items.len();
        ctx.scratch_cursor = 0;
        ctx.scratch_used.clear();

        let block = vf.blocks[bi].clone();
        for inst in &block.insts {
            match inst {
                VInst::Call { func, args, dst } => emit_br_call(&mut ctx, vf, bi as u32, func, args, *dst),
                other => ctx.e.emit_body(vf, other)?,
            }
        }

        let mut pending: Vec<Hoisted> = plan.preheader(bi as u32).to_vec();
        let next = if bi + 1 < nblocks {
            Some(br_ir::BlockId((bi + 1) as u32))
        } else {
            None
        };
        emit_br_term(
            &mut ctx,
            vf,
            bi as u32,
            block.term(),
            next,
            &mut pending,
            size,
            ret_mode,
            &breg_saves,
            &int_saves,
            &float_saves,
        )?;
        debug_assert!(pending.is_empty(), "pending calcs must be flushed");
    }

    Ok((
        AsmFunc {
            name: vf.name.clone(),
            items: std::mem::take(&mut e.items),
        },
        e.stats,
        plan,
    ))
}

fn emit_br_call(
    ctx: &mut BrEmit<'_, '_>,
    f: &VFunc,
    block: u32,
    func: &str,
    args: &[crate::vcode::VR],
    dst: Option<crate::vcode::VR>,
) {
    let nmoves = emit_arg_setup(ctx.e, f, args);
    // Target address: a hoisted callee-saved register, or b7 via
    // sethi+bmovr (using b7 is free — the carrier's side effect
    // immediately rewrites it with the return address).
    let brv = match ctx.plan.call_breg(block, func) {
        Some(b) => b,
        None => {
            let temp = ctx.e.target.temp;
            // The last argument move can ride after the bmovr as the
            // carrier; pop it first.
            let carrier_item = if nmoves > 0 {
                match ctx.e.items.last() {
                    Some(AsmItem::Inst(i, _))
                        if i.can_carry_br()
                            && i.br() == 0
                            && breg_def(i).is_none()
                            // The sethi below clobbers the temp register;
                            // a move that reads it cannot ride after it.
                            && !reads_reg(i, temp) =>
                    {
                        ctx.e.items.pop()
                    }
                    _ => None,
                }
            } else {
                None
            };
            ctx.e.push_reloc(
                MInst::Sethi { rd: temp, imm: 0 },
                Reloc::Hi(SymRef::Func(func.to_string())),
            );
            ctx.e.push_reloc(
                MInst::BMovR {
                    bd: BReg(7),
                    rs1: temp,
                    off: 0,
                    br: 0,
                },
                Reloc::Lo(SymRef::Func(func.to_string())),
            );
            if let Some(AsmItem::Inst(i, r)) = carrier_item {
                ctx.e.items.push(AsmItem::Inst(i.with_br(7), r));
                ctx.e.stats.carriers_useful += 1;
            } else {
                ctx.e.push(MInst::Nop { br: 7 });
                ctx.e.stats.carriers_noop += 1;
            }
            emit_result_move(ctx.e, f, dst);
            ctx.safe_pos = ctx.e.items.len();
            return;
        }
    };
    // Hoisted call target: carrier = last arg move or nop.
    if ctx.tag_last(brv) {
        ctx.e.stats.carriers_useful += 1;
    } else {
        ctx.e.push(MInst::Nop { br: brv });
        ctx.e.stats.carriers_noop += 1;
    }
    emit_result_move(ctx.e, f, dst);
    ctx.safe_pos = ctx.e.items.len();
}

#[allow(clippy::too_many_arguments)]
fn emit_br_term(
    ctx: &mut BrEmit<'_, '_>,
    f: &VFunc,
    b: u32,
    term: &VTerm,
    next: Option<br_ir::BlockId>,
    pending: &mut Vec<Hoisted>,
    frame_size: i32,
    ret_mode: RetAddr,
    breg_saves: &[(u8, i32)],
    int_saves: &[(u8, i32)],
    float_saves: &[(u8, i32)],
) -> Result<(), CodegenError> {
    match term {
        VTerm::Jump(t) => {
            if Some(t.0) == next.map(|n| n.0) {
                // Fall through: no transfer needed at all.
                ctx.place_pending(pending, None);
            } else {
                ctx.emit_jump(b, t.0, pending);
            }
        }
        VTerm::Branch {
            cc,
            float,
            a,
            b: rhs,
            then_bb,
            else_bb,
        } => {
            let (mut cc, mut then_bb, mut else_bb) = (*cc, *then_bb, *else_bb);
            if then_bb == else_bb {
                return emit_br_term(
                    ctx,
                    f,
                    b,
                    &VTerm::Jump(then_bb),
                    next,
                    pending,
                    frame_size,
                    ret_mode,
                    breg_saves,
                    int_saves,
                    float_saves,
                );
            }
            if Some(then_bb) == next {
                cc = cc.negate();
                std::mem::swap(&mut then_bb, &mut else_bb);
            }

            // Candidate carrier from the body: the last item, if moving
            // it past the compare is safe.
            let cmp_reads_int: Vec<Reg> = {
                let mut v = vec![ctx.e.reg(*a)];
                if let VSrc::V(r) = rhs {
                    v.push(ctx.e.reg(*r));
                }
                if !*float {
                    v.push(ctx.e.target.temp); // legalization scratch
                }
                v
            };
            let cmp_reads_float: Vec<u8> = if *float {
                let bv = rhs.vr().ok_or_else(|| {
                    CodegenError::internal(&f.name, "float compare rhs must be a register")
                })?;
                vec![ctx.e.freg(*a).0, ctx.e.freg(bv).0]
            } else {
                vec![]
            };
            let temp = ctx.e.target.temp;
            // Look back up to three instructions for one that can be
            // moved past the compare to serve as the carrier ("noop
            // instructions can often be replaced", Section 5). Moving a
            // candidate X past instructions Y.. requires that X defines
            // nothing Y reads or defines, and reads nothing Y defines.
            // The fused fast-compare needs no carrier at all.
            let held = if ctx.opts.fused_compare {
                None
            } else {
                find_held(ctx, temp, &cmp_reads_int, &cmp_reads_float)
            };

            // Resolve bt: hoisted, pending, or local scratch.
            let hoisted = ctx.plan.target_breg(b, then_bb.0);
            let pending_match = pending
                .iter()
                .find(|h| h.what == HoistedWhat::Block(then_bb.0))
                .map(|h| h.breg);
            let (bt, is_local) = match hoisted.or(pending_match) {
                Some(r) => (r, false),
                None => {
                    let s = ctx.scratch_for(b);
                    (s.unwrap_or(7), true)
                }
            };
            // Keep one pending bcalc as the conditional carrier.
            let reserve = if ctx.opts.noop_replacement
                && held.is_none()
                && !ctx.opts.fused_compare
            {
                pending
                    .iter()
                    .position(|h| matches!(h.what, HoistedWhat::Block(_)) && h.breg != bt)
            } else {
                None
            };
            let reserved = reserve.map(|i| pending.remove(i));
            ctx.place_pending(pending, Some(bt));
            if is_local {
                let calc = AsmItem::Inst(
                    MInst::Bcalc {
                        bd: BReg(bt),
                        disp: 0,
                        br: 0,
                    },
                    Some(Reloc::Disp(SymRef::Label(br_isa::Label(then_bb.0)))),
                );
                if bt == 7 {
                    // Must stay adjacent: nothing below clobbers b7
                    // before the compare consumes it.
                    ctx.e.items.push(calc);
                } else {
                    ctx.e.items.insert(ctx.safe_pos, calc);
                    ctx.safe_pos += 1;
                }
            }
            // The compare-with-assignment.
            if *float {
                let bv = rhs.vr().ok_or_else(|| {
                    CodegenError::internal(&f.name, "float compare rhs must be a register")
                })?;
                let fs1 = ctx.e.freg(*a);
                let fs2 = ctx.e.freg(bv);
                ctx.e.push(MInst::FCmpBr {
                    cc,
                    bt: BReg(bt),
                    fs1,
                    fs2,
                    br: 0,
                });
            } else {
                let src2 = match rhs {
                    VSrc::V(v) => Src2::Reg(ctx.e.reg(*v)),
                    VSrc::Imm(v) => Src2::Imm(*v),
                };
                let src2 = ctx.e.legal_src2(src2, ctx.e.target.temp);
                let rs1 = ctx.e.reg(*a);
                ctx.e.push(MInst::CmpBr {
                    cc,
                    bt: BReg(bt),
                    rs1,
                    src2,
                    br: 0,
                });
            }
            // Section 9 fast-compare: the compare carries the transfer
            // itself — no carrier instruction at all.
            if ctx.opts.fused_compare {
                debug_assert!(held.is_none() && reserved.is_none());
                if let Some(AsmItem::Inst(inst, rel)) = ctx.e.items.pop() {
                    debug_assert!(matches!(
                        inst,
                        MInst::CmpBr { .. } | MInst::FCmpBr { .. }
                    ));
                    ctx.e.items.push(AsmItem::Inst(inst.with_br(7), rel));
                }
                if Some(else_bb) != next {
                    let mut none = Vec::new();
                    ctx.emit_jump(b, else_bb.0, &mut none);
                }
                return Ok(());
            }
            // Carrier immediately after the compare.
            if let Some(AsmItem::Inst(i, r)) = held {
                ctx.e.items.push(AsmItem::Inst(i.with_br(7), r));
                ctx.e.stats.carriers_useful += 1;
            } else if let Some(h) = reserved {
                match &h.what {
                    HoistedWhat::Block(ht) => {
                        ctx.e.push_reloc(
                            MInst::Bcalc {
                                bd: BReg(h.breg),
                                disp: 0,
                                br: 7,
                            },
                            Reloc::Disp(SymRef::Label(br_isa::Label(*ht))),
                        );
                        ctx.e.stats.carriers_replaced_by_calc += 1;
                    }
                    HoistedWhat::Func(_) => unreachable!(),
                }
            } else {
                ctx.e.push(MInst::Nop { br: 7 });
                ctx.e.stats.carriers_noop += 1;
            }
            // Fall-through handling.
            if Some(else_bb) != next {
                let mut none = Vec::new();
                ctx.emit_jump(b, else_bb.0, &mut none);
            }
        }
        VTerm::Switch {
            idx,
            base,
            targets,
            default,
        } => {
            ctx.place_pending(pending, None);
            let (t1, t2) = (ctx.e.target.temp, ctx.e.target.temp2);
            let s = ctx.scratch_for(b);
            let src2 = ctx.e.legal_src2(Src2::Imm(*base), t2);
            let ri = ctx.e.reg(*idx);
            ctx.e.push(MInst::Alu {
                op: AluOp::Sub,
                rd: t1,
                rs1: ri,
                src2,
                br: 0,
            });
            let dl = br_isa::Label(default.0);
            let bcalc_default = |ctx: &mut BrEmit<'_, '_>, bd: u8| {
                ctx.e.push_reloc(
                    MInst::Bcalc {
                        bd: BReg(bd),
                        disp: 0,
                        br: 0,
                    },
                    Reloc::Disp(SymRef::Label(dl)),
                );
            };
            let sreg = s.unwrap_or(7);
            // Bounds check 1: idx0 < 0 → default.
            bcalc_default(ctx, sreg);
            ctx.e.push(MInst::CmpBr {
                cc: br_isa::Cc::Lt,
                bt: BReg(sreg),
                rs1: t1,
                src2: Src2::Imm(0),
                br: 0,
            });
            ctx.e.push(MInst::Nop { br: 7 });
            ctx.e.stats.carriers_noop += 1;
            // Bounds check 2: idx0 > n-1 → default. If the scratch is b7
            // the first carrier clobbered it; recompute.
            if sreg == 7 {
                bcalc_default(ctx, 7);
            }
            let hi = ctx.e.legal_src2(Src2::Imm(targets.len() as i32 - 1), t2);
            ctx.e.push(MInst::CmpBr {
                cc: br_isa::Cc::Gt,
                bt: BReg(sreg),
                rs1: t1,
                src2: hi,
                br: 0,
            });
            ctx.e.push(MInst::Nop { br: 7 });
            ctx.e.stats.carriers_noop += 1;
            // Table dispatch: b[s] = L[table + idx0*4] (the paper's
            // indirect-jump pattern).
            ctx.e.push(MInst::Alu {
                op: AluOp::Sll,
                rd: t1,
                rs1: t1,
                src2: Src2::Imm(2),
                br: 0,
            });
            let tbl = ctx.e.fresh_label();
            ctx.e.push_reloc(
                MInst::Sethi { rd: t2, imm: 0 },
                Reloc::Hi(SymRef::Label(tbl)),
            );
            ctx.e.push_reloc(
                MInst::Alu {
                    op: AluOp::OrLo,
                    rd: t2,
                    rs1: t2,
                    src2: Src2::Imm(0),
                    br: 0,
                },
                Reloc::Lo(SymRef::Label(tbl)),
            );
            ctx.e.push(MInst::BLoad {
                bd: BReg(sreg),
                rs1: t2,
                src2: Src2::Reg(t1),
                br: 0,
            });
            ctx.e.push(MInst::Nop { br: sreg });
            ctx.e.stats.carriers_noop += 1;
            ctx.e.label(tbl);
            for t in targets {
                let l = br_isa::Label(t.0);
                ctx.e
                    .items
                    .push(AsmItem::Word(0, Some(Reloc::Abs(SymRef::Label(l)))));
            }
        }
        VTerm::Ret(v) => {
            ctx.place_pending(pending, None);
            // Return value.
            match v {
                Some((VSrc::Imm(c), false)) => {
                    let r = ctx.e.target.int_ret();
                    ctx.e.li(r, *c);
                }
                Some((VSrc::V(vr), false)) => {
                    let rs = ctx.e.reg(*vr);
                    let rd = ctx.e.target.int_ret();
                    if rs != rd {
                        ctx.e.push(MInst::Alu {
                            op: AluOp::Add,
                            rd,
                            rs1: rs,
                            src2: Src2::Imm(0),
                            br: 0,
                        });
                    }
                }
                Some((VSrc::V(vr), true)) => {
                    let fs = ctx.e.freg(*vr);
                    let fd = br_isa::FReg(ctx.e.target.float_ret());
                    if fs != fd {
                        ctx.e.push(MInst::FMov { fd, fs, br: 0 });
                    }
                }
                Some((VSrc::Imm(_), true)) => {
                    return Err(CodegenError::internal(
                        &f.name,
                        "float immediate return must go through the constant pool",
                    ))
                }
                None => {}
            }
            // Restores.
            for &(r, off) in int_saves {
                let (rb, o) = ctx.e.legal_mem(ctx.e.target.sp, off, ctx.e.target.temp);
                ctx.e.push(MInst::Load {
                    w: br_isa::MemWidth::Word,
                    rd: Reg(r),
                    rs1: rb,
                    off: o,
                    br: 0,
                });
            }
            for &(r, off) in float_saves {
                let (rb, o) = ctx.e.legal_mem(ctx.e.target.sp, off, ctx.e.target.temp);
                ctx.e.push(MInst::LoadF {
                    fd: br_isa::FReg(r),
                    rs1: rb,
                    off: o,
                    br: 0,
                });
            }
            for &(bb, off) in breg_saves {
                let (rb, o) = ctx.e.legal_mem(ctx.e.target.sp, off, ctx.e.target.temp);
                ctx.e.push(MInst::BLoad {
                    bd: BReg(bb),
                    rs1: rb,
                    src2: Src2::Imm(o),
                    br: 0,
                });
                let _ = rb;
            }
            let ret_br = match ret_mode {
                RetAddr::Direct => 7,
                RetAddr::Stash(s) => s,
                RetAddr::Spill(off) => {
                    let (rb, o) = ctx.e.legal_mem(ctx.e.target.sp, off, ctx.e.target.temp);
                    ctx.e.push(MInst::BLoad {
                        bd: BReg(7),
                        rs1: rb,
                        src2: Src2::Imm(o),
                        br: 0,
                    });
                    7
                }
            };
            // The sp restore is the return carrier (never a noop).
            if frame_size > 0 {
                let src2 = ctx.e.legal_src2(Src2::Imm(frame_size), ctx.e.target.temp);
                ctx.e.push(MInst::Alu {
                    op: AluOp::Add,
                    rd: ctx.e.target.sp,
                    rs1: ctx.e.target.sp,
                    src2,
                    br: ret_br,
                });
                ctx.e.stats.carriers_useful += 1;
            } else if ctx.tag_last(ret_br) {
                ctx.e.stats.carriers_useful += 1;
            } else {
                ctx.e.push(MInst::Nop { br: ret_br });
                ctx.e.stats.carriers_noop += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isel::{select, ConstPool};
    use crate::regalloc::allocate;
    use crate::target::TargetSpec;
    use br_isa::Machine;

    fn emit_for(src: &str, name: &str, opts: BrOptions) -> (AsmFunc, CodegenStats) {
        let m = br_frontend::compile(src).unwrap();
        let f = m.function(name).unwrap();
        let t = TargetSpec::for_machine(Machine::BranchReg);
        let mut pool = ConstPool::new();
        let mut vf = select(&m, f, &t, &mut pool).unwrap();
        let cfg = br_ir::Cfg::new(f);
        let dom = br_ir::Dominators::new(&cfg);
        let loops = br_ir::LoopForest::new(&cfg, &dom);
        let depth: Vec<u32> = (0..f.blocks.len())
            .map(|i| loops.depth(br_ir::BlockId(i as u32)))
            .collect();
        let alloc = allocate(&mut vf, &t, &depth).unwrap();
        let (afunc, stats, _plan) = emit_brmach(f, &mut vf, &t, &alloc, opts, loops).unwrap();
        (afunc, stats)
    }

    fn insts(f: &AsmFunc) -> Vec<MInst> {
        f.items
            .iter()
            .filter_map(|i| match i {
                AsmItem::Inst(m, _) => Some(*m),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn leaf_function_stashes_b7_without_memory() {
        let (f, _) = emit_for(
            "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }",
            "f",
            BrOptions::default(),
        );
        let is = insts(&f);
        // No b7 spill to the stack...
        assert!(
            !is.iter().any(|i| matches!(i, MInst::BStore { bs: BReg(7), .. })),
            "leaf must not spill b7: {is:?}"
        );
        // ...but a stash move from b7 exists.
        assert!(
            is.iter().any(|i| matches!(i, MInst::BMovB { bs: BReg(7), .. })),
            "leaf must stash b7: {is:?}"
        );
    }

    #[test]
    fn non_leaf_spills_b7_to_the_frame() {
        let src = r#"
            int g(int x) { return x + 1; }
            int f(int n) { return g(n) + g(n + 1); }
        "#;
        let (f, _) = emit_for(src, "f", BrOptions::default());
        let is = insts(&f);
        assert!(
            is.iter().any(|i| matches!(i, MInst::BStore { bs: BReg(7), .. })),
            "non-leaf must spill b7: {is:?}"
        );
        assert!(
            is.iter().any(|i| matches!(i, MInst::BLoad { bd: BReg(7), .. })),
            "and reload it before returning: {is:?}"
        );
    }

    #[test]
    fn fused_compare_emits_cmpbr_with_br_field_and_no_carrier_noop() {
        let src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }";
        let (plain, _) = emit_for(src, "f", BrOptions::default());
        let (fused, _) = emit_for(
            src,
            "f",
            BrOptions {
                fused_compare: true,
                ..Default::default()
            },
        );
        let fused_is = insts(&fused);
        assert!(
            fused_is
                .iter()
                .any(|i| matches!(i, MInst::CmpBr { br: 7, .. })),
            "fused compare carries its own transfer: {fused_is:?}"
        );
        assert!(fused_is.len() < insts(&plain).len(), "fused code is shorter");
    }

    #[test]
    fn switch_emits_bload_and_table_words() {
        let src = r#"
            int f(int c) {
                switch (c) {
                    case 0: return 1;
                    case 1: return 2;
                    case 2: return 3;
                    case 3: return 4;
                    default: return 0;
                }
            }
        "#;
        let (f, _) = emit_for(src, "f", BrOptions::default());
        let has_bload = insts(&f)
            .iter()
            .any(|i| matches!(i, MInst::BLoad { .. }));
        assert!(has_bload, "indirect jump loads a branch register");
        let words = f
            .items
            .iter()
            .filter(|i| matches!(i, AsmItem::Word(..)))
            .count();
        assert_eq!(words, 4, "one table entry per case");
    }

    #[test]
    fn hoisted_loop_has_no_bcalc_between_header_label_and_backedge() {
        // The loop body of a simple counted loop must not recompute its
        // branch target (that is the whole point of hoisting).
        let src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }";
        let (_f, stats) = emit_for(src, "f", BrOptions::default());
        assert!(stats.hoisted_calcs >= 1);
        // Count bcalcs: with hoisting they appear before the loop, so
        // disabling hoisting must strictly increase the count of
        // *executed* calcs; statically we just check some exist.
        let (nf, nstats) = emit_for(
            src,
            "f",
            BrOptions {
                hoisting: false,
                ..Default::default()
            },
        );
        assert_eq!(nstats.hoisted_calcs, 0);
        let _ = nf;
    }
}
