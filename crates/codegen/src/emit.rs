//! Shared emission machinery: frame layout, immediate/offset legalization,
//! parallel moves, and expansion of [`VInst`] bodies into [`MInst`]s.

use br_ir::RegClass;
use br_isa::{
    AluOp, AsmItem, FReg, Label, MInst, Machine, MemWidth, Reg, Reloc, Src2, SymRef,
    FRESH_LABEL_BASE,
};

use crate::error::CodegenError;
use crate::regalloc::Allocation;
use crate::target::TargetSpec;
use crate::vcode::{FrameRef, VFunc, VInst, VSrc, VR};

/// A call's argument placement: integer register moves, float register
/// moves (both as `(src, dst)` physical numbers), and stack stores as
/// `(vreg, out_word, float)`.
pub type ArgPlan = (Vec<(u8, u8)>, Vec<(u8, u8)>, Vec<(VR, u32, bool)>);

/// Final stack-frame layout of one function.
///
/// ```text
/// sp + 0 ..                 outgoing argument overflow words
///      .. slot_off[i] ..    IR stack slots
///      .. spill_base ..     register-allocator spill slots
///      .. save_base ..      callee-save area (link/b7, bregs, ints, floats)
/// sp + size                 caller's frame (incoming args above)
/// ```
#[derive(Debug, Clone)]
pub struct FrameLayout {
    /// Offset of each IR slot.
    pub slot_off: Vec<i32>,
    /// Base offset of spill slots (each 4 bytes).
    pub spill_base: i32,
    /// Base of the callee-save area.
    pub save_base: i32,
    /// Total frame size (16-byte aligned).
    pub size: i32,
}

impl FrameLayout {
    /// Compute the layout. `save_words` is the number of 4-byte words the
    /// machine-specific emitter needs in the callee-save area.
    pub fn new(f: &VFunc, save_words: u32) -> FrameLayout {
        let mut off: i32 = 4 * f.max_out_args as i32;
        let mut slot_off = Vec::with_capacity(f.slots.len());
        for &(size, align) in &f.slots {
            let a = align.max(1) as i32;
            off = (off + a - 1) & !(a - 1);
            slot_off.push(off);
            off += size as i32;
        }
        off = (off + 3) & !3;
        let spill_base = off;
        off += 4 * f.num_spills as i32;
        let save_base = off;
        off += 4 * save_words as i32;
        let size = (off + 15) & !15;
        FrameLayout {
            slot_off,
            spill_base,
            save_base,
            size,
        }
    }

    /// Frame offset (from the adjusted sp) of a frame reference.
    pub fn offset(&self, fref: FrameRef) -> i32 {
        match fref {
            FrameRef::Slot(i) => self.slot_off[i as usize],
            FrameRef::Spill(i) => self.spill_base + 4 * i as i32,
            FrameRef::OutArg(i) => 4 * i as i32,
            FrameRef::InArg(i) => self.size + 4 * i as i32,
        }
    }
}

/// Static code-generation statistics (for experiment E7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodegenStats {
    /// Baseline: delay slots filled with a useful instruction.
    pub slots_filled: u32,
    /// Baseline: delay slots left as noops.
    pub slots_noop: u32,
    /// BR machine: transfer carriers that are useful body instructions.
    pub carriers_useful: u32,
    /// BR machine: noop carriers replaced by address calculations
    /// (the paper's "36% of noops replaced").
    pub carriers_replaced_by_calc: u32,
    /// BR machine: carriers left as noops.
    pub carriers_noop: u32,
    /// BR machine: branch-target calculations hoisted into preheaders.
    pub hoisted_calcs: u32,
}

impl CodegenStats {
    /// Merge another function's stats.
    pub fn accumulate(&mut self, o: &CodegenStats) {
        self.slots_filled += o.slots_filled;
        self.slots_noop += o.slots_noop;
        self.carriers_useful += o.carriers_useful;
        self.carriers_replaced_by_calc += o.carriers_replaced_by_calc;
        self.carriers_noop += o.carriers_noop;
        self.hoisted_calcs += o.hoisted_calcs;
    }
}

/// Emission context shared by the two machine-specific emitters.
pub struct Emit<'a> {
    pub target: &'a TargetSpec,
    pub alloc: &'a Allocation,
    pub layout: FrameLayout,
    pub items: Vec<AsmItem>,
    pub next_label: u32,
    pub stats: CodegenStats,
}

impl<'a> Emit<'a> {
    /// New context.
    pub fn new(target: &'a TargetSpec, alloc: &'a Allocation, layout: FrameLayout) -> Emit<'a> {
        Emit {
            target,
            alloc,
            layout,
            items: Vec::new(),
            next_label: 0,
            stats: CodegenStats::default(),
        }
    }

    /// Machine being targeted.
    pub fn machine(&self) -> Machine {
        self.target.machine
    }

    /// Fresh function-local label.
    pub fn fresh_label(&mut self) -> Label {
        let l = Label(FRESH_LABEL_BASE + self.next_label);
        self.next_label += 1;
        l
    }

    /// Label for an IR block.
    pub fn block_label(&self, b: br_ir::BlockId) -> Label {
        Label(b.0)
    }

    /// Physical integer register of a vreg.
    pub fn reg(&self, v: VR) -> Reg {
        Reg(self.alloc.reg(v))
    }

    /// Physical float register of a vreg.
    pub fn freg(&self, v: VR) -> FReg {
        FReg(self.alloc.reg(v))
    }

    /// Append a plain instruction.
    pub fn push(&mut self, i: MInst) {
        self.items.push(AsmItem::Inst(i, None));
    }

    /// Append an instruction with a relocation.
    pub fn push_reloc(&mut self, i: MInst, r: Reloc) {
        self.items.push(AsmItem::Inst(i, Some(r)));
    }

    /// Bind a label here.
    pub fn label(&mut self, l: Label) {
        self.items.push(AsmItem::Label(l));
    }

    /// `rd = val`, using the shortest legal sequence.
    pub fn li(&mut self, rd: Reg, val: i32) {
        if self.machine().imm_fits(val) {
            self.push(MInst::Alu {
                op: AluOp::Add,
                rd,
                rs1: Reg(0),
                src2: Src2::Imm(val),
                br: 0,
            });
        } else {
            let u = val as u32;
            self.push(MInst::Sethi {
                rd,
                imm: u >> 11,
            });
            let lo = (u & 0x7FF) as i32;
            if lo != 0 {
                self.push(MInst::Alu {
                    op: AluOp::OrLo,
                    rd,
                    rs1: rd,
                    src2: Src2::Imm(lo),
                    br: 0,
                });
            }
        }
    }

    /// `rd = &sym` via `sethi`+`orlo` with relocations.
    pub fn la(&mut self, rd: Reg, sym: SymRef) {
        self.push_reloc(MInst::Sethi { rd, imm: 0 }, Reloc::Hi(sym.clone()));
        self.push_reloc(
            MInst::Alu {
                op: AluOp::OrLo,
                rd,
                rs1: rd,
                src2: Src2::Imm(0),
                br: 0,
            },
            Reloc::Lo(sym),
        );
    }

    /// Legalize `src2`: immediates that do not fit the machine's field
    /// are materialized into `scratch`.
    pub fn legal_src2(&mut self, s: Src2, scratch: Reg) -> Src2 {
        match s {
            Src2::Imm(v) if !self.machine().imm_fits(v) => {
                self.li(scratch, v);
                Src2::Reg(scratch)
            }
            other => other,
        }
    }

    /// Compute `(base, off)` with `off` in range, using `scratch` if the
    /// raw offset does not fit.
    pub fn legal_mem(&mut self, base: Reg, off: i32, scratch: Reg) -> (Reg, i32) {
        if self.machine().imm_fits(off) {
            (base, off)
        } else {
            self.li(scratch, off);
            self.push(MInst::Alu {
                op: AluOp::Add,
                rd: scratch,
                rs1: scratch,
                src2: Src2::Reg(base),
                br: 0,
            });
            (scratch, 0)
        }
    }

    /// Frame address `(sp, offset)` legalized.
    pub fn frame_mem(&mut self, fref: FrameRef, extra: i32, scratch: Reg) -> (Reg, i32) {
        let off = self.layout.offset(fref) + extra;
        self.legal_mem(self.target.sp, off, scratch)
    }

    /// Integer load from a frame ref.
    pub fn frame_load(&mut self, rd: Reg, fref: FrameRef) {
        let (b, o) = self.frame_mem(fref, 0, self.target.temp);
        self.push(MInst::Load {
            w: MemWidth::Word,
            rd,
            rs1: b,
            off: o,
            br: 0,
        });
    }

    /// Integer store to a frame ref.
    pub fn frame_store(&mut self, rs: Reg, fref: FrameRef) {
        let (b, o) = self.frame_mem(fref, 0, self.target.temp);
        self.push(MInst::Store {
            w: MemWidth::Word,
            rs,
            rs1: b,
            off: o,
            br: 0,
        });
    }

    /// Float load from a frame ref.
    pub fn frame_load_f(&mut self, fd: FReg, fref: FrameRef) {
        let (b, o) = self.frame_mem(fref, 0, self.target.temp);
        self.push(MInst::LoadF {
            fd,
            rs1: b,
            off: o,
            br: 0,
        });
    }

    /// Float store to a frame ref.
    pub fn frame_store_f(&mut self, fs: FReg, fref: FrameRef) {
        let (b, o) = self.frame_mem(fref, 0, self.target.temp);
        self.push(MInst::StoreF {
            fs,
            rs1: b,
            off: o,
            br: 0,
        });
    }

    /// Emit the body of one non-call [`VInst`] (calls are machine-specific).
    ///
    /// Fails on `VInst::Call` — the caller must handle calls; reporting
    /// it as a [`CodegenError`] keeps the whole pipeline abort-free.
    pub fn emit_body(&mut self, f: &VFunc, inst: &VInst) -> Result<(), CodegenError> {
        let temp = self.target.temp;
        match inst {
            VInst::Alu { op, dst, a, b } => {
                let src2 = match b {
                    VSrc::V(v) => Src2::Reg(self.reg(*v)),
                    VSrc::Imm(v) => Src2::Imm(*v),
                };
                let src2 = self.legal_src2(src2, temp);
                self.push(MInst::Alu {
                    op: *op,
                    rd: self.reg(*dst),
                    rs1: self.reg(*a),
                    src2,
                    br: 0,
                });
            }
            VInst::Li { dst, val } => {
                let rd = self.reg(*dst);
                self.li(rd, *val);
            }
            VInst::La { dst, sym } => {
                let rd = self.reg(*dst);
                self.la(rd, SymRef::Data(sym.clone()));
            }
            VInst::Mov { dst, src } => {
                let (rd, rs) = (self.reg(*dst), self.reg(*src));
                if rd != rs {
                    self.push(MInst::Alu {
                        op: AluOp::Add,
                        rd,
                        rs1: rs,
                        src2: Src2::Imm(0),
                        br: 0,
                    });
                }
            }
            VInst::Load { w, dst, base, off } => {
                let (b, o) = self.legal_mem(self.reg(*base), *off, temp);
                self.push(MInst::Load {
                    w: *w,
                    rd: self.reg(*dst),
                    rs1: b,
                    off: o,
                    br: 0,
                });
            }
            VInst::LoadF { dst, base, off } => {
                let (b, o) = self.legal_mem(self.reg(*base), *off, temp);
                self.push(MInst::LoadF {
                    fd: self.freg(*dst),
                    rs1: b,
                    off: o,
                    br: 0,
                });
            }
            VInst::Store { w, src, base, off } => {
                let (b, o) = self.legal_mem(self.reg(*base), *off, temp);
                self.push(MInst::Store {
                    w: *w,
                    rs: self.reg(*src),
                    rs1: b,
                    off: o,
                    br: 0,
                });
            }
            VInst::StoreF { src, base, off } => {
                let (b, o) = self.legal_mem(self.reg(*base), *off, temp);
                self.push(MInst::StoreF {
                    fs: self.freg(*src),
                    rs1: b,
                    off: o,
                    br: 0,
                });
            }
            VInst::FrameAddr { dst, fref, off } => {
                let total = self.layout.offset(*fref) + off;
                let rd = self.reg(*dst);
                if self.machine().imm_fits(total) {
                    self.push(MInst::Alu {
                        op: AluOp::Add,
                        rd,
                        rs1: self.target.sp,
                        src2: Src2::Imm(total),
                        br: 0,
                    });
                } else {
                    self.li(rd, total);
                    self.push(MInst::Alu {
                        op: AluOp::Add,
                        rd,
                        rs1: rd,
                        src2: Src2::Reg(self.target.sp),
                        br: 0,
                    });
                }
            }
            VInst::FrameLoad { dst, fref, float } => {
                if *float {
                    let fd = self.freg(*dst);
                    self.frame_load_f(fd, *fref);
                } else {
                    let rd = self.reg(*dst);
                    self.frame_load(rd, *fref);
                }
            }
            VInst::FrameStore { src, fref, float } => {
                if *float {
                    let fs = self.freg(*src);
                    self.frame_store_f(fs, *fref);
                } else {
                    let rs = self.reg(*src);
                    self.frame_store(rs, *fref);
                }
            }
            VInst::Fpu { op, dst, a, b } => self.push(MInst::Fpu {
                op: *op,
                fd: self.freg(*dst),
                fs1: self.freg(*a),
                fs2: self.freg(*b),
                br: 0,
            }),
            VInst::FNeg { dst, src } => self.push(MInst::FNeg {
                fd: self.freg(*dst),
                fs: self.freg(*src),
                br: 0,
            }),
            VInst::FMov { dst, src } => {
                let (fd, fs) = (self.freg(*dst), self.freg(*src));
                if fd != fs {
                    self.push(MInst::FMov { fd, fs, br: 0 });
                }
            }
            VInst::ItoF { dst, src } => self.push(MInst::ItoF {
                fd: self.freg(*dst),
                rs: self.reg(*src),
                br: 0,
            }),
            VInst::FtoI { dst, src } => self.push(MInst::FtoI {
                rd: self.reg(*dst),
                fs: self.freg(*src),
                br: 0,
            }),
            VInst::Call { .. } => {
                return Err(CodegenError::internal(
                    &f.name,
                    "calls are emitted by the machine-specific path",
                ))
            }
        }
        Ok(())
    }

    /// Resolve a call's argument placement: returns `(reg_moves_int,
    /// reg_moves_float, stack_stores)` where reg moves are `(src, dst)`
    /// physical numbers and stack stores are `(vreg, out_word, float)`.
    pub fn arg_plan(&self, f: &VFunc, args: &[VR]) -> ArgPlan {
        let mut int_moves = Vec::new();
        let mut float_moves = Vec::new();
        let mut stack = Vec::new();
        let mut next_int = 0usize;
        let mut next_float = 0usize;
        let mut next_out = 0u32;
        for &a in args {
            match f.class_of(a) {
                RegClass::Int => {
                    if next_int < self.target.int_args.len() {
                        int_moves.push((self.alloc.reg(a), self.target.int_args[next_int].0));
                        next_int += 1;
                    } else {
                        stack.push((a, next_out, false));
                        next_out += 1;
                    }
                }
                RegClass::Float => {
                    if next_float < self.target.float_args.len() {
                        float_moves.push((self.alloc.reg(a), self.target.float_args[next_float]));
                        next_float += 1;
                    } else {
                        stack.push((a, next_out, true));
                        next_out += 1;
                    }
                }
            }
        }
        (int_moves, float_moves, stack)
    }

    /// Emit a parallel move among physical registers of one class.
    /// `temp` breaks cycles; `float` selects the register file.
    pub fn parallel_move(&mut self, moves: &[(u8, u8)], temp: u8, float: bool) {
        let mut pending: Vec<(u8, u8)> = moves
            .iter()
            .copied()
            .filter(|(s, d)| s != d)
            .collect();
        let emit_one = |e: &mut Emit<'a>, s: u8, d: u8| {
            if float {
                e.push(MInst::FMov {
                    fd: FReg(d),
                    fs: FReg(s),
                    br: 0,
                });
            } else {
                e.push(MInst::Alu {
                    op: AluOp::Add,
                    rd: Reg(d),
                    rs1: Reg(s),
                    src2: Src2::Imm(0),
                    br: 0,
                });
            }
        };
        while !pending.is_empty() {
            // A move whose destination is not the source of another move
            // can go first.
            if let Some(i) = pending
                .iter()
                .position(|&(_, d)| !pending.iter().any(|&(s, _)| s == d))
            {
                let (s, d) = pending.remove(i);
                emit_one(self, s, d);
            } else {
                // Every destination is also a pending source: a cycle.
                // Park one destination in the temp and redirect its
                // readers there, which breaks the cycle.
                let (_, d) = pending[0];
                emit_one(self, d, temp);
                for m in &mut pending {
                    if m.0 == d {
                        m.0 = temp;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_vfunc() -> VFunc {
        VFunc {
            name: "t".into(),
            blocks: vec![],
            classes: vec![],
            params: vec![],
            slots: vec![(40, 4), (3, 1)],
            num_spills: 2,
            spilled_params: vec![],
            max_out_args: 3,
            has_call: true,
        }
    }

    #[test]
    fn frame_layout_is_ordered_and_aligned() {
        let f = mk_vfunc();
        let l = FrameLayout::new(&f, 4);
        assert_eq!(l.offset(FrameRef::OutArg(0)), 0);
        assert_eq!(l.offset(FrameRef::OutArg(2)), 8);
        assert_eq!(l.slot_off[0], 12);
        assert_eq!(l.slot_off[1], 52);
        assert_eq!(l.spill_base % 4, 0);
        assert!(l.spill_base >= 55);
        assert_eq!(l.save_base, l.spill_base + 8);
        assert_eq!(l.size % 16, 0);
        assert!(l.size >= l.save_base + 16);
        assert_eq!(l.offset(FrameRef::InArg(1)), l.size + 4);
    }

    #[test]
    fn parallel_move_handles_swaps_through_the_temp() {
        use crate::regalloc::Allocation;
        use crate::target::TargetSpec;
        let target = TargetSpec::for_machine(br_isa::Machine::Baseline);
        let alloc = Allocation {
            assign: vec![],
            used_int_callee: vec![],
            used_float_callee: vec![],
        };
        let layout = FrameLayout::new(&mk_vfunc(), 0);
        let mut e = Emit::new(&target, &alloc, layout);
        // A two-element cycle plus a chain: (1→2), (2→1), (3→4).
        e.parallel_move(&[(1, 2), (2, 1), (3, 4)], target.temp.0, false);
        // Simulate the emitted moves over a register file.
        let mut regs = [0i32; 32];
        for (r, v) in regs.iter_mut().enumerate() {
            *v = r as i32 * 10;
        }
        for item in &e.items {
            if let AsmItem::Inst(
                MInst::Alu {
                    op: AluOp::Add,
                    rd,
                    rs1,
                    src2: Src2::Imm(0),
                    ..
                },
                _,
            ) = item
            {
                regs[rd.0 as usize] = regs[rs1.0 as usize];
            } else {
                panic!("unexpected item {item:?}");
            }
        }
        assert_eq!(regs[2], 10, "r2 gets old r1");
        assert_eq!(regs[1], 20, "r1 gets old r2");
        assert_eq!(regs[4], 30, "r4 gets old r3");
    }

    #[test]
    fn parallel_move_is_a_noop_for_identity() {
        use crate::regalloc::Allocation;
        use crate::target::TargetSpec;
        let target = TargetSpec::for_machine(br_isa::Machine::BranchReg);
        let alloc = Allocation {
            assign: vec![],
            used_int_callee: vec![],
            used_float_callee: vec![],
        };
        let layout = FrameLayout::new(&mk_vfunc(), 0);
        let mut e = Emit::new(&target, &alloc, layout);
        e.parallel_move(&[(5, 5), (6, 6)], target.temp.0, false);
        assert!(e.items.is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut a = CodegenStats {
            slots_filled: 1,
            ..Default::default()
        };
        let b = CodegenStats {
            slots_filled: 2,
            carriers_noop: 3,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.slots_filled, 3);
        assert_eq!(a.carriers_noop, 3);
    }
}
