//! Conversion of IR globals (and the float constant pool) into
//! assembler data items.

use br_ir::{GlobalInit, Module};
use br_isa::DataItem;

/// Lower every global of `module` to a [`DataItem`], in declaration order.
pub fn lower_globals(module: &Module) -> Vec<DataItem> {
    module
        .globals
        .iter()
        .map(|g| {
            let size = g.size();
            let bytes = match &g.init {
                GlobalInit::Zero => vec![0u8; size],
                GlobalInit::Bytes(b) => {
                    let mut v = b.clone();
                    v.resize(size, 0);
                    v
                }
                GlobalInit::Words(ws) => {
                    let mut v: Vec<u8> =
                        ws.iter().flat_map(|w| w.to_le_bytes()).collect();
                    v.resize(size, 0);
                    v
                }
            };
            DataItem {
                name: g.name.clone(),
                align: g.ty.align(),
                bytes,
            }
        })
        .collect()
}

/// Lower the float constant pool.
pub fn lower_pool(items: Vec<(String, u32)>) -> Vec<DataItem> {
    items
        .into_iter()
        .map(|(name, bits)| DataItem {
            name,
            align: 4,
            bytes: bits.to_le_bytes().to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Global, Ty};

    #[test]
    fn zero_init_fills_size() {
        let mut m = Module::new();
        m.add_global(Global {
            name: "g".into(),
            ty: Ty::Array(Box::new(Ty::Int), 3),
            init: GlobalInit::Zero,
        });
        let items = lower_globals(&m);
        assert_eq!(items[0].bytes, vec![0u8; 12]);
        assert_eq!(items[0].align, 4);
    }

    #[test]
    fn words_are_little_endian() {
        let mut m = Module::new();
        m.add_global(Global {
            name: "g".into(),
            ty: Ty::Array(Box::new(Ty::Int), 2),
            init: GlobalInit::Words(vec![1, -1]),
        });
        let items = lower_globals(&m);
        assert_eq!(
            items[0].bytes,
            vec![1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF]
        );
    }

    #[test]
    fn pool_items_are_words() {
        let items = lower_pool(vec![("__fc0".into(), 0x3FC0_0000)]);
        assert_eq!(items[0].bytes, vec![0, 0, 0xC0, 0x3F]);
        assert_eq!(items[0].align, 4);
    }
}
