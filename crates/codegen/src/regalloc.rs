//! Chaitin-style graph-coloring register allocation with spilling.
//!
//! Virtual registers that live across a call are restricted to
//! callee-saved registers; everything else prefers caller-saved ones.
//! Spill costs are weighted by `10^loop-depth`, the same static estimate
//! the paper's compiler uses for its branch-frequency ordering, so the
//! registers (data *and*, later, branch) go to the innermost loops first.

use br_ir::{BlockId, RegClass};

use crate::error::CodegenError;
use crate::target::TargetSpec;
use crate::vcode::{FrameRef, VBlock, VFunc, VInst, VR};

/// Dense bitset keyed by vreg index — the vcode twin of `br_ir`'s
/// `RegSet`. Sets are sized once per allocation round (the vreg count is
/// fixed within a round; spill rewriting grows it *between* rounds).
#[derive(Debug, Clone, PartialEq, Eq)]
struct VrSet {
    bits: Vec<u64>,
}

impl VrSet {
    /// Empty set sized for `n` vregs.
    fn new(n: usize) -> VrSet {
        VrSet {
            bits: vec![0; n.div_ceil(64)],
        }
    }

    fn insert(&mut self, v: VR) {
        self.bits[v as usize / 64] |= 1 << (v % 64);
    }

    fn remove(&mut self, v: VR) {
        self.bits[v as usize / 64] &= !(1 << (v % 64));
    }

    /// Iterate over members in ascending vreg order.
    fn iter(&self) -> BitIter<'_> {
        iter_bits(&self.bits)
    }
}

/// Iterate the set bits of a bitset row in ascending order, one
/// `trailing_zeros` per member rather than one test per bit position.
fn iter_bits(words: &[u64]) -> BitIter<'_> {
    BitIter {
        words,
        w: 0,
        cur: words.first().copied().unwrap_or(0),
    }
}

struct BitIter<'a> {
    words: &'a [u64],
    w: usize,
    cur: u64,
}

impl Iterator for BitIter<'_> {
    type Item = VR;

    fn next(&mut self) -> Option<VR> {
        while self.cur == 0 {
            self.w += 1;
            if self.w >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.w];
        }
        let b = self.cur.trailing_zeros() as usize;
        self.cur &= self.cur - 1;
        Some((self.w * 64 + b) as VR)
    }
}

/// Dense bit matrix: `rows` rows of `cols` bits in one flat allocation.
/// The allocator's per-block and per-vreg set families (`gen`/`kill`/
/// `live_in`/`live_out`, interference adjacency) live here — a
/// `Vec<VrSet>` layout pays one heap allocation per row, which dominates
/// allocation time on the many small functions of a typical module.
struct BitMatrix {
    /// Words per row.
    wpr: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    fn new(rows: usize, cols: usize) -> BitMatrix {
        let wpr = cols.div_ceil(64);
        BitMatrix {
            wpr,
            bits: vec![0; rows * wpr],
        }
    }

    fn row(&self, r: usize) -> &[u64] {
        &self.bits[r * self.wpr..(r + 1) * self.wpr]
    }

    fn insert(&mut self, r: usize, c: VR) {
        self.bits[r * self.wpr + c as usize / 64] |= 1 << (c % 64);
    }

    fn contains(&self, r: usize, c: VR) -> bool {
        self.bits[r * self.wpr + c as usize / 64] & (1 << (c % 64)) != 0
    }

    /// `self[dst] |= other[src]`, word-parallel.
    fn union_row_from(&mut self, dst: usize, other: &BitMatrix, src: usize) {
        let d = dst * self.wpr;
        let s = src * other.wpr;
        for w in 0..self.wpr {
            self.bits[d + w] |= other.bits[s + w];
        }
    }
}

/// Result of register allocation for one function.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Physical register (within the vreg's class) per vreg; `None` for
    /// spilled vregs (which have a slot in `spill_slot` instead).
    pub assign: Vec<Option<u8>>,
    /// Callee-saved integer registers actually used (must be saved in
    /// the prologue).
    pub used_int_callee: Vec<u8>,
    /// Callee-saved float registers actually used.
    pub used_float_callee: Vec<u8>,
}

impl Allocation {
    /// The physical register assigned to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was spilled (spills are rewritten before emission,
    /// so any remaining reference to a spilled vreg is a bug).
    pub fn reg(&self, v: VR) -> u8 {
        self.assign[v as usize].expect("vreg was spilled but not rewritten")
    }
}

/// Block-level liveness over a [`VFunc`] (row = block, column = vreg).
struct VLiveness {
    live_in: BitMatrix,
    live_out: BitMatrix,
}

/// Postorder over the successor graph from block 0, with any
/// unreachable blocks appended in index order. Processing blocks in
/// this sequence visits successors before predecessors — the fast
/// direction for a backward data-flow problem — and covers *every*
/// block, reachable or not, because [`build_graph`] reads the live-out
/// of all of them.
fn postorder_all(nb: usize, succs: &[Vec<BlockId>]) -> Vec<u32> {
    let mut seen = vec![false; nb];
    let mut out: Vec<u32> = Vec::with_capacity(nb);
    if nb > 0 {
        let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
        seen[0] = true;
        while let Some(top) = stack.last_mut() {
            let ss = &succs[top.0 as usize];
            if top.1 < ss.len() {
                let s = ss[top.1].0;
                top.1 += 1;
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                out.push(top.0);
                stack.pop();
            }
        }
    }
    for (b, s) in seen.iter().enumerate() {
        if !s {
            out.push(b as u32);
        }
    }
    out
}

fn compute_liveness(f: &VFunc) -> VLiveness {
    let nb = f.blocks.len();
    let nv = f.classes.len();
    let mut gen = BitMatrix::new(nb, nv);
    let mut kill = BitMatrix::new(nb, nv);
    let mut uses = Vec::new();
    for (i, b) in f.blocks.iter().enumerate() {
        for inst in &b.insts {
            uses.clear();
            inst.uses(&mut uses);
            for &u in &uses {
                if !kill.contains(i, u) {
                    gen.insert(i, u);
                }
            }
            if let Some(d) = inst.def() {
                kill.insert(i, d);
            }
        }
        uses.clear();
        b.term().uses(&mut uses);
        for &u in &uses {
            if !kill.contains(i, u) {
                gen.insert(i, u);
            }
        }
    }
    let succs: Vec<Vec<BlockId>> = f.blocks.iter().map(|b| b.term().successors()).collect();
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); nb];
    for (i, ss) in succs.iter().enumerate() {
        for s in ss {
            preds[s.0 as usize].push(i as u32);
        }
    }

    // Worklist fixpoint. The sets only grow, and the least fixpoint is
    // unique, so visiting order affects speed but never the result —
    // the seed implementation's whole-program sweeps computed exactly
    // these sets.
    let mut live_in = BitMatrix::new(nb, nv);
    let mut live_out = BitMatrix::new(nb, nv);
    let wpr = live_in.wpr;
    let order = postorder_all(nb, &succs);
    let mut on_list = vec![true; nb];
    // Stack; seeded reversed so blocks pop in postorder sequence.
    let mut work: Vec<u32> = order.iter().rev().copied().collect();
    while let Some(i) = work.pop() {
        let i = i as usize;
        on_list[i] = false;
        // live_out[i] = ∪ live_in[succ] (monotone: only ever grows; a
        // self-loop reads the current in-set, and the block re-queues
        // via preds when live_in[i] changes, so it needs no special
        // case).
        for s in &succs[i] {
            live_out.union_row_from(i, &live_in, s.0 as usize);
        }
        // live_in[i] = gen[i] ∪ (live_out[i] − kill[i]), word-parallel.
        let mut changed = false;
        let base = i * wpr;
        for w in base..base + wpr {
            let new = gen.bits[w] | (live_out.bits[w] & !kill.bits[w]);
            if new != live_in.bits[w] {
                live_in.bits[w] = new;
                changed = true;
            }
        }
        if changed {
            for &p in &preds[i] {
                if !on_list[p as usize] {
                    on_list[p as usize] = true;
                    work.push(p);
                }
            }
        }
    }
    VLiveness { live_in, live_out }
}

/// Interference graph (adjacency bit matrix) plus across-call markers.
struct Graph {
    adj: BitMatrix,
    across_call: Vec<bool>,
    cost: Vec<u64>,
}

fn build_graph(f: &VFunc, lv: &VLiveness, depth: &[u32]) -> Graph {
    let n = f.classes.len();
    let mut g = Graph {
        adj: BitMatrix::new(n, n),
        across_call: vec![false; n],
        cost: vec![0; n],
    };
    let add_edge = |adj: &mut BitMatrix, a: VR, b: VR| {
        if a != b && f.class_of(a) == f.class_of(b) {
            adj.insert(a as usize, b);
            adj.insert(b as usize, a);
        }
    };
    // Parameters are defined "simultaneously" at entry.
    for i in 0..f.params.len() {
        for j in i + 1..f.params.len() {
            add_edge(&mut g.adj, f.params[i].0, f.params[j].0);
        }
    }
    let mut uses = Vec::new();
    // One working set reused across blocks (no per-block clone).
    let mut live = VrSet::new(n);
    for (bi, b) in f.blocks.iter().enumerate() {
        let w = 10u64.pow(depth.get(bi).copied().unwrap_or(0).min(9));
        live.bits.copy_from_slice(lv.live_out.row(bi));
        uses.clear();
        b.term().uses(&mut uses);
        for &u in &uses {
            g.cost[u as usize] += w;
            live.insert(u);
        }
        for inst in b.insts.iter().rev() {
            if let Some(d) = inst.def() {
                g.cost[d as usize] += w;
                live.remove(d);
                // Move sources don't interfere with the destination
                // (enables natural coalescing by same-color assignment).
                let move_src = match inst {
                    VInst::Mov { src, .. } | VInst::FMov { src, .. } => Some(*src),
                    _ => None,
                };
                for l in live.iter() {
                    if Some(l) != move_src {
                        add_edge(&mut g.adj, d, l);
                    }
                }
            }
            if inst.is_call() {
                for l in live.iter() {
                    g.across_call[l as usize] = true;
                }
            }
            uses.clear();
            inst.uses(&mut uses);
            for &u in &uses {
                g.cost[u as usize] += w;
                live.insert(u);
            }
        }
    }
    g
}

/// Maximum spill rounds before allocation reports divergence.
const MAX_ROUNDS: u32 = 40;

/// Allocate registers for `f`, rewriting spills in place.
///
/// `depth[b]` is the loop-nesting depth of block `b` (spill-cost weight).
///
/// Fails with [`CodegenError::RegallocDiverged`] if allocation does not
/// converge within [`MAX_ROUNDS`] spill rounds — that indicates a bug
/// rather than a hard program, but it must surface as an error, not an
/// abort, so differential drivers can report and minimize it.
pub fn allocate(
    f: &mut VFunc,
    target: &TargetSpec,
    depth: &[u32],
) -> Result<Allocation, CodegenError> {
    // Vregs created by `rewrite_spills` (>= the entry count) are reload/
    // store temps with minimal live ranges. Re-spilling one produces an
    // identically-shaped temp the next round chooses again — an infinite
    // spill loop under sustained pressure (dozens of simultaneously live
    // values, as translated foreign code produces). They are excluded
    // from spill-candidate selection so rounds always spill an original
    // range and make real progress.
    let no_spill_from = f.classes.len() as VR;
    for _ in 0..MAX_ROUNDS {
        let lv = compute_liveness(f);
        let g = build_graph(f, &lv, depth);
        match try_color(f, target, &g, no_spill_from) {
            Ok(alloc) => return Ok(alloc),
            Err(spills) => rewrite_spills(f, &spills),
        }
    }
    Err(CodegenError::RegallocDiverged {
        func: f.name.clone(),
        rounds: MAX_ROUNDS,
    })
}

/// Attempt to color; on failure return the set of vregs to spill.
fn try_color(
    f: &VFunc,
    target: &TargetSpec,
    g: &Graph,
    no_spill_from: VR,
) -> Result<Allocation, Vec<VR>> {
    let n = f.classes.len();
    // Preference-ordered color pools, one per (class, across-call)
    // combination, materialized once per coloring attempt instead of a
    // fresh Vec per query. Order matches the seed implementation:
    // caller-saved first (free), callee-saved fallback; across-call
    // nodes are restricted to callee-saved.
    let int_callee: Vec<u8> = target.int_callee.iter().map(|r| r.0).collect();
    let int_any: Vec<u8> = target
        .int_caller
        .iter()
        .map(|r| r.0)
        .chain(int_callee.iter().copied())
        .collect();
    let float_callee: Vec<u8> = target.float_callee.clone();
    let float_any: Vec<u8> = target
        .float_caller
        .iter()
        .chain(float_callee.iter())
        .copied()
        .collect();
    let avail = |v: VR| -> &[u8] {
        match (f.class_of(v), g.across_call[v as usize]) {
            (RegClass::Int, true) => &int_callee,
            (RegClass::Int, false) => &int_any,
            (RegClass::Float, true) => &float_callee,
            (RegClass::Float, false) => &float_any,
        }
    };

    let row_count =
        |r: &[u64]| -> usize { r.iter().map(|w| w.count_ones() as usize).sum() };
    let mut degree: Vec<usize> = (0..n).map(|v| row_count(g.adj.row(v))).collect();
    let mut removed = vec![false; n];
    let mut stack: Vec<(VR, bool)> = Vec::new(); // (vreg, may_spill)
    let mut remaining: usize = n;

    while remaining > 0 {
        // Find a low-degree node.
        let mut picked = None;
        for v in 0..n as VR {
            if !removed[v as usize] && degree[v as usize] < avail(v).len() {
                picked = Some((v, false));
                break;
            }
        }
        // Otherwise pick the cheapest spill candidate. Spill temps
        // (vregs >= `no_spill_from`) are passed over while any original
        // range remains: spilling them again cannot reduce pressure.
        if picked.is_none() {
            let mut best: Option<(f64, VR)> = None;
            let mut best_any: Option<(f64, VR)> = None;
            for v in 0..n as VR {
                if removed[v as usize] {
                    continue;
                }
                let d = degree[v as usize].max(1) as f64;
                let score = g.cost[v as usize] as f64 / d;
                if best_any.map(|(s, _)| score < s).unwrap_or(true) {
                    best_any = Some((score, v));
                }
                if v < no_spill_from && best.map(|(s, _)| score < s).unwrap_or(true) {
                    best = Some((score, v));
                }
            }
            picked = best.or(best_any).map(|(_, v)| (v, true));
        }
        let (v, may_spill) = picked.expect("nonempty");
        removed[v as usize] = true;
        remaining -= 1;
        for w in iter_bits(g.adj.row(v as usize)) {
            if !removed[w as usize] {
                degree[w as usize] -= 1;
            }
        }
        stack.push((v, may_spill));
    }

    let mut assign: Vec<Option<u8>> = vec![None; n];
    let mut spilled: Vec<VR> = Vec::new();
    while let Some((v, may_spill)) = stack.pop() {
        // Physical register numbers on both machines fit in 0..32, so
        // the taken-color set is one machine word.
        let mut taken: u64 = 0;
        for w in iter_bits(g.adj.row(v as usize)) {
            if let Some(c) = assign[w as usize] {
                taken |= 1 << c;
            }
        }
        // Color-preference: reuse the source color of a move when free
        // would require move metadata; keep it simple and take the first
        // free color in preference order.
        match avail(v).iter().find(|&&c| taken & (1 << c) == 0) {
            Some(&c) => assign[v as usize] = Some(c),
            None => {
                debug_assert!(may_spill || row_count(g.adj.row(v as usize)) >= avail(v).len());
                spilled.push(v);
            }
        }
    }
    if !spilled.is_empty() {
        return Err(spilled);
    }

    let mut used_int_callee: Vec<u8> = Vec::new();
    let mut used_float_callee: Vec<u8> = Vec::new();
    for v in 0..n as VR {
        if let Some(c) = assign[v as usize] {
            match f.class_of(v) {
                RegClass::Int => {
                    if target.int_callee.iter().any(|r| r.0 == c)
                        && !used_int_callee.contains(&c)
                    {
                        used_int_callee.push(c);
                    }
                }
                RegClass::Float => {
                    if target.float_callee.contains(&c) && !used_float_callee.contains(&c) {
                        used_float_callee.push(c);
                    }
                }
            }
        }
    }
    used_int_callee.sort_unstable();
    used_float_callee.sort_unstable();
    Ok(Allocation {
        assign,
        used_int_callee,
        used_float_callee,
    })
}

/// Rewrite spilled vregs: each use reloads into a fresh temp, each def
/// stores from a fresh temp. Parameters that spill are handled by the
/// prologue (emission), which stores the incoming argument directly.
fn rewrite_spills(f: &mut VFunc, spills: &[VR]) {
    let mut slot_of: Vec<Option<u32>> = vec![None; f.classes.len()];
    for &v in spills {
        let s = f.num_spills;
        f.num_spills += 1;
        slot_of[v as usize] = Some(s);
    }
    // Spilled parameters are stored by the prologue at emission time
    // (the incoming argument register or stack word goes straight to the
    // spill slot).
    for &(p, _) in &f.params {
        if let Some(s) = slot_of[p as usize] {
            f.spilled_params.push((p, s));
        }
    }

    let nblocks = f.blocks.len();
    for bi in 0..nblocks {
        let mut old = std::mem::take(&mut f.blocks[bi]);
        let mut new = VBlock::default();
        let mut uses = Vec::new();
        for mut inst in old.insts.drain(..) {
            uses.clear();
            inst.uses(&mut uses);
            // Reload spilled uses into temps. Dedupe in first-use order:
            // the reload sequence (and the temp vreg numbering it creates)
            // must be deterministic, or later spill rounds see different
            // graphs on every run.
            dedup_in_order(&mut uses);
            for &u in &uses {
                if let Some(s) = slot_of[u as usize] {
                    let class = f.class_of(u);
                    let t = f.new_vreg(class);
                    new.insts.push(VInst::FrameLoad {
                        dst: t,
                        fref: FrameRef::Spill(s),
                        float: class == RegClass::Float,
                    });
                    substitute(&mut inst, u, t);
                }
            }
            // Def → temp + store.
            if let Some(d) = inst.def() {
                if let Some(s) = slot_of[d as usize] {
                    let class = f.class_of(d);
                    let t = f.new_vreg(class);
                    substitute_def(&mut inst, d, t);
                    new.insts.push(inst);
                    new.insts.push(VInst::FrameStore {
                        src: t,
                        fref: FrameRef::Spill(s),
                        float: class == RegClass::Float,
                    });
                    continue;
                }
            }
            new.insts.push(inst);
        }
        // Terminator uses.
        let mut term = old.term.take().expect("terminated");
        uses.clear();
        term.uses(&mut uses);
        dedup_in_order(&mut uses);
        for &u in &uses {
            if let Some(s) = slot_of[u as usize] {
                let class = f.class_of(u);
                let t = f.new_vreg(class);
                new.insts.push(VInst::FrameLoad {
                    dst: t,
                    fref: FrameRef::Spill(s),
                    float: class == RegClass::Float,
                });
                substitute_term(&mut term, u, t);
            }
        }
        new.term = Some(term);
        f.blocks[bi] = new;
    }
}

/// Remove duplicates keeping the first occurrence of each value (the
/// lists are a handful of entries, so the quadratic scan is fine).
fn dedup_in_order(v: &mut Vec<VR>) {
    let mut i = 0;
    while i < v.len() {
        if v[..i].contains(&v[i]) {
            v.remove(i);
        } else {
            i += 1;
        }
    }
}

fn substitute(inst: &mut VInst, from: VR, to: VR) {
    let fix = |v: &mut VR| {
        if *v == from {
            *v = to;
        }
    };
    let fix_src = |s: &mut crate::vcode::VSrc| {
        if let crate::vcode::VSrc::V(v) = s {
            if *v == from {
                *v = to;
            }
        }
    };
    match inst {
        VInst::Alu { a, b, .. } => {
            fix(a);
            fix_src(b);
        }
        VInst::Mov { src, .. }
        | VInst::FMov { src, .. }
        | VInst::FNeg { src, .. }
        | VInst::ItoF { src, .. }
        | VInst::FtoI { src, .. } => fix(src),
        VInst::Load { base, .. } | VInst::LoadF { base, .. } => fix(base),
        VInst::Store { src, base, .. } | VInst::StoreF { src, base, .. } => {
            fix(src);
            fix(base);
        }
        VInst::FrameStore { src, .. } => fix(src),
        VInst::Fpu { a, b, .. } => {
            fix(a);
            fix(b);
        }
        VInst::Call { args, .. } => args.iter_mut().for_each(fix),
        VInst::Li { .. } | VInst::La { .. } | VInst::FrameAddr { .. } | VInst::FrameLoad { .. } => {}
    }
}

fn substitute_def(inst: &mut VInst, from: VR, to: VR) {
    match inst {
        VInst::Alu { dst, .. }
        | VInst::Li { dst, .. }
        | VInst::La { dst, .. }
        | VInst::Mov { dst, .. }
        | VInst::Load { dst, .. }
        | VInst::LoadF { dst, .. }
        | VInst::FrameAddr { dst, .. }
        | VInst::FrameLoad { dst, .. }
        | VInst::Fpu { dst, .. }
        | VInst::FNeg { dst, .. }
        | VInst::FMov { dst, .. }
        | VInst::ItoF { dst, .. }
        | VInst::FtoI { dst, .. } if *dst == from => *dst = to,
        VInst::Call { dst, .. } if *dst == Some(from) => *dst = Some(to),
        _ => {}
    }
}

/// Order-independent view of the dataflow facts feeding the allocator:
/// per-block live-in/live-out (sorted vreg lists), interference edges
/// (sorted, deduped, `a < b`), across-call markers, and spill costs.
///
/// Produced by both [`dataflow_snapshot`] (the production bitset
/// implementation) and [`reference::snapshot`] (the retained `HashSet`
/// seed implementation) so differential tests can assert the two agree
/// bit for bit on arbitrary programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowSnapshot {
    pub live_in: Vec<Vec<VR>>,
    pub live_out: Vec<Vec<VR>>,
    pub edges: Vec<(VR, VR)>,
    pub across_call: Vec<bool>,
    pub cost: Vec<u64>,
}

/// Snapshot the production (dense bitset, worklist) dataflow for `f`.
pub fn dataflow_snapshot(f: &VFunc, depth: &[u32]) -> DataflowSnapshot {
    let lv = compute_liveness(f);
    let g = build_graph(f, &lv, depth);
    let n = f.classes.len();
    let nb = f.blocks.len();
    let mut edges = Vec::new();
    for v in 0..n {
        for w in iter_bits(g.adj.row(v)) {
            if (v as VR) < w {
                edges.push((v as VR, w));
            }
        }
    }
    DataflowSnapshot {
        live_in: (0..nb).map(|i| iter_bits(lv.live_in.row(i)).collect()).collect(),
        live_out: (0..nb).map(|i| iter_bits(lv.live_out.row(i)).collect()).collect(),
        edges,
        across_call: g.across_call,
        cost: g.cost,
    }
}

/// The seed `HashSet` dataflow, retained verbatim as a differential
/// oracle for the bitset fast path. Not used by compilation.
pub mod reference {
    use std::collections::HashSet;

    use br_ir::BlockId;

    use super::{DataflowSnapshot, VFunc, VInst, VR};

    /// Snapshot the reference dataflow for `f` (same shape as
    /// [`super::dataflow_snapshot`]).
    pub fn snapshot(f: &VFunc, depth: &[u32]) -> DataflowSnapshot {
        let (live_in, live_out) = liveness(f);
        let n = f.classes.len();
        let mut adj: Vec<HashSet<VR>> = vec![HashSet::new(); n];
        let mut across_call = vec![false; n];
        let mut cost = vec![0u64; n];
        let add_edge = |adj: &mut [HashSet<VR>], a: VR, b: VR| {
            if a != b && f.class_of(a) == f.class_of(b) {
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
        };
        for i in 0..f.params.len() {
            for j in i + 1..f.params.len() {
                add_edge(&mut adj, f.params[i].0, f.params[j].0);
            }
        }
        let mut uses = Vec::new();
        for (bi, b) in f.blocks.iter().enumerate() {
            let w = 10u64.pow(depth.get(bi).copied().unwrap_or(0).min(9));
            let mut live: HashSet<VR> = live_out[bi].iter().copied().collect();
            uses.clear();
            b.term().uses(&mut uses);
            for &u in &uses {
                cost[u as usize] += w;
                live.insert(u);
            }
            for inst in b.insts.iter().rev() {
                if let Some(d) = inst.def() {
                    cost[d as usize] += w;
                    live.remove(&d);
                    let move_src = match inst {
                        VInst::Mov { src, .. } | VInst::FMov { src, .. } => Some(*src),
                        _ => None,
                    };
                    for &l in &live {
                        if Some(l) != move_src {
                            add_edge(&mut adj, d, l);
                        }
                    }
                }
                if inst.is_call() {
                    for &l in &live {
                        across_call[l as usize] = true;
                    }
                }
                uses.clear();
                inst.uses(&mut uses);
                for &u in &uses {
                    cost[u as usize] += w;
                    live.insert(u);
                }
            }
        }
        let mut edges = Vec::new();
        for (v, s) in adj.iter().enumerate() {
            for &w in s {
                if (v as VR) < w {
                    edges.push((v as VR, w));
                }
            }
        }
        edges.sort_unstable();
        DataflowSnapshot {
            live_in,
            live_out,
            edges,
            across_call,
            cost,
        }
    }

    /// The seed whole-program-sweep liveness, returning sorted vreg
    /// lists per block.
    #[allow(clippy::type_complexity)]
    fn liveness(f: &VFunc) -> (Vec<Vec<VR>>, Vec<Vec<VR>>) {
        let n = f.blocks.len();
        let mut gen = vec![HashSet::new(); n];
        let mut kill = vec![HashSet::new(); n];
        let mut uses = Vec::new();
        for (i, b) in f.blocks.iter().enumerate() {
            for inst in &b.insts {
                uses.clear();
                inst.uses(&mut uses);
                for &u in &uses {
                    if !kill[i].contains(&u) {
                        gen[i].insert(u);
                    }
                }
                if let Some(d) = inst.def() {
                    kill[i].insert(d);
                }
            }
            uses.clear();
            b.term().uses(&mut uses);
            for &u in &uses {
                if !kill[i].contains(&u) {
                    gen[i].insert(u);
                }
            }
        }
        let succs: Vec<Vec<BlockId>> = f.blocks.iter().map(|b| b.term().successors()).collect();
        let mut live_in: Vec<HashSet<VR>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<VR>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let mut out: HashSet<VR> = HashSet::new();
                for s in &succs[i] {
                    out.extend(live_in[s.0 as usize].iter().copied());
                }
                let mut inn = out.clone();
                for k in &kill[i] {
                    inn.remove(k);
                }
                inn.extend(gen[i].iter().copied());
                if out != live_out[i] || inn != live_in[i] {
                    live_out[i] = out;
                    live_in[i] = inn;
                    changed = true;
                }
            }
        }
        let sorted = |sets: Vec<HashSet<VR>>| -> Vec<Vec<VR>> {
            sets.into_iter()
                .map(|s| {
                    let mut v: Vec<VR> = s.into_iter().collect();
                    v.sort_unstable();
                    v
                })
                .collect()
        };
        (sorted(live_in), sorted(live_out))
    }
}

fn substitute_term(term: &mut crate::vcode::VTerm, from: VR, to: VR) {
    use crate::vcode::{VSrc, VTerm};
    match term {
        VTerm::Branch { a, b, .. } => {
            if *a == from {
                *a = to;
            }
            if let VSrc::V(v) = b {
                if *v == from {
                    *v = to;
                }
            }
        }
        VTerm::Switch { idx, .. } if *idx == from => *idx = to,
        VTerm::Ret(Some((VSrc::V(v), _))) if *v == from => *v = to,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isel::{select, ConstPool};
    use br_frontend::compile;
    use br_isa::Machine;

    fn alloc_for(src: &str, name: &str, machine: Machine) -> (VFunc, Allocation) {
        let m = compile(src).unwrap();
        let f = m.function(name).unwrap();
        let t = TargetSpec::for_machine(machine);
        let mut pool = ConstPool::new();
        let mut vf = select(&m, f, &t, &mut pool).unwrap();
        let depth = vec![0u32; vf.blocks.len()];
        let a = allocate(&mut vf, &t, &depth).unwrap();
        (vf, a)
    }

    /// Check that no two interfering vregs share a register by re-running
    /// liveness on the rewritten function.
    fn check_valid(f: &VFunc, a: &Allocation) {
        let lv = compute_liveness(f);
        let depth = vec![0; f.blocks.len()];
        let g = build_graph(f, &lv, &depth);
        for v in 0..f.classes.len() as VR {
            for w in iter_bits(g.adj.row(v as usize)) {
                let (cv, cw) = (a.assign[v as usize], a.assign[w as usize]);
                if let (Some(cv), Some(cw)) = (cv, cw) {
                    assert!(
                        cv != cw,
                        "interfering vregs {v} and {w} share register {cv}"
                    );
                }
            }
        }
    }

    /// The taken-color bitmask must preserve the seed behaviour: colors
    /// are picked first-free in preference order (caller-saved pool in
    /// target order, then callee-saved). Chained adds keep every
    /// intermediate live, so successive vregs walk the preference list.
    #[test]
    fn register_choice_follows_preference_order() {
        let src = "int f(int a, int b, int c, int d) {
            int e = a + b; int g = e + c; int h = g + d;
            return h + e + g + a;
        }";
        let (vf, a) = alloc_for(src, "f", Machine::Baseline);
        check_valid(&vf, &a);
        let t = TargetSpec::for_machine(Machine::Baseline);
        let pref: Vec<u8> = t.int_caller.iter().map(|r| r.0).collect();
        // No calls: every assigned register must come from the
        // caller-saved pool, and the set used must be a prefix of the
        // preference order (first-free semantics never skips a color
        // while a later one is in use).
        let mut used: Vec<u8> = a.assign.iter().flatten().copied().collect();
        used.sort_unstable();
        used.dedup();
        assert!(!used.is_empty());
        let mut prefix: Vec<u8> = pref[..used.len()].to_vec();
        prefix.sort_unstable();
        assert_eq!(used, prefix, "colors used are not a preference-order prefix");
    }

    /// The dense bitset dataflow must agree with the retained HashSet
    /// reference on a function with loops, calls, floats, and spills.
    #[test]
    fn bitset_dataflow_matches_reference() {
        let src = r#"
            int g(int x) { return x + 1; }
            float h(float x) { return x * 2.0; }
            int f(int a, int b) {
                int s = 0;
                float fs = 0.0;
                for (int i = 0; i < a; i++) {
                    s += g(i) * b;
                    fs = fs + h(1.5);
                    for (int j = 0; j < b; j++) s += j;
                }
                return s + (int)fs;
            }
        "#;
        let m = compile(src).unwrap();
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let t = TargetSpec::for_machine(machine);
            let mut pool = ConstPool::new();
            for name in ["g", "h", "f"] {
                let f = m.function(name).unwrap();
                let vf = select(&m, f, &t, &mut pool).unwrap();
                let depth: Vec<u32> = (0..vf.blocks.len() as u32).map(|b| b % 3).collect();
                assert_eq!(
                    dataflow_snapshot(&vf, &depth),
                    super::reference::snapshot(&vf, &depth),
                    "bitset dataflow diverged from reference on {name} ({machine:?})"
                );
            }
        }
    }

    #[test]
    fn simple_function_allocates_without_spills() {
        let (vf, a) = alloc_for("int f(int x, int y) { return x * y + x; }", "f", Machine::Baseline);
        assert_eq!(vf.num_spills, 0);
        check_valid(&vf, &a);
    }

    #[test]
    fn values_across_calls_get_callee_saved_registers() {
        let src = r#"
            int g(int x) { return x + 1; }
            int f(int a, int b) { int c = a * b; g(a); return c + b; }
        "#;
        let (vf, a) = alloc_for(src, "f", Machine::BranchReg);
        check_valid(&vf, &a);
        let t = TargetSpec::for_machine(Machine::BranchReg);
        // Some callee-saved register must be in use (c and b live across).
        assert!(!a.used_int_callee.is_empty());
        for &c in &a.used_int_callee {
            assert!(t.int_callee.iter().any(|r| r.0 == c));
        }
    }

    #[test]
    fn high_pressure_forces_spills_on_br_machine() {
        // 20 simultaneously-live sums exceed the BR machine's ~13
        // allocatable integer registers.
        let mut body = String::new();
        for i in 0..20 {
            body.push_str(&format!("int v{i} = a + {i};\n"));
        }
        body.push_str("g(a);\n");
        let mut sum = String::from("return 0");
        for i in 0..20 {
            sum.push_str(&format!(" + v{i}"));
        }
        sum.push(';');
        let src = format!(
            "int g(int x) {{ return x; }}\nint f(int a) {{ {body} {sum} }}"
        );
        let (vf_base, ab) = alloc_for(&src, "f", Machine::Baseline);
        let (vf_br, abr) = alloc_for(&src, "f", Machine::BranchReg);
        check_valid(&vf_base, &ab);
        check_valid(&vf_br, &abr);
        // The BR machine must spill more than the baseline — this is the
        // mechanism behind Table I's extra data references.
        assert!(vf_br.num_spills > vf_base.num_spills);
    }

    #[test]
    fn float_registers_allocated_separately() {
        let (vf, a) = alloc_for(
            "float f(float x, float y) { return x * y + x / y; }",
            "f",
            Machine::Baseline,
        );
        check_valid(&vf, &a);
        assert_eq!(vf.num_spills, 0);
    }

    #[test]
    fn spilled_code_still_colors() {
        let mut body = String::new();
        for i in 0..40 {
            body.push_str(&format!("int v{i} = a * {i};\n"));
        }
        let mut sum = String::from("return 0");
        for i in 0..40 {
            sum.push_str(&format!(" + v{i}"));
        }
        sum.push(';');
        let src = format!("int f(int a) {{ {body} {sum} }}");
        let (vf, a) = alloc_for(&src, "f", Machine::BranchReg);
        check_valid(&vf, &a);
        // Every original vreg is either assigned or was rewritten away.
        for v in 0..vf.classes.len() {
            let referenced = vf.blocks.iter().any(|b| {
                let mut u = Vec::new();
                b.insts.iter().for_each(|i| {
                    i.uses(&mut u);
                    if let Some(d) = i.def() {
                        u.push(d);
                    }
                });
                b.term().uses(&mut u);
                u.contains(&(v as VR))
            });
            if referenced {
                assert!(a.assign[v].is_some(), "live vreg {v} lacks a register");
            }
        }
    }
}
