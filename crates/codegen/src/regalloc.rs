//! Chaitin-style graph-coloring register allocation with spilling.
//!
//! Virtual registers that live across a call are restricted to
//! callee-saved registers; everything else prefers caller-saved ones.
//! Spill costs are weighted by `10^loop-depth`, the same static estimate
//! the paper's compiler uses for its branch-frequency ordering, so the
//! registers (data *and*, later, branch) go to the innermost loops first.

use std::collections::HashSet;

use br_ir::{BlockId, RegClass};

use crate::error::CodegenError;
use crate::target::TargetSpec;
use crate::vcode::{FrameRef, VBlock, VFunc, VInst, VR};

/// Result of register allocation for one function.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Physical register (within the vreg's class) per vreg; `None` for
    /// spilled vregs (which have a slot in `spill_slot` instead).
    pub assign: Vec<Option<u8>>,
    /// Callee-saved integer registers actually used (must be saved in
    /// the prologue).
    pub used_int_callee: Vec<u8>,
    /// Callee-saved float registers actually used.
    pub used_float_callee: Vec<u8>,
}

impl Allocation {
    /// The physical register assigned to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was spilled (spills are rewritten before emission,
    /// so any remaining reference to a spilled vreg is a bug).
    pub fn reg(&self, v: VR) -> u8 {
        self.assign[v as usize].expect("vreg was spilled but not rewritten")
    }
}

/// Block-level liveness over a [`VFunc`] (only the out-sets are needed
/// by the interference builder).
struct VLiveness {
    live_out: Vec<HashSet<VR>>,
}

fn compute_liveness(f: &VFunc) -> VLiveness {
    let n = f.blocks.len();
    let mut gen = vec![HashSet::new(); n];
    let mut kill = vec![HashSet::new(); n];
    let mut uses = Vec::new();
    for (i, b) in f.blocks.iter().enumerate() {
        for inst in &b.insts {
            uses.clear();
            inst.uses(&mut uses);
            for &u in &uses {
                if !kill[i].contains(&u) {
                    gen[i].insert(u);
                }
            }
            if let Some(d) = inst.def() {
                kill[i].insert(d);
            }
        }
        uses.clear();
        b.term().uses(&mut uses);
        for &u in &uses {
            if !kill[i].contains(&u) {
                gen[i].insert(u);
            }
        }
    }
    let succs: Vec<Vec<BlockId>> = f.blocks.iter().map(|b| b.term().successors()).collect();
    let mut live_in = vec![HashSet::new(); n];
    let mut live_out: Vec<HashSet<VR>> = vec![HashSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut out: HashSet<VR> = HashSet::new();
            for s in &succs[i] {
                out.extend(live_in[s.0 as usize].iter().copied());
            }
            let mut inn = out.clone();
            for k in &kill[i] {
                inn.remove(k);
            }
            inn.extend(gen[i].iter().copied());
            if out != live_out[i] || inn != live_in[i] {
                live_out[i] = out;
                live_in[i] = inn;
                changed = true;
            }
        }
    }
    VLiveness { live_out }
}

/// Interference graph (adjacency sets) plus across-call markers.
struct Graph {
    adj: Vec<HashSet<VR>>,
    across_call: Vec<bool>,
    cost: Vec<u64>,
}

fn build_graph(f: &VFunc, lv: &VLiveness, depth: &[u32]) -> Graph {
    let n = f.classes.len();
    let mut g = Graph {
        adj: vec![HashSet::new(); n],
        across_call: vec![false; n],
        cost: vec![0; n],
    };
    let add_edge = |g: &mut Graph, a: VR, b: VR| {
        if a != b && f.class_of(a) == f.class_of(b) {
            g.adj[a as usize].insert(b);
            g.adj[b as usize].insert(a);
        }
    };
    // Parameters are defined "simultaneously" at entry.
    for i in 0..f.params.len() {
        for j in i + 1..f.params.len() {
            add_edge(&mut g, f.params[i].0, f.params[j].0);
        }
    }
    let mut uses = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        let w = 10u64.pow(depth.get(bi).copied().unwrap_or(0).min(9));
        let mut live: HashSet<VR> = lv.live_out[bi].clone();
        uses.clear();
        b.term().uses(&mut uses);
        for &u in &uses {
            g.cost[u as usize] += w;
            live.insert(u);
        }
        for inst in b.insts.iter().rev() {
            if let Some(d) = inst.def() {
                g.cost[d as usize] += w;
                live.remove(&d);
                // Move sources don't interfere with the destination
                // (enables natural coalescing by same-color assignment).
                let move_src = match inst {
                    VInst::Mov { src, .. } | VInst::FMov { src, .. } => Some(*src),
                    _ => None,
                };
                for &l in &live {
                    if Some(l) != move_src {
                        add_edge(&mut g, d, l);
                    }
                }
            }
            if inst.is_call() {
                for &l in &live {
                    g.across_call[l as usize] = true;
                }
            }
            uses.clear();
            inst.uses(&mut uses);
            for &u in &uses {
                g.cost[u as usize] += w;
                live.insert(u);
            }
        }
    }
    g
}

/// Maximum spill rounds before allocation reports divergence.
const MAX_ROUNDS: u32 = 40;

/// Allocate registers for `f`, rewriting spills in place.
///
/// `depth[b]` is the loop-nesting depth of block `b` (spill-cost weight).
///
/// Fails with [`CodegenError::RegallocDiverged`] if allocation does not
/// converge within [`MAX_ROUNDS`] spill rounds — that indicates a bug
/// rather than a hard program, but it must surface as an error, not an
/// abort, so differential drivers can report and minimize it.
pub fn allocate(
    f: &mut VFunc,
    target: &TargetSpec,
    depth: &[u32],
) -> Result<Allocation, CodegenError> {
    for _ in 0..MAX_ROUNDS {
        let lv = compute_liveness(f);
        let g = build_graph(f, &lv, depth);
        match try_color(f, target, &g) {
            Ok(alloc) => return Ok(alloc),
            Err(spills) => rewrite_spills(f, &spills),
        }
    }
    Err(CodegenError::RegallocDiverged {
        func: f.name.clone(),
        rounds: MAX_ROUNDS,
    })
}

/// Attempt to color; on failure return the set of vregs to spill.
fn try_color(f: &VFunc, target: &TargetSpec, g: &Graph) -> Result<Allocation, Vec<VR>> {
    let n = f.classes.len();
    // Available colors per node.
    let avail = |v: VR| -> Vec<u8> {
        let (caller_nums, callee_nums): (Vec<u8>, Vec<u8>) = match f.class_of(v) {
            RegClass::Int => (
                target.int_caller.iter().map(|r| r.0).collect(),
                target.int_callee.iter().map(|r| r.0).collect(),
            ),
            RegClass::Float => (target.float_caller.clone(), target.float_callee.clone()),
        };
        if g.across_call[v as usize] {
            callee_nums
        } else {
            // Prefer caller-saved (free), fall back to callee-saved.
            caller_nums.into_iter().chain(callee_nums).collect()
        }
    };

    let mut degree: Vec<usize> = g.adj.iter().map(|s| s.len()).collect();
    let mut removed = vec![false; n];
    let mut stack: Vec<(VR, bool)> = Vec::new(); // (vreg, may_spill)
    let mut remaining: usize = n;

    while remaining > 0 {
        // Find a low-degree node.
        let mut picked = None;
        for v in 0..n as VR {
            if !removed[v as usize] && degree[v as usize] < avail(v).len() {
                picked = Some((v, false));
                break;
            }
        }
        // Otherwise pick the cheapest spill candidate.
        if picked.is_none() {
            let mut best: Option<(f64, VR)> = None;
            for v in 0..n as VR {
                if removed[v as usize] {
                    continue;
                }
                let d = degree[v as usize].max(1) as f64;
                let score = g.cost[v as usize] as f64 / d;
                if best.map(|(s, _)| score < s).unwrap_or(true) {
                    best = Some((score, v));
                }
            }
            picked = best.map(|(_, v)| (v, true));
        }
        let (v, may_spill) = picked.expect("nonempty");
        removed[v as usize] = true;
        remaining -= 1;
        for &w in &g.adj[v as usize] {
            if !removed[w as usize] {
                degree[w as usize] -= 1;
            }
        }
        stack.push((v, may_spill));
    }

    let mut assign: Vec<Option<u8>> = vec![None; n];
    let mut spilled: Vec<VR> = Vec::new();
    while let Some((v, may_spill)) = stack.pop() {
        let mut taken: HashSet<u8> = HashSet::new();
        for &w in &g.adj[v as usize] {
            if let Some(c) = assign[w as usize] {
                taken.insert(c);
            }
        }
        // Color-preference: reuse the source color of a move when free
        // would require move metadata; keep it simple and take the first
        // free color in preference order.
        match avail(v).into_iter().find(|c| !taken.contains(c)) {
            Some(c) => assign[v as usize] = Some(c),
            None => {
                debug_assert!(may_spill || g.adj[v as usize].len() >= avail(v).len());
                spilled.push(v);
            }
        }
    }
    if !spilled.is_empty() {
        return Err(spilled);
    }

    let mut used_int_callee: Vec<u8> = Vec::new();
    let mut used_float_callee: Vec<u8> = Vec::new();
    for v in 0..n as VR {
        if let Some(c) = assign[v as usize] {
            match f.class_of(v) {
                RegClass::Int => {
                    if target.int_callee.iter().any(|r| r.0 == c)
                        && !used_int_callee.contains(&c)
                    {
                        used_int_callee.push(c);
                    }
                }
                RegClass::Float => {
                    if target.float_callee.contains(&c) && !used_float_callee.contains(&c) {
                        used_float_callee.push(c);
                    }
                }
            }
        }
    }
    used_int_callee.sort_unstable();
    used_float_callee.sort_unstable();
    Ok(Allocation {
        assign,
        used_int_callee,
        used_float_callee,
    })
}

/// Rewrite spilled vregs: each use reloads into a fresh temp, each def
/// stores from a fresh temp. Parameters that spill are handled by the
/// prologue (emission), which stores the incoming argument directly.
fn rewrite_spills(f: &mut VFunc, spills: &[VR]) {
    let mut slot_of: Vec<Option<u32>> = vec![None; f.classes.len()];
    for &v in spills {
        let s = f.num_spills;
        f.num_spills += 1;
        slot_of[v as usize] = Some(s);
    }
    // Spilled parameters are stored by the prologue at emission time
    // (the incoming argument register or stack word goes straight to the
    // spill slot).
    for &(p, _) in &f.params {
        if let Some(s) = slot_of[p as usize] {
            f.spilled_params.push((p, s));
        }
    }

    let nblocks = f.blocks.len();
    for bi in 0..nblocks {
        let mut old = std::mem::take(&mut f.blocks[bi]);
        let mut new = VBlock::default();
        let mut uses = Vec::new();
        for mut inst in old.insts.drain(..) {
            uses.clear();
            inst.uses(&mut uses);
            // Reload spilled uses into temps. Dedupe in first-use order:
            // the reload sequence (and the temp vreg numbering it creates)
            // must be deterministic, or later spill rounds see different
            // graphs on every run.
            dedup_in_order(&mut uses);
            for &u in &uses {
                if let Some(s) = slot_of[u as usize] {
                    let class = f.class_of(u);
                    let t = f.new_vreg(class);
                    new.insts.push(VInst::FrameLoad {
                        dst: t,
                        fref: FrameRef::Spill(s),
                        float: class == RegClass::Float,
                    });
                    substitute(&mut inst, u, t);
                }
            }
            // Def → temp + store.
            if let Some(d) = inst.def() {
                if let Some(s) = slot_of[d as usize] {
                    let class = f.class_of(d);
                    let t = f.new_vreg(class);
                    substitute_def(&mut inst, d, t);
                    new.insts.push(inst);
                    new.insts.push(VInst::FrameStore {
                        src: t,
                        fref: FrameRef::Spill(s),
                        float: class == RegClass::Float,
                    });
                    continue;
                }
            }
            new.insts.push(inst);
        }
        // Terminator uses.
        let mut term = old.term.take().expect("terminated");
        uses.clear();
        term.uses(&mut uses);
        dedup_in_order(&mut uses);
        for &u in &uses {
            if let Some(s) = slot_of[u as usize] {
                let class = f.class_of(u);
                let t = f.new_vreg(class);
                new.insts.push(VInst::FrameLoad {
                    dst: t,
                    fref: FrameRef::Spill(s),
                    float: class == RegClass::Float,
                });
                substitute_term(&mut term, u, t);
            }
        }
        new.term = Some(term);
        f.blocks[bi] = new;
    }
}

/// Remove duplicates keeping the first occurrence of each value (the
/// lists are a handful of entries, so the quadratic scan is fine).
fn dedup_in_order(v: &mut Vec<VR>) {
    let mut i = 0;
    while i < v.len() {
        if v[..i].contains(&v[i]) {
            v.remove(i);
        } else {
            i += 1;
        }
    }
}

fn substitute(inst: &mut VInst, from: VR, to: VR) {
    let fix = |v: &mut VR| {
        if *v == from {
            *v = to;
        }
    };
    let fix_src = |s: &mut crate::vcode::VSrc| {
        if let crate::vcode::VSrc::V(v) = s {
            if *v == from {
                *v = to;
            }
        }
    };
    match inst {
        VInst::Alu { a, b, .. } => {
            fix(a);
            fix_src(b);
        }
        VInst::Mov { src, .. }
        | VInst::FMov { src, .. }
        | VInst::FNeg { src, .. }
        | VInst::ItoF { src, .. }
        | VInst::FtoI { src, .. } => fix(src),
        VInst::Load { base, .. } | VInst::LoadF { base, .. } => fix(base),
        VInst::Store { src, base, .. } | VInst::StoreF { src, base, .. } => {
            fix(src);
            fix(base);
        }
        VInst::FrameStore { src, .. } => fix(src),
        VInst::Fpu { a, b, .. } => {
            fix(a);
            fix(b);
        }
        VInst::Call { args, .. } => args.iter_mut().for_each(fix),
        VInst::Li { .. } | VInst::La { .. } | VInst::FrameAddr { .. } | VInst::FrameLoad { .. } => {}
    }
}

fn substitute_def(inst: &mut VInst, from: VR, to: VR) {
    match inst {
        VInst::Alu { dst, .. }
        | VInst::Li { dst, .. }
        | VInst::La { dst, .. }
        | VInst::Mov { dst, .. }
        | VInst::Load { dst, .. }
        | VInst::LoadF { dst, .. }
        | VInst::FrameAddr { dst, .. }
        | VInst::FrameLoad { dst, .. }
        | VInst::Fpu { dst, .. }
        | VInst::FNeg { dst, .. }
        | VInst::FMov { dst, .. }
        | VInst::ItoF { dst, .. }
        | VInst::FtoI { dst, .. } if *dst == from => *dst = to,
        VInst::Call { dst, .. } if *dst == Some(from) => *dst = Some(to),
        _ => {}
    }
}

fn substitute_term(term: &mut crate::vcode::VTerm, from: VR, to: VR) {
    use crate::vcode::{VSrc, VTerm};
    match term {
        VTerm::Branch { a, b, .. } => {
            if *a == from {
                *a = to;
            }
            if let VSrc::V(v) = b {
                if *v == from {
                    *v = to;
                }
            }
        }
        VTerm::Switch { idx, .. } if *idx == from => *idx = to,
        VTerm::Ret(Some((VSrc::V(v), _))) if *v == from => *v = to,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isel::{select, ConstPool};
    use br_frontend::compile;
    use br_isa::Machine;

    fn alloc_for(src: &str, name: &str, machine: Machine) -> (VFunc, Allocation) {
        let m = compile(src).unwrap();
        let f = m.function(name).unwrap();
        let t = TargetSpec::for_machine(machine);
        let mut pool = ConstPool::new();
        let mut vf = select(&m, f, &t, &mut pool).unwrap();
        let depth = vec![0u32; vf.blocks.len()];
        let a = allocate(&mut vf, &t, &depth).unwrap();
        (vf, a)
    }

    /// Check that no two interfering vregs share a register by re-running
    /// liveness on the rewritten function.
    fn check_valid(f: &VFunc, a: &Allocation) {
        let lv = compute_liveness(f);
        let depth = vec![0; f.blocks.len()];
        let g = build_graph(f, &lv, &depth);
        for v in 0..f.classes.len() as VR {
            for &w in &g.adj[v as usize] {
                let (cv, cw) = (a.assign[v as usize], a.assign[w as usize]);
                if let (Some(cv), Some(cw)) = (cv, cw) {
                    assert!(
                        cv != cw,
                        "interfering vregs {v} and {w} share register {cv}"
                    );
                }
            }
        }
    }

    #[test]
    fn simple_function_allocates_without_spills() {
        let (vf, a) = alloc_for("int f(int x, int y) { return x * y + x; }", "f", Machine::Baseline);
        assert_eq!(vf.num_spills, 0);
        check_valid(&vf, &a);
    }

    #[test]
    fn values_across_calls_get_callee_saved_registers() {
        let src = r#"
            int g(int x) { return x + 1; }
            int f(int a, int b) { int c = a * b; g(a); return c + b; }
        "#;
        let (vf, a) = alloc_for(src, "f", Machine::BranchReg);
        check_valid(&vf, &a);
        let t = TargetSpec::for_machine(Machine::BranchReg);
        // Some callee-saved register must be in use (c and b live across).
        assert!(!a.used_int_callee.is_empty());
        for &c in &a.used_int_callee {
            assert!(t.int_callee.iter().any(|r| r.0 == c));
        }
    }

    #[test]
    fn high_pressure_forces_spills_on_br_machine() {
        // 20 simultaneously-live sums exceed the BR machine's ~13
        // allocatable integer registers.
        let mut body = String::new();
        for i in 0..20 {
            body.push_str(&format!("int v{i} = a + {i};\n"));
        }
        body.push_str("g(a);\n");
        let mut sum = String::from("return 0");
        for i in 0..20 {
            sum.push_str(&format!(" + v{i}"));
        }
        sum.push(';');
        let src = format!(
            "int g(int x) {{ return x; }}\nint f(int a) {{ {body} {sum} }}"
        );
        let (vf_base, ab) = alloc_for(&src, "f", Machine::Baseline);
        let (vf_br, abr) = alloc_for(&src, "f", Machine::BranchReg);
        check_valid(&vf_base, &ab);
        check_valid(&vf_br, &abr);
        // The BR machine must spill more than the baseline — this is the
        // mechanism behind Table I's extra data references.
        assert!(vf_br.num_spills > vf_base.num_spills);
    }

    #[test]
    fn float_registers_allocated_separately() {
        let (vf, a) = alloc_for(
            "float f(float x, float y) { return x * y + x / y; }",
            "f",
            Machine::Baseline,
        );
        check_valid(&vf, &a);
        assert_eq!(vf.num_spills, 0);
    }

    #[test]
    fn spilled_code_still_colors() {
        let mut body = String::new();
        for i in 0..40 {
            body.push_str(&format!("int v{i} = a * {i};\n"));
        }
        let mut sum = String::from("return 0");
        for i in 0..40 {
            sum.push_str(&format!(" + v{i}"));
        }
        sum.push(';');
        let src = format!("int f(int a) {{ {body} {sum} }}");
        let (vf, a) = alloc_for(&src, "f", Machine::BranchReg);
        check_valid(&vf, &a);
        // Every original vreg is either assigned or was rewritten away.
        for v in 0..vf.classes.len() {
            let referenced = vf.blocks.iter().any(|b| {
                let mut u = Vec::new();
                b.insts.iter().for_each(|i| {
                    i.uses(&mut u);
                    if let Some(d) = i.def() {
                        u.push(d);
                    }
                });
                b.term().uses(&mut u);
                u.contains(&(v as VR))
            });
            if referenced {
                assert!(a.assign[v].is_some(), "live vreg {v} lacks a register");
            }
        }
    }
}
