//! Instruction selection: `br-ir` → virtual machine code ([`VFunc`]).
//!
//! Selection is target-parametric only where the calling convention
//! matters (argument-overflow accounting); the instruction set seen here
//! is the common core of both machines. Control flow stays abstract
//! ([`VTerm`]) until finalization, which is where the two machines
//! genuinely diverge.

use std::collections::HashMap;

use br_ir::{
    BinOp, CastKind, Cond, Function, Inst, Module, Operand, RegClass, UnOp, Width,
};
use br_isa::{AluOp, Cc, FpuOp, MemWidth};

use crate::error::CodegenError;
use crate::target::TargetSpec;
use crate::vcode::{FrameRef, VBlock, VFunc, VInst, VSrc, VTerm, VR};

/// Pool of float constants materialized as anonymous globals (the
/// machines have no float immediates).
#[derive(Debug, Default)]
pub struct ConstPool {
    by_bits: HashMap<u32, String>,
}

impl ConstPool {
    /// Create an empty pool.
    pub fn new() -> ConstPool {
        ConstPool::default()
    }

    /// Symbol name holding the 32-bit pattern of `v`.
    pub fn float(&mut self, v: f32) -> String {
        let bits = v.to_bits();
        let n = self.by_bits.len();
        self.by_bits
            .entry(bits)
            .or_insert_with(|| format!("__fc{n}"))
            .clone()
    }

    /// Drain into `(name, bits)` pairs for the data segment.
    pub fn into_items(self) -> Vec<(String, u32)> {
        let mut v: Vec<(String, u32)> = self
            .by_bits
            .into_iter()
            .map(|(bits, name)| (name, bits))
            .collect();
        v.sort();
        v
    }
}

/// Map an IR condition to a machine condition code.
pub fn cond_to_cc(c: Cond) -> Cc {
    match c {
        Cond::Eq => Cc::Eq,
        Cond::Ne => Cc::Ne,
        Cond::Lt => Cc::Lt,
        Cond::Le => Cc::Le,
        Cond::Gt => Cc::Gt,
        Cond::Ge => Cc::Ge,
    }
}

/// Select instructions for `func`.
///
/// Fails with [`CodegenError::UnterminatedBlock`] when the incoming IR
/// has a block without a terminator; downstream passes rely on every
/// vcode block being terminated.
pub fn select(
    module: &Module,
    func: &Function,
    _target: &TargetSpec,
    pool: &mut ConstPool,
) -> Result<VFunc, CodegenError> {
    let mut vf = VFunc {
        name: func.name.clone(),
        blocks: (0..func.blocks.len()).map(|_| VBlock::default()).collect(),
        classes: func.vregs.clone(),
        params: func
            .params
            .iter()
            .map(|(v, t)| (v.0, t.is_float()))
            .collect(),
        slots: func.slots.iter().map(|s| (s.size, s.align)).collect(),
        num_spills: 0,
        spilled_params: Vec::new(),
        max_out_args: 0,
        has_call: false,
    };

    for (bid, block) in func.iter_blocks() {
        let mut out = VBlock::default();
        for inst in &block.insts {
            sel_inst(module, func, inst, &mut vf, &mut out, pool);
        }
        vf.blocks[bid.0 as usize] = out;
    }
    vf.has_call = vf
        .blocks
        .iter()
        .any(|b| b.insts.iter().any(|i| i.is_call()));
    for (bi, b) in vf.blocks.iter().enumerate() {
        if b.term.is_none() {
            return Err(CodegenError::UnterminatedBlock {
                func: func.name.clone(),
                block: bi as u32,
            });
        }
    }
    Ok(vf)
}

/// Force an IR operand into a vreg of the right class.
fn as_vr(
    o: &Operand,
    float: bool,
    vf: &mut VFunc,
    out: &mut VBlock,
    pool: &mut ConstPool,
) -> VR {
    match o {
        Operand::Reg(v) => v.0,
        Operand::Const(c) => {
            if float {
                return as_vr(&Operand::FConst(*c as f32), true, vf, out, pool);
            }
            let t = vf.new_vreg(RegClass::Int);
            out.insts.push(VInst::Li {
                dst: t,
                val: *c as i32,
            });
            t
        }
        Operand::FConst(c) => {
            let addr = vf.new_vreg(RegClass::Int);
            let t = vf.new_vreg(RegClass::Float);
            out.insts.push(VInst::La {
                dst: addr,
                sym: pool.float(*c),
            });
            out.insts.push(VInst::LoadF {
                dst: t,
                base: addr,
                off: 0,
            });
            t
        }
    }
}

/// IR operand → VSrc (immediates stay symbolic; emission fixes ranges).
fn as_vsrc(o: &Operand, vf: &mut VFunc, out: &mut VBlock, pool: &mut ConstPool) -> VSrc {
    match o {
        Operand::Reg(v) => VSrc::V(v.0),
        Operand::Const(c) => VSrc::Imm(*c as i32),
        Operand::FConst(_) => VSrc::V(as_vr(o, true, vf, out, pool)),
    }
}

fn width_mem(w: Width) -> MemWidth {
    match w {
        Width::Byte => MemWidth::Byte,
        Width::Word | Width::Float => MemWidth::Word,
    }
}

fn sel_inst(
    module: &Module,
    func: &Function,
    inst: &Inst,
    vf: &mut VFunc,
    out: &mut VBlock,
    pool: &mut ConstPool,
) {
    match inst {
        Inst::Bin { op, dst, a, b } => sel_bin(*op, dst.0, a, b, vf, out, pool),
        Inst::Un { op, dst, a } => match op {
            UnOp::Neg => {
                let zero = vf.new_vreg(RegClass::Int);
                out.insts.push(VInst::Li { dst: zero, val: 0 });
                let av = as_vr(a, false, vf, out, pool);
                out.insts.push(VInst::Alu {
                    op: AluOp::Sub,
                    dst: dst.0,
                    a: zero,
                    b: VSrc::V(av),
                });
            }
            UnOp::Not => {
                let av = as_vr(a, false, vf, out, pool);
                out.insts.push(VInst::Alu {
                    op: AluOp::Xor,
                    dst: dst.0,
                    a: av,
                    b: VSrc::Imm(-1),
                });
            }
            UnOp::FNeg => {
                let av = as_vr(a, true, vf, out, pool);
                out.insts.push(VInst::FNeg { dst: dst.0, src: av });
            }
        },
        Inst::Copy { dst, a } => {
            let float = func.class_of(*dst) == RegClass::Float;
            match (a, float) {
                (Operand::Const(c), false) => out.insts.push(VInst::Li {
                    dst: dst.0,
                    val: *c as i32,
                }),
                (Operand::Reg(s), false) => out.insts.push(VInst::Mov {
                    dst: dst.0,
                    src: s.0,
                }),
                (Operand::Reg(s), true) => out.insts.push(VInst::FMov {
                    dst: dst.0,
                    src: s.0,
                }),
                (other, _) => {
                    let v = as_vr(other, float, vf, out, pool);
                    out.insts.push(if float {
                        VInst::FMov { dst: dst.0, src: v }
                    } else {
                        VInst::Mov { dst: dst.0, src: v }
                    });
                }
            }
        }
        Inst::Cast { kind, dst, a } => match kind {
            CastKind::IntToFloat => {
                let av = as_vr(a, false, vf, out, pool);
                out.insts.push(VInst::ItoF { dst: dst.0, src: av });
            }
            CastKind::FloatToInt => {
                let av = as_vr(a, true, vf, out, pool);
                out.insts.push(VInst::FtoI { dst: dst.0, src: av });
            }
        },
        Inst::Load {
            dst,
            base,
            off,
            width,
        } => {
            let b = as_vr(base, false, vf, out, pool);
            match width {
                Width::Float => out.insts.push(VInst::LoadF {
                    dst: dst.0,
                    base: b,
                    off: *off,
                }),
                w => out.insts.push(VInst::Load {
                    w: width_mem(*w),
                    dst: dst.0,
                    base: b,
                    off: *off,
                }),
            }
        }
        Inst::Store {
            a,
            base,
            off,
            width,
        } => {
            let b = as_vr(base, false, vf, out, pool);
            match width {
                Width::Float => {
                    let s = as_vr(a, true, vf, out, pool);
                    out.insts.push(VInst::StoreF {
                        src: s,
                        base: b,
                        off: *off,
                    });
                }
                w => {
                    let s = as_vr(a, false, vf, out, pool);
                    out.insts.push(VInst::Store {
                        w: width_mem(*w),
                        src: s,
                        base: b,
                        off: *off,
                    });
                }
            }
        }
        Inst::AddrOf { dst, sym, off } => {
            let name = module.symbol_name(*sym).to_string();
            if *off == 0 {
                out.insts.push(VInst::La { dst: dst.0, sym: name });
            } else {
                let t = vf.new_vreg(RegClass::Int);
                out.insts.push(VInst::La { dst: t, sym: name });
                out.insts.push(VInst::Alu {
                    op: AluOp::Add,
                    dst: dst.0,
                    a: t,
                    b: VSrc::Imm(*off),
                });
            }
        }
        Inst::FrameAddr { dst, slot, off } => out.insts.push(VInst::FrameAddr {
            dst: dst.0,
            fref: FrameRef::Slot(slot.0),
            off: *off,
        }),
        Inst::Call { dst, func: f, args } => {
            let name = module.symbol_name(*f).to_string();
            let mut avs = Vec::with_capacity(args.len());
            for a in args {
                let float = matches!(a, Operand::FConst(_))
                    || matches!(a, Operand::Reg(v) if func.class_of(*v) == RegClass::Float);
                avs.push(as_vr(a, float, vf, out, pool));
            }
            out.insts.push(VInst::Call {
                func: name,
                args: avs,
                dst: dst.map(|d| d.0),
            });
        }
        Inst::Jump(t) => out.term = Some(VTerm::Jump(*t)),
        Inst::Branch {
            cond,
            a,
            b,
            float,
            then_bb,
            else_bb,
        } => {
            let av = as_vr(a, *float, vf, out, pool);
            let bv = if *float {
                VSrc::V(as_vr(b, true, vf, out, pool))
            } else {
                as_vsrc(b, vf, out, pool)
            };
            out.term = Some(VTerm::Branch {
                cc: cond_to_cc(*cond),
                float: *float,
                a: av,
                b: bv,
                then_bb: *then_bb,
                else_bb: *else_bb,
            });
        }
        Inst::Switch {
            idx,
            base,
            targets,
            default,
        } => {
            let iv = as_vr(idx, false, vf, out, pool);
            out.term = Some(VTerm::Switch {
                idx: iv,
                base: *base as i32,
                targets: targets.clone(),
                default: *default,
            });
        }
        Inst::Ret(v) => {
            let rv = v.as_ref().map(|o| {
                let float = matches!(o, Operand::FConst(_))
                    || matches!(o, Operand::Reg(r) if func.class_of(*r) == RegClass::Float);
                if float {
                    (VSrc::V(as_vr(o, true, vf, out, pool)), true)
                } else {
                    (as_vsrc(o, vf, out, pool), false)
                }
            });
            out.term = Some(VTerm::Ret(rv));
        }
    }
}

fn sel_bin(
    op: BinOp,
    dst: VR,
    a: &Operand,
    b: &Operand,
    vf: &mut VFunc,
    out: &mut VBlock,
    pool: &mut ConstPool,
) {
    if op.is_float() {
        let fop = match op {
            BinOp::FAdd => FpuOp::FAdd,
            BinOp::FSub => FpuOp::FSub,
            BinOp::FMul => FpuOp::FMul,
            BinOp::FDiv => FpuOp::FDiv,
            _ => unreachable!(),
        };
        let av = as_vr(a, true, vf, out, pool);
        let bv = as_vr(b, true, vf, out, pool);
        out.insts.push(VInst::Fpu {
            op: fop,
            dst,
            a: av,
            b: bv,
        });
        return;
    }
    let mut aop = match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::Div => AluOp::Div,
        BinOp::Rem => AluOp::Rem,
        BinOp::And => AluOp::And,
        BinOp::Or => AluOp::Or,
        BinOp::Xor => AluOp::Xor,
        BinOp::Shl => AluOp::Sll,
        BinOp::Shr => AluOp::Srl,
        BinOp::Sar => AluOp::Sra,
        _ => unreachable!(),
    };
    let (mut a, mut b) = (*a, *b);
    // Commutative ops: put a constant on the right.
    let commutative = matches!(
        aop,
        AluOp::Add | AluOp::Mul | AluOp::And | AluOp::Or | AluOp::Xor
    );
    if commutative && a.is_const() && !b.is_const() {
        std::mem::swap(&mut a, &mut b);
    }
    // Strength reduction: multiply/divide by a power of two (a classic
    // 1990 optimization; keeps the BR machine's shorter immediates honest).
    if let Operand::Const(c) = b {
        let c32 = c as i32;
        if c32 > 0 && (c32 & (c32 - 1)) == 0 {
            let shift = c32.trailing_zeros() as i64;
            match aop {
                AluOp::Mul => {
                    aop = AluOp::Sll;
                    b = Operand::Const(shift);
                }
                AluOp::Div => {
                    // Only safe for non-negative dividends in general; we
                    // keep Div for correctness (MiniC ints are signed).
                }
                _ => {}
            }
        }
    }
    let av = as_vr(&a, false, vf, out, pool);
    let bv = as_vsrc(&b, vf, out, pool);
    out.insts.push(VInst::Alu {
        op: aop,
        dst,
        a: av,
        b: bv,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_frontend::compile;
    use br_isa::Machine;

    fn select_fn(src: &str, name: &str) -> VFunc {
        let m = compile(src).unwrap();
        let f = m.function(name).unwrap();
        let t = TargetSpec::for_machine(Machine::Baseline);
        let mut pool = ConstPool::new();
        select(&m, f, &t, &mut pool).unwrap()
    }

    #[test]
    fn selects_simple_arith() {
        let vf = select_fn("int f(int a, int b) { return a + b * 2; }", "f");
        // mul-by-2 strength-reduced to a shift.
        let has_shift = vf.blocks.iter().any(|b| {
            b.insts
                .iter()
                .any(|i| matches!(i, VInst::Alu { op: AluOp::Sll, .. }))
        });
        assert!(has_shift, "expected strength reduction:\n{vf}");
        let has_mul = vf.blocks.iter().any(|b| {
            b.insts
                .iter()
                .any(|i| matches!(i, VInst::Alu { op: AluOp::Mul, .. }))
        });
        assert!(!has_mul);
    }

    #[test]
    fn call_detection_and_params() {
        let vf = select_fn(
            "int g(int x) { return x; } int f(int a) { return g(a) + 1; }",
            "f",
        );
        assert!(vf.has_call);
        assert_eq!(vf.params.len(), 1);
    }

    #[test]
    fn float_constants_go_through_pool() {
        let m = compile("float f() { return 2.5; }").unwrap();
        let f = m.function("f").unwrap();
        let t = TargetSpec::for_machine(Machine::Baseline);
        let mut pool = ConstPool::new();
        let vf = select(&m, f, &t, &mut pool).unwrap();
        let items = pool.into_items();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].1, 2.5f32.to_bits());
        let has_loadf = vf
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i, VInst::LoadF { .. })));
        assert!(has_loadf);
    }

    #[test]
    fn const_pool_dedups() {
        let mut pool = ConstPool::new();
        let a = pool.float(1.5);
        let b = pool.float(1.5);
        let c = pool.float(2.5);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pool.into_items().len(), 2);
    }

    #[test]
    fn branch_terminator_selected() {
        let vf = select_fn("int f(int a) { if (a > 3) return 1; return 0; }", "f");
        let has_branch = vf
            .blocks
            .iter()
            .any(|b| matches!(b.term, Some(VTerm::Branch { cc: Cc::Gt, .. })));
        assert!(has_branch, "{vf}");
    }

    #[test]
    fn blocks_match_ir_blocks() {
        let src = "int f(int a) { int s = 0; while (a > 0) { s += a; a--; } return s; }";
        let m = compile(src).unwrap();
        let f = m.function("f").unwrap();
        let t = TargetSpec::for_machine(Machine::Baseline);
        let mut pool = ConstPool::new();
        let vf = select(&m, f, &t, &mut pool).unwrap();
        assert_eq!(vf.blocks.len(), f.blocks.len());
        for (ib, vb) in f.blocks.iter().zip(&vf.blocks) {
            assert_eq!(ib.term().successors().len(), vb.term().successors().len());
        }
    }
}
