//! Branch-register allocation and loop hoisting of branch-target address
//! calculations — the paper's Section 5 optimization.
//!
//! Branch targets are ordered by estimated execution frequency (`10^depth`
//! summed over all branches to the same target within a loop); the
//! highest-frequency calculation is moved to the preheader of the
//! outermost enclosing loop for which a branch register can be allocated.
//! Loops containing calls require callee-saved branch registers; branch
//! registers may be shared between non-overlapping loops.

use std::collections::HashMap;

use br_ir::{Cfg, Dominators, FreqEstimate, Function, LoopForest};

use crate::target::BrOptions;
use crate::vcode::{VFunc, VInst, VTerm};

/// What a hoisted calculation computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HoistedWhat {
    /// A branch target inside the function (one `bcalc`).
    Block(u32),
    /// A function entry (a `sethi` + `bmovr` pair).
    Func(String),
}

/// One calculation placed in a preheader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hoisted {
    /// Branch register holding the target.
    pub breg: u8,
    /// The target.
    pub what: HoistedWhat,
}

/// The complete hoisting plan for one function.
#[derive(Debug, Clone, Default)]
pub struct HoistPlan {
    /// `(branch block, target block)` → branch register.
    pub target_breg: HashMap<(u32, u32), u8>,
    /// `(call block, callee name)` → branch register.
    pub call_breg: HashMap<(u32, String), u8>,
    /// Preheader block → calculations to place there.
    pub preheader: HashMap<u32, Vec<Hoisted>>,
    /// Callee-saved branch registers used (must be saved/restored).
    pub used_callee: Vec<u8>,
    /// For each block, the branch registers live in some enclosing loop
    /// (unavailable as local scratch).
    pub reserved_in: HashMap<u32, Vec<u8>>,
    /// Total number of hoisted calculations.
    pub count: u32,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum CalcKey {
    Block(u32),
    Func(String),
}

/// Build the plan. `ir` must be the IR function `vf` was selected from
/// (block ids are shared). When `reserve_stash` is set, one caller-saved
/// branch register is withheld from the pools so a leaf function can
/// stash its return address without memory traffic (the paper's
/// `b[1]=b[7]` pattern in Figure 4).
pub fn plan(ir: &Function, vf: &VFunc, opts: &BrOptions, reserve_stash: bool) -> HoistPlan {
    let mut plan = HoistPlan::default();
    if !opts.hoisting {
        return plan;
    }
    let (callee_pool, mut caller_pool) = opts.pools();
    if reserve_stash {
        caller_pool.pop();
    }
    if callee_pool.is_empty() && caller_pool.is_empty() {
        return plan;
    }

    let cfg = Cfg::new(ir);
    let dom = Dominators::new(&cfg);
    let mut loops = LoopForest::new(&cfg, &dom);
    let freq = FreqEstimate::new(ir, &loops);

    // Which blocks contain calls (for the callee-save constraint).
    let call_blocks: Vec<br_ir::BlockId> = vf
        .iter_blocks()
        .filter(|(_, b)| b.insts.iter().any(VInst::is_call))
        .map(|(id, _)| id)
        .collect();
    loops.mark_calls(&call_blocks);

    // ---- gather candidates: (loop, what) → (freq, blocks) ----
    #[derive(Default)]
    struct Cand {
        freq: u64,
        blocks: Vec<u32>,
    }
    let mut cands: HashMap<(usize, CalcKey), Cand> = HashMap::new();
    for (bid, block) in vf.iter_blocks() {
        let Some(li) = loops.innermost(bid) else {
            continue;
        };
        let f = freq.of(bid);
        let mut add = |key: CalcKey| {
            let c = cands.entry((li, key)).or_default();
            c.freq += f;
            c.blocks.push(bid.0);
        };
        match block.term() {
            VTerm::Jump(t) => add(CalcKey::Block(t.0)),
            VTerm::Branch { then_bb, .. } => add(CalcKey::Block(then_bb.0)),
            _ => {}
        }
        for inst in &block.insts {
            if let VInst::Call { func, .. } = inst {
                add(CalcKey::Func(func.clone()));
            }
        }
    }
    let mut ordered: Vec<((usize, CalcKey), Cand)> = cands.into_iter().collect();
    // The tie-break must be a *total* order over candidates: the list
    // comes out of a HashMap, so any tie left unresolved would make the
    // hoisting plan (and hence dynamic instruction counts) vary from
    // process to process.
    ordered.sort_by(|a, b| {
        b.1.freq
            .cmp(&a.1.freq)
            .then_with(|| a.1.blocks.cmp(&b.1.blocks))
            .then_with(|| a.0.cmp(&b.0))
    });

    // ---- allocate branch registers, outermost-feasible level first ----
    // A register allocated for loop L is live over L's body *plus* L's
    // preheader (where the calculation is placed). Two allocations
    // interfere when those regions intersect — checking bodies alone is
    // not enough: a sibling loop's preheader may sit inside another
    // loop's body.
    let region = |lvl: usize| -> std::collections::BTreeSet<u32> {
        let mut s: std::collections::BTreeSet<u32> =
            loops.loops[lvl].body.iter().map(|b| b.0).collect();
        if let Some(ph) = loops.loops[lvl].preheader {
            s.insert(ph.0);
        }
        s
    };
    let disjoint = |a: usize, b: usize| region(a).is_disjoint(&region(b));
    let mut assigned: HashMap<u8, Vec<usize>> = HashMap::new();
    for ((li, key), cand) in ordered {
        // Chain of loops from the innermost outward while preheaders exist.
        let mut chain = vec![li];
        let mut cur = li;
        while let Some(p) = loops.loops[cur].parent {
            if loops.loops[p].preheader.is_none() {
                break;
            }
            chain.push(p);
            cur = p;
        }
        if loops.loops[li].preheader.is_none() {
            continue; // cannot place even at the innermost level
        }
        // Try outermost first (maximum code motion).
        let mut choice: Option<(usize, u8)> = None;
        for &lvl in chain.iter().rev() {
            if loops.loops[lvl].preheader.is_none() {
                continue;
            }
            let needs_callee = loops.loops[lvl].has_call || matches!(key, CalcKey::Func(_));
            let pool: Vec<u8> = if needs_callee {
                callee_pool.clone()
            } else {
                caller_pool
                    .iter()
                    .chain(callee_pool.iter())
                    .copied()
                    .collect()
            };
            let free = pool.into_iter().find(|b| {
                assigned
                    .get(b)
                    .map(|ls| ls.iter().all(|&l| disjoint(l, lvl)))
                    .unwrap_or(true)
            });
            if let Some(b) = free {
                choice = Some((lvl, b));
                break;
            }
        }
        let Some((lvl, breg)) = choice else {
            continue; // no register: the calc stays local
        };
        let Some(ph) = loops.loops[lvl].preheader else {
            continue; // chain candidates are preheader-checked; stay safe anyway
        };
        assigned.entry(breg).or_default().push(lvl);
        if callee_pool.contains(&breg) && !plan.used_callee.contains(&breg) {
            plan.used_callee.push(breg);
        }
        let what = match &key {
            CalcKey::Block(t) => HoistedWhat::Block(*t),
            CalcKey::Func(f) => HoistedWhat::Func(f.clone()),
        };
        plan.preheader
            .entry(ph.0)
            .or_default()
            .push(Hoisted { breg, what });
        plan.count += 1;
        for b in cand.blocks {
            match &key {
                CalcKey::Block(t) => {
                    plan.target_breg.insert((b, *t), breg);
                }
                CalcKey::Func(f) => {
                    plan.call_breg.insert((b, f.clone()), breg);
                }
            }
        }
    }
    plan.used_callee.sort_unstable();

    // ---- reserved registers per block (for scratch selection) ----
    for (breg, ls) in &assigned {
        for &l in ls {
            for b in &loops.loops[l].body {
                plan.reserved_in.entry(b.0).or_default().push(*breg);
            }
            if let Some(ph) = loops.loops[l].preheader {
                plan.reserved_in.entry(ph.0).or_default().push(*breg);
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isel::{select, ConstPool};
    use crate::target::TargetSpec;
    use br_frontend::compile;
    use br_isa::Machine;

    fn plan_for(src: &str, name: &str, opts: &BrOptions) -> (HoistPlan, VFunc) {
        let m = compile(src).unwrap();
        let f = m.function(name).unwrap();
        let t = TargetSpec::for_machine(Machine::BranchReg);
        let mut pool = ConstPool::new();
        let vf = select(&m, f, &t, &mut pool).unwrap();
        (plan(f, &vf, opts, false), vf)
    }

    #[test]
    fn loop_branch_target_is_hoisted() {
        let src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }";
        let (p, _) = plan_for(src, "f", &BrOptions::default());
        assert!(p.count >= 1, "expected at least one hoisted calc: {p:?}");
        assert!(!p.preheader.is_empty());
        // No calls → caller-saved registers suffice.
        assert!(p.used_callee.is_empty());
    }

    #[test]
    fn loop_with_call_uses_callee_saved_breg() {
        let src = r#"
            int g(int x) { return x + 1; }
            int f(int n) { int s = 0; while (n > 0) { s = g(s); n--; } return s; }
        "#;
        let (p, _) = plan_for(src, "f", &BrOptions::default());
        assert!(p.count >= 1);
        assert!(
            !p.used_callee.is_empty(),
            "loop with a call must allocate callee-saved bregs: {p:?}"
        );
        // The call target itself should be hoisted.
        assert!(p.call_breg.keys().any(|(_, f)| f == "g"));
    }

    #[test]
    fn hoisting_disabled_yields_empty_plan() {
        let src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }";
        let opts = BrOptions {
            hoisting: false,
            ..Default::default()
        };
        let (p, _) = plan_for(src, "f", &opts);
        assert_eq!(p.count, 0);
        assert!(p.target_breg.is_empty());
    }

    #[test]
    fn nested_loops_allocate_distinct_registers() {
        let src = r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++)
                        s += i * j;
                return s;
            }
        "#;
        let (p, _) = plan_for(src, "f", &BrOptions::default());
        assert!(p.count >= 2, "inner and outer loop targets: {p:?}");
        // Registers assigned to overlapping (nested) loops must differ.
        let regs: Vec<u8> = p.preheader.values().flatten().map(|h| h.breg).collect();
        let mut uniq = regs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(regs.len(), uniq.len(), "{p:?}");
    }

    #[test]
    fn tiny_breg_file_limits_hoisting() {
        let src = r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++)
                        for (int k = 0; k < n; k++)
                            s += i * j * k;
                return s;
            }
        "#;
        let full = plan_for(src, "f", &BrOptions::default()).0;
        let tiny = plan_for(
            src,
            "f",
            &BrOptions {
                num_bregs: 3,
                ..Default::default()
            },
        )
        .0;
        assert!(tiny.count < full.count);
    }

    #[test]
    fn disjoint_loops_share_a_register() {
        // The straight-line block between the loops keeps the second
        // loop's preheader outside the first loop, so one register can
        // serve both (back-to-back loops would conflict: the second
        // preheader would be the first loop's header).
        let src = r#"
            int g;
            int f(int n) {
                int s = 0;
                while (n > 0) { s += n; n--; }
                g = s;
                s = g + 1;
                while (s > 10) { s -= 10; }
                return s;
            }
        "#;
        let opts = BrOptions {
            num_bregs: 3, // pool = {b1}
            ..Default::default()
        };
        let (p, _) = plan_for(src, "f", &opts);
        assert!(p.count >= 2, "{p:?}");
    }

    #[test]
    fn back_to_back_loops_do_not_share_when_preheader_is_inside() {
        // Regression test for the qsort bug: the second loop's preheader
        // is the first loop's header, so sharing one register would let
        // the second loop's calculation clobber the first loop's target.
        let src = r#"
            int f(int n) {
                int s = 0;
                while (n > 0) { s += n; n--; }
                while (s > 10) { s -= 10; }
                return s;
            }
        "#;
        let opts = BrOptions {
            num_bregs: 3, // pool = {b1}
            ..Default::default()
        };
        let (p, _) = plan_for(src, "f", &opts);
        // Only one of the two loop targets can be hoisted safely.
        assert_eq!(p.count, 1, "{p:?}");
    }
}
