//! Branch-register allocation and loop hoisting of branch-target address
//! calculations — the paper's Section 5 optimization.
//!
//! Branch targets are ordered by estimated execution frequency (`10^depth`
//! summed over all branches to the same target within a loop); the
//! highest-frequency calculation is moved to the preheader of the
//! outermost enclosing loop for which a branch register can be allocated.
//! Loops containing calls require callee-saved branch registers; branch
//! registers may be shared between non-overlapping loops.

use br_ir::{FreqEstimate, Function, LoopForest};

use crate::target::BrOptions;
use crate::vcode::{VFunc, VInst, VTerm};

/// What a hoisted calculation computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HoistedWhat {
    /// A branch target inside the function (one `bcalc`).
    Block(u32),
    /// A function entry (a `sethi` + `bmovr` pair).
    Func(String),
}

/// One calculation placed in a preheader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hoisted {
    /// Branch register holding the target.
    pub breg: u8,
    /// The target.
    pub what: HoistedWhat,
}

/// The complete hoisting plan for one function.
///
/// All per-block tables are vectors indexed by block id (the seed kept
/// hash maps keyed by block and `(block, target)` tuples); short vectors
/// read as empty, so a `Default` plan is the valid "nothing hoisted"
/// plan. Consumers go through the accessor methods.
#[derive(Debug, Clone, Default)]
pub struct HoistPlan {
    /// Per branch block: hoisted `(target block, branch register)` for
    /// the block's terminator. One terminator per block ⇒ at most one
    /// hoisted target per block.
    target_breg: Vec<Option<(u32, u8)>>,
    /// Per call block: `(callee name, branch register)` pairs.
    call_breg: Vec<Vec<(String, u8)>>,
    /// Per preheader block: calculations to place there.
    preheader: Vec<Vec<Hoisted>>,
    /// Callee-saved branch registers used (must be saved/restored).
    pub used_callee: Vec<u8>,
    /// Per block: branch registers live in some enclosing loop
    /// (unavailable as local scratch).
    reserved_in: Vec<Vec<u8>>,
    /// Total number of hoisted calculations.
    pub count: u32,
}

impl HoistPlan {
    /// Empty plan with per-block tables sized for `nblocks`.
    fn with_blocks(nblocks: usize) -> HoistPlan {
        HoistPlan {
            target_breg: vec![None; nblocks],
            call_breg: vec![Vec::new(); nblocks],
            preheader: vec![Vec::new(); nblocks],
            reserved_in: vec![Vec::new(); nblocks],
            ..HoistPlan::default()
        }
    }

    /// Branch register hoisted for the transfer `block` → `target`.
    pub fn target_breg(&self, block: u32, target: u32) -> Option<u8> {
        match self.target_breg.get(block as usize) {
            Some(&Some((t, r))) if t == target => Some(r),
            _ => None,
        }
    }

    /// Branch register hoisted for a call to `func` from `block`.
    pub fn call_breg(&self, block: u32, func: &str) -> Option<u8> {
        self.call_breg
            .get(block as usize)?
            .iter()
            .find(|(f, _)| f == func)
            .map(|&(_, r)| r)
    }

    /// Calculations placed in `block` (empty unless it is a preheader).
    pub fn preheader(&self, block: u32) -> &[Hoisted] {
        self.preheader
            .get(block as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Branch registers reserved (live for an enclosing loop) in `block`.
    pub fn reserved_in(&self, block: u32) -> &[u8] {
        self.reserved_in
            .get(block as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Every hoisted calculation, across all preheaders.
    pub fn iter_hoisted(&self) -> impl Iterator<Item = &Hoisted> {
        self.preheader.iter().flatten()
    }

    fn grow(&mut self, block: u32) {
        let need = block as usize + 1;
        if self.target_breg.len() < need {
            self.target_breg.resize(need, None);
            self.call_breg.resize(need, Vec::new());
            self.preheader.resize(need, Vec::new());
            self.reserved_in.resize(need, Vec::new());
        }
    }

    /// Record a hoisted calculation in `block`'s preheader list (grows
    /// the tables; also used by verifier tests to build plans by hand).
    pub fn add_preheader(&mut self, block: u32, h: Hoisted) {
        self.grow(block);
        self.preheader[block as usize].push(h);
    }

    /// Reserve `breg` in `block` (grows the tables; also used by
    /// verifier tests to build plans by hand).
    pub fn add_reserved(&mut self, block: u32, breg: u8) {
        self.grow(block);
        self.reserved_in[block as usize].push(breg);
    }

    fn set_target_breg(&mut self, block: u32, target: u32, breg: u8) {
        self.grow(block);
        let slot = &mut self.target_breg[block as usize];
        debug_assert!(
            slot.is_none() || *slot == Some((target, breg)),
            "block {block} hoists two distinct targets"
        );
        *slot = Some((target, breg));
    }

    fn add_call_breg(&mut self, block: u32, func: String, breg: u8) {
        self.grow(block);
        self.call_breg[block as usize].push((func, breg));
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum CalcKey {
    Block(u32),
    Func(String),
}

/// Build the plan. `ir` must be the IR function `vf` was selected from
/// (block ids are shared), and `loops` must be the loop forest of `ir`'s
/// CFG — the caller already has it for spill-cost depths, so the plan
/// takes it over instead of rebuilding the CFG, dominators, and forest.
/// When `reserve_stash` is set, one caller-saved branch register is
/// withheld from the pools so a leaf function can stash its return
/// address without memory traffic (the paper's `b[1]=b[7]` pattern in
/// Figure 4).
pub fn plan(
    ir: &Function,
    vf: &VFunc,
    opts: &BrOptions,
    reserve_stash: bool,
    mut loops: LoopForest,
) -> HoistPlan {
    if !opts.hoisting {
        return HoistPlan::default();
    }
    let (callee_pool, mut caller_pool) = opts.pools();
    if reserve_stash {
        caller_pool.pop();
    }
    if callee_pool.is_empty() && caller_pool.is_empty() {
        return HoistPlan::default();
    }
    let mut plan = HoistPlan::with_blocks(ir.blocks.len());

    // Frequencies are estimated on the unmarked forest; `mark_calls`
    // below only flags loops for the callee-save constraint.
    let freq = FreqEstimate::new(ir, &loops);

    // Which blocks contain calls (for the callee-save constraint).
    let call_blocks: Vec<br_ir::BlockId> = vf
        .iter_blocks()
        .filter(|(_, b)| b.insts.iter().any(VInst::is_call))
        .map(|(id, _)| id)
        .collect();
    loops.mark_calls(&call_blocks);

    // ---- gather candidates: (loop, what) → (freq, blocks) ----
    struct Cand {
        freq: u64,
        blocks: Vec<u32>,
    }
    // Keyed by loop index; a loop hosts only a handful of distinct
    // targets, so a linear probe beats hashing.
    let mut cands: Vec<Vec<(CalcKey, Cand)>> = (0..loops.loops.len()).map(|_| Vec::new()).collect();
    for (bid, block) in vf.iter_blocks() {
        let Some(li) = loops.innermost(bid) else {
            continue;
        };
        let f = freq.of(bid);
        let mut add = |key: CalcKey| {
            let list = &mut cands[li];
            match list.iter_mut().find(|(k, _)| *k == key) {
                Some((_, c)) => {
                    c.freq += f;
                    c.blocks.push(bid.0);
                }
                None => list.push((
                    key,
                    Cand {
                        freq: f,
                        blocks: vec![bid.0],
                    },
                )),
            }
        };
        match block.term() {
            VTerm::Jump(t) => add(CalcKey::Block(t.0)),
            VTerm::Branch { then_bb, .. } => add(CalcKey::Block(then_bb.0)),
            _ => {}
        }
        for inst in &block.insts {
            if let VInst::Call { func, .. } = inst {
                add(CalcKey::Func(func.clone()));
            }
        }
    }
    let mut ordered: Vec<((usize, CalcKey), Cand)> = cands
        .into_iter()
        .enumerate()
        .flat_map(|(li, list)| list.into_iter().map(move |(k, c)| ((li, k), c)))
        .collect();
    // The tie-break must be a *total* order over candidates, so the
    // hoisting plan (and hence dynamic instruction counts) cannot vary
    // from process to process — and stays byte-for-byte what the seed's
    // HashMap-gathered ordering produced.
    ordered.sort_by(|a, b| {
        b.1.freq
            .cmp(&a.1.freq)
            .then_with(|| a.1.blocks.cmp(&b.1.blocks))
            .then_with(|| a.0.cmp(&b.0))
    });

    // ---- allocate branch registers, outermost-feasible level first ----
    // A register allocated for loop L is live over L's body *plus* L's
    // preheader (where the calculation is placed). Two allocations
    // interfere when those regions intersect — checking bodies alone is
    // not enough: a sibling loop's preheader may sit inside another
    // loop's body. Regions are precomputed per loop as block bitsets
    // (the seed rebuilt BTreeSets per disjointness query).
    let words = ir.blocks.len().div_ceil(64);
    let region: Vec<Vec<u64>> = loops
        .loops
        .iter()
        .map(|l| {
            let mut r = vec![0u64; words];
            for b in &l.body {
                r[b.0 as usize / 64] |= 1 << (b.0 % 64);
            }
            if let Some(ph) = l.preheader {
                r[ph.0 as usize / 64] |= 1 << (ph.0 % 64);
            }
            r
        })
        .collect();
    let disjoint =
        |a: usize, b: usize| region[a].iter().zip(&region[b]).all(|(x, y)| x & y == 0);
    // Preference-ordered pools, materialized once.
    let any_pool: Vec<u8> = caller_pool
        .iter()
        .chain(callee_pool.iter())
        .copied()
        .collect();
    // Loops assigned per branch register, indexed by register number.
    let max_breg = any_pool.iter().copied().max().unwrap_or(0) as usize;
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); max_breg + 1];
    for ((li, key), cand) in ordered {
        // Chain of loops from the innermost outward while preheaders exist.
        let mut chain = vec![li];
        let mut cur = li;
        while let Some(p) = loops.loops[cur].parent {
            if loops.loops[p].preheader.is_none() {
                break;
            }
            chain.push(p);
            cur = p;
        }
        if loops.loops[li].preheader.is_none() {
            continue; // cannot place even at the innermost level
        }
        // Try outermost first (maximum code motion).
        let mut choice: Option<(usize, u8)> = None;
        for &lvl in chain.iter().rev() {
            if loops.loops[lvl].preheader.is_none() {
                continue;
            }
            let needs_callee = loops.loops[lvl].has_call || matches!(key, CalcKey::Func(_));
            let pool: &[u8] = if needs_callee {
                &callee_pool
            } else {
                &any_pool
            };
            let free = pool
                .iter()
                .copied()
                .find(|&b| assigned[b as usize].iter().all(|&l| disjoint(l, lvl)));
            if let Some(b) = free {
                choice = Some((lvl, b));
                break;
            }
        }
        let Some((lvl, breg)) = choice else {
            continue; // no register: the calc stays local
        };
        let Some(ph) = loops.loops[lvl].preheader else {
            continue; // chain candidates are preheader-checked; stay safe anyway
        };
        assigned[breg as usize].push(lvl);
        if callee_pool.contains(&breg) && !plan.used_callee.contains(&breg) {
            plan.used_callee.push(breg);
        }
        let what = match &key {
            CalcKey::Block(t) => HoistedWhat::Block(*t),
            CalcKey::Func(f) => HoistedWhat::Func(f.clone()),
        };
        plan.add_preheader(ph.0, Hoisted { breg, what });
        plan.count += 1;
        for b in cand.blocks {
            match &key {
                CalcKey::Block(t) => plan.set_target_breg(b, *t, breg),
                CalcKey::Func(f) => plan.add_call_breg(b, f.clone(), breg),
            }
        }
    }
    plan.used_callee.sort_unstable();

    // ---- reserved registers per block (for scratch selection) ----
    for (breg, ls) in assigned.iter().enumerate() {
        for &l in ls {
            for b in &loops.loops[l].body {
                plan.add_reserved(b.0, breg as u8);
            }
            if let Some(ph) = loops.loops[l].preheader {
                plan.add_reserved(ph.0, breg as u8);
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isel::{select, ConstPool};
    use crate::target::TargetSpec;
    use br_frontend::compile;
    use br_isa::Machine;

    fn plan_for(src: &str, name: &str, opts: &BrOptions) -> (HoistPlan, VFunc) {
        let m = compile(src).unwrap();
        let f = m.function(name).unwrap();
        let t = TargetSpec::for_machine(Machine::BranchReg);
        let mut pool = ConstPool::new();
        let vf = select(&m, f, &t, &mut pool).unwrap();
        let cfg = br_ir::Cfg::new(f);
        let dom = br_ir::Dominators::new(&cfg);
        let loops = LoopForest::new(&cfg, &dom);
        (plan(f, &vf, opts, false, loops), vf)
    }

    #[test]
    fn loop_branch_target_is_hoisted() {
        let src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }";
        let (p, _) = plan_for(src, "f", &BrOptions::default());
        assert!(p.count >= 1, "expected at least one hoisted calc: {p:?}");
        assert!(p.iter_hoisted().next().is_some());
        // No calls → caller-saved registers suffice.
        assert!(p.used_callee.is_empty());
    }

    #[test]
    fn loop_with_call_uses_callee_saved_breg() {
        let src = r#"
            int g(int x) { return x + 1; }
            int f(int n) { int s = 0; while (n > 0) { s = g(s); n--; } return s; }
        "#;
        let (p, _) = plan_for(src, "f", &BrOptions::default());
        assert!(p.count >= 1);
        assert!(
            !p.used_callee.is_empty(),
            "loop with a call must allocate callee-saved bregs: {p:?}"
        );
        // The call target itself should be hoisted.
        assert!(p
            .iter_hoisted()
            .any(|h| matches!(&h.what, HoistedWhat::Func(f) if f == "g")));
    }

    #[test]
    fn hoisting_disabled_yields_empty_plan() {
        let src = "int f(int n) { int s = 0; while (n > 0) { s += n; n--; } return s; }";
        let opts = BrOptions {
            hoisting: false,
            ..Default::default()
        };
        let (p, _) = plan_for(src, "f", &opts);
        assert_eq!(p.count, 0);
        assert!(p.iter_hoisted().next().is_none());
    }

    #[test]
    fn nested_loops_allocate_distinct_registers() {
        let src = r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++)
                        s += i * j;
                return s;
            }
        "#;
        let (p, _) = plan_for(src, "f", &BrOptions::default());
        assert!(p.count >= 2, "inner and outer loop targets: {p:?}");
        // Registers assigned to overlapping (nested) loops must differ.
        let regs: Vec<u8> = p.iter_hoisted().map(|h| h.breg).collect();
        let mut uniq = regs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(regs.len(), uniq.len(), "{p:?}");
    }

    #[test]
    fn tiny_breg_file_limits_hoisting() {
        let src = r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++)
                        for (int k = 0; k < n; k++)
                            s += i * j * k;
                return s;
            }
        "#;
        let full = plan_for(src, "f", &BrOptions::default()).0;
        let tiny = plan_for(
            src,
            "f",
            &BrOptions {
                num_bregs: 3,
                ..Default::default()
            },
        )
        .0;
        assert!(tiny.count < full.count);
    }

    #[test]
    fn disjoint_loops_share_a_register() {
        // The straight-line block between the loops keeps the second
        // loop's preheader outside the first loop, so one register can
        // serve both (back-to-back loops would conflict: the second
        // preheader would be the first loop's header).
        let src = r#"
            int g;
            int f(int n) {
                int s = 0;
                while (n > 0) { s += n; n--; }
                g = s;
                s = g + 1;
                while (s > 10) { s -= 10; }
                return s;
            }
        "#;
        let opts = BrOptions {
            num_bregs: 3, // pool = {b1}
            ..Default::default()
        };
        let (p, _) = plan_for(src, "f", &opts);
        assert!(p.count >= 2, "{p:?}");
    }

    #[test]
    fn back_to_back_loops_do_not_share_when_preheader_is_inside() {
        // Regression test for the qsort bug: the second loop's preheader
        // is the first loop's header, so sharing one register would let
        // the second loop's calculation clobber the first loop's target.
        let src = r#"
            int f(int n) {
                int s = 0;
                while (n > 0) { s += n; n--; }
                while (s > 10) { s -= 10; }
                return s;
            }
        "#;
        let opts = BrOptions {
            num_bregs: 3, // pool = {b1}
            ..Default::default()
        };
        let (p, _) = plan_for(src, "f", &opts);
        // Only one of the two loop targets can be hoisted safely.
        assert_eq!(p.count, 1, "{p:?}");
    }
}
