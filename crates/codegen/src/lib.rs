//! `br-codegen` — code generation for the paper's two machines.
//!
//! The pipeline mirrors the authors' *vpo*-based compiler:
//!
//! 1. **Instruction selection** ([`isel`]) lowers the target-independent
//!    IR to virtual-register machine code, with strength reduction and a
//!    float constant pool.
//! 2. **Register allocation** ([`regalloc`]) is Chaitin-style graph
//!    coloring with spilling; the branch-register machine's 16-register
//!    file spills more often, which is the source of Table I's extra
//!    data memory references.
//! 3. **Finalization** is where the machines diverge:
//!    * [`baseline`] emits condition-code compares, delayed branches,
//!      and runs the classic fill-from-above delay-slot scheduler;
//!    * [`brmach`] emits branch-target address calculations and transfer
//!      *carriers*, hoists calculations into loop preheaders with branch-
//!      register allocation ([`hoist`]), and replaces noop carriers with
//!      pending calculations — the paper's Sections 4–5.
//!
//! # Example
//!
//! ```
//! use br_codegen::compile_module;
//! use br_isa::Machine;
//!
//! let module = br_frontend::compile("int main() { return 2 + 3; }")?;
//! let out = compile_module(&module, Machine::BranchReg, Default::default(), Default::default())?;
//! let program = out.asm.assemble()?;
//! assert!(program.static_inst_count() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod baseline;
pub mod brmach;
pub mod data;
pub mod emit;
pub mod error;
pub mod hoist;
pub mod isel;
pub mod regalloc;
pub mod target;
pub mod vcode;

pub use emit::CodegenStats;
pub use error::CodegenError;
pub use target::{BaseOptions, BrOptions, TargetSpec};

use br_ir::{Cfg, Dominators, LoopForest, Module};
use br_isa::{AsmFunc, AsmProgram, Machine};

/// Frame geometry of one selected function, exported by
/// [`ModuleBatch::frame_geom`] for consumers (translation validation)
/// that need to reason about stack-slot addresses without replicating
/// the emitters' layout math.
#[derive(Debug, Clone)]
pub struct FuncGeom {
    /// Function name.
    pub name: String,
    /// Frame offset (from the adjusted sp) of each IR slot.
    pub slot_off: Vec<i32>,
    /// Size in bytes of each IR slot.
    pub slot_size: Vec<u32>,
    /// Outgoing-argument overflow words; the out-arg area is
    /// `[0, 4 * max_out_args)` in frame offsets.
    pub max_out_args: u32,
}

/// Output of compiling a module for one machine.
#[derive(Debug, Clone)]
pub struct CompiledModule {
    /// The symbolic program, ready to assemble.
    pub asm: AsmProgram,
    /// Static code-generation statistics, summed over all functions.
    pub stats: CodegenStats,
}

/// Per-stage wall times of one compilation, in nanoseconds. Collected
/// only by the metered entry points ([`ModuleBatch::compile_func_metered`]);
/// the plain pipeline never reads the clock. Deliberately *not* part of
/// [`CodegenStats`], which is pinned byte-identical across `--jobs`
/// levels — wall times are inherently nondeterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Instruction selection (serial front half, including `Ir` gates).
    pub isel_ns: u64,
    /// Register allocation (coloring + spill rewrite).
    pub regalloc_ns: u64,
    /// Hoist planning (branch-register machine only; part of `emit_ns`).
    pub hoist_ns: u64,
    /// Final emission, *including* hoist planning on the BR machine.
    pub emit_ns: u64,
}

impl StageTimes {
    /// Fold another function's times into this total.
    pub fn accumulate(&mut self, other: &StageTimes) {
        self.isel_ns += other.isel_ns;
        self.regalloc_ns += other.regalloc_ns;
        self.hoist_ns += other.hoist_ns;
        self.emit_ns += other.emit_ns;
    }
}

/// Counters and timings from one function's trip through the metered
/// back half of the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuncMetrics {
    /// Stage wall times (the `isel_ns` component is zero here; selection
    /// is module-level, see [`ModuleBatch::isel_ns`]).
    pub times: StageTimes,
    /// Spill slots the register allocator inserted.
    pub spills: u32,
}

impl FuncMetrics {
    /// Fold another function's metrics into this total.
    pub fn accumulate(&mut self, other: &FuncMetrics) {
        self.times.accumulate(&other.times);
        self.spills += other.spills;
    }
}

/// One observation point in the per-function compilation pipeline,
/// handed to the gate callback of [`compile_module_with`]. Each variant
/// is a read-only snapshot taken *after* the named stage ran, so a
/// checker can attribute an invariant violation to the pass that
/// introduced it.
pub enum Stage<'a> {
    /// Before instruction selection: the optimized IR function.
    Ir {
        /// The function about to be compiled.
        func: &'a br_ir::Function,
    },
    /// After register allocation (spills already rewritten in `vcode`).
    Regalloc {
        /// The source IR function.
        func: &'a br_ir::Function,
        /// Virtual code with allocator temps and spill traffic inserted.
        vcode: &'a vcode::VFunc,
        /// The assignment to audit.
        alloc: &'a regalloc::Allocation,
        /// Register conventions of the target machine.
        target: &'a TargetSpec,
    },
    /// After final emission: the symbolic instruction stream.
    Emit {
        /// The source IR function.
        func: &'a br_ir::Function,
        /// The emitted stream (labels, instructions, jump-table words).
        asm: &'a AsmFunc,
        /// Which machine the stream targets.
        machine: Machine,
        /// The hoisting plan (branch-register machine only).
        hoist: Option<&'a hoist::HoistPlan>,
        /// Branch-register options in effect (pools, fused compare).
        br_opts: BrOptions,
    },
}

/// Error from the gated pipeline: either the compiler itself failed, or
/// the gate rejected a stage's output.
#[derive(Debug, Clone, PartialEq)]
pub enum GatedError<E> {
    /// A codegen stage failed.
    Codegen(CodegenError),
    /// The gate callback reported a violation.
    Gate(E),
}

impl<E> From<CodegenError> for GatedError<E> {
    fn from(e: CodegenError) -> GatedError<E> {
        GatedError::Codegen(e)
    }
}

/// A module part-way through compilation: instruction selection has run
/// (serially — the float constant pool is shared across functions, so
/// selection order fixes the pool layout), leaving register allocation
/// and emission, which are independent across functions, to
/// [`ModuleBatch::compile_func`].
///
/// This split is what batched compilation fans across worker threads:
/// `compile_func` takes `&self` and a `Fn` gate, so any number of
/// threads may compile distinct functions concurrently, and the
/// per-function outputs reassemble into a byte-identical module in
/// [`ModuleBatch::finish`] regardless of completion order.
pub struct ModuleBatch<'a> {
    module: &'a Module,
    machine: Machine,
    base_opts: BaseOptions,
    br_opts: BrOptions,
    target: TargetSpec,
    /// (index into `module.functions`, selected virtual code).
    funcs: Vec<(usize, vcode::VFunc)>,
    pool: isel::ConstPool,
    /// Wall time of the serial selection front half.
    isel_ns: u64,
}

/// Run the serial front half of codegen — the `Ir` gate and instruction
/// selection for every function with a body, in module order — and
/// return the batch of selected functions. The back half (allocation,
/// emission, the `Regalloc` and `Emit` gates) runs per function through
/// [`ModuleBatch::compile_func`].
pub fn select_module_with<'a, E, G>(
    module: &'a Module,
    machine: Machine,
    base_opts: BaseOptions,
    br_opts: BrOptions,
    gate: &mut G,
) -> Result<ModuleBatch<'a>, GatedError<E>>
where
    G: FnMut(Stage<'_>) -> Result<(), E>,
{
    let target = TargetSpec::for_machine(machine);
    let mut pool = isel::ConstPool::new();
    let mut funcs = Vec::new();
    let t = std::time::Instant::now();
    for (fi, func) in module.functions.iter().enumerate() {
        if func.blocks.is_empty() {
            continue; // prototype without a body
        }
        gate(Stage::Ir { func }).map_err(GatedError::Gate)?;
        let mut vf = isel::select(module, func, &target, &mut pool)?;
        vf.max_out_args = baseline::compute_max_out_args(&vf, &target);
        funcs.push((fi, vf));
    }
    let isel_ns = t.elapsed().as_nanos() as u64;
    Ok(ModuleBatch {
        module,
        machine,
        base_opts,
        br_opts,
        target,
        funcs,
        pool,
        isel_ns,
    })
}

/// [`select_module_with`] with a no-op gate.
pub fn select_module(
    module: &Module,
    machine: Machine,
    base_opts: BaseOptions,
    br_opts: BrOptions,
) -> Result<ModuleBatch<'_>, CodegenError> {
    let mut no_gate = |_: Stage<'_>| Ok::<(), std::convert::Infallible>(());
    select_module_with(module, machine, base_opts, br_opts, &mut no_gate).map_err(|e| match e {
        GatedError::Codegen(c) => c,
        GatedError::Gate(never) => match never {},
    })
}

impl ModuleBatch<'_> {
    /// Number of functions in the batch.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// Whether the batch has no functions.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Wall time of the serial selection front half, in nanoseconds
    /// (includes the `Ir` gates). Attributed once per module, not per
    /// function.
    pub fn isel_ns(&self) -> u64 {
        self.isel_ns
    }

    /// Per-function frame geometry of the selected code: where each IR
    /// stack slot lands relative to the adjusted stack pointer, and how
    /// wide the outgoing-argument overflow area is. Slot offsets depend
    /// only on selection results (`max_out_args` and the IR slot list),
    /// not on register allocation, so they are fixed before the back
    /// half runs. Translation validation uses this to give the two
    /// machines' differing frame layouts a common slot-level naming.
    pub fn frame_geom(&self) -> Vec<FuncGeom> {
        self.funcs
            .iter()
            .map(|(_, vf)| {
                let layout = emit::FrameLayout::new(vf, 0);
                FuncGeom {
                    name: vf.name.clone(),
                    slot_off: layout.slot_off,
                    slot_size: vf.slots.iter().map(|&(size, _)| size as u32).collect(),
                    max_out_args: vf.max_out_args,
                }
            })
            .collect()
    }

    /// Register-allocate and emit function `i` of the batch, running the
    /// `Regalloc` and `Emit` gates. Reads `&self` only (the selected
    /// virtual code is cloned before the spill rewrite mutates it), so
    /// distinct indices may run on distinct threads; the gate must be
    /// `Fn` for the same reason.
    pub fn compile_func<E, G>(
        &self,
        i: usize,
        gate: &G,
    ) -> Result<(AsmFunc, CodegenStats), GatedError<E>>
    where
        G: Fn(Stage<'_>) -> Result<(), E>,
    {
        self.compile_func_inner(i, gate, None)
    }

    /// [`compile_func`](Self::compile_func) plus per-stage wall times and
    /// allocator counters. Only this variant reads the clock — the plain
    /// path stays byte-for-byte on the throughput-gated hot path.
    pub fn compile_func_metered<E, G>(
        &self,
        i: usize,
        gate: &G,
    ) -> Result<((AsmFunc, CodegenStats), FuncMetrics), GatedError<E>>
    where
        G: Fn(Stage<'_>) -> Result<(), E>,
    {
        let mut metrics = FuncMetrics::default();
        let out = self.compile_func_inner(i, gate, Some(&mut metrics))?;
        Ok((out, metrics))
    }

    fn compile_func_inner<E, G>(
        &self,
        i: usize,
        gate: &G,
        mut metrics: Option<&mut FuncMetrics>,
    ) -> Result<(AsmFunc, CodegenStats), GatedError<E>>
    where
        G: Fn(Stage<'_>) -> Result<(), E>,
    {
        let (fi, ref selected) = self.funcs[i];
        let func = &self.module.functions[fi];
        let mut vf = selected.clone();

        // Loop depths for spill costs (and, on the BR machine, hoisting).
        let cfg = Cfg::new(func);
        let dom = Dominators::new(&cfg);
        let loops = LoopForest::new(&cfg, &dom);
        let depth: Vec<u32> = (0..func.blocks.len())
            .map(|i| loops.depth(br_ir::BlockId(i as u32)))
            .collect();

        let t = metrics.as_ref().map(|_| std::time::Instant::now());
        let alloc = regalloc::allocate(&mut vf, &self.target, &depth)?;
        if let (Some(m), Some(t)) = (metrics.as_mut(), t) {
            m.times.regalloc_ns = t.elapsed().as_nanos() as u64;
            m.spills = vf.num_spills;
        }
        gate(Stage::Regalloc {
            func,
            vcode: &vf,
            alloc: &alloc,
            target: &self.target,
        })
        .map_err(GatedError::Gate)?;

        let t = metrics.as_ref().map(|_| std::time::Instant::now());
        let mut hoist_ns = 0u64;
        let (afunc, fstats, plan) = match self.machine {
            Machine::Baseline => {
                let (a, s) = baseline::emit_baseline(&vf, &self.target, &alloc, self.base_opts)?;
                (a, s, None)
            }
            Machine::BranchReg => {
                let slot = metrics.is_some().then_some(&mut hoist_ns);
                let (a, s, p) = brmach::emit_brmach_with(
                    func,
                    &mut vf,
                    &self.target,
                    &alloc,
                    self.br_opts,
                    loops,
                    slot,
                )?;
                (a, s, Some(p))
            }
        };
        if let (Some(m), Some(t)) = (metrics, t) {
            m.times.emit_ns = t.elapsed().as_nanos() as u64;
            m.times.hoist_ns = hoist_ns;
        }
        gate(Stage::Emit {
            func,
            asm: &afunc,
            machine: self.machine,
            hoist: plan.as_ref(),
            br_opts: self.br_opts,
        })
        .map_err(GatedError::Gate)?;
        Ok((afunc, fstats))
    }

    /// Assemble the per-function outputs (one per batch function, in
    /// batch order) plus the module's globals and constant pool into the
    /// final compiled module.
    pub fn finish(self, parts: Vec<(AsmFunc, CodegenStats)>) -> CompiledModule {
        debug_assert_eq!(parts.len(), self.funcs.len());
        let mut asm = AsmProgram::new(self.machine);
        let mut stats = CodegenStats::default();
        for (afunc, fstats) in parts {
            stats.accumulate(&fstats);
            asm.funcs.push(afunc);
        }
        asm.data = data::lower_globals(self.module);
        asm.data.extend(data::lower_pool(self.pool.into_items()));
        CompiledModule { asm, stats }
    }
}

/// Compile `module` for `machine`, calling `gate` after every pipeline
/// stage of every function. The gate sees the IR before selection, the
/// virtual code after register allocation, and the assembly stream after
/// emission; returning `Err` aborts compilation with
/// [`GatedError::Gate`]. [`compile_module`] is this function with a
/// no-op gate; the `br-verify` crate supplies checking gates.
///
/// Stage order: the `Ir` gates of *all* functions run first (during
/// selection), then each function's `Regalloc` and `Emit` gates in
/// module order — the serial schedule of the batched pipeline
/// ([`select_module_with`] + [`ModuleBatch::compile_func`]), which this
/// function is a thin wrapper over.
pub fn compile_module_with<E, G>(
    module: &Module,
    machine: Machine,
    base_opts: BaseOptions,
    br_opts: BrOptions,
    gate: &mut G,
) -> Result<CompiledModule, GatedError<E>>
where
    G: FnMut(Stage<'_>) -> Result<(), E>,
{
    let batch = select_module_with(module, machine, base_opts, br_opts, gate)?;
    // compile_func wants a shared `Fn` gate (it is thread-safe); adapt
    // the serial caller's `FnMut` through a RefCell.
    let cell = std::cell::RefCell::new(gate);
    let shared = |s: Stage<'_>| -> Result<(), E> { (cell.borrow_mut())(s) };
    let mut parts = Vec::with_capacity(batch.len());
    for i in 0..batch.len() {
        parts.push(batch.compile_func(i, &shared)?);
    }
    Ok(batch.finish(parts))
}

/// Compile `module` for `machine`.
///
/// `base_opts` affects only the baseline machine; `br_opts` only the
/// branch-register machine (pass `Default::default()` for the paper's
/// configuration). Malformed input and pipeline-invariant violations are
/// reported as [`CodegenError`]s — this path never panics on program
/// shape, so differential drivers can compile arbitrary generated code.
pub fn compile_module(
    module: &Module,
    machine: Machine,
    base_opts: BaseOptions,
    br_opts: BrOptions,
) -> Result<CompiledModule, CodegenError> {
    let mut no_gate = |_: Stage<'_>| Ok::<(), std::convert::Infallible>(());
    compile_module_with(module, machine, base_opts, br_opts, &mut no_gate).map_err(
        |e| match e {
            GatedError::Codegen(c) => c,
            GatedError::Gate(never) => match never {},
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_emu::Emulator;
    use br_ir::Interpreter;

    /// Compile and run `src` on `machine`; return (exit value, emulator).
    fn run_on(src: &str, machine: Machine) -> (i32, br_emu::Measurements) {
        let module = br_frontend::compile(src).expect("frontend");
        let out = compile_module(&module, machine, Default::default(), Default::default())
            .expect("codegen");
        let prog = out.asm.assemble().unwrap_or_else(|e| {
            panic!("assemble failed on {machine}: {e}");
        });
        let mut emu = Emulator::new(&prog);
        let exit = emu.run(200_000_000).unwrap_or_else(|e| {
            panic!("run failed on {machine}: {e}\n{}", prog.listing());
        });
        (exit, emu.measurements().clone())
    }

    /// Differential check: IR interpreter and both machines must agree.
    fn check(src: &str) -> (br_emu::Measurements, br_emu::Measurements) {
        let module = br_frontend::compile(src).expect("frontend");
        let expected = Interpreter::new(&module)
            .run("main", &[])
            .expect("interpreter");
        let (base, mb) = run_on(src, Machine::Baseline);
        let (brm, mr) = run_on(src, Machine::BranchReg);
        assert_eq!(base, expected, "baseline disagrees with interpreter");
        assert_eq!(brm, expected, "BR machine disagrees with interpreter");
        (mb, mr)
    }

    #[test]
    fn constant_return() {
        check("int main() { return 42; }");
    }

    #[test]
    fn arithmetic() {
        check("int main() { return (7 * 9 - 3) / 2 % 13; }");
        check("int main() { int x = -5; return x * -3 + (x ^ 12) - (x & 6) + (x | 3); }");
        check("int main() { int x = 1000000; return x / 7 + x % 7 + (x >> 3) + (x << 2); }");
    }

    #[test]
    fn simple_loop() {
        let (mb, mr) = check(
            "int main() { int s = 0; for (int i = 0; i < 100; i++) s += i; return s % 256; }",
        );
        // The BR machine should execute fewer instructions (hoisted
        // calcs + carriers) — the paper's headline effect.
        assert!(
            mr.instructions < mb.instructions,
            "BR {} vs baseline {}",
            mr.instructions,
            mb.instructions
        );
        // And the dominant loop branch should be fully prefetched
        // (distance bucket 0 = "far enough").
        assert!(mr.transfer_dist[0] > 0);
    }

    #[test]
    fn nested_loops_and_conditionals() {
        check(
            r#"
            int main() {
                int s = 0;
                for (int i = 0; i < 20; i++) {
                    for (int j = 0; j < 20; j++) {
                        if ((i + j) % 3 == 0) s += i * j;
                        else if (j > i) s -= 1;
                    }
                }
                return s % 251;
            }
        "#,
        );
    }

    #[test]
    fn calls_and_recursion() {
        check(
            r#"
            int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
            int main() { return fib(15) % 256; }
        "#,
        );
    }

    #[test]
    fn call_in_loop_uses_callee_saved_breg() {
        let src = r#"
            int inc(int x) { return x + 1; }
            int main() { int s = 0; for (int i = 0; i < 50; i++) s = inc(s); return s; }
        "#;
        let (_, mr) = check(src);
        // Branch-register saves/restores should appear (callee-saved
        // bregs + b7 spills), as the paper reports.
        assert!(mr.br_saves > 0);
        assert!(mr.br_restores > 0);
    }

    #[test]
    fn arrays_and_pointers() {
        check(
            r#"
            int a[50];
            int main() {
                for (int i = 0; i < 50; i++) a[i] = i * i;
                int *p = a;
                int s = 0;
                while (p < a + 50) s += *p++;
                return s % 256;
            }
        "#,
        );
    }

    #[test]
    fn strings_and_chars() {
        check(
            r#"
            int count(char *s, char c) {
                int n = 0;
                while (*s) { if (*s == c) n++; s++; }
                return n;
            }
            int main() { return count("abracadabra", 'a') * 10 + count("xyz", 'q'); }
        "#,
        );
    }

    #[test]
    fn floats_end_to_end() {
        check(
            r#"
            float scale(float x, float k) { return x * k + 0.5; }
            int main() {
                float s = 0.0;
                for (int i = 0; i < 10; i++) s = scale(s, 1.5);
                if (s > 170.0 && s < 172.0) return 1;
                return (int)s;
            }
        "#,
        );
    }

    #[test]
    fn switch_statement_both_dense_and_sparse() {
        check(
            r#"
            int dense(int c) {
                switch (c) {
                    case 0: return 1;
                    case 1: return 2;
                    case 2: return 4;
                    case 3: return 8;
                    case 4: return 16;
                    default: return 0;
                }
            }
            int sparse(int c) {
                switch (c) {
                    case 10: return 1;
                    case 1000: return 2;
                    default: return 3;
                }
            }
            int main() {
                int s = 0;
                for (int i = -2; i < 8; i++) s += dense(i);
                return s * 100 + sparse(10) + sparse(1000) + sparse(7);
            }
        "#,
        );
    }

    #[test]
    fn many_arguments_overflow_to_stack() {
        check(
            r#"
            int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
                return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h;
            }
            int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }
        "#,
        );
    }

    #[test]
    fn register_pressure_spills_work() {
        // Many values live across a call, re-created in a loop so spill
        // traffic dominates the dynamic data-reference count.
        let mut body = String::new();
        for i in 0..24 {
            body.push_str(&format!("int v{i} = n + {i};\n"));
        }
        body.push_str("n = helper(n) % 100;\n");
        let mut sum = String::from("s = (s");
        for i in 0..24 {
            sum.push_str(&format!(" + v{i}"));
        }
        sum.push_str(" + n) % 256;");
        let src = format!(
            "int helper(int x) {{ return x * 2 + 1; }}\n\
             int main() {{ int n = 5; int s = 0; \
             for (int k = 0; k < 20; k++) {{ {body} {sum} }} return s; }}"
        );
        let (mb, mr) = check(&src);
        // More spills on the BR machine → more data references.
        assert!(
            mr.data_refs > mb.data_refs,
            "BR {} vs baseline {}",
            mr.data_refs,
            mb.data_refs
        );
    }

    #[test]
    fn global_state_across_calls() {
        check(
            r#"
            int counter = 0;
            void tick() { counter++; }
            int main() {
                for (int i = 0; i < 13; i++) tick();
                return counter;
            }
        "#,
        );
    }

    #[test]
    fn two_dimensional_matrix() {
        check(
            r#"
            int m[8][8];
            int main() {
                for (int i = 0; i < 8; i++)
                    for (int j = 0; j < 8; j++)
                        m[i][j] = i * 8 + j;
                int t = 0;
                for (int i = 0; i < 8; i++) t += m[i][i];
                return t;
            }
        "#,
        );
    }

    #[test]
    fn do_while_and_break_continue() {
        check(
            r#"
            int main() {
                int i = 0, s = 0;
                do {
                    i++;
                    if (i % 3 == 0) continue;
                    if (i > 17) break;
                    s += i;
                } while (i < 100);
                return s;
            }
        "#,
        );
    }

    #[test]
    fn ablation_no_hoisting_executes_more_instructions() {
        let src =
            "int main() { int s = 0; for (int i = 0; i < 200; i++) s += i; return s % 256; }";
        let module = br_frontend::compile(src).unwrap();
        let with = compile_module(
            &module,
            Machine::BranchReg,
            Default::default(),
            BrOptions::default(),
        )
        .unwrap();
        let without = compile_module(
            &module,
            Machine::BranchReg,
            Default::default(),
            BrOptions {
                hoisting: false,
                ..Default::default()
            },
        )
        .unwrap();
        let run = |cm: &CompiledModule| {
            let p = cm.asm.assemble().unwrap();
            let mut emu = Emulator::new(&p);
            let exit = emu.run(10_000_000).unwrap();
            (exit, emu.measurements().instructions)
        };
        let (e1, i1) = run(&with);
        let (e2, i2) = run(&without);
        assert_eq!(e1, e2);
        assert!(i1 < i2, "hoisting should reduce executed instructions");
    }

    #[test]
    fn delay_slot_filling_reduces_noops() {
        let src = r#"
            int f(int x) { return x * 3; }
            int main() { int s = 0; for (int i = 0; i < 50; i++) s += f(i); return s % 256; }
        "#;
        let module = br_frontend::compile(src).unwrap();
        let with = compile_module(
            &module,
            Machine::Baseline,
            BaseOptions::default(),
            Default::default(),
        )
        .unwrap();
        let without = compile_module(
            &module,
            Machine::Baseline,
            BaseOptions {
                fill_delay_slots: false,
            },
            Default::default(),
        )
        .unwrap();
        assert!(with.stats.slots_filled > 0);
        let run = |cm: &CompiledModule| {
            let p = cm.asm.assemble().unwrap();
            let mut emu = Emulator::new(&p);
            let exit = emu.run(10_000_000).unwrap();
            (exit, emu.measurements().noops)
        };
        let (e1, n1) = run(&with);
        let (e2, n2) = run(&without);
        assert_eq!(e1, e2);
        assert!(n1 < n2, "filling should reduce executed noops");
    }

    #[test]
    fn fused_fast_compare_agrees_and_saves_instructions() {
        // Section 9 future-work variant: every Appendix-I-style kernel
        // must agree, with fewer executed instructions (no carriers
        // after compares).
        let src = r#"
            int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
            int main() {
                int s = fib(12);
                for (int i = 0; i < 40; i++) if (i % 3 == 0) s += i;
                return s % 256;
            }
        "#;
        let module = br_frontend::compile(src).unwrap();
        let run = |opts: BrOptions| {
            let out = compile_module(&module, Machine::BranchReg, Default::default(), opts).unwrap();
            let p = out.asm.assemble().unwrap();
            let mut emu = Emulator::new(&p);
            let exit = emu.run(10_000_000).unwrap();
            (exit, emu.measurements().instructions)
        };
        let (e0, i0) = run(BrOptions::default());
        let (e1, i1) = run(BrOptions {
            fused_compare: true,
            ..Default::default()
        });
        assert_eq!(e0, e1);
        assert!(i1 < i0, "fused {} vs carriered {}", i1, i0);
    }

    #[test]
    fn fused_compare_consistent_across_workloads() {
        let exp_opts = BrOptions {
            fused_compare: true,
            ..Default::default()
        };
        for name in ["wc", "sort", "vpcc", "puzzle"] {
            let w = br_workloads::by_name(name, br_workloads::Scale::Test).unwrap();
            let module = br_frontend::compile(&w.source).unwrap();
            let base = {
                let out =
                    compile_module(&module, Machine::Baseline, Default::default(), Default::default())
                        .unwrap();
                let p = out.asm.assemble().unwrap();
                let mut emu = Emulator::new(&p);
                emu.run(100_000_000).unwrap()
            };
            let fused = {
                let out = compile_module(&module, Machine::BranchReg, Default::default(), exp_opts)
                    .unwrap();
                let p = out.asm.assemble().unwrap();
                let mut emu = Emulator::new(&p);
                emu.run(100_000_000).unwrap()
            };
            assert_eq!(base, fused, "{name} disagrees under fused compare");
        }
    }

    #[test]
    fn stats_track_carrier_kinds() {
        let src =
            "int main() { int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }";
        let module = br_frontend::compile(src).unwrap();
        let out = compile_module(
            &module,
            Machine::BranchReg,
            Default::default(),
            Default::default(),
        )
        .unwrap();
        let s = &out.stats;
        assert!(s.hoisted_calcs > 0);
        assert!(s.carriers_useful + s.carriers_noop + s.carriers_replaced_by_calc > 0);
    }
}
