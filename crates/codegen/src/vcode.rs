//! Virtual-register machine code — the representation between instruction
//! selection and register allocation.

use std::fmt;

use br_ir::{BlockId, RegClass};
use br_isa::{AluOp, Cc, FpuOp, MemWidth};

/// A virtual register index (class recorded in [`VFunc::classes`]).
pub type VR = u32;

/// Second operand: virtual register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VSrc {
    V(VR),
    Imm(i32),
}

impl VSrc {
    /// The register, if any.
    pub fn vr(&self) -> Option<VR> {
        match self {
            VSrc::V(v) => Some(*v),
            VSrc::Imm(_) => None,
        }
    }
}

/// A frame location whose final stack offset is assigned at emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameRef {
    /// An IR stack slot (local array / address-taken variable).
    Slot(u32),
    /// A register-allocator spill slot.
    Spill(u32),
    /// Outgoing-argument overflow word `i`.
    OutArg(u32),
    /// Incoming stack argument word `i` (in the caller's frame).
    InArg(u32),
}

/// One virtual instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum VInst {
    /// `dst = a op b`.
    Alu {
        op: AluOp,
        dst: VR,
        a: VR,
        b: VSrc,
    },
    /// `dst = val` (expands to `add`/`sethi+orlo` at emission).
    Li { dst: VR, val: i32 },
    /// `dst = &symbol` (expands to `sethi+orlo`).
    La { dst: VR, sym: String },
    /// Integer copy.
    Mov { dst: VR, src: VR },
    /// `dst = M[base + off]`.
    Load {
        w: MemWidth,
        dst: VR,
        base: VR,
        off: i32,
    },
    /// Float load from `[base + off]`.
    LoadF { dst: VR, base: VR, off: i32 },
    /// `M[base + off] = src`.
    Store {
        w: MemWidth,
        src: VR,
        base: VR,
        off: i32,
    },
    /// Float store.
    StoreF { src: VR, base: VR, off: i32 },
    /// `dst = sp + frame_offset(fref) + off`.
    FrameAddr { dst: VR, fref: FrameRef, off: i32 },
    /// `dst = M[frame(fref)]` — frame-relative load (spill reloads,
    /// incoming stack args). `float` selects the register file.
    FrameLoad { dst: VR, fref: FrameRef, float: bool },
    /// `M[frame(fref)] = src`.
    FrameStore { src: VR, fref: FrameRef, float: bool },
    /// Float three-address op.
    Fpu { op: FpuOp, dst: VR, a: VR, b: VR },
    /// Float negate.
    FNeg { dst: VR, src: VR },
    /// Float copy.
    FMov { dst: VR, src: VR },
    /// Int → float conversion.
    ItoF { dst: VR, src: VR },
    /// Float → int conversion.
    FtoI { dst: VR, src: VR },
    /// Call; argument and result shuffling is expanded at emission.
    Call {
        func: String,
        args: Vec<VR>,
        dst: Option<VR>,
    },
}

impl VInst {
    /// Virtual register defined, if any.
    pub fn def(&self) -> Option<VR> {
        match self {
            VInst::Alu { dst, .. }
            | VInst::Li { dst, .. }
            | VInst::La { dst, .. }
            | VInst::Mov { dst, .. }
            | VInst::Load { dst, .. }
            | VInst::LoadF { dst, .. }
            | VInst::FrameAddr { dst, .. }
            | VInst::FrameLoad { dst, .. }
            | VInst::Fpu { dst, .. }
            | VInst::FNeg { dst, .. }
            | VInst::FMov { dst, .. }
            | VInst::ItoF { dst, .. }
            | VInst::FtoI { dst, .. } => Some(*dst),
            VInst::Call { dst, .. } => *dst,
            VInst::Store { .. } | VInst::StoreF { .. } | VInst::FrameStore { .. } => None,
        }
    }

    /// Collect used virtual registers.
    pub fn uses(&self, out: &mut Vec<VR>) {
        match self {
            VInst::Alu { a, b, .. } => {
                out.push(*a);
                if let VSrc::V(v) = b {
                    out.push(*v);
                }
            }
            VInst::Li { .. } | VInst::La { .. } | VInst::FrameAddr { .. } | VInst::FrameLoad { .. } => {}
            VInst::Mov { src, .. }
            | VInst::FNeg { src, .. }
            | VInst::FMov { src, .. }
            | VInst::ItoF { src, .. }
            | VInst::FtoI { src, .. } => out.push(*src),
            VInst::Load { base, .. } | VInst::LoadF { base, .. } => out.push(*base),
            VInst::Store { src, base, .. } | VInst::StoreF { src, base, .. } => {
                out.push(*src);
                out.push(*base);
            }
            VInst::FrameStore { src, .. } => out.push(*src),
            VInst::Fpu { a, b, .. } => {
                out.push(*a);
                out.push(*b);
            }
            VInst::Call { args, .. } => out.extend(args.iter().copied()),
        }
    }

    /// Whether this is a call (clobbers caller-saved registers).
    pub fn is_call(&self) -> bool {
        matches!(self, VInst::Call { .. })
    }
}

/// Block terminator, still target-abstract.
#[derive(Debug, Clone, PartialEq)]
pub enum VTerm {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch; `else_bb` is the fall-through intent.
    Branch {
        cc: Cc,
        float: bool,
        a: VR,
        b: VSrc,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Jump-table dispatch on `idx - base` with bounds check.
    Switch {
        idx: VR,
        base: i32,
        targets: Vec<BlockId>,
        default: BlockId,
    },
    /// Return (value, if any, and whether it is a float).
    Ret(Option<(VSrc, bool)>),
}

impl VTerm {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            VTerm::Jump(t) => vec![*t],
            VTerm::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            VTerm::Switch {
                targets, default, ..
            } => {
                let mut v = targets.clone();
                v.push(*default);
                v.sort_unstable();
                v.dedup();
                v
            }
            VTerm::Ret(_) => vec![],
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self, out: &mut Vec<VR>) {
        match self {
            VTerm::Branch { a, b, .. } => {
                out.push(*a);
                if let VSrc::V(v) = b {
                    out.push(*v);
                }
            }
            VTerm::Switch { idx, .. } => out.push(*idx),
            VTerm::Ret(Some((VSrc::V(v), _))) => out.push(*v),
            _ => {}
        }
    }
}

/// One virtual-code basic block.
#[derive(Debug, Clone, Default)]
pub struct VBlock {
    pub insts: Vec<VInst>,
    pub term: Option<VTerm>,
}

impl VBlock {
    /// The terminator.
    ///
    /// # Panics
    ///
    /// Panics if the block has not been terminated (selection bug).
    pub fn term(&self) -> &VTerm {
        self.term.as_ref().expect("unterminated vblock")
    }
}

/// A function in virtual-register machine code. Block ids match the IR
/// function's, so the IR-level loop analysis applies directly.
#[derive(Debug, Clone)]
pub struct VFunc {
    pub name: String,
    pub blocks: Vec<VBlock>,
    /// Class of each virtual register.
    pub classes: Vec<RegClass>,
    /// Parameter vregs in order, with float flag.
    pub params: Vec<(VR, bool)>,
    /// Sizes/alignment of IR stack slots, copied from the IR function.
    pub slots: Vec<(usize, usize)>,
    /// Number of spill slots added by the register allocator.
    pub num_spills: u32,
    /// Parameters that were spilled: `(param vreg, spill slot)`. The
    /// prologue stores the incoming argument straight to the slot.
    pub spilled_params: Vec<(VR, u32)>,
    /// Maximum outgoing-argument overflow words over all call sites.
    pub max_out_args: u32,
    /// Whether the function contains calls.
    pub has_call: bool,
}

impl VFunc {
    /// Allocate a fresh vreg of `class`.
    pub fn new_vreg(&mut self, class: RegClass) -> VR {
        let v = self.classes.len() as VR;
        self.classes.push(class);
        v
    }

    /// Class of a vreg.
    pub fn class_of(&self, v: VR) -> RegClass {
        self.classes[v as usize]
    }

    /// Iterate blocks with ids.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &VBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }
}

impl fmt::Display for VFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "vfunc {} {{", self.name)?;
        for (id, b) in self.iter_blocks() {
            writeln!(f, "{id}:")?;
            for i in &b.insts {
                writeln!(f, "    {i:?}")?;
            }
            writeln!(f, "    {:?}", b.term)?;
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_use_bookkeeping() {
        let i = VInst::Alu {
            op: AluOp::Add,
            dst: 3,
            a: 1,
            b: VSrc::V(2),
        };
        assert_eq!(i.def(), Some(3));
        let mut u = Vec::new();
        i.uses(&mut u);
        assert_eq!(u, vec![1, 2]);

        let s = VInst::Store {
            w: MemWidth::Word,
            src: 4,
            base: 5,
            off: 0,
        };
        assert_eq!(s.def(), None);
        u.clear();
        s.uses(&mut u);
        assert_eq!(u, vec![4, 5]);
    }

    #[test]
    fn call_defs_and_uses() {
        let c = VInst::Call {
            func: "f".into(),
            args: vec![1, 2],
            dst: Some(9),
        };
        assert!(c.is_call());
        assert_eq!(c.def(), Some(9));
        let mut u = Vec::new();
        c.uses(&mut u);
        assert_eq!(u, vec![1, 2]);
    }

    #[test]
    fn term_successors_dedup() {
        let t = VTerm::Switch {
            idx: 0,
            base: 0,
            targets: vec![BlockId(1), BlockId(1), BlockId(2)],
            default: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
    }
}
