//! Typed code-generation failures.
//!
//! The torture harness drives millions of generated programs through the
//! pipeline; anything shape-dependent that used to `panic!` is reported
//! through [`CodegenError`] instead so a bad program (or a compiler bug)
//! surfaces as a value the caller can print, minimize, and file.

use std::fmt;

/// Why code generation failed for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// Instruction selection produced a block with no terminator — the
    /// incoming IR was malformed.
    UnterminatedBlock {
        /// Function being compiled.
        func: String,
        /// Index of the offending vcode block.
        block: u32,
    },
    /// Register allocation failed to converge within the round limit
    /// (each round may introduce spill code that itself needs registers).
    RegallocDiverged {
        /// Function being compiled.
        func: String,
        /// Rounds attempted before giving up.
        rounds: u32,
    },
    /// An internal emitter invariant did not hold (always a compiler bug;
    /// reported as an error so callers never abort).
    Internal {
        /// Function being compiled.
        func: String,
        /// What went wrong.
        msg: String,
    },
}

impl CodegenError {
    /// Shorthand for an [`CodegenError::Internal`] error.
    pub fn internal(func: &str, msg: impl Into<String>) -> CodegenError {
        CodegenError::Internal {
            func: func.to_string(),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::UnterminatedBlock { func, block } => {
                write!(f, "{func}: block {block} has no terminator")
            }
            CodegenError::RegallocDiverged { func, rounds } => {
                write!(
                    f,
                    "{func}: register allocation did not converge after {rounds} rounds"
                )
            }
            CodegenError::Internal { func, msg } => write!(f, "{func}: internal error: {msg}"),
        }
    }
}

impl std::error::Error for CodegenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_function_and_cause() {
        let e = CodegenError::UnterminatedBlock {
            func: "f".into(),
            block: 3,
        };
        assert_eq!(e.to_string(), "f: block 3 has no terminator");
        let e = CodegenError::RegallocDiverged {
            func: "g".into(),
            rounds: 40,
        };
        assert!(e.to_string().contains("40 rounds"));
        let e = CodegenError::internal("h", "bad operand");
        assert_eq!(e.to_string(), "h: internal error: bad operand");
    }
}
