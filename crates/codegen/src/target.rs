//! Per-machine register conventions and code-generation options.

use br_isa::{abi, Machine, Reg};

/// Calling-convention and register-file description for one target.
///
/// The asymmetry between the two machines is the point of the experiment:
/// the branch-register machine has half the data registers (its callee-
/// and caller-save pools are correspondingly smaller, producing the extra
/// data memory references Table I reports) but gains the branch-register
/// file described by [`BrOptions`].
#[derive(Debug, Clone)]
pub struct TargetSpec {
    /// Which machine this spec describes.
    pub machine: Machine,
    /// Integer argument registers, in order.
    pub int_args: Vec<Reg>,
    /// Float argument registers, in order (FReg numbers).
    pub float_args: Vec<u8>,
    /// Caller-saved integer registers available for allocation.
    pub int_caller: Vec<Reg>,
    /// Callee-saved integer registers available for allocation.
    pub int_callee: Vec<Reg>,
    /// Caller-saved float registers (numbers).
    pub float_caller: Vec<u8>,
    /// Callee-saved float registers (numbers).
    pub float_callee: Vec<u8>,
    /// Stack pointer.
    pub sp: Reg,
    /// Assembler temporary (never allocated).
    pub temp: Reg,
    /// Second assembler temporary (jump tables need two).
    pub temp2: Reg,
    /// Float assembler temporary (never allocated).
    pub ftemp: u8,
    /// Link register (baseline only).
    pub link: Option<Reg>,
}

impl TargetSpec {
    /// The conventions used throughout this reproduction.
    pub fn for_machine(machine: Machine) -> TargetSpec {
        match machine {
            Machine::Baseline => TargetSpec {
                machine,
                int_args: (1..=6).map(Reg).collect(),
                float_args: (1..=6).collect(),
                int_caller: (1..=15).map(Reg).collect(),
                int_callee: (16..=27).map(Reg).collect(),
                float_caller: (1..=15).collect(),
                float_callee: (16..=30).collect(),
                sp: abi::BASE_SP,
                temp: abi::BASE_TEMP,
                temp2: Reg(28),
                ftemp: 31,
                link: Some(abi::BASE_LINK),
            },
            Machine::BranchReg => TargetSpec {
                machine,
                int_args: (1..=4).map(Reg).collect(),
                float_args: (1..=4).collect(),
                int_caller: (1..=7).map(Reg).collect(),
                int_callee: vec![Reg(8), Reg(9), Reg(10), Reg(11), Reg(15)],
                float_caller: (1..=7).collect(),
                float_callee: (8..=14).collect(),
                sp: abi::BR_SP,
                temp: abi::BR_TEMP,
                temp2: Reg(12),
                ftemp: 15,
                link: None,
            },
        }
    }

    /// Integer return-value register.
    pub fn int_ret(&self) -> Reg {
        Reg(1)
    }

    /// Float return-value register number.
    pub fn float_ret(&self) -> u8 {
        1
    }
}

/// Options controlling branch-register code generation (for the paper's
/// Section 9 sweeps and our ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrOptions {
    /// Number of architected branch registers (2..=8). `b[0]` is always
    /// the PC and `b[7]` the scratch/return register; shrinking the file
    /// shrinks the allocatable pool `b[1]..` (paper Section 9: "the
    /// available number of these registers ... could be varied").
    pub num_bregs: u8,
    /// Enable hoisting branch-target address calculations into loop
    /// preheaders (Section 5). Disabled only for ablation runs.
    pub hoisting: bool,
    /// Enable replacing noop transfer carriers with pending address
    /// calculations (Section 5). Disabled only for ablation runs.
    pub noop_replacement: bool,
    /// Section 9 future-work variant: a "fast compare" that tests the
    /// condition during decode and updates the PC directly, removing the
    /// separate carrier instruction after every conditional compare.
    pub fused_compare: bool,
}

impl Default for BrOptions {
    fn default() -> BrOptions {
        BrOptions {
            num_bregs: 8,
            hoisting: true,
            noop_replacement: true,
            fused_compare: false,
        }
    }
}

impl BrOptions {
    /// Allocatable branch registers (excludes `b[0]` PC and `b[7]`
    /// scratch), split into (callee-saved, caller-saved) halves.
    ///
    /// With the full file of 8 this yields `b1-b3` callee-saved and
    /// `b4-b6` caller-saved, matching DESIGN.md.
    pub fn pools(&self) -> (Vec<u8>, Vec<u8>) {
        let n = self.num_bregs.clamp(2, 8);
        let avail: Vec<u8> = (1..n.saturating_sub(1)).collect(); // b1..b(n-2)
        let half = avail.len().div_ceil(2);
        let callee = avail[..half].to_vec();
        let caller = avail[half..].to_vec();
        (callee, caller)
    }

    /// A stable, dense encoding of every field, for content-addressed
    /// artifact caching: two option sets produce the same fingerprint
    /// iff they generate identical code for the same IR. Bit layout:
    /// `num_bregs` in the low byte, then one bit per toggle.
    pub fn fingerprint(&self) -> u64 {
        u64::from(self.num_bregs)
            | (u64::from(self.hoisting) << 8)
            | (u64::from(self.noop_replacement) << 9)
            | (u64::from(self.fused_compare) << 10)
    }
}

/// Options for baseline code generation (ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseOptions {
    /// Fill branch delay slots with useful instructions when possible
    /// (disabled only for ablation runs).
    pub fill_delay_slots: bool,
}

impl Default for BaseOptions {
    fn default() -> BaseOptions {
        BaseOptions {
            fill_delay_slots: true,
        }
    }
}

impl BaseOptions {
    /// Stable dense field encoding for artifact caching; see
    /// [`BrOptions::fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        u64::from(self.fill_delay_slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_fingerprints_separate_every_field() {
        let base = BrOptions::default();
        let variants = [
            BrOptions { num_bregs: 4, ..base },
            BrOptions { hoisting: false, ..base },
            BrOptions { noop_replacement: false, ..base },
            BrOptions { fused_compare: true, ..base },
        ];
        for v in &variants {
            assert_ne!(v.fingerprint(), base.fingerprint(), "{v:?}");
        }
        assert_ne!(
            BaseOptions { fill_delay_slots: false }.fingerprint(),
            BaseOptions::default().fingerprint()
        );
    }

    #[test]
    fn register_pools_do_not_overlap_reserved() {
        for m in [Machine::Baseline, Machine::BranchReg] {
            let t = TargetSpec::for_machine(m);
            for r in t.int_caller.iter().chain(&t.int_callee) {
                assert_ne!(*r, t.sp);
                assert_ne!(*r, t.temp);
                assert_ne!(*r, t.temp2);
                assert_ne!(r.0, 0, "r0 is hardwired zero");
                if let Some(l) = t.link {
                    assert_ne!(*r, l);
                }
                assert!(r.0 < m.num_regs());
            }
            for f in t.float_caller.iter().chain(&t.float_callee) {
                assert_ne!(*f, t.ftemp);
                assert!(*f < m.num_fregs());
            }
        }
    }

    #[test]
    fn br_machine_has_fewer_allocatable_registers() {
        let b = TargetSpec::for_machine(Machine::Baseline);
        let r = TargetSpec::for_machine(Machine::BranchReg);
        assert!(
            b.int_caller.len() + b.int_callee.len()
                > r.int_caller.len() + r.int_callee.len()
        );
    }

    #[test]
    fn default_br_pools_match_design() {
        let (callee, caller) = BrOptions::default().pools();
        assert_eq!(callee, vec![1, 2, 3]);
        assert_eq!(caller, vec![4, 5, 6]);
    }

    #[test]
    fn shrunken_br_file() {
        let o = BrOptions {
            num_bregs: 4,
            ..Default::default()
        };
        let (callee, caller) = o.pools();
        assert_eq!(callee, vec![1]);
        assert_eq!(caller, vec![2]);
        let o2 = BrOptions {
            num_bregs: 2,
            ..Default::default()
        };
        let (ce, ca) = o2.pools();
        assert!(ce.is_empty() && ca.is_empty());
    }
}
