//! Acceptance for the whole-program lint: the reconstruction from a
//! decoded [`Program`] image must be faithful enough that every
//! compiler-produced program lints clean (no false positives, even on
//! switch-heavy code whose jump tables must be re-identified without
//! relocations), while images tampered with after assembly are caught.

use br_codegen::{compile_module, BaseOptions, BrOptions};
use br_isa::{Machine, Program};
use br_verify::lint_program;

fn build(src: &str, machine: Machine) -> Program {
    let module = br_frontend::compile(src).expect("frontend");
    compile_module(&module, machine, BaseOptions::default(), BrOptions::default())
        .expect("codegen")
        .asm
        .assemble()
        .expect("assemble")
}

/// Every suite program, on both machines, round-trips through
/// compile -> assemble -> `lint_program` with zero violations.
#[test]
fn suite_round_trips_clean() {
    let opts = BrOptions::default();
    let mut bad = Vec::new();
    for w in br_workloads::suite(br_workloads::Scale::Test) {
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let prog = build(&w.source, machine);
            for e in lint_program(&prog, &opts) {
                bad.push(format!("{}/{machine:?}: {e}", w.name));
            }
        }
    }
    assert!(bad.is_empty(), "false positives:\n{}", bad.join("\n"));
}

/// The torture-corpus programs exercise the reconstruction's hardest
/// cases (dense and nested switch tables, deep call chains); they must
/// also lint clean from the decoded image alone.
#[test]
fn corpus_round_trips_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no corpus sources found");
    let opts = BrOptions::default();
    let mut bad = Vec::new();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("read corpus source");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let prog = build(&src, machine);
            for e in lint_program(&prog, &opts) {
                bad.push(format!("{name}/{machine:?}: {e}"));
            }
        }
    }
    assert!(bad.is_empty(), "false positives:\n{}", bad.join("\n"));
}

/// An image whose text was corrupted after assembly is flagged: a
/// transfer through a branch register that is undefined at function
/// entry cannot have come from the emitter.
#[test]
fn tampered_image_is_flagged() {
    use br_isa::{MInst, TextWord};

    let src = "int main() { int s = 0; for (int i = 0; i < 5; i = i + 1) s = s + i; return s; }";
    let mut prog = build(src, Machine::BranchReg);
    assert!(lint_program(&prog, &BrOptions::default()).is_empty());

    // Overwrite main's entry instruction with a transfer through b[6]
    // (caller-saved: undefined on entry).
    let entry = prog
        .blocks
        .iter()
        .find(|m| m.func == "main" && m.label.is_none())
        .expect("main entry mark")
        .word as usize;
    prog.text[entry] = TextWord::Inst(MInst::Nop { br: 6 });

    let errs = lint_program(&prog, &BrOptions::default());
    assert!(
        errs.iter().any(|e| e.to_string().contains("main")),
        "tamper not attributed to main: {errs:?}"
    );
    assert!(!errs.is_empty(), "tampered image linted clean");
}
