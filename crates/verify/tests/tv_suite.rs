//! Acceptance: whole-suite translation validation and static-cost
//! cross-checks against the emulator.

use br_codegen::{BaseOptions, BrOptions};
use br_verify::tv;

/// Every function of every suite program proves baseline <-> BR
/// store-equivalent statically (the headline tentpole property).
#[test]
fn suite_proves_equivalent() {
    let mut bad = Vec::new();
    for w in br_workloads::suite(br_workloads::Scale::Test) {
        let module = br_frontend::compile(&w.source)
            .unwrap_or_else(|e| panic!("{}: frontend: {e}", w.name));
        let report = tv::validate_module(&module, BaseOptions::default(), BrOptions::default())
            .unwrap_or_else(|e| panic!("{}: codegen: {e}", w.name));
        for f in &report.funcs {
            if f.status != tv::TvStatus::Proven {
                bad.push(format!("{}/{}: {}", w.name, f.func, f.status.name()));
                for finding in &f.findings {
                    bad.push(format!("    {}", finding.detail));
                }
            }
        }
    }
    assert!(bad.is_empty(), "unproven functions:\n{}", bad.join("\n"));
}

/// A deliberately tampered BR emission is caught: the engine must not
/// prove a function whose code was mutated after compilation.
#[test]
fn tampered_emission_is_caught() {
    use br_codegen::{select_module, TargetSpec};
    use br_isa::{AluOp, AsmItem, Machine, MInst, Src2};
    use br_verify::tv::engine::validate_func;
    use br_verify::tv::exec::{Ctx, SideCode};
    use br_verify::tv::expr::{Arena, Side};

    let src = "int f(int a, int b) { if (a < b) return a + 3; return b - 1; }";
    let module = br_frontend::compile(src).unwrap();
    let base_opts = BaseOptions::default();
    let br_opts = BrOptions::default();
    let batch_a = select_module(&module, Machine::Baseline, base_opts, br_opts).unwrap();
    let batch_b = select_module(&module, Machine::BranchReg, base_opts, br_opts).unwrap();
    let geoms_a = batch_a.frame_geom();
    let geoms_b = batch_b.frame_geom();
    let gate = |_: br_codegen::Stage<'_>| Ok::<(), std::convert::Infallible>(());
    let (af_a, _) = batch_a.compile_func(0, &gate).unwrap();
    let (mut af_b, _) = batch_b.compile_func(0, &gate).unwrap();

    // Flip one ALU immediate in the BR stream: `a + 3` becomes `a + 4`.
    let mut tampered = false;
    for item in &mut af_b.items {
        if let AsmItem::Inst(
            MInst::Alu {
                op: AluOp::Add,
                src2: Src2::Imm(imm @ 3),
                ..
            },
            _,
        ) = item
        {
            *imm = 4;
            tampered = true;
            break;
        }
    }
    assert!(tampered, "expected an `add ..., 3` in the BR emission");

    let target_a = TargetSpec::for_machine(Machine::Baseline);
    let target_b = TargetSpec::for_machine(Machine::BranchReg);
    let sigs = std::collections::HashMap::new();
    let (callee_bregs, caller_bregs) = br_opts.pools();
    let code_a = SideCode::build(Side::Base, &af_a);
    let code_b = SideCode::build(Side::Br, &af_b);
    let cxa = Ctx {
        side: Side::Base,
        machine: Machine::Baseline,
        target: &target_a,
        geom: &geoms_a[0],
        sigs: &sigs,
        code: &code_a,
        caller_bregs: &[],
        callee_bregs: &[],
    };
    let cxb = Ctx {
        side: Side::Br,
        machine: Machine::BranchReg,
        target: &target_b,
        geom: &geoms_b[0],
        sigs: &sigs,
        code: &code_b,
        caller_bregs: &caller_bregs,
        callee_bregs: &callee_bregs,
    };
    let mut arena = Arena::new();
    let outcome = validate_func(&mut arena, &cxa, &cxb, &[false, false], br_verify::tv::exec::RetKind::Int);
    assert!(
        !outcome.findings.is_empty(),
        "tampered code must not prove"
    );
    assert!(
        outcome.findings.iter().any(|f| f.refuted),
        "constant mismatch should be a refutation, got: {:?}",
        outcome.findings.iter().map(|f| &f.detail).collect::<Vec<_>>()
    );
}
