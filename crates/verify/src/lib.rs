//! `br-verify` — stage-by-stage static checkers for the compilation
//! pipeline.
//!
//! The differential torture oracle (`br-torture`) catches miscompiles
//! end-to-end but localizes them poorly: a wrong exit value says nothing
//! about *which* pass broke *which* invariant. This crate pins each
//! invariant to the stage that must establish it, via three
//! independently-runnable checkers:
//!
//! 1. [`check_ir`] — CFG well-formedness, def-before-use on all paths
//!    (reusing `br_ir::Liveness`), and operand/[`br_ir::RegClass`]
//!    agreement on the IR entering instruction selection.
//! 2. [`check_regalloc`] — a symbolic replay of the register
//!    allocation: every physical register holds the virtual register
//!    the allocator promised, spill slots are written before they are
//!    read, and caller-saved state is never read across a call.
//! 3. [`check_asm`] — the branch-register protocol lint on emitted
//!    code: every branch register is defined on all paths before a
//!    transfer reads it, compare/carrier pairing is respected, hoisted
//!    branch registers are not clobbered inside the loops they serve,
//!    and every instruction encodes for its machine (immediate and
//!    displacement ranges included). On the baseline machine it checks
//!    delay-slot discipline instead of the branch-register protocol.
//!
//! [`compile_module_verified`] threads all three through
//! [`br_codegen::compile_module_with`] as a gate, so a violation aborts
//! compilation with a typed [`VerifyError`] naming the pass, block, and
//! instruction. `VERIFY.md` at the repo root lists every invariant.

use std::fmt;

use br_codegen::{
    BaseOptions, BrOptions, CodegenError, CompiledModule, GatedError, Stage,
};
use br_ir::Module;
use br_isa::{EncodeError, Machine};

mod asm_check;
mod ir_check;
mod program_lint;
mod regalloc_check;
pub mod tv;

pub use asm_check::{check_asm, check_asm_all};
pub use ir_check::check_ir;
pub use program_lint::lint_program;
pub use regalloc_check::check_regalloc;

/// A pipeline-invariant violation, attributed to the stage whose output
/// broke it. The [`VerifyError::pass`] accessor names that stage.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    // ---- IR validator ----
    /// The function breaks a structural rule (empty block, misplaced
    /// terminator, branch to a missing block, vreg out of range).
    Structural { func: String, detail: String },
    /// CFG successor/predecessor bookkeeping disagrees with the block
    /// terminators, or the entry block has predecessors.
    EdgeMismatch {
        func: String,
        block: u32,
        detail: String,
    },
    /// A virtual register is read on some path before any definition.
    UseBeforeDef {
        func: String,
        block: u32,
        inst: usize,
        vreg: u32,
    },
    /// An operand's register class disagrees with the instruction.
    ClassMismatch {
        func: String,
        block: u32,
        inst: usize,
        detail: String,
    },

    // ---- regalloc checker ----
    /// A spilled virtual register is still referenced directly (the
    /// spill rewrite should have replaced it with a fresh temporary).
    UnrewrittenSpill {
        func: String,
        block: u32,
        inst: usize,
        vreg: u32,
    },
    /// A read of `vreg` found its physical register holding no defined
    /// value on some path.
    UndefinedRead {
        func: String,
        block: u32,
        inst: usize,
        vreg: u32,
        preg: u8,
    },
    /// A read of `vreg` found its caller-saved physical register
    /// clobbered by an intervening call.
    ClobberedRead {
        func: String,
        block: u32,
        inst: usize,
        vreg: u32,
        preg: u8,
    },
    /// A spill-slot reload on a path where the slot was never stored.
    SpillClobbered {
        func: String,
        block: u32,
        inst: usize,
        slot: u32,
    },
    /// An assignment violates the target conventions (register outside
    /// the allocatable pools, or wrong register file).
    BadAssignment {
        func: String,
        vreg: u32,
        preg: u8,
        detail: String,
    },

    // ---- emitted-code lint ----
    /// An emitted instruction does not encode for the target machine
    /// (wrong-machine variant, register index, immediate or
    /// displacement out of range).
    Encoding {
        func: String,
        index: usize,
        err: EncodeError,
    },
    /// A baseline delayed transfer is not followed by exactly one
    /// non-transfer instruction.
    DelaySlot {
        func: String,
        index: usize,
        detail: String,
    },
    /// A transfer reads branch register `breg` on a path where nothing
    /// defined it.
    UnsetBranchReg {
        func: String,
        index: usize,
        breg: u8,
    },
    /// A compare-with-assignment is not paired with a legal carrier
    /// instruction.
    CarrierPairing {
        func: String,
        index: usize,
        detail: String,
    },
    /// A branch register reserved for a hoisted target is clobbered
    /// inside the loop it serves.
    HoistClobbered {
        func: String,
        index: usize,
        breg: u8,
    },
}

impl VerifyError {
    /// The pipeline stage whose output violated the invariant.
    pub fn pass(&self) -> &'static str {
        match self {
            VerifyError::Structural { .. }
            | VerifyError::EdgeMismatch { .. }
            | VerifyError::UseBeforeDef { .. }
            | VerifyError::ClassMismatch { .. } => "ir",
            VerifyError::UnrewrittenSpill { .. }
            | VerifyError::UndefinedRead { .. }
            | VerifyError::ClobberedRead { .. }
            | VerifyError::SpillClobbered { .. }
            | VerifyError::BadAssignment { .. } => "regalloc",
            VerifyError::Encoding { .. }
            | VerifyError::DelaySlot { .. }
            | VerifyError::UnsetBranchReg { .. }
            | VerifyError::CarrierPairing { .. }
            | VerifyError::HoistClobbered { .. } => "emit",
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Structural { func, detail } => {
                write!(f, "[ir] {func}: {detail}")
            }
            VerifyError::EdgeMismatch {
                func,
                block,
                detail,
            } => write!(f, "[ir] {func}:L{block}: {detail}"),
            VerifyError::UseBeforeDef {
                func,
                block,
                inst,
                vreg,
            } => write!(
                f,
                "[ir] {func}:L{block}:{inst}: v{vreg} may be used before definition"
            ),
            VerifyError::ClassMismatch {
                func,
                block,
                inst,
                detail,
            } => write!(f, "[ir] {func}:L{block}:{inst}: {detail}"),
            VerifyError::UnrewrittenSpill {
                func,
                block,
                inst,
                vreg,
            } => write!(
                f,
                "[regalloc] {func}:L{block}:{inst}: spilled v{vreg} referenced directly"
            ),
            VerifyError::UndefinedRead {
                func,
                block,
                inst,
                vreg,
                preg,
            } => write!(
                f,
                "[regalloc] {func}:L{block}:{inst}: v{vreg} read from r{preg} \
                 which does not hold it on all paths"
            ),
            VerifyError::ClobberedRead {
                func,
                block,
                inst,
                vreg,
                preg,
            } => write!(
                f,
                "[regalloc] {func}:L{block}:{inst}: v{vreg} read from caller-saved \
                 r{preg} after a call clobbered it"
            ),
            VerifyError::SpillClobbered {
                func,
                block,
                inst,
                slot,
            } => write!(
                f,
                "[regalloc] {func}:L{block}:{inst}: reload from spill slot {slot} \
                 which was not stored on all paths"
            ),
            VerifyError::BadAssignment {
                func,
                vreg,
                preg,
                detail,
            } => write!(f, "[regalloc] {func}: v{vreg} -> r{preg}: {detail}"),
            VerifyError::Encoding { func, index, err } => {
                write!(f, "[emit] {func}@{index}: {err}")
            }
            VerifyError::DelaySlot {
                func,
                index,
                detail,
            } => write!(f, "[emit] {func}@{index}: {detail}"),
            VerifyError::UnsetBranchReg { func, index, breg } => write!(
                f,
                "[emit] {func}@{index}: transfer through b[{breg}] which is not \
                 defined on all paths"
            ),
            VerifyError::CarrierPairing {
                func,
                index,
                detail,
            } => write!(f, "[emit] {func}@{index}: {detail}"),
            VerifyError::HoistClobbered { func, index, breg } => write!(
                f,
                "[emit] {func}@{index}: hoisted b[{breg}] clobbered inside the \
                 loop it serves"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Error from the verified pipeline: the compiler failed, or a checker
/// rejected a stage's output.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A codegen stage failed on its own.
    Codegen(CodegenError),
    /// A checker rejected a stage's output.
    Verify(VerifyError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Codegen(e) => write!(f, "{e}"),
            PipelineError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Run one checker on one pipeline stage snapshot. This is the gate
/// body used by [`compile_module_verified`]; it is public so drivers
/// with their own [`br_codegen::compile_module_with`] call can reuse it.
pub fn check_stage(stage: Stage<'_>) -> Result<(), VerifyError> {
    match stage {
        Stage::Ir { func } => check_ir(func),
        Stage::Regalloc {
            vcode,
            alloc,
            target,
            ..
        } => check_regalloc(vcode, alloc, target),
        Stage::Emit {
            asm,
            machine,
            hoist,
            br_opts,
            ..
        } => check_asm(asm, machine, hoist, &br_opts),
    }
}

/// Compile `module` for `machine` with every stage checked: the IR
/// validator before selection, the regalloc replay after allocation, and
/// the protocol lint after emission, per function. The first violation
/// aborts compilation with [`PipelineError::Verify`].
pub fn compile_module_verified(
    module: &Module,
    machine: Machine,
    base_opts: BaseOptions,
    br_opts: BrOptions,
) -> Result<CompiledModule, PipelineError> {
    let mut gate = check_stage;
    br_codegen::compile_module_with(module, machine, base_opts, br_opts, &mut gate).map_err(
        |e| match e {
            GatedError::Codegen(c) => PipelineError::Codegen(c),
            GatedError::Gate(v) => PipelineError::Verify(v),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full workload suite compiles cleanly through all three
    /// checkers on both machines — the headline acceptance property.
    #[test]
    fn workload_suite_verifies_clean_on_both_machines() {
        for w in br_workloads::suite(br_workloads::Scale::Test) {
            let module = br_frontend::compile(&w.source)
                .unwrap_or_else(|e| panic!("{}: frontend: {e}", w.name));
            for machine in [Machine::Baseline, Machine::BranchReg] {
                compile_module_verified(
                    &module,
                    machine,
                    BaseOptions::default(),
                    BrOptions::default(),
                )
                .unwrap_or_else(|e| panic!("{} on {machine:?}: {e}", w.name));
            }
        }
    }

    /// Non-default BR configurations (no hoisting, fused compares,
    /// fewer branch registers) also verify clean.
    #[test]
    fn workload_suite_verifies_clean_under_br_variants() {
        let variants = [
            BrOptions {
                hoisting: false,
                ..BrOptions::default()
            },
            BrOptions {
                fused_compare: true,
                ..BrOptions::default()
            },
            BrOptions {
                num_bregs: 4,
                ..BrOptions::default()
            },
        ];
        for w in br_workloads::suite(br_workloads::Scale::Test) {
            let module = br_frontend::compile(&w.source)
                .unwrap_or_else(|e| panic!("{}: frontend: {e}", w.name));
            for opts in &variants {
                compile_module_verified(
                    &module,
                    Machine::BranchReg,
                    BaseOptions::default(),
                    *opts,
                )
                .unwrap_or_else(|e| panic!("{} with {opts:?}: {e}", w.name));
            }
        }
    }

    #[test]
    fn pass_names_cover_all_stages() {
        let ir = VerifyError::Structural {
            func: "f".into(),
            detail: "d".into(),
        };
        let ra = VerifyError::BadAssignment {
            func: "f".into(),
            vreg: 0,
            preg: 0,
            detail: "d".into(),
        };
        let em = VerifyError::UnsetBranchReg {
            func: "f".into(),
            index: 0,
            breg: 1,
        };
        assert_eq!(ir.pass(), "ir");
        assert_eq!(ra.pass(), "regalloc");
        assert_eq!(em.pass(), "emit");
        for e in [ir, ra, em] {
            assert!(!e.to_string().is_empty());
            assert!(e.to_string().contains(e.pass()));
        }
    }
}
