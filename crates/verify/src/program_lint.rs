//! Checker 4: the protocol lint over a loaded [`Program`] image.
//!
//! br-serve's artifact cache deserializes compiled programs straight
//! from disk, so a corrupted or stale entry can reach the emulator
//! without ever passing through [`check_asm_all`] — that lint runs on
//! the emitter's symbolic stream, which a decoded image no longer has.
//! This module re-derives a symbolic stream per function from the text
//! segment and block marks and runs the same checkers over it.
//!
//! A decoded image carries no relocations, but every address the lint
//! needs is already resolved into instruction fields, so the relocs are
//! reconstructed rather than lost:
//!
//! * a `bcalc` displacement landing inside its own function becomes a
//!   `%disp(label)` against a synthesized label at the target word;
//! * a `sethi`/`orlo` or `sethi`/`bmovr` pair is constant-folded by a
//!   linear scan; an address naming a function entry becomes
//!   `%lo(func)` (the call linkage the dataflow models as a clobber),
//!   one landing inside the function becomes `%lo(label)` (a jump-table
//!   base, re-keying the table to its dispatching `bload`);
//! * a text data word whose value is an in-function address becomes an
//!   absolute jump-table entry for that label.
//!
//! Synthesized label ids are the target's word offset within its
//! function, so the same image always reconstructs the same stream. On
//! the baseline no labels are synthesized at all: its checks (encoding,
//! delay slots) are positional, and a label item in a delay slot would
//! be reported as a violation that the original stream never contained.
//!
//! The round trip compile → assemble → `lint_program` is asserted clean
//! over the whole suite in tests, so a violation reported on a cache
//! artifact indicates corruption or toolchain skew, not reconstruction
//! noise.

use std::collections::{BTreeSet, HashMap};

use br_codegen::BrOptions;
use br_isa::{
    abi, AluOp, AsmFunc, AsmItem, Label, MInst, Program, Reloc, Src2, SymRef, TextWord,
};

use crate::asm_check::check_asm_all;
use crate::VerifyError;

/// One function's extent in the text segment.
struct FuncSpan {
    name: String,
    /// First text word.
    start: usize,
    /// One past the last text word.
    end: usize,
}

/// Split the text segment into per-function spans using the entry marks
/// (label `None`) the assembler retains.
fn func_spans(prog: &Program) -> Vec<FuncSpan> {
    let mut spans: Vec<FuncSpan> = Vec::new();
    for mark in &prog.blocks {
        if mark.label.is_none() {
            if let Some(prev) = spans.last_mut() {
                prev.end = mark.word as usize;
            }
            spans.push(FuncSpan {
                name: mark.func.clone(),
                start: mark.word as usize,
                end: prog.text.len(),
            });
        }
    }
    spans
}

/// The integer register an instruction writes, if any — used to
/// invalidate `sethi` tracking.
fn int_def(inst: &MInst) -> Option<u8> {
    match inst {
        MInst::Alu { rd, .. }
        | MInst::Sethi { rd, .. }
        | MInst::Load { rd, .. }
        | MInst::FtoI { rd, .. }
        | MInst::Jmpl { rd, .. } => Some(rd.0),
        _ => None,
    }
}

/// Reconstruct one function's symbolic stream from its decoded words.
fn rebuild_func(prog: &Program, span: &FuncSpan) -> AsmFunc {
    let in_span = |addr: u32| -> Option<usize> {
        if addr < abi::TEXT_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        let w = ((addr - abi::TEXT_BASE) / 4) as usize;
        (span.start <= w && w < span.end).then_some(w)
    };
    let entries: HashMap<u32, &str> = prog
        .blocks
        .iter()
        .filter(|m| m.label.is_none())
        .map(|m| (m.addr(), m.func.as_str()))
        .collect();
    // Labels are synthesized only where a reconstructed reloc points;
    // ids are the target's word offset so the stream is deterministic.
    let label_id = |w: usize| (w - span.start) as u32;

    // Pass 1: fold `sethi` highs forward, resolve each word's reloc,
    // and collect the words that need a label bound.
    let mut relocs: HashMap<usize, Reloc> = HashMap::new();
    let mut targets: BTreeSet<usize> = BTreeSet::new();
    let mut hi: HashMap<u8, u32> = HashMap::new();
    for w in span.start..span.end {
        match &prog.text[w] {
            TextWord::Data(v) => {
                if let Some(t) = in_span(*v) {
                    relocs.insert(w, Reloc::Abs(SymRef::Label(Label(label_id(t)))));
                    targets.insert(t);
                }
            }
            TextWord::Inst(inst) => {
                match inst {
                    MInst::Bcalc { disp, .. } => {
                        let addr = (abi::TEXT_BASE as i64 + 4 * w as i64) + 4 * i64::from(*disp);
                        if let Some(t) = u32::try_from(addr).ok().and_then(in_span) {
                            relocs.insert(w, Reloc::Disp(SymRef::Label(Label(label_id(t)))));
                            targets.insert(t);
                        }
                    }
                    MInst::Alu {
                        op: AluOp::OrLo,
                        rs1,
                        src2: Src2::Imm(lo),
                        ..
                    } => {
                        if let Some(&h) = hi.get(&rs1.0) {
                            let addr = h | (*lo as u32 & 0x7FF);
                            if let Some(&f) = entries.get(&addr) {
                                relocs.insert(w, Reloc::Lo(SymRef::Func(f.to_string())));
                            } else if let Some(t) = in_span(addr) {
                                relocs.insert(w, Reloc::Lo(SymRef::Label(Label(label_id(t)))));
                                targets.insert(t);
                            }
                        }
                    }
                    MInst::BMovR { rs1, off, .. } => {
                        if let Some(&h) = hi.get(&rs1.0) {
                            let addr = h | (*off as u32 & 0x7FF);
                            if let Some(&f) = entries.get(&addr) {
                                relocs.insert(w, Reloc::Lo(SymRef::Func(f.to_string())));
                            }
                        }
                    }
                    _ => {}
                }
                match inst {
                    MInst::Sethi { rd, imm } => {
                        hi.insert(rd.0, imm << 11);
                    }
                    _ => {
                        if let Some(rd) = int_def(inst) {
                            hi.remove(&rd);
                        }
                    }
                }
            }
        }
    }

    // Pass 2: emit the stream, binding a label ahead of each target.
    let mut items = Vec::with_capacity(span.end - span.start);
    for w in span.start..span.end {
        if targets.contains(&w) {
            items.push(AsmItem::Label(Label(label_id(w))));
        }
        let reloc = relocs.get(&w).cloned();
        match &prog.text[w] {
            TextWord::Inst(inst) => items.push(AsmItem::Inst(*inst, reloc)),
            TextWord::Data(v) => items.push(AsmItem::Word(*v, reloc)),
        }
    }
    AsmFunc {
        name: span.name.clone(),
        items,
    }
}

/// Run the protocol lint over every function of a loaded program,
/// collecting all violations. An empty vector means the image is clean.
///
/// `opts` must describe the branch-register configuration the program
/// was compiled with (the caller-saved pool feeds the call-clobber
/// model); artifacts produced under default options lint with the
/// default options. The hoist-plan check is skipped — the plan is a
/// compile-time artifact that does not survive encoding.
pub fn lint_program(prog: &Program, opts: &BrOptions) -> Vec<VerifyError> {
    let mut sink = Vec::new();
    for span in func_spans(prog) {
        let asm = rebuild_func(prog, &span);
        sink.extend(check_asm_all(&asm, prog.machine, None, opts));
    }
    sink
}
