//! Hash-consed symbolic expressions for translation validation.
//!
//! One arena is shared by the two sides of a validation (baseline and
//! branch-register code for the same function), so structurally equal
//! values get the *same* [`ExprId`] no matter which side built them.
//! Cross-side agreement checks then reduce to integer equality.
//!
//! Symbols fall into two families:
//!
//! * **shared** — values both machines agree on by construction:
//!   incoming arguments ([`Expr::Param`]), stack-slot addresses named
//!   slot-for-slot ([`Expr::SlotAddr`]), global addresses by symbol
//!   name ([`Expr::GlobalAddr`]), initial observable memory
//!   ([`Expr::Mem0`]), call results ([`Expr::RetVal`]), and join
//!   classes ([`Expr::Class`]).
//! * **per-side** — values that are real but differ between the two
//!   machines (code addresses, entry register junk, caller-saved
//!   residue after calls). These are tagged with a [`Side`] so they can
//!   never spuriously prove a cross-side equality.
//!
//! Constant folding mirrors the emulator's `alu` exactly (wrapping
//! arithmetic, shift counts masked to 5 bits, no fold for a zero
//! divisor), plus the algebraic identities the emitters rely on:
//! `add r, s, 0` register moves and `sethi`/`orlo` address pairing.

use std::collections::HashMap;

use br_isa::{AluOp, FpuOp, MemWidth};

/// Index of an expression in the [`Arena`].
pub type ExprId = u32;

/// Interned symbol name.
pub type Name = u32;

/// Which machine's code built a per-side symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The baseline (delayed-branch) machine.
    Base,
    /// The branch-register machine.
    Br,
}

impl Side {
    /// Short display tag.
    pub fn tag(self) -> &'static str {
        match self {
            Side::Base => "base",
            Side::Br => "br",
        }
    }
}

/// Location namespace for [`Expr::Entry`] and [`Expr::Junk`] symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LocKind {
    /// Integer register.
    Reg,
    /// Float register.
    FReg,
    /// Branch register.
    BReg,
    /// Condition-code latch (baseline compare operands).
    Latch,
    /// Private frame memory word, keyed by entry-sp-relative offset.
    Priv,
}

/// The symbol under a `Hi`/`Lo` relocation pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HiSym {
    /// A data global, by interned name (shared: data layout is keyed by
    /// symbol name on both machines).
    Data(Name),
    /// A function entry (per side: text layout differs).
    Func(Side, Name),
    /// A function-local label (per side: label numbering and layout of
    /// emission-internal labels differ).
    Label(Side, u32),
}

/// A symbolic value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A known 32-bit constant.
    Const(i32),
    /// Logical incoming argument `j`, in declaration order (shared).
    Param(u32),
    /// Address of IR stack slot `slot` plus `off` bytes (shared: the
    /// two frame layouts differ, but slots correspond index-for-index).
    SlotAddr { slot: u32, off: i32 },
    /// Address of data global `name` plus `off` bytes (shared).
    GlobalAddr { name: Name, off: i32 },
    /// Entry address of function `name` (per side).
    FuncAddr { side: Side, name: Name },
    /// Address a function-local label binds to (per side). Doubles as a
    /// jump-table base when loaded through.
    LabelAddr { side: Side, label: u32 },
    /// Address of instruction word `word` of the function being
    /// validated (per side): `pc`-relative values such as the return
    /// address a call writes.
    CodeAddr { side: Side, word: u32 },
    /// The caller's return address — what `r31`/`b7` holds at entry.
    RetTarget(Side),
    /// Entry stack pointer plus `off` bytes (per side).
    SpRel { side: Side, off: i32 },
    /// Unconstrained value location `(kind, loc)` held at entry.
    Entry { side: Side, kind: LocKind, loc: u32 },
    /// Unconstrained caller-saved residue left by the call at
    /// instruction word `word`.
    Junk {
        side: Side,
        word: u32,
        kind: LocKind,
        loc: u32,
    },
    /// Join class: the common value of the locations that met with
    /// pairwise-equal values at `anchor`; `rep` encodes the smallest
    /// member location, which makes the symbol stable across fixpoint
    /// iterations.
    Class { anchor: u32, rep: u64 },
    /// Initial observable memory (globals + stack slots).
    Mem0,
    /// High 21 bits of a relocated symbol address (`sethi`).
    Hi(HiSym),
    /// Low 11 bits of a relocated symbol address.
    Lo(HiSym),
    /// Integer ALU operation.
    Alu { op: AluOp, a: ExprId, b: ExprId },
    /// Float operation.
    Fpu { op: FpuOp, a: ExprId, b: ExprId },
    /// Float negation.
    FNeg(ExprId),
    /// Int-to-float conversion.
    ItoF(ExprId),
    /// Float-to-int (truncating) conversion.
    FtoI(ExprId),
    /// Observable-memory load that could not be forwarded.
    Load {
        mem: ExprId,
        addr: ExprId,
        w: MemWidth,
    },
    /// Observable-memory store: the chain node appended by one store.
    Store {
        mem: ExprId,
        addr: ExprId,
        val: ExprId,
        w: MemWidth,
    },
    /// A call event: callee name, logical arguments in declaration
    /// order, and observable memory at the call. Two calls with equal
    /// components behave identically (the machines are deterministic),
    /// so this node needs no sequence number.
    Call {
        name: Name,
        args: Box<[ExprId]>,
        mem: ExprId,
    },
    /// The return value of a call.
    RetVal(ExprId),
    /// Observable memory after a call.
    MemAfter(ExprId),
    /// The word loaded from the jump table bound at `label`, indexed by
    /// the byte offset `idx`.
    TableEntry { side: Side, label: u32, idx: ExprId },
}

/// Copyable summary of an expression node, used by the `alu` fold rules
/// so they never hold an arena borrow across a cons.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Shape {
    Const(i32),
    SpRel(Side, i32),
    Slot(u32, i32),
    Global(Name, i32),
    AddConst(ExprId, i32),
    Hi(HiSym),
    Lo(HiSym),
    Other,
}

/// The hash-consing arena, including the symbol-name interner.
pub struct Arena {
    exprs: Vec<Expr>,
    map: HashMap<Expr, ExprId>,
    names: Vec<String>,
    name_map: HashMap<String, Name>,
}

/// Mirror of the emulator's `alu` constant evaluation. Returns `None`
/// where the emulator would fault (zero divisor), so the expression
/// stays symbolic and both sides keep the same opaque node.
pub fn fold_const(op: AluOp, a: i32, b: i32) -> Option<i32> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        AluOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b as u32 & 31),
        AluOp::Srl => ((a as u32) >> (b as u32 & 31)) as i32,
        AluOp::Sra => a >> (b as u32 & 31),
        AluOp::OrLo => a | b,
    })
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Arena {
        Arena {
            exprs: Vec::new(),
            map: HashMap::new(),
            names: Vec::new(),
            name_map: HashMap::new(),
        }
    }

    /// Intern a symbol name.
    pub fn intern(&mut self, s: &str) -> Name {
        if let Some(&n) = self.name_map.get(s) {
            return n;
        }
        let n = self.names.len() as Name;
        self.names.push(s.to_string());
        self.name_map.insert(s.to_string(), n);
        n
    }

    /// The string a [`Name`] interns.
    pub fn name(&self, n: Name) -> &str {
        &self.names[n as usize]
    }

    /// Hash-cons an expression as-is (no folding).
    pub fn mk(&mut self, e: Expr) -> ExprId {
        if let Some(&id) = self.map.get(&e) {
            return id;
        }
        let id = self.exprs.len() as ExprId;
        self.exprs.push(e.clone());
        self.map.insert(e, id);
        id
    }

    /// The expression an id denotes.
    pub fn get(&self, id: ExprId) -> &Expr {
        &self.exprs[id as usize]
    }

    /// Shorthand for a constant.
    pub fn c(&mut self, v: i32) -> ExprId {
        self.mk(Expr::Const(v))
    }

    /// The address a `Hi`/`Lo` pair resolves to.
    fn addr_of(&mut self, s: HiSym) -> ExprId {
        match s {
            HiSym::Data(name) => self.mk(Expr::GlobalAddr { name, off: 0 }),
            HiSym::Func(side, name) => self.mk(Expr::FuncAddr { side, name }),
            HiSym::Label(side, label) => self.mk(Expr::LabelAddr { side, label }),
        }
    }

    /// Copyable summary of an expression, for fold rules that must not
    /// hold a borrow while consing replacements.
    fn shape(&self, id: ExprId) -> Shape {
        match *self.get(id) {
            Expr::Const(v) => Shape::Const(v),
            Expr::SpRel { side, off } => Shape::SpRel(side, off),
            Expr::SlotAddr { slot, off } => Shape::Slot(slot, off),
            Expr::GlobalAddr { name, off } => Shape::Global(name, off),
            Expr::Hi(s) => Shape::Hi(s),
            Expr::Lo(s) => Shape::Lo(s),
            Expr::Alu {
                op: AluOp::Add,
                a,
                b,
            } => {
                if let Expr::Const(k) = *self.get(b) {
                    Shape::AddConst(a, k)
                } else {
                    Shape::Other
                }
            }
            _ => Shape::Other,
        }
    }

    /// ALU constructor with emulator-exact constant folding plus the
    /// address algebra the emitters rely on: `x + 0` register moves,
    /// constant-offset accumulation on `SpRel`/`SlotAddr`/`GlobalAddr`,
    /// same-base pointer differences, and `Hi`/`Lo` pairing.
    pub fn alu(&mut self, op: AluOp, a: ExprId, b: ExprId) -> ExprId {
        let (sa, sb) = (self.shape(a), self.shape(b));
        if let (Shape::Const(x), Shape::Const(y)) = (sa, sb) {
            if let Some(v) = fold_const(op, x, y) {
                return self.c(v);
            }
        }
        match op {
            AluOp::Add => {
                // Canonicalize a constant operand to the right.
                if matches!(sa, Shape::Const(_)) {
                    return self.alu(AluOp::Add, b, a);
                }
                if let Shape::Const(k) = sb {
                    if k == 0 {
                        return a;
                    }
                    match sa {
                        Shape::SpRel(side, off) => {
                            return self.mk(Expr::SpRel {
                                side,
                                off: off.wrapping_add(k),
                            });
                        }
                        Shape::Slot(slot, off) => {
                            return self.mk(Expr::SlotAddr {
                                slot,
                                off: off.wrapping_add(k),
                            });
                        }
                        Shape::Global(name, off) => {
                            return self.mk(Expr::GlobalAddr {
                                name,
                                off: off.wrapping_add(k),
                            });
                        }
                        Shape::AddConst(x, m) => {
                            let kc = self.c(m.wrapping_add(k));
                            return self.alu(AluOp::Add, x, kc);
                        }
                        _ => {}
                    }
                }
                if let Some(id) = self.try_hi_lo(sa, sb) {
                    return id;
                }
            }
            AluOp::Sub => {
                if let Shape::Const(k) = sb {
                    let nk = self.c(k.wrapping_neg());
                    return self.alu(AluOp::Add, a, nk);
                }
                // Same-base pointer difference.
                match (sa, sb) {
                    (Shape::SpRel(s1, o1), Shape::SpRel(s2, o2)) if s1 == s2 => {
                        return self.c(o1.wrapping_sub(o2));
                    }
                    (Shape::Slot(i1, o1), Shape::Slot(i2, o2)) if i1 == i2 => {
                        return self.c(o1.wrapping_sub(o2));
                    }
                    (Shape::Global(n1, o1), Shape::Global(n2, o2)) if n1 == n2 => {
                        return self.c(o1.wrapping_sub(o2));
                    }
                    _ => {}
                }
                if a == b {
                    return self.c(0);
                }
            }
            AluOp::OrLo | AluOp::Or => {
                if let Some(id) = self.try_hi_lo(sa, sb) {
                    return id;
                }
                if let Shape::Const(0) = sb {
                    return a;
                }
            }
            _ => {}
        }
        self.mk(Expr::Alu { op, a, b })
    }

    /// `Hi(s) (+|or) Lo(s)` resolves to the full symbol address.
    fn try_hi_lo(&mut self, sa: Shape, sb: Shape) -> Option<ExprId> {
        let sym = match (sa, sb) {
            (Shape::Hi(s1), Shape::Lo(s2)) if s1 == s2 => s1,
            (Shape::Lo(s1), Shape::Hi(s2)) if s1 == s2 => s1,
            _ => return None,
        };
        Some(self.addr_of(sym))
    }

    /// Resolve an address expression to a named disjointness region:
    /// `(region key, byte offset)`. Regions with different keys never
    /// alias (distinct globals, distinct slots, globals vs. slots);
    /// offsets within one region compare arithmetically.
    pub fn region_of(&self, addr: ExprId) -> Option<(Region, i32)> {
        match *self.get(addr) {
            Expr::GlobalAddr { name, off } => Some((Region::Global(name), off)),
            Expr::SlotAddr { slot, off } => Some((Region::Slot(slot), off)),
            _ => None,
        }
    }

    /// Number of expressions interned so far.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Whether no expressions have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }
}

impl Default for Arena {
    fn default() -> Arena {
        Arena::new()
    }
}

/// A disjointness region for store-forwarding (see [`Arena::region_of`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// A data global, by interned name.
    Global(Name),
    /// An IR stack slot, by index.
    Slot(u32),
}

/// Whether two accesses are provably disjoint: both resolve to regions
/// and either the regions differ or the byte ranges do not overlap.
pub fn disjoint(arena: &Arena, a: ExprId, wa: MemWidth, b: ExprId, wb: MemWidth) -> bool {
    let (Some((ra, oa)), Some((rb, ob))) = (arena.region_of(a), arena.region_of(b)) else {
        return false;
    };
    if ra != rb {
        return true;
    }
    let (sa, sb) = (width_bytes(wa), width_bytes(wb));
    oa.saturating_add(sa) <= ob || ob.saturating_add(sb) <= oa
}

/// Access width in bytes.
pub fn width_bytes(w: MemWidth) -> i32 {
    match w {
        MemWidth::Byte => 1,
        MemWidth::Word => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consing_is_stable() {
        let mut a = Arena::new();
        let x = a.c(7);
        let y = a.c(7);
        assert_eq!(x, y);
        let p1 = a.mk(Expr::Param(0));
        let p2 = a.mk(Expr::Param(0));
        assert_eq!(p1, p2);
        assert_ne!(x, p1);
    }

    #[test]
    fn add_zero_is_identity_and_offsets_accumulate() {
        let mut a = Arena::new();
        let p = a.mk(Expr::Param(0));
        let z = a.c(0);
        assert_eq!(a.alu(AluOp::Add, p, z), p);
        let sp = a.mk(Expr::SpRel {
            side: Side::Base,
            off: -32,
        });
        let k = a.c(8);
        let sp2 = a.alu(AluOp::Add, sp, k);
        assert_eq!(
            *a.get(sp2),
            Expr::SpRel {
                side: Side::Base,
                off: -24
            }
        );
        // Nested constant offsets reassociate.
        let q = a.mk(Expr::Param(1));
        let k1 = a.c(3);
        let s1 = a.alu(AluOp::Add, q, k1);
        let k2 = a.c(4);
        let s2 = a.alu(AluOp::Add, s1, k2);
        let k7 = a.c(7);
        assert_eq!(s2, a.alu(AluOp::Add, q, k7));
    }

    #[test]
    fn folding_mirrors_emulator_alu() {
        let mut a = Arena::new();
        let x = a.c(i32::MIN);
        let y = a.c(-1);
        // wrapping div, like the emulator
        let d = a.alu(AluOp::Div, x, y);
        assert_eq!(*a.get(d), Expr::Const(i32::MIN));
        // zero divisor stays symbolic
        let z = a.c(0);
        let dz = a.alu(AluOp::Div, x, z);
        assert!(matches!(*a.get(dz), Expr::Alu { op: AluOp::Div, .. }));
        // shifts mask the count
        let one = a.c(1);
        let c33 = a.c(33);
        let s = a.alu(AluOp::Sll, one, c33);
        assert_eq!(*a.get(s), Expr::Const(2));
    }

    #[test]
    fn hi_lo_pairs_resolve_addresses() {
        let mut a = Arena::new();
        let g = a.intern("counter");
        let hi = a.mk(Expr::Hi(HiSym::Data(g)));
        let lo = a.mk(Expr::Lo(HiSym::Data(g)));
        let addr = a.alu(AluOp::OrLo, hi, lo);
        assert_eq!(*a.get(addr), Expr::GlobalAddr { name: g, off: 0 });
    }

    #[test]
    fn disjointness_by_region() {
        let mut a = Arena::new();
        let g1 = a.intern("a");
        let g2 = a.intern("b");
        let x = a.mk(Expr::GlobalAddr { name: g1, off: 0 });
        let y = a.mk(Expr::GlobalAddr { name: g2, off: 0 });
        let x4 = a.mk(Expr::GlobalAddr { name: g1, off: 4 });
        let s = a.mk(Expr::SlotAddr { slot: 0, off: 0 });
        assert!(disjoint(&a, x, MemWidth::Word, y, MemWidth::Word));
        assert!(disjoint(&a, x, MemWidth::Word, x4, MemWidth::Word));
        assert!(!disjoint(&a, x, MemWidth::Word, x, MemWidth::Word));
        assert!(disjoint(&a, x, MemWidth::Word, s, MemWidth::Word));
        let p = a.mk(Expr::Param(0));
        assert!(!disjoint(&a, x, MemWidth::Word, p, MemWidth::Word));
    }
}
