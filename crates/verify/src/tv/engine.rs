//! The joint equivalence engine.
//!
//! Both sides' segments are executed independently ([`super::exec`]);
//! this module couples them: it aligns segment exits across sides by
//! their *decision keys* (canonicalized branch guards plus arrival
//! point), merges arriving states into each anchor's joint in-state by
//! partition refinement, iterates to a fixpoint, and finally checks the
//! paired return states — same return value, same observable store
//! chain, callee-saved state restored.
//!
//! Soundness rests on the shared expression arena: cross-side equality
//! is [`ExprId`] equality, and the join introduces one fresh
//! [`Expr::Class`] symbol per *pair* of (current, incoming) values, so
//! two locations stay provably equal after a join exactly when they
//! were pairwise equal on every path in.

use std::collections::{BTreeMap, HashMap};

use br_isa::Cc;

use super::exec::{seed_entry, Arrival, Ctx, Exec, Exit, Guard, RetKind, SideState};
use super::expr::{Arena, Expr, ExprId, LocKind};

/// Fixpoint round cap; a function that has not converged by then is
/// reported unproven.
pub const MAX_ROUNDS: u32 = 50;

/// One engine finding: `refuted` distinguishes a demonstrated
/// inequivalence from an incompleteness of the prover.
#[derive(Debug, Clone)]
pub struct EngineFinding {
    /// True when the two sides provably disagree; false when the engine
    /// merely could not complete the proof.
    pub refuted: bool,
    /// Human-readable description.
    pub detail: String,
}

/// Outcome of validating one function pair.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Findings; empty means proven equivalent.
    pub findings: Vec<EngineFinding>,
    /// Fixpoint rounds used.
    pub rounds: u32,
}

/// Joint state of the two sides at one anchor.
#[derive(Clone)]
struct Joint {
    a: SideState,
    b: SideState,
}

/// A location in the joint state, for the partition-refinement meet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Space {
    Reg(u8),
    FReg(u8),
    BReg(u8),
    Latch(u8),
    Chain,
    Priv(i32),
}

type Loc = (u8, Space);

fn encode(l: Loc) -> u64 {
    let (side, sp) = l;
    let (k, v): (u64, u64) = match sp {
        Space::Reg(r) => (0, r as u64),
        Space::FReg(r) => (1, r as u64),
        Space::BReg(r) => (2, r as u64),
        Space::Latch(r) => (3, r as u64),
        Space::Chain => (4, 0),
        Space::Priv(z) => (5, z as u32 as u64),
    };
    ((side as u64) << 40) | (k << 32) | v
}

fn side_state(j: &Joint, side: u8) -> &SideState {
    if side == 0 {
        &j.a
    } else {
        &j.b
    }
}

fn side_state_mut(j: &mut Joint, side: u8) -> &mut SideState {
    if side == 0 {
        &mut j.a
    } else {
        &mut j.b
    }
}

fn get_loc(j: &Joint, l: Loc) -> Option<ExprId> {
    let s = side_state(j, l.0);
    Some(match l.1 {
        Space::Reg(r) => s.regs[r as usize],
        Space::FReg(r) => s.fregs[r as usize],
        Space::BReg(r) => s.bregs[r as usize],
        Space::Latch(r) => {
            if r < 2 {
                s.cc[r as usize]
            } else {
                s.fcc[(r - 2) as usize]
            }
        }
        Space::Chain => s.chain,
        Space::Priv(z) => return s.private.get(&z).copied(),
    })
}

fn set_loc(j: &mut Joint, l: Loc, v: ExprId) {
    let s = side_state_mut(j, l.0);
    match l.1 {
        Space::Reg(r) => s.regs[r as usize] = v,
        Space::FReg(r) => s.fregs[r as usize] = v,
        Space::BReg(r) => s.bregs[r as usize] = v,
        Space::Latch(r) => {
            if r < 2 {
                s.cc[r as usize] = v
            } else {
                s.fcc[(r - 2) as usize] = v
            }
        }
        Space::Chain => s.chain = v,
        Space::Priv(z) => {
            s.private.insert(z, v);
        }
    }
}

/// All locations of a joint state, in a fixed deterministic order.
fn locations(j: &Joint) -> Vec<Loc> {
    let mut out = Vec::new();
    for side in 0..2u8 {
        for r in 0..32 {
            out.push((side, Space::Reg(r)));
        }
        for r in 0..32 {
            out.push((side, Space::FReg(r)));
        }
        for r in 0..8 {
            out.push((side, Space::BReg(r)));
        }
        for r in 0..4 {
            out.push((side, Space::Latch(r)));
        }
        out.push((side, Space::Chain));
        for &z in side_state(j, side).private.keys() {
            out.push((side, Space::Priv(z)));
        }
    }
    out
}

/// Merge `inc` into `cur` at `anchor` by partition refinement: private
/// keys absent from either input are dropped; locations whose values
/// differ are grouped by their `(current, incoming)` value pair and
/// every group gets one fresh class symbol, keyed by its smallest
/// member, so pairwise-equal locations stay equal through the join.
fn meet(arena: &mut Arena, anchor: u32, cur: &mut Joint, inc: &Joint) -> bool {
    let mut changed = false;
    for side in 0..2u8 {
        let inc_keys: Vec<i32> = side_state(inc, side).private.keys().copied().collect();
        let s = side_state_mut(cur, side);
        let before = s.private.len();
        s.private.retain(|z, _| inc_keys.contains(z));
        changed |= s.private.len() != before;
    }
    let locs = locations(cur);
    let mut diffs: Vec<(Loc, ExprId, ExprId)> = Vec::new();
    for l in locs {
        let a = get_loc(cur, l).expect("cur location present");
        let Some(b) = get_loc(inc, l) else {
            // Key present in cur but not inc: already dropped above.
            continue;
        };
        if a != b {
            diffs.push((l, a, b));
        }
    }
    if diffs.is_empty() {
        return changed;
    }
    let mut groups: HashMap<(ExprId, ExprId), u64> = HashMap::new();
    for &(l, a, b) in &diffs {
        let e = encode(l);
        groups
            .entry((a, b))
            .and_modify(|m| *m = (*m).min(e))
            .or_insert(e);
    }
    for (l, a, b) in diffs {
        let rep = groups[&(a, b)];
        let v = arena.mk(Expr::Class { anchor, rep });
        if get_loc(cur, l) != Some(v) {
            set_loc(cur, l, v);
            changed = true;
        }
    }
    changed
}

/// A canonicalized guard, comparable across sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CanonGuard {
    code: u32,
    float: bool,
    a: ExprId,
    b: ExprId,
}

/// Canonicalize one (guard, decision): integer guards normalize both
/// the condition (negation absorbed into the decision) and operand
/// order; float guards only swap operands (`a < b  ≡  b > a` holds for
/// NaN too, but negation does not), so `Eq`/`Ne` swap symmetrically and
/// `Gt`/`Ge` become swapped `Lt`/`Le`.
fn canon(g: Guard, dec: bool) -> (CanonGuard, bool) {
    let Guard {
        cc,
        float,
        lhs,
        rhs,
    } = g;
    if float {
        let (cc, a, b) = match cc {
            Cc::Gt => (Cc::Lt, rhs, lhs),
            Cc::Ge => (Cc::Le, rhs, lhs),
            Cc::Eq | Cc::Ne if lhs > rhs => (cc, rhs, lhs),
            _ => (cc, lhs, rhs),
        };
        return (
            CanonGuard {
                code: cc.code(),
                float,
                a,
                b,
            },
            dec,
        );
    }
    let (mut cc, mut dec) = match cc {
        Cc::Ne => (Cc::Eq, !dec),
        Cc::Ge => (Cc::Lt, !dec),
        Cc::Gt => (Cc::Le, !dec),
        c => (c, dec),
    };
    let (a, b) = if lhs > rhs {
        match cc {
            Cc::Eq => {}
            // a < b  ≡  !(b <= a);  a <= b  ≡  !(b < a)
            Cc::Lt => {
                cc = Cc::Le;
                dec = !dec;
            }
            Cc::Le => {
                cc = Cc::Lt;
                dec = !dec;
            }
            _ => unreachable!("normalized above"),
        }
        (rhs, lhs)
    } else {
        (lhs, rhs)
    };
    (
        CanonGuard {
            code: cc.code(),
            float,
            a,
            b,
        },
        dec,
    )
}

type ArmKey = (Vec<(CanonGuard, bool)>, Arrival);

/// One cross-side-paired segment arm.
struct Paired {
    arrival: Arrival,
    a: SideState,
    b: SideState,
}

/// Pair the two sides' exits by decision key. Every key must appear on
/// both sides with exactly one distinct state; otherwise the sides'
/// control structure diverged beyond what the engine can align.
fn pair_exits(ea: Vec<Exit>, eb: Vec<Exit>, at: &str) -> Result<Vec<Paired>, String> {
    fn index(exits: Vec<Exit>, side: &str, at: &str) -> Result<BTreeMap<ArmKey, SideState>, String> {
        let mut m: BTreeMap<ArmKey, SideState> = BTreeMap::new();
        for e in exits {
            let key: ArmKey = (
                e.guards.iter().map(|&(g, d)| canon(g, d)).collect(),
                e.arrival,
            );
            match m.get(&key) {
                None => {
                    m.insert(key, e.state);
                }
                Some(prev) if *prev == e.state => {}
                Some(_) => {
                    return Err(format!(
                        "{at}: {side} side reaches {:?} twice with different states",
                        key.1
                    ));
                }
            }
        }
        Ok(m)
    }
    let ma = index(ea, "baseline", at)?;
    let mut mb = index(eb, "br", at)?;
    let mut out = Vec::new();
    for (key, sa) in ma {
        let Some(sb) = mb.remove(&key) else {
            return Err(format!(
                "{at}: baseline arm {:?} with {} guards has no BR counterpart",
                key.1,
                key.0.len()
            ));
        };
        out.push(Paired {
            arrival: key.1,
            a: sa,
            b: sb,
        });
    }
    if let Some((key, _)) = mb.into_iter().next() {
        return Err(format!(
            "{at}: BR arm {:?} with {} guards has no baseline counterpart",
            key.1,
            key.0.len()
        ));
    }
    Ok(out)
}

/// Best-effort refutation of a value or chain mismatch: returns true
/// only when the two expressions provably differ (unequal constants, or
/// parallel store chains writing different constants to the same
/// address).
/// View `id` as `base + k`, splitting off a constant addend.
fn base_off(arena: &Arena, id: ExprId) -> (ExprId, i32) {
    if let Expr::Alu {
        op: br_isa::AluOp::Add,
        a,
        b,
    } = arena.get(id)
    {
        if let Expr::Const(k) = arena.get(*b) {
            return (*a, *k);
        }
    }
    (id, 0)
}

fn refute(arena: &Arena, a: ExprId, b: ExprId) -> bool {
    // `x + k1` vs `x + k2` with k1 != k2 differ for every x (the
    // difference is a nonzero constant mod 2^32).
    let (ba, ka) = base_off(arena, a);
    let (bb, kb) = base_off(arena, b);
    if ba == bb && ka != kb {
        return true;
    }
    match (arena.get(a), arena.get(b)) {
        (Expr::Const(x), Expr::Const(y)) => x != y,
        (
            Expr::Store {
                mem: ma,
                addr: aa,
                val: va,
                w: wa,
            },
            Expr::Store {
                mem: mb,
                addr: ab,
                val: vb,
                w: wb,
            },
        ) => {
            if aa == ab && wa == wb {
                if va == vb {
                    return refute(arena, *ma, *mb);
                }
                if let (Expr::Const(x), Expr::Const(y)) = (arena.get(*va), arena.get(*vb)) {
                    return x != y && *ma == *mb;
                }
            }
            false
        }
        _ => false,
    }
}

/// Validate one function pair to a fixpoint and check its returns.
///
/// `cxa` is the baseline side, `cxb` the branch-register side; `params`
/// and `ret` come from the IR signature. The outcome's findings are
/// empty iff the two emissions are proven store- and return-equivalent.
pub fn validate_func(
    arena: &mut Arena,
    cxa: &Ctx<'_>,
    cxb: &Ctx<'_>,
    params: &[bool],
    ret: RetKind,
) -> EngineOutcome {
    let mut findings = Vec::new();
    if cxa.code.anchors != cxb.code.anchors {
        findings.push(EngineFinding {
            refuted: false,
            detail: format!(
                "block label sets differ: baseline {:?} vs br {:?}",
                cxa.code.anchors, cxb.code.anchors
            ),
        });
        return EngineOutcome {
            findings,
            rounds: 0,
        };
    }
    let entry_a = seed_entry(arena, cxa, params);
    let entry_b = seed_entry(arena, cxb, params);
    let mut in_state: BTreeMap<u32, Joint> = BTreeMap::new();
    let mut rounds = 0u32;
    let mut returns: Vec<Paired> = Vec::new();
    loop {
        rounds += 1;
        if rounds > MAX_ROUNDS {
            findings.push(EngineFinding {
                refuted: false,
                detail: format!("fixpoint did not converge in {MAX_ROUNDS} rounds"),
            });
            return EngineOutcome {
                findings,
                rounds: rounds - 1,
            };
        }
        let mut changed = false;
        returns.clear();
        // Entry segment plus every anchor that has an in-state, in
        // deterministic order. Anchors discovered mid-round run next
        // round.
        let mut work: Vec<Option<u32>> = vec![None];
        work.extend(in_state.keys().copied().map(Some));
        for seg in work {
            let (label, sa, sb) = match seg {
                None => (
                    "entry".to_string(),
                    entry_a.clone(),
                    entry_b.clone(),
                ),
                Some(l) => {
                    let j = in_state.get(&l).expect("worklist anchor has state");
                    (format!("block L{l}"), j.a.clone(), j.b.clone())
                }
            };
            let run = |cx: &Ctx<'_>, arena: &mut Arena, st: SideState| match seg {
                None => Exec::new(cx, arena).run_entry(st),
                Some(l) => Exec::new(cx, arena).run_anchor(l, st),
            };
            let ea = match run(cxa, arena, sa) {
                Ok(e) => e,
                Err(s) => {
                    findings.push(EngineFinding {
                        refuted: false,
                        detail: format!("{label}: baseline stuck at word {}: {}", s.word, s.why),
                    });
                    return EngineOutcome { findings, rounds };
                }
            };
            let eb = match run(cxb, arena, sb) {
                Ok(e) => e,
                Err(s) => {
                    findings.push(EngineFinding {
                        refuted: false,
                        detail: format!("{label}: br stuck at word {}: {}", s.word, s.why),
                    });
                    return EngineOutcome { findings, rounds };
                }
            };
            let pairs = match pair_exits(ea, eb, &label) {
                Ok(p) => p,
                Err(e) => {
                    findings.push(EngineFinding {
                        refuted: false,
                        detail: e,
                    });
                    return EngineOutcome { findings, rounds };
                }
            };
            for p in pairs {
                match p.arrival {
                    Arrival::Return => returns.push(p),
                    Arrival::Anchor(d) => match in_state.get_mut(&d) {
                        None => {
                            in_state.insert(
                                d,
                                Joint {
                                    a: p.a,
                                    b: p.b,
                                },
                            );
                            changed = true;
                        }
                        Some(cur) => {
                            let inc = Joint {
                                a: p.a,
                                b: p.b,
                            };
                            changed |= meet(arena, d, cur, &inc);
                        }
                    },
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Converged: check the final round's return states.
    for (i, p) in returns.iter().enumerate() {
        check_return(arena, cxa, cxb, ret, i, p, &mut findings);
    }
    EngineOutcome { findings, rounds }
}

/// Check one paired return: value, observable chain, and each side's
/// ABI contract (sp restored, callee-saved registers preserved).
fn check_return(
    arena: &mut Arena,
    cxa: &Ctx<'_>,
    cxb: &Ctx<'_>,
    ret: RetKind,
    i: usize,
    p: &Paired,
    findings: &mut Vec<EngineFinding>,
) {
    match ret {
        RetKind::Void => {}
        RetKind::Int => {
            let va = p.a.regs[cxa.target.int_ret().0 as usize];
            let vb = p.b.regs[cxb.target.int_ret().0 as usize];
            if va != vb {
                findings.push(EngineFinding {
                    refuted: refute(arena, va, vb),
                    detail: format!("return #{i}: return values differ"),
                });
            }
        }
        RetKind::Float => {
            let va = p.a.fregs[cxa.target.float_ret() as usize];
            let vb = p.b.fregs[cxb.target.float_ret() as usize];
            if va != vb {
                findings.push(EngineFinding {
                    refuted: refute(arena, va, vb),
                    detail: format!("return #{i}: float return values differ"),
                });
            }
        }
    }
    if p.a.chain != p.b.chain {
        findings.push(EngineFinding {
            refuted: refute(arena, p.a.chain, p.b.chain),
            detail: format!("return #{i}: observable store chains differ"),
        });
    }
    for (cx, st) in [(cxa, &p.a), (cxb, &p.b)] {
        let side = cx.side;
        let sp0 = arena.mk(Expr::SpRel { side, off: 0 });
        if st.regs[cx.target.sp.0 as usize] != sp0 {
            findings.push(EngineFinding {
                refuted: false,
                detail: format!(
                    "return #{i}: {} side does not restore the stack pointer",
                    side.tag()
                ),
            });
        }
        for r in &cx.target.int_callee {
            let want = arena.mk(Expr::Entry {
                side,
                kind: LocKind::Reg,
                loc: r.0 as u32,
            });
            if st.regs[r.0 as usize] != want {
                findings.push(EngineFinding {
                    refuted: false,
                    detail: format!(
                        "return #{i}: {} side clobbers callee-saved r{}",
                        side.tag(),
                        r.0
                    ),
                });
            }
        }
        for &f in &cx.target.float_callee {
            let want = arena.mk(Expr::Entry {
                side,
                kind: LocKind::FReg,
                loc: f as u32,
            });
            if st.fregs[f as usize] != want {
                findings.push(EngineFinding {
                    refuted: false,
                    detail: format!(
                        "return #{i}: {} side clobbers callee-saved f{}",
                        side.tag(),
                        f
                    ),
                });
            }
        }
        for &b in cx.callee_bregs {
            let want = arena.mk(Expr::Entry {
                side,
                kind: LocKind::BReg,
                loc: b as u32,
            });
            if st.bregs[b as usize] != want {
                findings.push(EngineFinding {
                    refuted: false,
                    detail: format!(
                        "return #{i}: {} side clobbers callee-saved b{}",
                        side.tag(),
                        b
                    ),
                });
            }
        }
    }
}
