//! Per-side symbolic execution of emitted assembly.
//!
//! The executor runs one *segment* of one side's code — from the
//! function entry or an IR block label to the next IR block label,
//! return, or fork — over the abstract store of [`SideState`]. Both
//! machines' control conventions are modeled exactly as the emulator
//! implements them: the baseline's latched condition codes, delayed
//! branches and delay slots, and the branch-register machine's
//! pre-execution branch-register reads, fused compares, and the
//! sequential-address write to `b[7]` after every taken transfer.
//!
//! Anything the executor cannot model precisely (indirect stores
//! through an escaped stack pointer, unbounded forks, executing data
//! words) surfaces as a typed [`Stuck`] — never a panic — which the
//! engine reports as an *unproven* function.

use std::collections::{BTreeMap, HashMap};

use br_codegen::{FuncGeom, TargetSpec};
use br_isa::{
    AluOp, AsmFunc, AsmItem, Cc, MInst, Machine, MemWidth, Reloc, Src2, SymRef, FRESH_LABEL_BASE,
};

use super::expr::{disjoint, Arena, Expr, ExprId, HiSym, LocKind, Side};

/// Per-path executed-instruction cap; beyond this a segment is unproven.
pub const MAX_STEPS: u32 = 4096;
/// Cap on recorded branch decisions along one path.
pub const MAX_GUARDS: usize = 16;
/// Cap on exits produced by one segment.
pub const MAX_EXITS: usize = 128;
/// Store-forwarding walk depth.
const MAX_FORWARD: u32 = 64;

/// Why a segment could not be executed to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stuck {
    /// Function-relative instruction word where execution stopped.
    pub word: u32,
    /// Human-readable reason.
    pub why: String,
}

impl Stuck {
    fn new(word: u32, why: impl Into<String>) -> Stuck {
        Stuck {
            word,
            why: why.into(),
        }
    }
}

/// One branch decision along a path: the compared operands and the
/// condition, as the machine evaluated them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// Condition code of the compare-and-branch.
    pub cc: Cc,
    /// Whether the compare was a float compare.
    pub float: bool,
    /// Left operand.
    pub lhs: ExprId,
    /// Right operand.
    pub rhs: ExprId,
}

/// Where a segment exit hands control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arrival {
    /// Fell into or jumped to the IR block label.
    Anchor(u32),
    /// Returned to the caller.
    Return,
}

/// One exit of a segment: the branch decisions that selected this path,
/// where it arrived, and the abstract store on arrival.
#[derive(Debug, Clone)]
pub struct Exit {
    /// Branch decisions along the path, in execution order.
    pub guards: Vec<(Guard, bool)>,
    /// Where the path handed control.
    pub arrival: Arrival,
    /// The store on arrival.
    pub state: SideState,
}

/// The abstract store of one side at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideState {
    /// Integer registers (`r0` is pinned to zero).
    pub regs: [ExprId; 32],
    /// Float registers (bit-level values).
    pub fregs: [ExprId; 32],
    /// Branch registers (baseline side carries them inert).
    pub bregs: [ExprId; 8],
    /// Latched integer compare operands (baseline `cmp`).
    pub cc: [ExprId; 2],
    /// Latched float compare operands (baseline `fcmp`).
    pub fcc: [ExprId; 2],
    /// Observable memory: the store chain over `Mem0`.
    pub chain: ExprId,
    /// Private frame memory, keyed by entry-sp-relative byte offset.
    pub private: BTreeMap<i32, ExprId>,
}

/// Signature of a callee, extracted from the IR module.
#[derive(Debug, Clone)]
pub struct CallSig {
    /// Per parameter: is it a float?
    pub params: Vec<bool>,
    /// Return kind.
    pub ret: RetKind,
}

/// How a function returns its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetKind {
    /// No value.
    Void,
    /// Integer/pointer in `r1`.
    Int,
    /// Float in `f1`.
    Float,
}

/// Where one logical argument travels under a target's conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgSlot {
    /// Integer argument register.
    Int(u8),
    /// Float argument register.
    Float(u8),
    /// Outgoing-argument stack word (frame offset `4 * word`).
    Stack(u32),
}

/// Replicate the emitters' argument plan: ints to `int_args`, floats to
/// `float_args`, overflow to outgoing stack words with a counter shared
/// between the two classes.
pub fn arg_slots(target: &TargetSpec, params: &[bool]) -> Vec<ArgSlot> {
    let mut out = Vec::with_capacity(params.len());
    let (mut ni, mut nf, mut nw) = (0usize, 0usize, 0u32);
    for &is_float in params {
        if is_float {
            if nf < target.float_args.len() {
                out.push(ArgSlot::Float(target.float_args[nf]));
                nf += 1;
            } else {
                out.push(ArgSlot::Stack(nw));
                nw += 1;
            }
        } else if ni < target.int_args.len() {
            out.push(ArgSlot::Int(target.int_args[ni].0));
            ni += 1;
        } else {
            out.push(ArgSlot::Stack(nw));
            nw += 1;
        }
    }
    out
}

/// One side's code, indexed for symbolic execution.
pub struct SideCode {
    /// Which machine's stream this is.
    pub side: Side,
    /// The emitted items.
    pub items: Vec<AsmItem>,
    /// Instruction-word index of each item (labels bind to the word of
    /// the next instruction).
    pub word_of_item: Vec<u32>,
    /// First item (label or instruction) bound to each word.
    pub item_at_word: Vec<usize>,
    /// Label number → item index *after* the label item.
    pub label_item: HashMap<u32, usize>,
    /// Jump tables: binding label → target label per table word.
    pub tables: HashMap<u32, Vec<u32>>,
    /// IR block labels present, sorted.
    pub anchors: Vec<u32>,
    /// Total code words.
    pub nwords: u32,
}

impl SideCode {
    /// Index one side's emitted function.
    pub fn build(side: Side, af: &AsmFunc) -> SideCode {
        let items = af.items.clone();
        let mut word_of_item = Vec::with_capacity(items.len());
        let mut item_at_word = Vec::new();
        let mut label_item = HashMap::new();
        let mut anchors = Vec::new();
        let mut word = 0u32;
        for (i, item) in items.iter().enumerate() {
            word_of_item.push(word);
            if item_at_word.len() == word as usize {
                item_at_word.push(i);
            }
            match item {
                AsmItem::Label(l) => {
                    label_item.insert(l.0, i + 1);
                    if l.0 < FRESH_LABEL_BASE {
                        anchors.push(l.0);
                    }
                }
                AsmItem::Inst(..) | AsmItem::Word(..) => word += 1,
            }
        }
        anchors.sort_unstable();
        // Jump tables: a label immediately followed by a run of data
        // words whose relocations are all absolute label references.
        let mut tables = HashMap::new();
        for (i, item) in items.iter().enumerate() {
            let AsmItem::Label(l) = item else { continue };
            let mut targets = Vec::new();
            for it in &items[i + 1..] {
                match it {
                    AsmItem::Word(_, Some(Reloc::Abs(SymRef::Label(t)))) => targets.push(t.0),
                    _ => break,
                }
            }
            if !targets.is_empty() {
                tables.insert(l.0, targets);
            }
        }
        SideCode {
            side,
            items,
            word_of_item,
            item_at_word,
            label_item,
            tables,
            anchors,
            nwords: word,
        }
    }
}

/// Immutable context of one side's execution.
pub struct Ctx<'a> {
    /// Which side this is.
    pub side: Side,
    /// The machine the stream targets.
    pub machine: Machine,
    /// Register conventions of this side.
    pub target: &'a TargetSpec,
    /// Frame geometry of this side's selected code.
    pub geom: &'a FuncGeom,
    /// Callee signatures, by name.
    pub sigs: &'a HashMap<String, CallSig>,
    /// The indexed code.
    pub code: &'a SideCode,
    /// Caller-saved branch registers to havoc at calls (BR side only).
    pub caller_bregs: &'a [u8],
    /// Callee-saved branch registers the return checks verify (BR side
    /// only).
    pub callee_bregs: &'a [u8],
}

/// Seed the entry store: parameters per the argument plan, the stack
/// pointer at offset zero, the return target in the link location, and
/// unconstrained [`Expr::Entry`] symbols everywhere else.
pub fn seed_entry(arena: &mut Arena, cx: &Ctx<'_>, params: &[bool]) -> SideState {
    let side = cx.side;
    let mut regs = [0u32; 32];
    let mut fregs = [0u32; 32];
    let mut bregs = [0u32; 8];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = arena.mk(Expr::Entry {
            side,
            kind: LocKind::Reg,
            loc: i as u32,
        });
    }
    for (i, f) in fregs.iter_mut().enumerate() {
        *f = arena.mk(Expr::Entry {
            side,
            kind: LocKind::FReg,
            loc: i as u32,
        });
    }
    for (i, b) in bregs.iter_mut().enumerate() {
        *b = arena.mk(Expr::Entry {
            side,
            kind: LocKind::BReg,
            loc: i as u32,
        });
    }
    regs[0] = arena.c(0);
    regs[cx.target.sp.0 as usize] = arena.mk(Expr::SpRel { side, off: 0 });
    let ret = arena.mk(Expr::RetTarget(side));
    match cx.machine {
        Machine::Baseline => {
            if let Some(link) = cx.target.link {
                regs[link.0 as usize] = ret;
            }
        }
        Machine::BranchReg => bregs[7] = ret,
    }
    let latch = |arena: &mut Arena, loc: u32| {
        arena.mk(Expr::Entry {
            side,
            kind: LocKind::Latch,
            loc,
        })
    };
    let cc = [latch(arena, 0), latch(arena, 1)];
    let fcc = [latch(arena, 2), latch(arena, 3)];
    let mut state = SideState {
        regs,
        fregs,
        bregs,
        cc,
        fcc,
        chain: arena.mk(Expr::Mem0),
        private: BTreeMap::new(),
    };
    for (j, slot) in arg_slots(cx.target, params).into_iter().enumerate() {
        let p = arena.mk(Expr::Param(j as u32));
        match slot {
            ArgSlot::Int(r) => state.regs[r as usize] = p,
            ArgSlot::Float(f) => state.fregs[f as usize] = p,
            ArgSlot::Stack(w) => {
                state.private.insert(4 * w as i32, p);
            }
        }
    }
    state
}

/// One in-flight path of a segment.
#[derive(Clone)]
struct Frame {
    item: usize,
    state: SideState,
    guards: Vec<(Guard, bool)>,
    steps: u32,
}

enum Place {
    Chain(ExprId),
    Priv(i32),
    Table(u32, ExprId),
}

/// The symbolic executor for one side of one function.
pub struct Exec<'a, 'b> {
    cx: &'a Ctx<'b>,
    arena: &'a mut Arena,
}

impl<'a, 'b> Exec<'a, 'b> {
    /// A new executor over `cx` and the shared arena.
    pub fn new(cx: &'a Ctx<'b>, arena: &'a mut Arena) -> Exec<'a, 'b> {
        Exec { cx, arena }
    }

    /// Run the entry segment (prologue up to the first block label).
    pub fn run_entry(&mut self, state: SideState) -> Result<Vec<Exit>, Stuck> {
        self.run(0, state)
    }

    /// Run the segment starting at IR block label `l`.
    pub fn run_anchor(&mut self, l: u32, state: SideState) -> Result<Vec<Exit>, Stuck> {
        let start = *self
            .cx
            .code
            .label_item
            .get(&l)
            .ok_or_else(|| Stuck::new(0, format!("label L{l} not emitted")))?;
        self.run(start, state)
    }

    fn run(&mut self, start: usize, state: SideState) -> Result<Vec<Exit>, Stuck> {
        let mut exits = Vec::new();
        let mut stack = vec![Frame {
            item: start,
            state,
            guards: Vec::new(),
            steps: 0,
        }];
        while let Some(fr) = stack.pop() {
            self.run_path(fr, &mut exits, &mut stack)?;
            if exits.len() > MAX_EXITS {
                return Err(Stuck::new(0, "segment exit cap exceeded"));
            }
        }
        Ok(exits)
    }

    fn run_path(
        &mut self,
        mut fr: Frame,
        exits: &mut Vec<Exit>,
        stack: &mut Vec<Frame>,
    ) -> Result<(), Stuck> {
        loop {
            let word = self
                .cx
                .code
                .word_of_item
                .get(fr.item)
                .copied()
                .unwrap_or(self.cx.code.nwords);
            let Some(item) = self.cx.code.items.get(fr.item) else {
                return Err(Stuck::new(word, "fell off the end of the function"));
            };
            match item.clone() {
                AsmItem::Label(l) if l.0 < FRESH_LABEL_BASE => {
                    exits.push(Exit {
                        guards: fr.guards,
                        arrival: Arrival::Anchor(l.0),
                        state: fr.state,
                    });
                    return Ok(());
                }
                AsmItem::Label(_) => {
                    fr.item += 1;
                    continue;
                }
                AsmItem::Word(..) => {
                    return Err(Stuck::new(word, "executed a data word"));
                }
                AsmItem::Inst(inst, reloc) => {
                    fr.steps += 1;
                    if fr.steps > MAX_STEPS {
                        return Err(Stuck::new(word, "path step cap exceeded"));
                    }
                    match self.cx.machine {
                        Machine::Baseline => {
                            match self.step_baseline(fr, inst, &reloc, word, exits, stack)? {
                                Some(next) => fr = next,
                                None => return Ok(()),
                            }
                        }
                        Machine::BranchReg => {
                            match self.step_br(fr, inst, &reloc, word, exits, stack)? {
                                Some(next) => fr = next,
                                None => return Ok(()),
                            }
                        }
                    }
                }
            }
        }
    }

    // ---- baseline control ----

    fn step_baseline(
        &mut self,
        mut fr: Frame,
        inst: MInst,
        reloc: &Option<Reloc>,
        word: u32,
        exits: &mut Vec<Exit>,
        stack: &mut Vec<Frame>,
    ) -> Result<Option<Frame>, Stuck> {
        match inst {
            MInst::Halt => Err(Stuck::new(word, "halt inside a function body")),
            MInst::Bcc { cc, float, disp } => {
                let [lhs, rhs] = if float { fr.state.fcc } else { fr.state.cc };
                let target = self.reloc_label(reloc, word, disp)?;
                self.exec_slot(&mut fr)?;
                // Constant-fold an integer condition: both sides share
                // the arena, so folding is symmetric across sides.
                if !float {
                    if let (Expr::Const(a), Expr::Const(b)) =
                        (self.arena.get(lhs).clone(), self.arena.get(rhs).clone())
                    {
                        if cc.eval_int(a, b) {
                            return self.goto_label(fr, target, word, exits, stack);
                        }
                        fr.item += 2;
                        return Ok(Some(fr));
                    }
                }
                if fr.guards.len() >= MAX_GUARDS {
                    return Err(Stuck::new(word, "branch fork cap exceeded"));
                }
                let g = Guard {
                    cc,
                    float,
                    lhs,
                    rhs,
                };
                let mut taken = fr.clone();
                taken.guards.push((g, true));
                if let Some(t) = self.goto_label(taken, target, word, exits, stack)? {
                    stack.push(t);
                }
                fr.guards.push((g, false));
                fr.item += 2;
                Ok(Some(fr))
            }
            MInst::Ba { disp } => {
                let target = self.reloc_label(reloc, word, disp)?;
                self.exec_slot(&mut fr)?;
                self.goto_label(fr, target, word, exits, stack)
            }
            MInst::Call { .. } => {
                let Some(Reloc::Disp(SymRef::Func(name))) = reloc else {
                    return Err(Stuck::new(word, "call without a function target"));
                };
                let name = name.clone();
                if let Some(link) = self.cx.target.link {
                    fr.state.regs[link.0 as usize] = self.arena.mk(Expr::CodeAddr {
                        side: self.cx.side,
                        word: word + 2,
                    });
                }
                self.exec_slot(&mut fr)?;
                self.do_call(&mut fr.state, &name, word)?;
                fr.item += 2;
                Ok(Some(fr))
            }
            MInst::Jmpl { rd, rs1, off } => {
                let base = self.rv(&fr.state, rs1);
                let k = self.arena.c(off);
                let target = self.arena.alu(AluOp::Add, base, k);
                let ra = self.arena.mk(Expr::CodeAddr {
                    side: self.cx.side,
                    word: word + 2,
                });
                self.set_reg(&mut fr.state, rd, ra);
                self.exec_slot(&mut fr)?;
                fr.item += 2;
                match self.dispatch(fr, target, word, exits, stack)? {
                    Disp::Ended => Ok(None),
                    Disp::Continue(next) => Ok(Some(next)),
                    Disp::Call(..) => Err(Stuck::new(word, "indirect call through jmpl")),
                }
            }
            _ => {
                self.exec_body(&mut fr.state, &inst, reloc, word)?;
                fr.item += 1;
                Ok(Some(fr))
            }
        }
    }

    /// Execute the delay slot of the baseline instruction at `fr.item`.
    fn exec_slot(&mut self, fr: &mut Frame) -> Result<(), Stuck> {
        let word = self.cx.code.word_of_item[fr.item];
        let Some(AsmItem::Inst(slot, sreloc)) = self.cx.code.items.get(fr.item + 1).cloned() else {
            return Err(Stuck::new(word, "missing delay slot"));
        };
        fr.steps += 1;
        self.exec_body(&mut fr.state, &slot, &sreloc, word + 1)
    }

    /// Resolve a baseline branch target relocation to a label or word.
    fn reloc_label(
        &mut self,
        reloc: &Option<Reloc>,
        word: u32,
        disp: i32,
    ) -> Result<BTarget, Stuck> {
        match reloc {
            Some(Reloc::Disp(SymRef::Label(l))) => Ok(BTarget::Label(l.0)),
            None => Ok(BTarget::Word((word as i64 + disp as i64) as u32)),
            _ => Err(Stuck::new(word, "unexpected branch relocation")),
        }
    }

    /// Hand `fr` to a label or word target: an IR label is an arrival
    /// exit, anything else continues in-segment.
    fn goto_label(
        &mut self,
        mut fr: Frame,
        t: BTarget,
        word: u32,
        exits: &mut Vec<Exit>,
        _stack: &mut [Frame],
    ) -> Result<Option<Frame>, Stuck> {
        match t {
            BTarget::Label(l) if l < FRESH_LABEL_BASE => {
                exits.push(Exit {
                    guards: fr.guards,
                    arrival: Arrival::Anchor(l),
                    state: fr.state,
                });
                Ok(None)
            }
            BTarget::Label(l) => {
                fr.item = *self
                    .cx
                    .code
                    .label_item
                    .get(&l)
                    .ok_or_else(|| Stuck::new(word, format!("jump to unbound label L{l}")))?;
                Ok(Some(fr))
            }
            BTarget::Word(w) => {
                fr.item = *self
                    .cx
                    .code
                    .item_at_word
                    .get(w as usize)
                    .ok_or_else(|| Stuck::new(word, "jump past the end of the function"))?;
                Ok(Some(fr))
            }
        }
    }

    // ---- branch-register control ----

    fn step_br(
        &mut self,
        mut fr: Frame,
        inst: MInst,
        reloc: &Option<Reloc>,
        word: u32,
        exits: &mut Vec<Exit>,
        stack: &mut Vec<Frame>,
    ) -> Result<Option<Frame>, Stuck> {
        match inst {
            MInst::Halt => Err(Stuck::new(word, "halt inside a function body")),
            MInst::Bcc { .. } | MInst::Ba { .. } | MInst::Call { .. } | MInst::Jmpl { .. } => {
                Err(Stuck::new(word, "baseline control on the BR machine"))
            }
            MInst::CmpBr {
                cc,
                bt,
                rs1,
                src2,
                br,
            } => {
                let lhs = self.rv(&fr.state, rs1);
                let rhs = self.src2val(&fr.state, src2, reloc);
                self.finish_cmpbr(fr, cc, false, lhs, rhs, bt.0, br, word, exits, stack)
            }
            MInst::FCmpBr {
                cc,
                bt,
                fs1,
                fs2,
                br,
            } => {
                let lhs = fr.state.fregs[fs1.0 as usize];
                let rhs = fr.state.fregs[fs2.0 as usize];
                self.finish_cmpbr(fr, cc, true, lhs, rhs, bt.0, br, word, exits, stack)
            }
            _ => {
                let br = inst.br();
                // The emulator reads the transfer target before the
                // instruction executes.
                let target = (br != 0).then(|| fr.state.bregs[br as usize]);
                self.exec_body(&mut fr.state, &inst, reloc, word)?;
                match target {
                    None => {
                        fr.item += 1;
                        Ok(Some(fr))
                    }
                    Some(t) => {
                        fr.state.bregs[7] = self.arena.mk(Expr::CodeAddr {
                            side: self.cx.side,
                            word: word + 1,
                        });
                        fr.item = word as usize + 1; // placeholder; dispatch overrides
                        match self.dispatch(fr, t, word, exits, stack)? {
                            Disp::Ended => Ok(None),
                            Disp::Continue(next) => Ok(Some(next)),
                            Disp::Call(mut next, name) => {
                                self.do_call(&mut next.state, &name, word)?;
                                next.item = *self
                                    .cx
                                    .code
                                    .item_at_word
                                    .get(word as usize + 1)
                                    .ok_or_else(|| {
                                        Stuck::new(word, "call at the end of the function")
                                    })?;
                                Ok(Some(next))
                            }
                        }
                    }
                }
            }
        }
    }

    /// Compare-with-assignment: fork on the guard, write `b[7]`, and —
    /// when fused (`br != 0`) — transfer through the freshly written
    /// register, exactly as the emulator sequences it.
    #[allow(clippy::too_many_arguments)]
    fn finish_cmpbr(
        &mut self,
        fr: Frame,
        cc: Cc,
        float: bool,
        lhs: ExprId,
        rhs: ExprId,
        bt: u8,
        br: u8,
        word: u32,
        exits: &mut Vec<Exit>,
        stack: &mut Vec<Frame>,
    ) -> Result<Option<Frame>, Stuck> {
        let fused = br != 0;
        // Integer guards over shared constants fold symmetrically.
        if !float {
            if let (Expr::Const(a), Expr::Const(b)) =
                (self.arena.get(lhs).clone(), self.arena.get(rhs).clone())
            {
                let taken = cc.eval_int(a, b);
                return self.cmpbr_arm(fr, taken, bt, br, fused, word, exits, stack);
            }
        }
        if fr.guards.len() >= MAX_GUARDS {
            return Err(Stuck::new(word, "branch fork cap exceeded"));
        }
        let g = Guard {
            cc,
            float,
            lhs,
            rhs,
        };
        let mut taken = fr.clone();
        taken.guards.push((g, true));
        if let Some(t) = self.cmpbr_arm(taken, true, bt, br, fused, word, exits, stack)? {
            stack.push(t);
        }
        let mut fall = fr;
        fall.guards.push((g, false));
        self.cmpbr_arm(fall, false, bt, br, fused, word, exits, stack)
    }

    #[allow(clippy::too_many_arguments)]
    fn cmpbr_arm(
        &mut self,
        mut fr: Frame,
        taken: bool,
        bt: u8,
        br: u8,
        fused: bool,
        word: u32,
        exits: &mut Vec<Exit>,
        stack: &mut Vec<Frame>,
    ) -> Result<Option<Frame>, Stuck> {
        let seq_word = word + if fused { 1 } else { 2 };
        let b7 = if taken {
            fr.state.bregs[bt as usize]
        } else {
            self.arena.mk(Expr::CodeAddr {
                side: self.cx.side,
                word: seq_word,
            })
        };
        fr.state.bregs[7] = b7;
        if !fused {
            fr.item += 1;
            return Ok(Some(fr));
        }
        let target = fr.state.bregs[br as usize];
        fr.state.bregs[7] = self.arena.mk(Expr::CodeAddr {
            side: self.cx.side,
            word: word + 1,
        });
        match self.dispatch(fr, target, word, exits, stack)? {
            Disp::Ended => Ok(None),
            Disp::Continue(next) => Ok(Some(next)),
            Disp::Call(mut next, name) => {
                self.do_call(&mut next.state, &name, word)?;
                next.item = *self
                    .cx
                    .code
                    .item_at_word
                    .get(word as usize + 1)
                    .ok_or_else(|| Stuck::new(word, "call at the end of the function"))?;
                Ok(Some(next))
            }
        }
    }

    // ---- shared transfer dispatch ----

    fn dispatch(
        &mut self,
        mut fr: Frame,
        target: ExprId,
        word: u32,
        exits: &mut Vec<Exit>,
        stack: &mut Vec<Frame>,
    ) -> Result<Disp, Stuck> {
        let side = self.cx.side;
        match self.arena.get(target).clone() {
            Expr::RetTarget(s) if s == side => {
                exits.push(Exit {
                    guards: fr.guards,
                    arrival: Arrival::Return,
                    state: fr.state,
                });
                Ok(Disp::Ended)
            }
            Expr::LabelAddr { side: s, label } if s == side => {
                if label < FRESH_LABEL_BASE {
                    exits.push(Exit {
                        guards: fr.guards,
                        arrival: Arrival::Anchor(label),
                        state: fr.state,
                    });
                    Ok(Disp::Ended)
                } else {
                    fr.item = *self.cx.code.label_item.get(&label).ok_or_else(|| {
                        Stuck::new(word, format!("transfer to unbound label L{label}"))
                    })?;
                    Ok(Disp::Continue(fr))
                }
            }
            Expr::FuncAddr { side: s, name } if s == side => {
                let name = self.arena.name(name).to_string();
                Ok(Disp::Call(fr, name))
            }
            Expr::CodeAddr { side: s, word: w } if s == side => {
                fr.item = *self
                    .cx
                    .code
                    .item_at_word
                    .get(w as usize)
                    .ok_or_else(|| Stuck::new(word, "transfer past the end of the function"))?;
                Ok(Disp::Continue(fr))
            }
            Expr::TableEntry {
                side: s, label, ..
            } if s == side => {
                let targets = self
                    .cx
                    .code
                    .tables
                    .get(&label)
                    .ok_or_else(|| Stuck::new(word, "indirect jump through a non-table"))?
                    .clone();
                let mut seen = Vec::new();
                for t in targets {
                    if seen.contains(&t) {
                        continue;
                    }
                    seen.push(t);
                    let arm = fr.clone();
                    if let Some(next) =
                        self.goto_label(arm, BTarget::Label(t), word, exits, stack)?
                    {
                        stack.push(next);
                    }
                }
                Ok(Disp::Ended)
            }
            _ => Err(Stuck::new(word, "transfer through an unresolved address")),
        }
    }

    // ---- instruction bodies ----

    /// Execute one non-control instruction body against `state`.
    fn exec_body(
        &mut self,
        state: &mut SideState,
        inst: &MInst,
        reloc: &Option<Reloc>,
        word: u32,
    ) -> Result<(), Stuck> {
        match *inst {
            MInst::Nop { .. } => Ok(()),
            MInst::Alu {
                op, rd, rs1, src2, ..
            } => {
                let a = self.rv(state, rs1);
                let b = self.src2val(state, src2, reloc);
                let mut v = self.arena.alu(op, a, b);
                if rd != self.cx.target.sp {
                    v = self.slotify(state, v);
                }
                self.set_reg(state, rd, v);
                Ok(())
            }
            MInst::Sethi { rd, imm } => {
                let v = match reloc {
                    Some(Reloc::Hi(sym)) => {
                        let s = self.hisym(sym);
                        self.arena.mk(Expr::Hi(s))
                    }
                    _ => self.arena.c((imm << 11) as i32),
                };
                self.set_reg(state, rd, v);
                Ok(())
            }
            MInst::Load { w, rd, rs1, off, .. } => {
                let addr = self.mem_addr(state, rs1, off, reloc);
                let v = self.do_load(state, addr, w, word)?;
                self.set_reg(state, rd, v);
                Ok(())
            }
            MInst::LoadF { fd, rs1, off, .. } => {
                let addr = self.mem_addr(state, rs1, off, reloc);
                let v = self.do_load(state, addr, MemWidth::Word, word)?;
                state.fregs[fd.0 as usize] = v;
                Ok(())
            }
            MInst::Store { w, rs, rs1, off, .. } => {
                let addr = self.mem_addr(state, rs1, off, reloc);
                let val = self.rv(state, rs);
                self.do_store(state, addr, val, w, word)
            }
            MInst::StoreF { fs, rs1, off, .. } => {
                let addr = self.mem_addr(state, rs1, off, reloc);
                let val = state.fregs[fs.0 as usize];
                self.do_store(state, addr, val, MemWidth::Word, word)
            }
            MInst::Fpu {
                op, fd, fs1, fs2, ..
            } => {
                let a = state.fregs[fs1.0 as usize];
                let b = state.fregs[fs2.0 as usize];
                state.fregs[fd.0 as usize] = self.arena.mk(Expr::Fpu { op, a, b });
                Ok(())
            }
            MInst::FNeg { fd, fs, .. } => {
                let a = state.fregs[fs.0 as usize];
                state.fregs[fd.0 as usize] = self.arena.mk(Expr::FNeg(a));
                Ok(())
            }
            MInst::FMov { fd, fs, .. } => {
                state.fregs[fd.0 as usize] = state.fregs[fs.0 as usize];
                Ok(())
            }
            MInst::ItoF { fd, rs, .. } => {
                let a = self.rv(state, rs);
                state.fregs[fd.0 as usize] = self.arena.mk(Expr::ItoF(a));
                Ok(())
            }
            MInst::FtoI { rd, fs, .. } => {
                let a = state.fregs[fs.0 as usize];
                let v = self.arena.mk(Expr::FtoI(a));
                self.set_reg(state, rd, v);
                Ok(())
            }
            MInst::Cmp { rs1, src2 } => {
                state.cc = [self.rv(state, rs1), self.src2val(state, src2, reloc)];
                Ok(())
            }
            MInst::FCmp { fs1, fs2 } => {
                state.fcc = [state.fregs[fs1.0 as usize], state.fregs[fs2.0 as usize]];
                Ok(())
            }
            MInst::Bcalc { bd, disp, .. } => {
                let v = match reloc {
                    Some(Reloc::Disp(SymRef::Label(l))) => self.arena.mk(Expr::LabelAddr {
                        side: self.cx.side,
                        label: l.0,
                    }),
                    Some(Reloc::Disp(SymRef::Func(n))) => {
                        let name = self.arena.intern(n);
                        self.arena.mk(Expr::FuncAddr {
                            side: self.cx.side,
                            name,
                        })
                    }
                    None => self.arena.mk(Expr::CodeAddr {
                        side: self.cx.side,
                        word: (word as i64 + disp as i64) as u32,
                    }),
                    _ => return Err(Stuck::new(word, "unexpected bcalc relocation")),
                };
                state.bregs[bd.0 as usize] = v;
                Ok(())
            }
            MInst::BMovB { bd, bs, .. } => {
                let v = if bs.0 == 0 {
                    self.arena.mk(Expr::CodeAddr {
                        side: self.cx.side,
                        word: word + 1,
                    })
                } else {
                    state.bregs[bs.0 as usize]
                };
                state.bregs[bd.0 as usize] = v;
                Ok(())
            }
            MInst::BMovR { bd, rs1, off, .. } => {
                let base = self.rv(state, rs1);
                let k = self.imm_expr(off, reloc);
                state.bregs[bd.0 as usize] = self.arena.alu(AluOp::Add, base, k);
                Ok(())
            }
            MInst::BLoad { bd, rs1, src2, .. } => {
                let base = self.rv(state, rs1);
                let k = self.src2val(state, src2, reloc);
                let addr = self.arena.alu(AluOp::Add, base, k);
                let v = self.do_load(state, addr, MemWidth::Word, word)?;
                state.bregs[bd.0 as usize] = v;
                Ok(())
            }
            MInst::BStore { bs, rs1, off, .. } => {
                let addr = self.mem_addr(state, rs1, off, reloc);
                let val = state.bregs[bs.0 as usize];
                self.do_store(state, addr, val, MemWidth::Word, word)
            }
            MInst::Halt
            | MInst::Bcc { .. }
            | MInst::Ba { .. }
            | MInst::Call { .. }
            | MInst::Jmpl { .. }
            | MInst::CmpBr { .. }
            | MInst::FCmpBr { .. } => Err(Stuck::new(word, "control instruction in a delay slot")),
        }
    }

    // ---- operand helpers ----

    fn rv(&mut self, state: &SideState, r: br_isa::Reg) -> ExprId {
        state.regs[r.0 as usize]
    }

    fn set_reg(&mut self, state: &mut SideState, r: br_isa::Reg, v: ExprId) {
        if r.0 != 0 {
            state.regs[r.0 as usize] = v;
        }
    }

    fn src2val(&mut self, state: &SideState, src2: Src2, reloc: &Option<Reloc>) -> ExprId {
        match src2 {
            Src2::Reg(r) => state.regs[r.0 as usize],
            Src2::Imm(v) => self.imm_expr(v, reloc),
        }
    }

    /// The value of an immediate operand, honoring a `Lo` relocation.
    fn imm_expr(&mut self, imm: i32, reloc: &Option<Reloc>) -> ExprId {
        match reloc {
            Some(Reloc::Lo(sym)) => {
                let s = self.hisym(sym);
                self.arena.mk(Expr::Lo(s))
            }
            _ => self.arena.c(imm),
        }
    }

    fn hisym(&mut self, sym: &SymRef) -> HiSym {
        match sym {
            SymRef::Data(n) => HiSym::Data(self.arena.intern(n)),
            SymRef::Func(n) => HiSym::Func(self.cx.side, self.arena.intern(n)),
            SymRef::Label(l) => HiSym::Label(self.cx.side, l.0),
        }
    }

    fn mem_addr(
        &mut self,
        state: &SideState,
        rs1: br_isa::Reg,
        off: i32,
        reloc: &Option<Reloc>,
    ) -> ExprId {
        let base = state.regs[rs1.0 as usize];
        let k = self.imm_expr(off, reloc);
        self.arena.alu(AluOp::Add, base, k)
    }

    // ---- memory model ----

    /// Rewrite an sp-relative value landing inside an IR slot to the
    /// shared [`Expr::SlotAddr`] naming, so materialized slot addresses
    /// (including ones passed to callees) compare across sides.
    fn slotify(&mut self, state: &SideState, v: ExprId) -> ExprId {
        let Expr::SpRel { side, off } = *self.arena.get(v) else {
            return v;
        };
        if side != self.cx.side {
            return v;
        }
        let Some(c) = self.sp_off(state) else {
            return v;
        };
        let f = off.wrapping_sub(c);
        match self.slot_at(f) {
            Some((slot, delta)) => self.arena.mk(Expr::SlotAddr {
                slot,
                off: delta,
            }),
            None => v,
        }
    }

    /// The IR slot covering frame offset `f`, if any.
    fn slot_at(&self, f: i32) -> Option<(u32, i32)> {
        for (i, (&off, &size)) in self
            .cx
            .geom
            .slot_off
            .iter()
            .zip(&self.cx.geom.slot_size)
            .enumerate()
        {
            if f >= off && f < off + size as i32 {
                return Some((i as u32, f - off));
            }
        }
        None
    }

    /// Current entry-sp-relative offset of the stack pointer.
    fn sp_off(&self, state: &SideState) -> Option<i32> {
        match *self.arena.get(state.regs[self.cx.target.sp.0 as usize]) {
            Expr::SpRel { side, off } if side == self.cx.side => Some(off),
            _ => None,
        }
    }

    /// Classify an access address: observable chain, private frame
    /// word, or jump-table read.
    fn place(&mut self, state: &SideState, addr: ExprId, word: u32) -> Result<Place, Stuck> {
        if self.arena.region_of(addr).is_some() {
            return Ok(Place::Chain(addr));
        }
        match self.arena.get(addr).clone() {
            Expr::SpRel { side, off } if side == self.cx.side => {
                let c = self
                    .sp_off(state)
                    .ok_or_else(|| Stuck::new(word, "stack pointer escaped"))?;
                let f = off.wrapping_sub(c);
                match self.slot_at(f) {
                    Some((slot, delta)) => {
                        let a = self.arena.mk(Expr::SlotAddr {
                            slot,
                            off: delta,
                        });
                        Ok(Place::Chain(a))
                    }
                    None => Ok(Place::Priv(off)),
                }
            }
            Expr::LabelAddr { side, label } if side == self.cx.side => {
                let zero = self.arena.c(0);
                Ok(Place::Table(label, zero))
            }
            Expr::Alu {
                op: AluOp::Add,
                a,
                b,
            } => match *self.arena.get(a) {
                Expr::LabelAddr { side, label } if side == self.cx.side => {
                    Ok(Place::Table(label, b))
                }
                _ => Ok(Place::Chain(addr)),
            },
            _ => Ok(Place::Chain(addr)),
        }
    }

    fn do_load(
        &mut self,
        state: &mut SideState,
        addr: ExprId,
        w: MemWidth,
        word: u32,
    ) -> Result<ExprId, Stuck> {
        match self.place(state, addr, word)? {
            Place::Chain(a) => Ok(self.chain_load(state, a, w)),
            Place::Priv(z) => {
                if w != MemWidth::Word {
                    return Err(Stuck::new(word, "sub-word access to private frame memory"));
                }
                if let Some(&v) = state.private.get(&z) {
                    return Ok(v);
                }
                let v = self.arena.mk(Expr::Entry {
                    side: self.cx.side,
                    kind: LocKind::Priv,
                    loc: z as u32,
                });
                state.private.insert(z, v);
                Ok(v)
            }
            Place::Table(label, idx) => {
                let targets = self
                    .cx
                    .code
                    .tables
                    .get(&label)
                    .ok_or_else(|| Stuck::new(word, "load from code outside a jump table"))?;
                if let Expr::Const(k) = *self.arena.get(idx) {
                    let slot = k / 4;
                    if k % 4 != 0 || slot < 0 || slot as usize >= targets.len() {
                        return Err(Stuck::new(word, "constant table index out of bounds"));
                    }
                    let t = targets[slot as usize];
                    return Ok(self.arena.mk(Expr::LabelAddr {
                        side: self.cx.side,
                        label: t,
                    }));
                }
                Ok(self.arena.mk(Expr::TableEntry {
                    side: self.cx.side,
                    label,
                    idx,
                }))
            }
        }
    }

    fn do_store(
        &mut self,
        state: &mut SideState,
        addr: ExprId,
        val: ExprId,
        w: MemWidth,
        word: u32,
    ) -> Result<(), Stuck> {
        match self.place(state, addr, word)? {
            Place::Chain(a) => {
                state.chain = self.arena.mk(Expr::Store {
                    mem: state.chain,
                    addr: a,
                    val,
                    w,
                });
                Ok(())
            }
            Place::Priv(z) => {
                if w != MemWidth::Word {
                    return Err(Stuck::new(word, "sub-word access to private frame memory"));
                }
                state.private.insert(z, val);
                Ok(())
            }
            Place::Table(..) => Err(Stuck::new(word, "store into code")),
        }
    }

    /// Load from the observable chain with store forwarding: an exact
    /// width-and-address match forwards the stored value; provably
    /// disjoint stores are skipped; anything else leaves an opaque
    /// [`Expr::Load`].
    fn chain_load(&mut self, state: &SideState, addr: ExprId, w: MemWidth) -> ExprId {
        let mut m = state.chain;
        for _ in 0..MAX_FORWARD {
            match self.arena.get(m).clone() {
                Expr::Store {
                    mem,
                    addr: sa,
                    val,
                    w: sw,
                } => {
                    if sa == addr && sw == w {
                        return match w {
                            MemWidth::Word => val,
                            MemWidth::Byte => {
                                let mask = self.arena.c(0xFF);
                                self.arena.alu(AluOp::And, val, mask)
                            }
                        };
                    }
                    if disjoint(self.arena, addr, w, sa, sw) {
                        m = mem;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        self.arena.mk(Expr::Load {
            mem: state.chain,
            addr,
            w,
        })
    }

    // ---- call events ----

    /// Model a call: gather the logical arguments under this side's
    /// conventions, append the call to the observable chain, havoc the
    /// caller-saved state, and bind the return value.
    fn do_call(&mut self, state: &mut SideState, name: &str, word: u32) -> Result<(), Stuck> {
        let side = self.cx.side;
        let sig = self
            .cx
            .sigs
            .get(name)
            .ok_or_else(|| Stuck::new(word, format!("call to unknown function `{name}`")))?
            .clone();
        let c = self
            .sp_off(state)
            .ok_or_else(|| Stuck::new(word, "stack pointer escaped at a call"))?;
        let mut args = Vec::with_capacity(sig.params.len());
        for slot in arg_slots(self.cx.target, &sig.params) {
            match slot {
                ArgSlot::Int(r) => args.push(state.regs[r as usize]),
                ArgSlot::Float(f) => args.push(state.fregs[f as usize]),
                ArgSlot::Stack(wd) => {
                    let z = c + 4 * wd as i32;
                    let v = match state.private.get(&z) {
                        Some(&v) => v,
                        None => self.arena.mk(Expr::Entry {
                            side,
                            kind: LocKind::Priv,
                            loc: z as u32,
                        }),
                    };
                    args.push(v);
                }
            }
        }
        let nm = self.arena.intern(name);
        let call = self.arena.mk(Expr::Call {
            name: nm,
            args: args.into_boxed_slice(),
            mem: state.chain,
        });
        state.chain = self.arena.mk(Expr::MemAfter(call));
        // Havoc the caller-saved state with per-call-site junk.
        let junk = |arena: &mut Arena, kind: LocKind, loc: u32| {
            arena.mk(Expr::Junk {
                side,
                word,
                kind,
                loc,
            })
        };
        for r in self.cx.target.int_caller.clone() {
            state.regs[r.0 as usize] = junk(self.arena, LocKind::Reg, r.0 as u32);
        }
        for r in [self.cx.target.temp, self.cx.target.temp2] {
            state.regs[r.0 as usize] = junk(self.arena, LocKind::Reg, r.0 as u32);
        }
        for f in self.cx.target.float_caller.clone() {
            state.fregs[f as usize] = junk(self.arena, LocKind::FReg, f as u32);
        }
        let ftemp = self.cx.target.ftemp;
        state.fregs[ftemp as usize] = junk(self.arena, LocKind::FReg, ftemp as u32);
        if self.cx.machine == Machine::BranchReg {
            for b in self.cx.caller_bregs.iter().copied() {
                state.bregs[b as usize] = junk(self.arena, LocKind::BReg, b as u32);
            }
            state.bregs[7] = junk(self.arena, LocKind::BReg, 7);
        }
        // The callee owns the latches and the outgoing-argument words.
        state.cc = [
            junk(self.arena, LocKind::Latch, 0),
            junk(self.arena, LocKind::Latch, 1),
        ];
        state.fcc = [
            junk(self.arena, LocKind::Latch, 2),
            junk(self.arena, LocKind::Latch, 3),
        ];
        let hi = c + 4 * self.cx.geom.max_out_args as i32;
        state.private.retain(|&z, _| !(z >= c && z < hi));
        // Bind the return value after the havoc.
        match sig.ret {
            RetKind::Void => {}
            RetKind::Int => {
                let v = self.arena.mk(Expr::RetVal(call));
                state.regs[self.cx.target.int_ret().0 as usize] = v;
            }
            RetKind::Float => {
                let v = self.arena.mk(Expr::RetVal(call));
                state.fregs[self.cx.target.float_ret() as usize] = v;
            }
        }
        Ok(())
    }
}

enum Disp {
    Ended,
    Continue(Frame),
    Call(Frame, String),
}

enum BTarget {
    Label(u32),
    Word(u32),
}
