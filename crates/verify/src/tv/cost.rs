//! Static branch-cost model over an assembled [`Program`].
//!
//! Mirrors the emulator's transfer accounting (`br-emu`) and the
//! analytic delay tables (`br-pipeline::delays`) without running the
//! program: given per-word retired counts from a profiling run, it
//! reconstructs the cycle decomposition purely from the machine code.
//!
//! Two guarantees, asserted by the property tests in this crate and the
//! `br-tv` CI gate:
//!
//! * **Baseline (delayed-branch) machine: exact.** Every executed `Bcc`
//!   is a conditional transfer and every executed `Ba`/`Call`/`Jmpl` an
//!   unconditional one, so the static total equals
//!   `delays::cycles(Delayed, m, stages).total` whenever the counts
//!   came from the same run as `m`.
//! * **Branch-register machine: a sound upper bound.** Every executed
//!   word with `br != 0` is a transfer. The static target-distance for
//!   a transfer is computed by scanning backwards through the
//!   straight-line window (bounded by block marks and preceding
//!   transfers) for the defining instruction of the carried branch
//!   register; when the definition lies outside the window the distance
//!   is clamped to the window length. Both cases produce a distance
//!   that is a *lower bound* on the dynamic prefetch distance, and
//!   [`prefetch_stall`] is non-increasing in distance, so static stalls
//!   dominate dynamic stalls. Not-taken conditional carriers never
//!   stall dynamically (the fall-through address is always prefetched)
//!   but are charged the taken-path distance here — again only an
//!   overestimate.

use std::collections::HashMap;

use br_icache::CacheConfig;
use br_isa::{abi, BReg, MInst, Machine, Program, TextWord};
use br_pipeline::delays::{cond_delay, prefetch_stall, uncond_delay, BranchScheme, CycleEstimate};

/// Static cycle estimate attributed to one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncCost {
    /// Owning function (block-mark attribution; the startup stub shows
    /// up under `_start`).
    pub func: String,
    /// Retired instructions, structural delays, and prefetch stalls
    /// charged to this function's words.
    pub estimate: CycleEstimate,
}

/// Whole-program static cost report for one pipeline depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostReport {
    /// Which machine the program was compiled for.
    pub machine: Machine,
    /// Pipeline depth the delays were evaluated at.
    pub stages: u32,
    /// Program-wide totals.
    pub total: CycleEstimate,
    /// Per-function breakdown, in text order.
    pub funcs: Vec<FuncCost>,
}

fn zero_estimate() -> CycleEstimate {
    CycleEstimate {
        instructions: 0,
        transfer_stalls: 0,
        prefetch_stalls: 0,
        total: 0,
    }
}

fn add(into: &mut CycleEstimate, insts: u64, structural: u64, prefetch: u64) {
    into.instructions += insts;
    into.transfer_stalls += structural;
    into.prefetch_stalls += prefetch;
    into.total += insts + structural + prefetch;
}

/// Decoded instruction at word `w`, if it is one.
fn inst_at(prog: &Program, w: usize) -> Option<MInst> {
    match prog.text.get(w) {
        Some(TextWord::Inst(i)) => Some(*i),
        _ => None,
    }
}

/// Whether `inst` ends a straight-line window on its machine (any word
/// after it may be reached by a control transfer rather than
/// fall-through).
fn is_control(machine: Machine, inst: MInst) -> bool {
    match machine {
        Machine::Baseline => inst.is_baseline_transfer(),
        Machine::BranchReg => inst.br() != 0,
    }
}

/// Per-word "a transfer may land here" flags: block marks, the text
/// start, and the words following a control instruction (two words on
/// the baseline machine, covering the delay slot and the `Call`/`Jmpl`
/// return address). Over-approximating entries only weakens the bounds
/// in the sound direction.
fn entry_flags(prog: &Program) -> Vec<bool> {
    let mut entry = vec![false; prog.text.len()];
    if !entry.is_empty() {
        entry[0] = true;
    }
    for b in &prog.blocks {
        if let Some(e) = entry.get_mut(b.word as usize) {
            *e = true;
        }
    }
    let reach = match prog.machine {
        Machine::Baseline => 2usize,
        Machine::BranchReg => 1usize,
    };
    for w in 0..prog.text.len() {
        let Some(inst) = inst_at(prog, w) else { continue };
        if is_control(prog.machine, inst) {
            for d in 1..=reach {
                if let Some(e) = entry.get_mut(w + d) {
                    *e = true;
                }
            }
        }
    }
    entry
}

/// Whether `inst` writes branch register `b` (explicit writes only; the
/// implicit `b[7] = seq` after a transfer is modelled by the window
/// boundary in [`def_distance`]).
fn defines_breg(inst: MInst, b: BReg) -> bool {
    match inst {
        MInst::Bcalc { bd, .. }
        | MInst::BMovB { bd, .. }
        | MInst::BMovR { bd, .. }
        | MInst::BLoad { bd, .. } => bd == b,
        MInst::CmpBr { .. } | MInst::FCmpBr { .. } => b == BReg(7),
        _ => false,
    }
}

/// Distance from the transfer at `w` back to the instruction that
/// defined branch register `target`, scanning from `scan_from`
/// backwards. Stops at window boundaries (entry words), yielding the
/// clamped window-length distance — a lower bound on the dynamic
/// prefetch distance in every case:
///
/// * definition found at word `a`: straight-line execution retires
///   exactly `w - a` instructions between them (exact);
/// * boundary hit at entry word `e`: the dynamic definition (or the
///   implicit `b[7] = seq` write at the preceding transfer) retired at
///   least `(w - e) + 1` instructions ago.
fn def_distance(
    prog: &Program,
    entry: &[bool],
    w: usize,
    scan_from: usize,
    target: BReg,
) -> (u64, Option<usize>) {
    let mut a = scan_from;
    loop {
        if let Some(inst) = inst_at(prog, a) {
            if defines_breg(inst, target) {
                return ((w - a) as u64, Some(a));
            }
        }
        if entry[a] || a == 0 {
            return ((w - a) as u64 + 1, None);
        }
        a -= 1;
    }
}

/// Classification of one BR-machine transfer word.
struct Transfer {
    /// Counts toward `cond_transfers` (pays the structural `N-3`
    /// conditional delay and the reduced prefetch shortfall).
    cond: bool,
    /// Static prefetch distance (lower bound on the dynamic one).
    dist: u64,
}

/// Classify the transfer carried by `inst` at word `w`. Conditional iff
/// the carried register is `b7` and its last explicit writer inside the
/// straight-line window is a compare-with-assignment — exactly when the
/// emulator's `from_cond` flag would be set. For conditional transfers
/// the distance chases the compare's *source* register `bt`, matching
/// the emulator's assign-time inheritance on the taken path.
fn classify_transfer(prog: &Program, entry: &[bool], w: usize, inst: MInst) -> Transfer {
    let br = inst.br();
    debug_assert_ne!(br, 0);
    let fused = matches!(inst, MInst::CmpBr { .. } | MInst::FCmpBr { .. });
    if fused {
        // The compare itself transfers; on the taken path b7 inherits
        // the assign time of bt's definition.
        let bt = match inst {
            MInst::CmpBr { bt, .. } | MInst::FCmpBr { bt, .. } => bt,
            _ => unreachable!(),
        };
        let dist = if w == 0 || entry[w] {
            1
        } else {
            def_distance(prog, entry, w, w - 1, bt).0
        };
        return Transfer { cond: true, dist };
    }
    if entry[w] || w == 0 {
        // Directly post-transfer (or a window head): the carried
        // register was last written outside the window; for b7 that is
        // the implicit sequential-address write (never from a compare).
        return Transfer { cond: false, dist: 1 };
    }
    if br != 7 {
        let (dist, _) = def_distance(prog, entry, w, w - 1, BReg(br));
        return Transfer { cond: false, dist };
    }
    // b7 carrier: find b7's last in-window writer. A compare makes the
    // transfer conditional (continue chasing bt for the distance); any
    // other writer, or none, leaves it unconditional.
    let (dist, def) = def_distance(prog, entry, w, w - 1, BReg(7));
    match def.and_then(|a| inst_at(prog, a)) {
        Some(MInst::CmpBr { bt, .. }) | Some(MInst::FCmpBr { bt, .. }) => {
            let a = def.unwrap();
            let dist = if a == 0 || entry[a] {
                (w - a) as u64 + 1
            } else {
                let (d_src, _) = def_distance(prog, entry, w, a - 1, bt);
                d_src
            };
            Transfer { cond: true, dist }
        }
        _ => Transfer { cond: false, dist },
    }
}

/// Map each text word to the function that owns it (index into the
/// returned name list), via the block-mark table.
fn func_of_word(prog: &Program) -> (Vec<String>, Vec<usize>) {
    let mut names: Vec<String> = Vec::new();
    let mut index: HashMap<&str, usize> = HashMap::new();
    let mut of_word = vec![0usize; prog.text.len()];
    let mut cur = 0usize;
    let mut marks = prog.blocks.iter().peekable();
    for (w, slot) in of_word.iter_mut().enumerate() {
        while let Some(b) = marks.peek() {
            if b.word as usize > w {
                break;
            }
            cur = *index.entry(&b.func).or_insert_with(|| {
                names.push(b.func.clone());
                names.len() - 1
            });
            marks.next();
        }
        *slot = cur;
    }
    if names.is_empty() {
        names.push("_start".to_string());
    }
    (names, of_word)
}

/// Compute the static cycle estimate for `prog` at pipeline depth
/// `stages`, weighting each text word by its retired count.
///
/// `counts` must be parallel to `prog.text` (one entry per word), as
/// produced by the observability layer's per-word profile.
pub fn static_cycles(prog: &Program, counts: &[u64], stages: u32) -> CostReport {
    assert_eq!(
        counts.len(),
        prog.text.len(),
        "retired-count vector must be parallel to the text segment"
    );
    let (names, of_word) = func_of_word(prog);
    let mut per_func = vec![zero_estimate(); names.len()];
    let entry = entry_flags(prog);

    for w in 0..prog.text.len() {
        let n = counts[w];
        if n == 0 {
            continue;
        }
        let Some(inst) = inst_at(prog, w) else { continue };
        let (structural, prefetch) = match prog.machine {
            Machine::Baseline => {
                let s = match inst {
                    MInst::Bcc { .. } => cond_delay(BranchScheme::Delayed, stages) as u64,
                    MInst::Ba { .. } | MInst::Call { .. } | MInst::Jmpl { .. } => {
                        uncond_delay(BranchScheme::Delayed, stages) as u64
                    }
                    _ => 0,
                };
                (n * s, 0)
            }
            Machine::BranchReg => {
                if inst.br() == 0 {
                    (0, 0)
                } else {
                    let t = classify_transfer(prog, &entry, w, inst);
                    let s = if t.cond {
                        cond_delay(BranchScheme::BranchRegisters, stages) as u64
                    } else {
                        0
                    };
                    (n * s, n * prefetch_stall(stages, t.dist, t.cond))
                }
            }
        };
        add(&mut per_func[of_word[w]], n, structural, prefetch);
    }

    let mut total = zero_estimate();
    for f in &per_func {
        add(&mut total, f.instructions, f.transfer_stalls, f.prefetch_stalls);
    }
    let funcs = names
        .into_iter()
        .zip(per_func)
        .map(|(func, estimate)| FuncCost { func, estimate })
        .collect();
    CostReport {
        machine: prog.machine,
        stages,
        total,
        funcs,
    }
}

/// Conservative static bound on instruction-cache misses (prefetching
/// disabled). Every miss of a line is preceded by an entry into that
/// line from outside — sequentially through its first word, or by a
/// transfer landing on one of its entry words — so the per-line miss
/// count is bounded by the sum of those entry counts. Sets whose
/// executed lines all fit within the associativity never evict, so each
/// such line misses exactly once (cold).
///
/// The bound only holds against [`br_icache::ICacheSim`] runs with
/// `prefetch` off: the prefetcher changes *when* lines are brought in
/// (and can pollute conflict sets), so its miss stream is not
/// entry-bounded.
pub fn icache_miss_bound(prog: &Program, counts: &[u64], cfg: &CacheConfig) -> u64 {
    assert_eq!(counts.len(), prog.text.len());
    let entry = entry_flags(prog);
    // set index -> line base address -> (entry-count bound for the line)
    let mut sets: HashMap<usize, HashMap<u32, u64>> = HashMap::new();
    let lw = cfg.line_words;
    let mut w = 0usize;
    while w < prog.text.len() {
        let line_end = (w / lw * lw + lw).min(prog.text.len());
        let executed = counts[w..line_end].iter().any(|&c| c > 0);
        if executed {
            let addr = abi::TEXT_BASE + (w / lw * lw * 4) as u32;
            let (set, _) = cfg.set_and_tag(addr);
            // Entries into the line: its first word (sequential flow and
            // direct landings) plus every other landing word inside it.
            let first = w / lw * lw;
            let mut entries = counts[first];
            for x in (first + 1)..line_end {
                if entry[x] {
                    entries += counts[x];
                }
            }
            // A line that executes at all is entered at least once.
            sets.entry(set)
                .or_default()
                .insert(cfg.line_addr(addr), entries.max(1));
        }
        w = line_end;
    }
    let mut bound = 0u64;
    for lines in sets.values() {
        if lines.len() <= cfg.assoc {
            bound += lines.len() as u64;
        } else {
            bound += lines.values().sum::<u64>();
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(machine: Machine, insts: Vec<MInst>) -> Program {
        let code = insts
            .iter()
            .map(|&i| br_isa::encode(machine, i).unwrap())
            .collect();
        let text = insts.into_iter().map(TextWord::Inst).collect::<Vec<_>>();
        Program {
            machine,
            code,
            text,
            data: vec![],
            entry: abi::TEXT_BASE,
            symbols: HashMap::new(),
            blocks: vec![br_isa::BlockMark {
                word: 0,
                func: "f".to_string(),
                label: None,
            }],
        }
    }

    #[test]
    fn baseline_counts_are_exact_per_class() {
        use br_isa::{Cc, Reg, Src2};
        // cmp; bcc; slot(nop=add r0); halt
        let p = prog(
            Machine::Baseline,
            vec![
                MInst::Cmp {
                    rs1: Reg(1),
                    src2: Src2::Imm(0),
                },
                MInst::Bcc {
                    cc: Cc::Eq,
                    float: false,
                    disp: 2,
                },
                MInst::Alu {
                    op: br_isa::AluOp::Add,
                    rd: Reg(0),
                    rs1: Reg(0),
                    src2: Src2::Imm(0),
                    br: 0,
                },
                MInst::Halt,
            ],
        );
        let counts = vec![5, 5, 5, 1];
        let r = static_cycles(&p, &counts, 5);
        assert_eq!(r.total.instructions, 16);
        // 5 executed Bcc at cond_delay(Delayed, 5) = 3 cycles each.
        assert_eq!(r.total.transfer_stalls, 15);
        assert_eq!(r.total.prefetch_stalls, 0);
        assert_eq!(r.total.total, 31);
        assert_eq!(r.funcs.len(), 1);
        assert_eq!(r.funcs[0].func, "f");
    }

    #[test]
    fn br_conditional_chases_the_compare_source() {
        use br_isa::{Cc, Reg, Src2};
        // bcalc b1, +3; nop; cmpbr b1; nop{br=7}; halt
        let p = prog(
            Machine::BranchReg,
            vec![
                MInst::Bcalc {
                    bd: BReg(1),
                    disp: 3,
                    br: 0,
                },
                MInst::Nop { br: 0 },
                MInst::CmpBr {
                    cc: Cc::Eq,
                    bt: BReg(1),
                    rs1: Reg(1),
                    src2: Src2::Imm(0),
                    br: 0,
                },
                MInst::Nop { br: 7 },
                MInst::Halt,
            ],
        );
        let counts = vec![2, 2, 2, 2, 1];
        // Carrier at word 3; compare at word 2; bt defined at word 0:
        // distance 3. At 6 stages: required 5, shortfall 2, minus the
        // structural cond delay 3 -> 0 extra stall, structural 2*3.
        let r6 = static_cycles(&p, &counts, 6);
        assert_eq!(r6.total.transfer_stalls, 6);
        assert_eq!(r6.total.prefetch_stalls, 0);
        // At 8 stages: required 7, shortfall 4, minus structural 5 -> 0.
        let r8 = static_cycles(&p, &counts, 8);
        assert_eq!(r8.total.prefetch_stalls, 0);
        assert_eq!(r8.total.transfer_stalls, 10);
    }

    #[test]
    fn br_uncond_distance_and_window_clamp() {
        // bcalc b1,+2; nop{br=1}; halt  — distance 1 at the carrier.
        let p = prog(
            Machine::BranchReg,
            vec![
                MInst::Bcalc {
                    bd: BReg(1),
                    disp: 2,
                    br: 0,
                },
                MInst::Nop { br: 1 },
                MInst::Halt,
            ],
        );
        let counts = vec![3, 3, 1];
        // 4 stages: required 3, d=1 -> shortfall 2, uncond pays it all.
        let r = static_cycles(&p, &counts, 4);
        assert_eq!(r.total.transfer_stalls, 0);
        assert_eq!(r.total.prefetch_stalls, 6);
    }

    #[test]
    fn post_transfer_carrier_is_unconditional_distance_one() {
        // nop{br=1} at word 0 is a window head: carried register defined
        // outside the window, clamped distance 1, unconditional.
        let p = prog(
            Machine::BranchReg,
            vec![MInst::Nop { br: 7 }, MInst::Halt],
        );
        let counts = vec![4, 1];
        let r = static_cycles(&p, &counts, 8);
        // required 7, d=1, shortfall 6, uncond: 4 * 6.
        assert_eq!(r.total.transfer_stalls, 0);
        assert_eq!(r.total.prefetch_stalls, 24);
    }

    #[test]
    fn icache_bound_cold_when_fits() {
        let p = prog(
            Machine::BranchReg,
            vec![MInst::Nop { br: 0 }, MInst::Halt],
        );
        let counts = vec![10, 1];
        let cfg = CacheConfig {
            sets: 4,
            assoc: 2,
            line_words: 4,
            miss_penalty: 10,
            prefetch_queue: 0,
            prefetch: false,
        };
        assert_eq!(icache_miss_bound(&p, &counts, &cfg), 1);
    }
}
