//! `br-tv` — whole-program translation validation and static branch
//! cost analysis.
//!
//! The torture oracle compares the two machines *dynamically* on one
//! input; this module proves them equivalent *statically*, for all
//! inputs the abstraction covers. For every IR function it compiles
//! both emissions (baseline delayed-branch and branch-register), cuts
//! each into superblock segments at the shared IR labels, and runs a
//! joint symbolic fixpoint ([`engine::validate_func`]) over a
//! hash-consed expression arena ([`expr::Arena`]):
//!
//! * each side executes its segment independently under the exact
//!   machine semantics (delay slots on the baseline; pre-decode branch
//!   register reads, fused compares, and the implicit `b[7]`
//!   sequential-address write on the BR machine);
//! * exits are paired by canonicalized branch decision and arrival
//!   label, so a hoisted compare/`bload` pair must compute the same
//!   taken/fall-through decision as the baseline's compare-and-branch;
//! * paired states meet by partition refinement; return states must
//!   agree on the return value, the memory-write stream, the stack
//!   pointer, and all callee-saved state.
//!
//! Any function the engine cannot prove is reported as a typed
//! [`TvFinding`] — never a panic — with [`TvStatus::Refuted`] reserved
//! for demonstrated disagreements (unequal constants, conflicting
//! stores). `TV.md` at the repo root documents the abstraction and its
//! known incompletenesses.
//!
//! The companion [`cost`] module is the static half of the paper's
//! cycle accounting: given per-word retired counts it reproduces the
//! baseline machine's cycle total exactly and upper-bounds the BR
//! machine's, using the same `br-pipeline` delay tables as the dynamic
//! estimate.

pub mod cost;
pub mod engine;
pub mod exec;
pub mod expr;

use std::collections::HashMap;
use std::fmt;

use br_codegen::{select_module, BaseOptions, BrOptions, CodegenError, TargetSpec};
use br_ir::{Module, Ty};
use br_isa::Machine;

use engine::validate_func;
use exec::{CallSig, Ctx, RetKind, SideCode};
use expr::{Arena, Side};

pub use cost::{icache_miss_bound, static_cycles, CostReport, FuncCost};

/// Proof status of one function pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TvStatus {
    /// The two emissions are store- and return-equivalent.
    Proven,
    /// The engine could not complete the proof (abstraction too coarse,
    /// path/round caps hit, or an unmodelled construct).
    Unproven,
    /// The two emissions provably disagree — a miscompile.
    Refuted,
}

impl TvStatus {
    /// Lowercase name, as used in reports.
    pub fn name(self) -> &'static str {
        match self {
            TvStatus::Proven => "proven",
            TvStatus::Unproven => "unproven",
            TvStatus::Refuted => "refuted",
        }
    }
}

/// One reason a function pair failed to prove.
#[derive(Debug, Clone)]
pub struct TvFinding {
    /// True when the sides demonstrably disagree (not merely unproven).
    pub refuted: bool,
    /// Human-readable description.
    pub detail: String,
}

/// Per-function validation outcome.
#[derive(Debug, Clone)]
pub struct TvFuncReport {
    /// Function name.
    pub func: String,
    /// Proof status.
    pub status: TvStatus,
    /// Fixpoint rounds used.
    pub rounds: u32,
    /// Findings; empty iff `status` is [`TvStatus::Proven`].
    pub findings: Vec<TvFinding>,
}

/// Whole-module validation report, in selection (text) order.
#[derive(Debug, Clone, Default)]
pub struct TvModuleReport {
    /// Per-function outcomes.
    pub funcs: Vec<TvFuncReport>,
}

impl TvModuleReport {
    /// Number of functions with the given status.
    pub fn count(&self, s: TvStatus) -> usize {
        self.funcs.iter().filter(|f| f.status == s).count()
    }

    /// Whether every function proved.
    pub fn all_proven(&self) -> bool {
        self.funcs.iter().all(|f| f.status == TvStatus::Proven)
    }

    /// Whether any function is refuted (a demonstrated miscompile).
    pub fn any_refuted(&self) -> bool {
        self.funcs.iter().any(|f| f.status == TvStatus::Refuted)
    }
}

impl fmt::Display for TvModuleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tv: {} proven, {} unproven, {} refuted / {} functions",
            self.count(TvStatus::Proven),
            self.count(TvStatus::Unproven),
            self.count(TvStatus::Refuted),
            self.funcs.len()
        )?;
        for fr in &self.funcs {
            writeln!(f, "  {}: {} ({} rounds)", fr.func, fr.status.name(), fr.rounds)?;
            for finding in &fr.findings {
                writeln!(f, "    - {}", finding.detail)?;
            }
        }
        Ok(())
    }
}

fn ret_kind(ty: &Ty) -> RetKind {
    match ty {
        Ty::Void => RetKind::Void,
        Ty::Float => RetKind::Float,
        _ => RetKind::Int,
    }
}

/// Callee signatures for the symbolic call model, from the IR module.
fn call_sigs(module: &Module) -> HashMap<String, CallSig> {
    module
        .functions
        .iter()
        .map(|f| {
            let params = f.params.iter().map(|(_, ty)| ty.is_float()).collect();
            (
                f.name.clone(),
                CallSig {
                    params,
                    ret: ret_kind(&f.ret_ty),
                },
            )
        })
        .collect()
}

/// Validate every function of `module`: compile it for both machines
/// with the given options and prove the two emissions equivalent.
///
/// Compilation failures surface as `Err`; proof failures are per-function
/// [`TvFuncReport`]s — validation always runs to the end of the module.
pub fn validate_module(
    module: &Module,
    base_opts: BaseOptions,
    br_opts: BrOptions,
) -> Result<TvModuleReport, CodegenError> {
    let batch_a = select_module(module, Machine::Baseline, base_opts, br_opts)?;
    let batch_b = select_module(module, Machine::BranchReg, base_opts, br_opts)?;
    let geoms_a = batch_a.frame_geom();
    let geoms_b = batch_b.frame_geom();
    assert_eq!(
        batch_a.len(),
        batch_b.len(),
        "both machines select the same function set"
    );

    let target_a = TargetSpec::for_machine(Machine::Baseline);
    let target_b = TargetSpec::for_machine(Machine::BranchReg);
    let sigs = call_sigs(module);
    let (callee_bregs, caller_bregs) = br_opts.pools();

    let sig_of: HashMap<&str, (&br_ir::Function, Vec<bool>)> = module
        .functions
        .iter()
        .map(|f| {
            let p: Vec<bool> = f.params.iter().map(|(_, ty)| ty.is_float()).collect();
            (f.name.as_str(), (f, p))
        })
        .collect();

    let gate = |_: br_codegen::Stage<'_>| Ok::<(), std::convert::Infallible>(());
    let mut report = TvModuleReport::default();
    for i in 0..batch_a.len() {
        let (af_a, _) = batch_a.compile_func(i, &gate).map_err(flatten)?;
        let (af_b, _) = batch_b.compile_func(i, &gate).map_err(flatten)?;
        let name = geoms_a[i].name.clone();
        debug_assert_eq!(name, geoms_b[i].name);
        let (func, params) = &sig_of[name.as_str()];

        let code_a = SideCode::build(Side::Base, &af_a);
        let code_b = SideCode::build(Side::Br, &af_b);
        let cxa = Ctx {
            side: Side::Base,
            machine: Machine::Baseline,
            target: &target_a,
            geom: &geoms_a[i],
            sigs: &sigs,
            code: &code_a,
            caller_bregs: &[],
            callee_bregs: &[],
        };
        let cxb = Ctx {
            side: Side::Br,
            machine: Machine::BranchReg,
            target: &target_b,
            geom: &geoms_b[i],
            sigs: &sigs,
            code: &code_b,
            caller_bregs: &caller_bregs,
            callee_bregs: &callee_bregs,
        };

        let mut arena = Arena::new();
        let outcome = validate_func(&mut arena, &cxa, &cxb, params, ret_kind(&func.ret_ty));
        let findings: Vec<TvFinding> = outcome
            .findings
            .iter()
            .map(|f| TvFinding {
                refuted: f.refuted,
                detail: f.detail.clone(),
            })
            .collect();
        let status = if findings.is_empty() {
            TvStatus::Proven
        } else if findings.iter().any(|f| f.refuted) {
            TvStatus::Refuted
        } else {
            TvStatus::Unproven
        };
        report.funcs.push(TvFuncReport {
            func: name,
            status,
            rounds: outcome.rounds,
            findings,
        });
    }
    Ok(report)
}

fn flatten(e: br_codegen::GatedError<std::convert::Infallible>) -> CodegenError {
    match e {
        br_codegen::GatedError::Codegen(c) => c,
        br_codegen::GatedError::Gate(never) => match never {},
    }
}
