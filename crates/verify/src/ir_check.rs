//! Checker 1: IR validation before instruction selection.
//!
//! Establishes that the IR entering the backend is structurally sound
//! (so later stages may index blocks and vregs without checking), that
//! the CFG edges derived from terminators are symmetric, that every
//! operand's register class matches its instruction, and — via the same
//! liveness analysis the allocator uses — that no virtual register can
//! be read before it is written on any path from the entry.

use br_ir::{
    BinOp, Cfg, Function, Inst, Liveness, Operand, RegClass, UnOp, VReg, Width,
};

use crate::VerifyError;

/// Validate one IR function. See the module docs for the invariant list.
pub fn check_ir(f: &Function) -> Result<(), VerifyError> {
    // Structural soundness first: everything below indexes blocks and
    // reads terminators, which panics on malformed functions.
    f.validate().map_err(|detail| VerifyError::Structural {
        func: f.name.clone(),
        detail,
    })?;
    check_vreg_bounds(f)?;
    check_edges(f)?;
    check_classes(f)?;
    check_def_before_use(f)
}

/// Every referenced vreg has a class entry.
fn check_vreg_bounds(f: &Function) -> Result<(), VerifyError> {
    let n = f.num_vregs() as u32;
    let mut uses = Vec::new();
    for (id, b) in f.iter_blocks() {
        for (i, inst) in b.insts.iter().enumerate() {
            uses.clear();
            inst.uses(&mut uses);
            if let Some(d) = inst.def() {
                uses.push(d);
            }
            if let Some(v) = uses.iter().find(|v| v.0 >= n) {
                return Err(VerifyError::Structural {
                    func: f.name.clone(),
                    detail: format!("{id}:{i}: v{} out of range ({n} vregs)", v.0),
                });
            }
        }
    }
    for &(v, _) in &f.params {
        if v.0 >= n {
            return Err(VerifyError::Structural {
                func: f.name.clone(),
                detail: format!("param v{} out of range ({n} vregs)", v.0),
            });
        }
    }
    Ok(())
}

/// CFG successor/predecessor symmetry against the terminators, plus the
/// "nothing branches to the entry" convention (the frontend emits a
/// dedicated header block for every loop, so the entry is never a branch
/// target; selection and hoisting rely on this when placing preheaders).
fn check_edges(f: &Function) -> Result<(), VerifyError> {
    let cfg = Cfg::new(f);
    for (id, b) in f.iter_blocks() {
        let succs = b.term().successors();
        if cfg.succs(id) != succs.as_slice() {
            return Err(VerifyError::EdgeMismatch {
                func: f.name.clone(),
                block: id.0,
                detail: format!(
                    "CFG successors {:?} disagree with terminator successors {succs:?}",
                    cfg.succs(id)
                ),
            });
        }
        for s in succs {
            if !cfg.preds(s).contains(&id) {
                return Err(VerifyError::EdgeMismatch {
                    func: f.name.clone(),
                    block: id.0,
                    detail: format!("edge to {s} missing from its predecessor list"),
                });
            }
        }
    }
    if !cfg.preds(f.entry()).is_empty() {
        return Err(VerifyError::EdgeMismatch {
            func: f.name.clone(),
            block: f.entry().0,
            detail: format!(
                "entry block has predecessors {:?}",
                cfg.preds(f.entry())
            ),
        });
    }
    Ok(())
}

/// Class of a constant or register operand.
fn operand_class(f: &Function, o: &Operand) -> RegClass {
    match o {
        Operand::Reg(v) => f.class_of(*v),
        Operand::Const(_) => RegClass::Int,
        Operand::FConst(_) => RegClass::Float,
    }
}

/// Operand/`RegClass` agreement for every instruction.
fn check_classes(f: &Function) -> Result<(), VerifyError> {
    for (id, b) in f.iter_blocks() {
        for (i, inst) in b.insts.iter().enumerate() {
            let expect = |what: &str, o: &Operand, want: RegClass| {
                let got = operand_class(f, o);
                if got == want {
                    Ok(())
                } else {
                    Err(VerifyError::ClassMismatch {
                        func: f.name.clone(),
                        block: id.0,
                        inst: i,
                        detail: format!("{what} `{o}` is {got:?}, expected {want:?}"),
                    })
                }
            };
            match inst {
                Inst::Bin { op, dst, a, b } => {
                    let want = if op.is_float() {
                        RegClass::Float
                    } else {
                        RegClass::Int
                    };
                    expect("operand", a, want)?;
                    expect("operand", b, want)?;
                    expect("destination", &Operand::Reg(*dst), want)?;
                    // Shifts and divisions never operate on floats and
                    // vice versa; `is_float` already partitions BinOp,
                    // so nothing further to check here.
                    let _ = matches!(op, BinOp::Add);
                }
                Inst::Un { op, dst, a } => {
                    let want = match op {
                        UnOp::Neg | UnOp::Not => RegClass::Int,
                        UnOp::FNeg => RegClass::Float,
                    };
                    expect("operand", a, want)?;
                    expect("destination", &Operand::Reg(*dst), want)?;
                }
                Inst::Copy { dst, a } => {
                    expect("source", a, f.class_of(*dst))?;
                }
                Inst::Cast { kind, dst, a } => {
                    let (src, dstc) = match kind {
                        br_ir::CastKind::IntToFloat => (RegClass::Int, RegClass::Float),
                        br_ir::CastKind::FloatToInt => (RegClass::Float, RegClass::Int),
                    };
                    expect("operand", a, src)?;
                    expect("destination", &Operand::Reg(*dst), dstc)?;
                }
                Inst::Load {
                    dst, base, width, ..
                } => {
                    expect("base address", base, RegClass::Int)?;
                    let want = match width {
                        Width::Float => RegClass::Float,
                        _ => RegClass::Int,
                    };
                    expect("destination", &Operand::Reg(*dst), want)?;
                }
                Inst::Store { a, base, width, .. } => {
                    expect("base address", base, RegClass::Int)?;
                    let want = match width {
                        Width::Float => RegClass::Float,
                        _ => RegClass::Int,
                    };
                    expect("stored value", a, want)?;
                }
                Inst::AddrOf { dst, .. } | Inst::FrameAddr { dst, .. } => {
                    expect("destination", &Operand::Reg(*dst), RegClass::Int)?;
                }
                Inst::Branch { a, b, float, .. } => {
                    let want = if *float {
                        RegClass::Float
                    } else {
                        RegClass::Int
                    };
                    expect("compared operand", a, want)?;
                    expect("compared operand", b, want)?;
                }
                Inst::Switch { idx, .. } => {
                    expect("switch index", idx, RegClass::Int)?;
                }
                // Calls and returns mix classes according to the callee
                // signature, which the IR does not carry per-operand;
                // the frontend's type checker owns those.
                Inst::Call { .. } | Inst::Jump(_) | Inst::Ret(_) => {}
            }
        }
    }
    Ok(())
}

/// Def-before-use on all paths.
///
/// Primary check: nothing but the parameters may be live into the entry
/// block — anything else is a register with a path from entry to a use
/// that crosses no definition. On failure, a forward must-defined pass
/// locates one offending (block, instruction, vreg) triple for the
/// report.
fn check_def_before_use(f: &Function) -> Result<(), VerifyError> {
    let cfg = Cfg::new(f);
    let live = Liveness::new(f, &cfg);
    let entry_live = live.live_in(f.entry());
    if entry_live
        .iter()
        .all(|v| f.params.iter().any(|&(p, _)| p == v))
    {
        return Ok(());
    }
    Err(locate_use_before_def(f, &cfg))
}

/// Forward "must be defined" dataflow to pinpoint one use-before-def.
/// `in[b] = ∩ out[preds]`, entry seeded with the parameters; within a
/// block, uses are checked against the running set before the
/// instruction's own def is added.
fn locate_use_before_def(f: &Function, cfg: &Cfg) -> VerifyError {
    let nv = f.num_vregs();
    let nb = f.blocks.len();
    // `None` = not yet computed (top).
    let mut out: Vec<Option<Vec<bool>>> = vec![None; nb];
    let mut entry = vec![false; nv];
    for &(p, _) in &f.params {
        entry[p.0 as usize] = true;
    }

    let transfer = |mut defined: Vec<bool>, b: br_ir::BlockId| -> Vec<bool> {
        for inst in &f.blocks[b.0 as usize].insts {
            if let Some(d) = inst.def() {
                defined[d.0 as usize] = true;
            }
        }
        defined
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo() {
            let mut inn = if b == f.entry() {
                entry.clone()
            } else {
                let mut acc: Option<Vec<bool>> = None;
                for &p in cfg.preds(b) {
                    if let Some(po) = &out[p.0 as usize] {
                        match &mut acc {
                            None => acc = Some(po.clone()),
                            Some(a) => {
                                for (x, y) in a.iter_mut().zip(po) {
                                    *x &= *y;
                                }
                            }
                        }
                    }
                }
                acc.unwrap_or_else(|| vec![true; nv])
            };
            inn = transfer(inn, b);
            if out[b.0 as usize].as_ref() != Some(&inn) {
                out[b.0 as usize] = Some(inn);
                changed = true;
            }
        }
    }

    // Converged: scan reachable blocks for the first read of a vreg not
    // in the must-defined set at that point.
    let mut uses = Vec::new();
    for &b in cfg.rpo() {
        let mut defined = if b == f.entry() {
            entry.clone()
        } else {
            let mut acc: Option<Vec<bool>> = None;
            for &p in cfg.preds(b) {
                if let Some(po) = &out[p.0 as usize] {
                    match &mut acc {
                        None => acc = Some(po.clone()),
                        Some(a) => {
                            for (x, y) in a.iter_mut().zip(po) {
                                *x &= *y;
                            }
                        }
                    }
                }
            }
            acc.unwrap_or_else(|| vec![true; nv])
        };
        for (i, inst) in f.blocks[b.0 as usize].insts.iter().enumerate() {
            uses.clear();
            inst.uses(&mut uses);
            if let Some(v) = uses.iter().find(|v| !defined[v.0 as usize]) {
                return VerifyError::UseBeforeDef {
                    func: f.name.clone(),
                    block: b.0,
                    inst: i,
                    vreg: v.0,
                };
            }
            if let Some(d) = inst.def() {
                defined[d.0 as usize] = true;
            }
        }
    }
    // Liveness said something escapes the entry but the path-sensitive
    // locator found every use covered: the live-in register can only be
    // dead code the backward analysis over-approximated. Report it
    // conservatively against the entry block.
    let live = Liveness::new(f, cfg);
    let v = live
        .live_in(f.entry())
        .iter()
        .find(|v| !f.params.iter().any(|&(p, _)| p == *v))
        .unwrap_or(VReg(0));
    VerifyError::UseBeforeDef {
        func: f.name.clone(),
        block: f.entry().0,
        inst: 0,
        vreg: v.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::{Block, BlockId, Cond, Ty};

    fn func(blocks: Vec<Block>, vregs: Vec<RegClass>) -> Function {
        Function {
            name: "t".into(),
            ret_ty: Ty::Int,
            params: vec![],
            blocks,
            vregs,
            slots: vec![],
        }
    }

    #[test]
    fn straight_line_function_is_clean() {
        let f = func(
            vec![Block {
                insts: vec![
                    Inst::Copy {
                        dst: VReg(0),
                        a: Operand::Const(3),
                    },
                    Inst::Bin {
                        op: BinOp::Add,
                        dst: VReg(1),
                        a: Operand::Reg(VReg(0)),
                        b: Operand::Const(4),
                    },
                    Inst::Ret(Some(Operand::Reg(VReg(1)))),
                ],
            }],
            vec![RegClass::Int, RegClass::Int],
        );
        assert_eq!(check_ir(&f), Ok(()));
    }

    #[test]
    fn use_before_def_is_located() {
        // v0 is read in the then-branch but only defined in the else-
        // branch: live into the entry, so the checker must object and
        // point at the exact instruction.
        let f = func(
            vec![
                Block {
                    insts: vec![Inst::Branch {
                        cond: Cond::Eq,
                        a: Operand::Const(0),
                        b: Operand::Const(0),
                        float: false,
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    }],
                },
                Block {
                    insts: vec![Inst::Ret(Some(Operand::Reg(VReg(0))))],
                },
                Block {
                    insts: vec![
                        Inst::Copy {
                            dst: VReg(0),
                            a: Operand::Const(1),
                        },
                        Inst::Ret(Some(Operand::Reg(VReg(0)))),
                    ],
                },
            ],
            vec![RegClass::Int],
        );
        assert_eq!(
            check_ir(&f),
            Err(VerifyError::UseBeforeDef {
                func: "t".into(),
                block: 1,
                inst: 0,
                vreg: 0,
            })
        );
    }

    #[test]
    fn defs_on_all_paths_are_accepted() {
        // Same diamond, but both arms define v0 before the join reads it.
        let f = func(
            vec![
                Block {
                    insts: vec![Inst::Branch {
                        cond: Cond::Eq,
                        a: Operand::Const(0),
                        b: Operand::Const(0),
                        float: false,
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    }],
                },
                Block {
                    insts: vec![
                        Inst::Copy {
                            dst: VReg(0),
                            a: Operand::Const(1),
                        },
                        Inst::Jump(BlockId(3)),
                    ],
                },
                Block {
                    insts: vec![
                        Inst::Copy {
                            dst: VReg(0),
                            a: Operand::Const(2),
                        },
                        Inst::Jump(BlockId(3)),
                    ],
                },
                Block {
                    insts: vec![Inst::Ret(Some(Operand::Reg(VReg(0))))],
                },
            ],
            vec![RegClass::Int],
        );
        assert_eq!(check_ir(&f), Ok(()));
    }

    #[test]
    fn class_mismatch_is_reported() {
        let f = func(
            vec![Block {
                insts: vec![
                    Inst::Bin {
                        op: BinOp::FAdd,
                        dst: VReg(0),
                        a: Operand::FConst(1.0),
                        b: Operand::FConst(2.0),
                    },
                    Inst::Ret(Some(Operand::Const(0))),
                ],
            }],
            vec![RegClass::Int], // float op writing an int vreg
        );
        assert!(matches!(
            check_ir(&f),
            Err(VerifyError::ClassMismatch { .. })
        ));
    }

    #[test]
    fn structural_breakage_is_reported() {
        let f = func(
            vec![Block {
                insts: vec![Inst::Jump(BlockId(7))], // missing block
            }],
            vec![],
        );
        assert!(matches!(check_ir(&f), Err(VerifyError::Structural { .. })));
    }

    #[test]
    fn vreg_out_of_range_is_structural() {
        let f = func(
            vec![Block {
                insts: vec![
                    Inst::Copy {
                        dst: VReg(5),
                        a: Operand::Const(0),
                    },
                    Inst::Ret(None),
                ],
            }],
            vec![RegClass::Int], // only v0 declared
        );
        assert!(matches!(check_ir(&f), Err(VerifyError::Structural { .. })));
    }
}
