//! Checker 2: symbolic replay of the register allocation.
//!
//! After `regalloc.rs` rewrote spills, every instruction references only
//! assigned virtual registers. The checker replays the allocation over
//! an abstract machine in which each physical register holds a *symbol*
//! — the virtual register the allocator last placed there, `Clobbered`
//! after a call destroyed a caller-saved register, or `Garbage` before
//! any definition. A read of vreg `v` must find exactly the symbol `v`
//! in `v`'s assigned register on every path; spill-slot reloads must be
//! preceded by a store to the same slot on every path.

use std::collections::{BTreeSet, HashSet};

use br_codegen::regalloc::Allocation;
use br_codegen::vcode::{FrameRef, VBlock, VFunc, VInst, VR};
use br_codegen::TargetSpec;
use br_ir::RegClass;

use crate::VerifyError;

/// What a physical register abstractly holds.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sym {
    /// Never written on this path.
    Garbage,
    /// Destroyed by a call (caller-saved registers only).
    Clobbered,
    /// Holds incompatible symbols on different incoming paths.
    Mixed,
    /// Holds the value of every virtual register in the set. A move
    /// whose source and destination were coalesced into the same
    /// register leaves *both* vregs valid there, so a register can
    /// stand for several vregs at once.
    V(BTreeSet<VR>),
}

fn merge_sym(a: &Sym, b: &Sym) -> Sym {
    match (a, b) {
        (Sym::V(x), Sym::V(y)) => {
            let i: BTreeSet<VR> = x.intersection(y).copied().collect();
            if i.is_empty() {
                Sym::Mixed
            } else {
                Sym::V(i)
            }
        }
        _ if a == b => a.clone(),
        _ => Sym::Mixed,
    }
}

/// Abstract machine state at a program point.
#[derive(Debug, Clone, PartialEq)]
struct State {
    int: Vec<Sym>,
    float: Vec<Sym>,
    /// Whether each allocator spill slot has definitely been stored.
    slots: Vec<bool>,
}

impl State {
    fn merge_with(&mut self, o: &State) -> bool {
        let mut changed = false;
        for (a, b) in self
            .int
            .iter_mut()
            .chain(self.float.iter_mut())
            .zip(o.int.iter().chain(o.float.iter()))
        {
            let m = merge_sym(a, b);
            changed |= m != *a;
            *a = m;
        }
        for (a, b) in self.slots.iter_mut().zip(&o.slots) {
            let m = *a && *b;
            changed |= m != *a;
            *a = m;
        }
        changed
    }
}

struct Ck<'a> {
    vf: &'a VFunc,
    alloc: &'a Allocation,
    /// Caller-saved register numbers, per class.
    int_caller: Vec<u8>,
    float_caller: Vec<u8>,
}

impl<'a> Ck<'a> {
    fn assign(&self, v: VR) -> Option<u8> {
        self.alloc.assign.get(v as usize).copied().flatten()
    }

    fn reg_of<'s>(&self, st: &'s State, v: VR, p: u8) -> &'s Sym {
        match self.vf.class_of(v) {
            RegClass::Int => &st.int[p as usize],
            RegClass::Float => &st.float[p as usize],
        }
    }

    fn set_reg(&self, st: &mut State, v: VR, p: u8, sym: Sym) {
        match self.vf.class_of(v) {
            RegClass::Int => st.int[p as usize] = sym,
            RegClass::Float => st.float[p as usize] = sym,
        }
    }

    fn one(v: VR) -> Sym {
        Sym::V(BTreeSet::from([v]))
    }

    /// Apply one instruction's state effect (no error reporting).
    fn apply(&self, st: &mut State, inst: &VInst) {
        if let VInst::FrameStore {
            fref: FrameRef::Spill(s),
            ..
        } = inst
        {
            if let Some(slot) = st.slots.get_mut(*s as usize) {
                *slot = true;
            }
        }
        if inst.is_call() {
            for &p in &self.int_caller {
                st.int[p as usize] = Sym::Clobbered;
            }
            for &p in &self.float_caller {
                st.float[p as usize] = Sym::Clobbered;
            }
        }
        if let Some(d) = inst.def() {
            if let Some(p) = self.assign(d) {
                // A move coalesced with its source (same register)
                // does not change the register's value: every vreg it
                // already stood for stays valid alongside `d`.
                let mut set = BTreeSet::from([d]);
                if let VInst::Mov { src, .. } | VInst::FMov { src, .. } = inst {
                    if self.assign(*src) == Some(p) {
                        if let Sym::V(prev) = self.reg_of(st, d, p) {
                            if prev.contains(src) {
                                set.extend(prev.iter().copied());
                            }
                        }
                    }
                }
                self.set_reg(st, d, p, Sym::V(set));
            }
        }
    }

    /// Check one use against the current state.
    fn check_use(
        &self,
        st: &State,
        v: VR,
        block: u32,
        inst: usize,
    ) -> Result<(), VerifyError> {
        let func = self.vf.name.clone();
        let Some(p) = self.assign(v) else {
            return Err(VerifyError::UnrewrittenSpill {
                func,
                block,
                inst,
                vreg: v,
            });
        };
        match self.reg_of(st, v, p) {
            Sym::V(set) if set.contains(&v) => Ok(()),
            Sym::Clobbered => Err(VerifyError::ClobberedRead {
                func,
                block,
                inst,
                vreg: v,
                preg: p,
            }),
            _ => Err(VerifyError::UndefinedRead {
                func,
                block,
                inst,
                vreg: v,
                preg: p,
            }),
        }
    }

    /// Check every use in a block against the converged entry state,
    /// updating the state as instructions execute.
    fn check_block(&self, bid: u32, b: &VBlock, st: &mut State) -> Result<(), VerifyError> {
        let mut uses = Vec::new();
        for (i, inst) in b.insts.iter().enumerate() {
            uses.clear();
            inst.uses(&mut uses);
            for &u in &uses {
                self.check_use(st, u, bid, i)?;
            }
            if let VInst::FrameLoad { dst, fref, float } = inst {
                if *float != (self.vf.class_of(*dst) == RegClass::Float) {
                    return Err(VerifyError::BadAssignment {
                        func: self.vf.name.clone(),
                        vreg: *dst,
                        preg: self.assign(*dst).unwrap_or(0),
                        detail: format!(
                            "frame load float={float} disagrees with vreg class"
                        ),
                    });
                }
                if let FrameRef::Spill(s) = fref {
                    if !st.slots.get(*s as usize).copied().unwrap_or(false) {
                        return Err(VerifyError::SpillClobbered {
                            func: self.vf.name.clone(),
                            block: bid,
                            inst: i,
                            slot: *s,
                        });
                    }
                }
            }
            if let VInst::FrameStore { src, float, .. } = inst {
                if *float != (self.vf.class_of(*src) == RegClass::Float) {
                    return Err(VerifyError::BadAssignment {
                        func: self.vf.name.clone(),
                        vreg: *src,
                        preg: self.assign(*src).unwrap_or(0),
                        detail: format!(
                            "frame store float={float} disagrees with vreg class"
                        ),
                    });
                }
            }
            self.apply(st, inst);
        }
        uses.clear();
        b.term().uses(&mut uses);
        for &u in &uses {
            self.check_use(st, u, bid, b.insts.len())?;
        }
        Ok(())
    }
}

/// Replay `alloc` over `vf` symbolically, verifying every read. See the
/// module docs for the abstract-machine rules.
pub fn check_regalloc(
    vf: &VFunc,
    alloc: &Allocation,
    target: &TargetSpec,
) -> Result<(), VerifyError> {
    // Register-file sizes: index by physical number, generously sized so
    // a bad assignment cannot panic the checker before it is reported.
    let nregs = 64usize;

    // Pool membership: every assigned register must come from the
    // allocatable pools (argument registers are caller-saved members).
    let int_ok: HashSet<u8> = target
        .int_caller
        .iter()
        .chain(&target.int_callee)
        .chain(&target.int_args)
        .map(|r| r.0)
        .collect();
    let float_ok: HashSet<u8> = target
        .float_caller
        .iter()
        .chain(&target.float_callee)
        .chain(&target.float_args)
        .copied()
        .collect();
    let mut uses = Vec::new();
    for (_, b) in vf.iter_blocks() {
        for inst in &b.insts {
            uses.clear();
            inst.uses(&mut uses);
            uses.extend(inst.def());
            for &v in &uses {
                let Some(p) = alloc.assign.get(v as usize).copied().flatten() else {
                    continue; // unassigned: caught as UnrewrittenSpill below
                };
                let ok = match vf.class_of(v) {
                    RegClass::Int => int_ok.contains(&p),
                    RegClass::Float => float_ok.contains(&p),
                };
                if !ok || (p as usize) >= nregs {
                    return Err(VerifyError::BadAssignment {
                        func: vf.name.clone(),
                        vreg: v,
                        preg: p,
                        detail: "register outside the allocatable pools".into(),
                    });
                }
            }
        }
    }

    let ck = Ck {
        vf,
        alloc,
        int_caller: target
            .int_caller
            .iter()
            .chain(&target.int_args)
            .map(|r| r.0)
            .collect(),
        float_caller: target
            .float_caller
            .iter()
            .chain(&target.float_args)
            .copied()
            .collect(),
    };

    // Entry state: parameters are live in their assigned registers (the
    // emitted prologue moves them there), spilled parameters are live in
    // their slots (the prologue stores them directly).
    let mut entry = State {
        int: vec![Sym::Garbage; nregs],
        float: vec![Sym::Garbage; nregs],
        slots: vec![false; vf.num_spills as usize],
    };
    for &(v, _) in &vf.params {
        if let Some(p) = ck.assign(v) {
            ck.set_reg(&mut entry, v, p, Ck::one(v));
        }
    }
    for &(_, s) in &vf.spilled_params {
        if let Some(slot) = entry.slots.get_mut(s as usize) {
            *slot = true;
        }
    }

    // Forward fixpoint over block-entry states.
    let nb = vf.blocks.len();
    let mut in_states: Vec<Option<State>> = vec![None; nb];
    in_states[0] = Some(entry);
    let mut changed = true;
    while changed {
        changed = false;
        for (bid, b) in vf.iter_blocks() {
            let Some(mut st) = in_states[bid.0 as usize].clone() else {
                continue;
            };
            for inst in &b.insts {
                ck.apply(&mut st, inst);
            }
            for s in b.term().successors() {
                match &mut in_states[s.0 as usize] {
                    None => {
                        in_states[s.0 as usize] = Some(st.clone());
                        changed = true;
                    }
                    Some(old) => changed |= old.merge_with(&st),
                }
            }
        }
    }

    // Converged: verify every reachable block against its entry state.
    for (bid, b) in vf.iter_blocks() {
        if let Some(st) = &in_states[bid.0 as usize] {
            ck.check_block(bid.0, b, &mut st.clone())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_codegen::vcode::{VSrc, VTerm};
    use br_isa::Machine;

    fn target() -> TargetSpec {
        TargetSpec::for_machine(Machine::Baseline)
    }

    fn vfunc(blocks: Vec<VBlock>, classes: Vec<RegClass>, num_spills: u32) -> VFunc {
        VFunc {
            name: "t".into(),
            blocks,
            classes,
            params: vec![],
            slots: vec![],
            num_spills,
            spilled_params: vec![],
            max_out_args: 0,
            has_call: false,
        }
    }

    fn block(insts: Vec<VInst>, term: VTerm) -> VBlock {
        VBlock {
            insts,
            term: Some(term),
        }
    }

    #[test]
    fn straight_line_replay_is_clean() {
        let t = target();
        let p = t.int_caller[0].0;
        let vf = vfunc(
            vec![block(
                vec![VInst::Li { dst: 0, val: 7 }],
                VTerm::Ret(Some((VSrc::V(0), false))),
            )],
            vec![RegClass::Int],
            0,
        );
        let alloc = Allocation {
            assign: vec![Some(p)],
            used_int_callee: vec![],
            used_float_callee: vec![],
        };
        assert_eq!(check_regalloc(&vf, &alloc, &t), Ok(()));
    }

    #[test]
    fn read_of_caller_saved_across_call_is_clobbered() {
        let t = target();
        let p = t.int_caller[0].0;
        let vf = vfunc(
            vec![block(
                vec![
                    VInst::Li { dst: 0, val: 7 },
                    VInst::Call {
                        func: "g".into(),
                        args: vec![],
                        dst: None,
                    },
                ],
                VTerm::Ret(Some((VSrc::V(0), false))),
            )],
            vec![RegClass::Int],
            0,
        );
        let alloc = Allocation {
            assign: vec![Some(p)],
            used_int_callee: vec![],
            used_float_callee: vec![],
        };
        assert_eq!(
            check_regalloc(&vf, &alloc, &t),
            // The offending read is the terminator's, reported at the
            // one-past-the-last instruction index.
            Err(VerifyError::ClobberedRead {
                func: "t".into(),
                block: 0,
                inst: 2,
                vreg: 0,
                preg: p,
            })
        );
    }

    #[test]
    fn callee_saved_value_survives_a_call() {
        let t = target();
        let p = t.int_callee[0].0;
        let vf = vfunc(
            vec![block(
                vec![
                    VInst::Li { dst: 0, val: 7 },
                    VInst::Call {
                        func: "g".into(),
                        args: vec![],
                        dst: None,
                    },
                ],
                VTerm::Ret(Some((VSrc::V(0), false))),
            )],
            vec![RegClass::Int],
            0,
        );
        let alloc = Allocation {
            assign: vec![Some(p)],
            used_int_callee: vec![p],
            used_float_callee: vec![],
        };
        assert_eq!(check_regalloc(&vf, &alloc, &t), Ok(()));
    }

    #[test]
    fn reload_from_unwritten_slot_is_rejected() {
        let t = target();
        let p = t.int_caller[0].0;
        let vf = vfunc(
            vec![block(
                vec![VInst::FrameLoad {
                    dst: 0,
                    fref: FrameRef::Spill(0),
                    float: false,
                }],
                VTerm::Ret(Some((VSrc::V(0), false))),
            )],
            vec![RegClass::Int],
            1,
        );
        let alloc = Allocation {
            assign: vec![Some(p)],
            used_int_callee: vec![],
            used_float_callee: vec![],
        };
        assert_eq!(
            check_regalloc(&vf, &alloc, &t),
            Err(VerifyError::SpillClobbered {
                func: "t".into(),
                block: 0,
                inst: 0,
                slot: 0,
            })
        );
    }

    #[test]
    fn spill_round_trip_is_clean() {
        let t = target();
        let p = t.int_caller[0].0;
        let q = t.int_caller[1].0;
        let vf = vfunc(
            vec![block(
                vec![
                    VInst::Li { dst: 0, val: 7 },
                    VInst::FrameStore {
                        src: 0,
                        fref: FrameRef::Spill(0),
                        float: false,
                    },
                    VInst::FrameLoad {
                        dst: 1,
                        fref: FrameRef::Spill(0),
                        float: false,
                    },
                ],
                VTerm::Ret(Some((VSrc::V(1), false))),
            )],
            vec![RegClass::Int, RegClass::Int],
            1,
        );
        let alloc = Allocation {
            assign: vec![Some(p), Some(q)],
            used_int_callee: vec![],
            used_float_callee: vec![],
        };
        assert_eq!(check_regalloc(&vf, &alloc, &t), Ok(()));
    }

    #[test]
    fn unassigned_reference_is_unrewritten_spill() {
        let t = target();
        let vf = vfunc(
            vec![block(vec![], VTerm::Ret(Some((VSrc::V(0), false))))],
            vec![RegClass::Int],
            0,
        );
        let alloc = Allocation {
            assign: vec![None],
            used_int_callee: vec![],
            used_float_callee: vec![],
        };
        assert_eq!(
            check_regalloc(&vf, &alloc, &t),
            Err(VerifyError::UnrewrittenSpill {
                func: "t".into(),
                block: 0,
                inst: 0,
                vreg: 0,
            })
        );
    }

    #[test]
    fn assignment_outside_the_pools_is_rejected() {
        let t = target();
        let vf = vfunc(
            vec![block(
                vec![VInst::Li { dst: 0, val: 1 }],
                VTerm::Ret(Some((VSrc::V(0), false))),
            )],
            vec![RegClass::Int],
            0,
        );
        let alloc = Allocation {
            assign: vec![Some(t.sp.0)], // the stack pointer is never allocatable
            used_int_callee: vec![],
            used_float_callee: vec![],
        };
        assert!(matches!(
            check_regalloc(&vf, &alloc, &t),
            Err(VerifyError::BadAssignment { .. })
        ));
    }

    #[test]
    fn value_defined_on_both_arms_merges_clean() {
        let t = target();
        let p = t.int_caller[0].0;
        let q = t.int_caller[1].0;
        // if (v0) v1 = 1 else v1 = 2; return v1 — both arms define v1
        // into the same register, so the join is V(1), not Mixed.
        let vf = vfunc(
            vec![
                block(
                    vec![VInst::Li { dst: 0, val: 1 }],
                    VTerm::Branch {
                        cc: br_isa::Cc::Ne,
                        float: false,
                        a: 0,
                        b: VSrc::Imm(0),
                        then_bb: br_ir::BlockId(1),
                        else_bb: br_ir::BlockId(2),
                    },
                ),
                block(vec![VInst::Li { dst: 1, val: 1 }], VTerm::Jump(br_ir::BlockId(3))),
                block(vec![VInst::Li { dst: 1, val: 2 }], VTerm::Jump(br_ir::BlockId(3))),
                block(vec![], VTerm::Ret(Some((VSrc::V(1), false)))),
            ],
            vec![RegClass::Int, RegClass::Int],
            0,
        );
        let alloc = Allocation {
            assign: vec![Some(p), Some(q)],
            used_int_callee: vec![],
            used_float_callee: vec![],
        };
        assert_eq!(check_regalloc(&vf, &alloc, &t), Ok(()));
    }
}
