//! Checker 3: lint over emitted symbolic machine code.
//!
//! For both machines, every instruction must encode (register indices,
//! immediate and displacement ranges, machine-exclusive variants). On
//! the baseline, every delayed transfer must be followed by exactly one
//! non-transfer instruction (the delay slot). On the branch-register
//! machine, the checker runs a small abstract interpretation of the
//! branch-register file over the instruction stream, mirroring the
//! emulator's semantics:
//!
//! * the `br` field of a non-compare instruction reads the branch
//!   register *before* the instruction executes;
//! * a compare-with-assignment carrying its own `br` field (a fused
//!   compare) re-reads it *after* writing `b[7]`;
//! * after any transferring instruction the hardware writes the
//!   sequential address into `b[7]` — this is the call/return linkage.
//!
//! Each branch register abstractly holds either "undefined" or the set
//! of targets it may name (a local label, a specific instruction
//! address, a function entry, or the caller's return address). Any
//! transfer through an undefined register on some path is an error, as
//! is a compare whose taken-target register is undefined. On top of the
//! dataflow, the checker enforces compare/carrier pairing and — given
//! the emitter's [`HoistPlan`] — that branch registers holding hoisted
//! targets are not clobbered inside the loops they serve, including the
//! callee-saved discipline across calls.

use std::collections::{BTreeSet, HashMap};

use br_codegen::hoist::HoistPlan;
use br_codegen::BrOptions;
use br_isa::{
    encode, AsmFunc, AsmItem, Label, MInst, Machine, Reloc, Src2, SymRef, FRESH_LABEL_BASE,
};

use crate::VerifyError;

/// What a branch register may name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Tgt {
    /// A function-local label.
    Label(u32),
    /// A specific item index in this function's stream.
    Addr(usize),
    /// Some other function's entry (transferring is a call).
    Func,
    /// The caller's return address (transferring is a return).
    Ret,
}

/// Abstract value of one branch register.
#[derive(Debug, Clone, PartialEq)]
enum BVal {
    /// Not written on some path.
    Undef,
    /// Definitely written; may name any of these targets.
    Def(BTreeSet<Tgt>),
}

impl BVal {
    fn one(t: Tgt) -> BVal {
        BVal::Def(std::iter::once(t).collect())
    }

    fn merge_with(&mut self, o: &BVal) -> bool {
        match (&mut *self, o) {
            (BVal::Undef, _) => false,
            (s @ BVal::Def(_), BVal::Undef) => {
                *s = BVal::Undef;
                true
            }
            (BVal::Def(a), BVal::Def(b)) => {
                let before = a.len();
                a.extend(b.iter().copied());
                a.len() != before
            }
        }
    }
}

/// The branch-register file at a program point.
type BState = Vec<BVal>;

/// The branch register an instruction writes, if any. Compares always
/// write `b[7]`.
fn breg_def(inst: &MInst) -> Option<u8> {
    match inst {
        MInst::Bcalc { bd, .. }
        | MInst::BMovB { bd, .. }
        | MInst::BMovR { bd, .. }
        | MInst::BLoad { bd, .. } => Some(bd.0),
        MInst::CmpBr { .. } | MInst::FCmpBr { .. } => Some(7),
        _ => None,
    }
}

/// Verify one emitted function. `hoist` is the emitter's plan on the
/// branch-register machine (`None` on the baseline or when hoisting is
/// disabled produces an empty default plan upstream).
pub fn check_asm(
    asm: &AsmFunc,
    machine: Machine,
    hoist: Option<&HoistPlan>,
    opts: &BrOptions,
) -> Result<(), VerifyError> {
    match check_asm_all(asm, machine, hoist, opts).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// [`check_asm`], but collecting *every* protocol violation in the
/// function instead of stopping at the first. Violations come back in
/// scan order per checker (encoding first, then the machine-specific
/// discipline), so the first element is exactly what [`check_asm`]
/// would have returned. An empty vector means the function is clean.
pub fn check_asm_all(
    asm: &AsmFunc,
    machine: Machine,
    hoist: Option<&HoistPlan>,
    opts: &BrOptions,
) -> Vec<VerifyError> {
    let mut sink = Vec::new();
    check_encoding(asm, machine, &mut sink);
    match machine {
        Machine::Baseline => check_delay_slots(asm, &mut sink),
        Machine::BranchReg => {
            let lint = BrLint::new(asm, opts);
            let states = lint.dataflow();
            lint.check_uses(&states, &mut sink);
            lint.check_pairing(&mut sink);
            if let Some(plan) = hoist {
                lint.check_hoist(plan, opts, &states, &mut sink);
            }
        }
    }
    sink
}

/// Every instruction must encode for the target machine. Unpatched
/// relocation fields hold zero, which always encodes; the assembler
/// re-checks patched values at link time.
fn check_encoding(asm: &AsmFunc, machine: Machine, sink: &mut Vec<VerifyError>) {
    for (index, item) in asm.items.iter().enumerate() {
        if let AsmItem::Inst(inst, _) = item {
            if let Err(err) = encode(machine, *inst) {
                sink.push(VerifyError::Encoding {
                    func: asm.name.clone(),
                    index,
                    err,
                });
            }
        }
    }
}

/// Baseline delay-slot discipline: every delayed transfer is followed by
/// exactly one instruction that is neither a transfer nor a join point.
fn check_delay_slots(asm: &AsmFunc, sink: &mut Vec<VerifyError>) {
    for (index, item) in asm.items.iter().enumerate() {
        let AsmItem::Inst(inst, _) = item else {
            continue;
        };
        if !inst.is_baseline_transfer() {
            continue;
        }
        let err = |detail: String| VerifyError::DelaySlot {
            func: asm.name.clone(),
            index,
            detail,
        };
        match asm.items.get(index + 1) {
            Some(AsmItem::Inst(slot, _)) => {
                if slot.is_baseline_transfer() {
                    sink.push(err(format!("transfer `{slot}` in the delay slot")));
                }
            }
            Some(AsmItem::Label(l)) => {
                sink.push(err(format!("label {l} in the delay slot")));
            }
            Some(AsmItem::Word(..)) => {
                sink.push(err("data word in the delay slot".into()));
            }
            None => sink.push(err("transfer at the end of the stream".into())),
        }
    }
}

/// The branch-register protocol analysis for one function.
struct BrLint<'a> {
    asm: &'a AsmFunc,
    /// Label id → item index of the label.
    label_at: HashMap<u32, usize>,
    /// Labels named by any jump-table word in the function: the fallback
    /// result set of an indexed `bload` whose table is not identified.
    table_targets: BTreeSet<Tgt>,
    /// Per-`bload` result sets, resolved to the specific jump table the
    /// load indexes (identified by the `%lo(table)` reloc that
    /// materialized its base address). Without this, a function with two
    /// switches would let each dispatch "jump" into the other's targets.
    bload_table: HashMap<usize, BTreeSet<Tgt>>,
    /// Caller-saved branch registers (clobbered across calls).
    caller_pool: Vec<u8>,
}

impl<'a> BrLint<'a> {
    fn new(asm: &'a AsmFunc, opts: &BrOptions) -> BrLint<'a> {
        let mut label_at = HashMap::new();
        let mut table_targets = BTreeSet::new();
        let mut tables: HashMap<u32, BTreeSet<Tgt>> = HashMap::new();
        let mut cur_table: Option<u32> = None;
        for (i, item) in asm.items.iter().enumerate() {
            match item {
                AsmItem::Label(Label(l)) => {
                    label_at.insert(*l, i);
                    cur_table = Some(*l);
                }
                AsmItem::Word(_, Some(Reloc::Abs(SymRef::Label(Label(l))))) => {
                    table_targets.insert(Tgt::Label(*l));
                    if let Some(t) = cur_table {
                        tables.entry(t).or_default().insert(Tgt::Label(*l));
                    }
                }
                _ => cur_table = None,
            }
        }
        let mut bload_table = HashMap::new();
        for (i, item) in asm.items.iter().enumerate() {
            if let AsmItem::Inst(
                MInst::BLoad {
                    src2: Src2::Reg(_), ..
                },
                _,
            ) = item
            {
                // The dispatch sequence (sethi/orlo/bload) is contiguous
                // within a block, so the nearest preceding `%lo(label)`
                // reloc names this load's table.
                for j in (0..i).rev() {
                    match &asm.items[j] {
                        AsmItem::Label(_) | AsmItem::Word(..) => break,
                        AsmItem::Inst(_, Some(Reloc::Lo(SymRef::Label(Label(l))))) => {
                            if let Some(ts) = tables.get(l) {
                                bload_table.insert(i, ts.clone());
                            }
                            break;
                        }
                        AsmItem::Inst(..) => {}
                    }
                }
            }
        }
        BrLint {
            asm,
            label_at,
            table_targets,
            bload_table,
            caller_pool: opts.pools().1,
        }
    }

    /// Index of the next address-occupying item after `i` (labels take
    /// no space, so `pc + 4` skips them).
    fn next_addr(&self, i: usize) -> Option<usize> {
        self.asm.items[i + 1..]
            .iter()
            .position(|it| !matches!(it, AsmItem::Label(_)))
            .map(|off| i + 1 + off)
    }

    /// Successor item indices and their branch-register states after
    /// item `i` executes with in-state `s`.
    fn step(&self, i: usize, s: &BState) -> Vec<(usize, BState)> {
        match &self.asm.items[i] {
            AsmItem::Label(_) => {
                if i + 1 < self.asm.items.len() {
                    vec![(i + 1, s.clone())]
                } else {
                    vec![]
                }
            }
            // Data words are never executed; the stream ahead of them
            // always transfers away.
            AsmItem::Word(..) => vec![],
            AsmItem::Inst(inst, reloc) => self.step_inst(i, *inst, reloc.as_ref(), s),
        }
    }

    fn step_inst(
        &self,
        i: usize,
        inst: MInst,
        reloc: Option<&Reloc>,
        s: &BState,
    ) -> Vec<(usize, BState)> {
        let k = inst.br() as usize;
        // Definitions. The emulator reads a non-compare's `br` register
        // before execution, so the jump value for those is taken from
        // the *incoming* state below.
        let mut s2 = s.clone();
        match inst {
            MInst::Bcalc { bd, .. } => {
                s2[bd.0 as usize] = match reloc {
                    Some(Reloc::Disp(SymRef::Label(Label(l)))) => BVal::one(Tgt::Label(*l)),
                    _ => BVal::Def(BTreeSet::new()),
                };
            }
            MInst::BMovR { bd, .. } => {
                s2[bd.0 as usize] = match reloc {
                    Some(Reloc::Lo(SymRef::Func(_))) => BVal::one(Tgt::Func),
                    _ => BVal::Def(BTreeSet::new()),
                };
            }
            MInst::BMovB { bd, bs, .. } => {
                s2[bd.0 as usize] = if bs.0 == 0 {
                    // b[0] is the PC: reading it yields the sequential
                    // address.
                    match self.next_addr(i) {
                        Some(n) => BVal::one(Tgt::Addr(n)),
                        None => BVal::Def(BTreeSet::new()),
                    }
                } else {
                    s[bs.0 as usize].clone()
                };
            }
            MInst::BLoad { bd, src2, .. } => {
                s2[bd.0 as usize] = match src2 {
                    // Fixed-offset loads restore a saved register from
                    // the frame: the return address or a caller's
                    // callee-saved value, both opaque here.
                    Src2::Imm(_) => BVal::one(Tgt::Ret),
                    // Indexed loads read a word of this load's jump
                    // table (all of the function's tables when the
                    // table could not be identified).
                    Src2::Reg(_) => BVal::Def(
                        self.bload_table
                            .get(&i)
                            .unwrap_or(&self.table_targets)
                            .clone(),
                    ),
                };
            }
            MInst::CmpBr { bt, .. } | MInst::FCmpBr { bt, .. } => {
                // Taken: b[7] = b[bt]. Not taken: b[7] = the address
                // past the compare (fused) or past its carrier.
                let mut set = match &s[bt.0 as usize] {
                    BVal::Def(ts) => ts.clone(),
                    BVal::Undef => BTreeSet::new(), // reported by check_uses
                };
                let not_taken = if k != 0 {
                    self.next_addr(i)
                } else {
                    self.next_addr(i).and_then(|n| self.next_addr(n))
                };
                if let Some(n) = not_taken {
                    set.insert(Tgt::Addr(n));
                }
                s2[7] = BVal::Def(set);
            }
            _ => {}
        }

        if k == 0 {
            if matches!(inst, MInst::Halt) {
                return vec![];
            }
            return if i + 1 < self.asm.items.len() {
                vec![(i + 1, s2)]
            } else {
                vec![]
            };
        }

        // Transferring instruction. A fused compare re-reads its own
        // result; everything else latched the pre-execution value.
        let fused = matches!(inst, MInst::CmpBr { .. } | MInst::FCmpBr { .. });
        let jump = if fused { s2[k].clone() } else { s[k].clone() };
        // The hardware then writes the sequential address into b[7]
        // (the linkage that makes calls return).
        let mut s3 = s2;
        s3[7] = match self.next_addr(i) {
            Some(n) => BVal::one(Tgt::Addr(n)),
            None => BVal::Def(BTreeSet::new()),
        };

        let mut succ = Vec::new();
        if let BVal::Def(targets) = jump {
            for t in targets {
                match t {
                    Tgt::Label(l) => {
                        if let Some(&j) = self.label_at.get(&l) {
                            succ.push((j, s3.clone()));
                        }
                    }
                    Tgt::Addr(j) => succ.push((j, s3.clone())),
                    Tgt::Func => {
                        // A call: control returns to the sequential
                        // address with every caller-saved branch
                        // register — and b[7] itself — clobbered by the
                        // callee. Callee-saved registers survive; their
                        // preservation is the callee's own saved/
                        // restored discipline, checked per function.
                        if let Some(ret) = self.next_addr(i) {
                            let mut cs = s3.clone();
                            for &r in &self.caller_pool {
                                cs[r as usize] = BVal::Undef;
                            }
                            cs[7] = BVal::Undef;
                            succ.push((ret, cs));
                        }
                    }
                    Tgt::Ret => {} // leaves the function
                }
            }
        }
        succ
    }

    /// Run the abstract interpretation to a fixed point; returns the
    /// converged in-state per item (`None` = unreachable).
    fn dataflow(&self) -> Vec<Option<BState>> {
        let n = self.asm.items.len();
        let mut states: Vec<Option<BState>> = vec![None; n];
        if n == 0 {
            return states;
        }
        let mut entry: BState = vec![BVal::Undef; 8];
        entry[0] = BVal::Def(BTreeSet::new());
        entry[7] = BVal::one(Tgt::Ret);
        states[0] = Some(entry);
        let mut work = vec![0usize];
        while let Some(i) = work.pop() {
            let Some(s) = states[i].clone() else { continue };
            for (j, t) in self.step(i, &s) {
                if j >= n {
                    continue;
                }
                match &mut states[j] {
                    None => {
                        states[j] = Some(t);
                        work.push(j);
                    }
                    Some(old) => {
                        let mut changed = false;
                        for (a, b) in old.iter_mut().zip(&t) {
                            changed |= a.merge_with(b);
                        }
                        if changed {
                            work.push(j);
                        }
                    }
                }
            }
        }
        states
    }

    /// With converged states, flag every read of an undefined branch
    /// register: transfers through `br`, compare taken-targets, and
    /// register-to-register moves. `bstore` is exempt — prologues save
    /// caller-saved registers whose incoming value is legitimately
    /// meaningless.
    fn check_uses(&self, states: &[Option<BState>], sink: &mut Vec<VerifyError>) {
        for (index, item) in self.asm.items.iter().enumerate() {
            let AsmItem::Inst(inst, _) = item else {
                continue;
            };
            let Some(s) = &states[index] else {
                continue; // unreachable code is vacuously fine
            };
            let unset = |breg: u8| VerifyError::UnsetBranchReg {
                func: self.asm.name.clone(),
                index,
                breg,
            };
            let k = inst.br();
            let fused = matches!(inst, MInst::CmpBr { .. } | MInst::FCmpBr { .. });
            if k != 0 && !fused && matches!(s[k as usize], BVal::Undef) {
                sink.push(unset(k));
            }
            match inst {
                MInst::CmpBr { bt, .. } | MInst::FCmpBr { bt, .. }
                    if bt.0 != 0 && matches!(s[bt.0 as usize], BVal::Undef) =>
                {
                    sink.push(unset(bt.0));
                }
                MInst::BMovB { bs, .. }
                    if bs.0 != 0 && matches!(s[bs.0 as usize], BVal::Undef) =>
                {
                    sink.push(unset(bs.0));
                }
                _ => {}
            }
        }
    }

    /// A compare with `br == 0` computes a conditional target into
    /// `b[7]` for the *next* instruction to consume: that carrier must
    /// exist, transfer through `b[7]`, not redefine `b[7]`, and not be
    /// another compare (which would overwrite the pending result).
    fn check_pairing(&self, sink: &mut Vec<VerifyError>) {
        for (index, item) in self.asm.items.iter().enumerate() {
            let AsmItem::Inst(inst, _) = item else {
                continue;
            };
            if !matches!(inst, MInst::CmpBr { .. } | MInst::FCmpBr { .. }) || inst.br() != 0 {
                continue;
            }
            let err = |detail: String| VerifyError::CarrierPairing {
                func: self.asm.name.clone(),
                index,
                detail,
            };
            match self.asm.items.get(index + 1) {
                Some(AsmItem::Inst(carrier, _)) => {
                    if matches!(carrier, MInst::CmpBr { .. } | MInst::FCmpBr { .. }) {
                        sink.push(err(format!("carrier `{carrier}` is itself a compare")));
                    } else if carrier.br() != 7 {
                        sink.push(err(format!(
                            "next instruction `{carrier}` does not transfer through b[7]"
                        )));
                    } else if breg_def(carrier) == Some(7) {
                        sink.push(err(format!("carrier `{carrier}` redefines b[7]")));
                    }
                }
                Some(AsmItem::Label(l)) => {
                    sink.push(err(format!("label {l} between compare and carrier")));
                }
                Some(AsmItem::Word(..)) => {
                    sink.push(err("data word between compare and carrier".into()));
                }
                None => sink.push(err("compare at the end of the stream".into())),
            }
        }
    }

    /// Hoist discipline: inside every block where the plan reserves a
    /// branch register for a hoisted target, nothing may redefine that
    /// register (except the hoisted calculation in its own preheader),
    /// and calls may only appear if the register is callee-saved.
    fn check_hoist(
        &self,
        plan: &HoistPlan,
        opts: &BrOptions,
        states: &[Option<BState>],
        sink: &mut Vec<VerifyError>,
    ) {
        let (_, caller_pool) = opts.pools();
        let mut cur_block: Option<u32> = None;
        for (index, item) in self.asm.items.iter().enumerate() {
            let inst = match item {
                AsmItem::Label(Label(l)) if *l < FRESH_LABEL_BASE => {
                    cur_block = Some(*l);
                    continue;
                }
                AsmItem::Inst(inst, _) => inst,
                _ => continue,
            };
            let Some(b) = cur_block else { continue };
            let reserved = plan.reserved_in(b);
            if reserved.is_empty() {
                continue;
            }
            let clobbered = |breg: u8| VerifyError::HoistClobbered {
                func: self.asm.name.clone(),
                index,
                breg,
            };
            if let Some(d) = breg_def(inst) {
                let is_hoisted_calc = plan.preheader(b).iter().any(|h| h.breg == d);
                if reserved.contains(&d) && !is_hoisted_calc {
                    sink.push(clobbered(d));
                }
            }
            // A call inside the protected region destroys every
            // caller-saved branch register.
            let k = inst.br();
            if k != 0 {
                if let Some(Some(s)) = states.get(index) {
                    let is_call = match &s[k as usize] {
                        BVal::Def(ts) => ts.contains(&Tgt::Func),
                        BVal::Undef => false,
                    };
                    if is_call {
                        // In a preheader the calls precede the hoisted
                        // calculations (which sit at the block's end),
                        // so registers this block itself computes are
                        // not yet live across the call.
                        let computed_here = plan.preheader(b);
                        let live_reserved = reserved.iter().find(|&&r| {
                            caller_pool.contains(&r)
                                && !computed_here.iter().any(|h| h.breg == r)
                        });
                        if let Some(&r) = live_reserved {
                            sink.push(clobbered(r));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_isa::{AluOp, BReg, Cc, Reg};

    fn func(items: Vec<AsmItem>) -> AsmFunc {
        AsmFunc {
            name: "t".into(),
            items,
        }
    }

    fn inst(i: MInst) -> AsmItem {
        AsmItem::Inst(i, None)
    }

    #[test]
    fn transfer_through_undefined_breg_is_rejected() {
        let f = func(vec![inst(MInst::Nop { br: 1 })]);
        assert_eq!(
            check_asm(&f, Machine::BranchReg, None, &BrOptions::default()),
            Err(VerifyError::UnsetBranchReg {
                func: "t".into(),
                index: 0,
                breg: 1,
            })
        );
    }

    #[test]
    fn check_asm_all_collects_every_violation() {
        // Two independent undefined-register reads on one straight-line
        // path: the collecting variant reports both; `check_asm` still
        // reports only the first, and the first collected error matches
        // it exactly.
        let f = func(vec![
            inst(MInst::BMovB {
                bd: BReg(1),
                bs: BReg(2),
                br: 0,
            }),
            inst(MInst::BMovB {
                bd: BReg(3),
                bs: BReg(4),
                br: 0,
            }),
            inst(MInst::Halt),
        ]);
        let all = check_asm_all(&f, Machine::BranchReg, None, &BrOptions::default());
        assert_eq!(
            all,
            vec![
                VerifyError::UnsetBranchReg {
                    func: "t".into(),
                    index: 0,
                    breg: 2,
                },
                VerifyError::UnsetBranchReg {
                    func: "t".into(),
                    index: 1,
                    breg: 4,
                },
            ]
        );
        assert_eq!(
            check_asm(&f, Machine::BranchReg, None, &BrOptions::default()),
            Err(all[0].clone())
        );
    }

    #[test]
    fn check_asm_all_spans_checkers() {
        // A baseline stream with a delay-slot violation *and* an
        // encoding violation: both checkers contribute, encoding first.
        let f = func(vec![
            inst(MInst::Bcc {
                cc: Cc::Eq,
                float: false,
                disp: 1 << 24, // out of Bcc's displacement range
            }),
            AsmItem::Label(Label(3)),
            inst(MInst::Halt),
        ]);
        let all = check_asm_all(&f, Machine::Baseline, None, &BrOptions::default());
        assert_eq!(all.len(), 2, "{all:?}");
        assert!(matches!(all[0], VerifyError::Encoding { index: 0, .. }));
        assert!(matches!(all[1], VerifyError::DelaySlot { index: 0, .. }));
    }

    #[test]
    fn bcalc_then_transfer_is_clean() {
        let f = func(vec![
            AsmItem::Inst(
                MInst::Bcalc {
                    bd: BReg(1),
                    disp: 0,
                    br: 0,
                },
                Some(Reloc::Disp(SymRef::Label(Label(9)))),
            ),
            inst(MInst::Nop { br: 1 }),
            AsmItem::Label(Label(9)),
            inst(MInst::Halt),
        ]);
        assert_eq!(
            check_asm(&f, Machine::BranchReg, None, &BrOptions::default()),
            Ok(())
        );
    }

    #[test]
    fn return_through_b7_is_clean() {
        // b[7] holds the caller's return address on entry.
        let f = func(vec![inst(MInst::Nop { br: 7 })]);
        assert_eq!(
            check_asm(&f, Machine::BranchReg, None, &BrOptions::default()),
            Ok(())
        );
    }

    #[test]
    fn immediate_out_of_range_is_an_encoding_error() {
        // 100000 does not fit the BR machine's 11-bit immediate.
        let f = func(vec![inst(MInst::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(1),
            src2: Src2::Imm(100_000),
            br: 0,
        })]);
        assert_eq!(
            check_asm(&f, Machine::BranchReg, None, &BrOptions::default()),
            Err(VerifyError::Encoding {
                func: "t".into(),
                index: 0,
                err: br_isa::EncodeError::ImmOutOfRange,
            })
        );
    }

    #[test]
    fn compare_without_carrier_is_rejected() {
        let f = func(vec![
            inst(MInst::CmpBr {
                cc: Cc::Eq,
                bt: BReg(7),
                rs1: Reg(1),
                src2: Src2::Imm(0),
                br: 0,
            }),
            inst(MInst::Nop { br: 0 }), // does not consume b[7]
            inst(MInst::Halt),
        ]);
        // bt = b7 is defined (return address), so the pairing check is
        // what fires.
        assert!(matches!(
            check_asm(&f, Machine::BranchReg, None, &BrOptions::default()),
            Err(VerifyError::CarrierPairing { .. })
        ));
    }

    #[test]
    fn compare_with_carrier_is_clean() {
        // if (r1 == 0) goto L9 else fall through — paired form.
        let f = func(vec![
            AsmItem::Inst(
                MInst::Bcalc {
                    bd: BReg(1),
                    disp: 0,
                    br: 0,
                },
                Some(Reloc::Disp(SymRef::Label(Label(9)))),
            ),
            inst(MInst::CmpBr {
                cc: Cc::Eq,
                bt: BReg(1),
                rs1: Reg(1),
                src2: Src2::Imm(0),
                br: 0,
            }),
            inst(MInst::Nop { br: 7 }),
            inst(MInst::Halt),
            AsmItem::Label(Label(9)),
            inst(MInst::Halt),
        ]);
        assert_eq!(
            check_asm(&f, Machine::BranchReg, None, &BrOptions::default()),
            Ok(())
        );
    }

    #[test]
    fn undefined_on_one_path_is_rejected() {
        // The taken path defines b[2]; the fall-through path does not.
        // The join then transfers through b[2].
        let f = func(vec![
            AsmItem::Inst(
                MInst::Bcalc {
                    bd: BReg(1),
                    disp: 0,
                    br: 0,
                },
                Some(Reloc::Disp(SymRef::Label(Label(9)))),
            ),
            inst(MInst::CmpBr {
                cc: Cc::Eq,
                bt: BReg(1),
                rs1: Reg(1),
                src2: Src2::Imm(0),
                br: 0,
            }),
            inst(MInst::Nop { br: 7 }),
            // fall-through: jump to join without defining b[2]
            AsmItem::Inst(
                MInst::Bcalc {
                    bd: BReg(3),
                    disp: 0,
                    br: 0,
                },
                Some(Reloc::Disp(SymRef::Label(Label(10)))),
            ),
            inst(MInst::Nop { br: 3 }),
            // taken path: define b[2], then join
            AsmItem::Label(Label(9)),
            AsmItem::Inst(
                MInst::Bcalc {
                    bd: BReg(2),
                    disp: 0,
                    br: 0,
                },
                Some(Reloc::Disp(SymRef::Label(Label(10)))),
            ),
            AsmItem::Inst(
                MInst::Bcalc {
                    bd: BReg(3),
                    disp: 0,
                    br: 0,
                },
                Some(Reloc::Disp(SymRef::Label(Label(10)))),
            ),
            inst(MInst::Nop { br: 3 }),
            AsmItem::Label(Label(10)),
            inst(MInst::Nop { br: 2 }), // b[2] undefined on one path
        ]);
        assert_eq!(
            check_asm(&f, Machine::BranchReg, None, &BrOptions::default()),
            Err(VerifyError::UnsetBranchReg {
                func: "t".into(),
                index: 10,
                breg: 2,
            })
        );
    }

    #[test]
    fn baseline_delay_slot_violations_are_rejected() {
        let branch = MInst::Ba { disp: 4 };
        // Transfer in the delay slot.
        let f = func(vec![inst(branch), inst(branch), inst(MInst::Halt)]);
        assert!(matches!(
            check_asm(&f, Machine::Baseline, None, &BrOptions::default()),
            Err(VerifyError::DelaySlot { .. })
        ));
        // Label in the delay slot (a join point would execute it twice).
        let f = func(vec![
            inst(branch),
            AsmItem::Label(Label(1)),
            inst(MInst::Halt),
        ]);
        assert!(matches!(
            check_asm(&f, Machine::Baseline, None, &BrOptions::default()),
            Err(VerifyError::DelaySlot { .. })
        ));
        // Proper slot.
        let f = func(vec![
            inst(branch),
            inst(MInst::Nop { br: 0 }),
            inst(MInst::Halt),
        ]);
        assert_eq!(
            check_asm(&f, Machine::Baseline, None, &BrOptions::default()),
            Ok(())
        );
    }

    #[test]
    fn wrong_machine_instruction_is_an_encoding_error() {
        let f = func(vec![inst(MInst::Ba { disp: 4 }), inst(MInst::Nop { br: 0 })]);
        assert!(matches!(
            check_asm(&f, Machine::BranchReg, None, &BrOptions::default()),
            Err(VerifyError::Encoding {
                err: br_isa::EncodeError::WrongMachine,
                ..
            })
        ));
    }

    #[test]
    fn hoisted_register_clobber_is_rejected() {
        use br_codegen::hoist::{Hoisted, HoistedWhat};
        let mut plan = HoistPlan::default();
        plan.add_reserved(2, 1);
        plan.add_preheader(
            0,
            Hoisted {
                breg: 1,
                what: HoistedWhat::Block(2),
            },
        );
        // Block 2 (the loop body) redefines b[1], which the plan
        // reserved for the loop's hoisted target.
        let f = func(vec![
            AsmItem::Label(Label(0)),
            AsmItem::Inst(
                MInst::Bcalc {
                    bd: BReg(1),
                    disp: 0,
                    br: 0,
                },
                Some(Reloc::Disp(SymRef::Label(Label(2)))),
            ),
            AsmItem::Label(Label(2)),
            AsmItem::Inst(
                MInst::Bcalc {
                    bd: BReg(1),
                    disp: 0,
                    br: 0,
                },
                Some(Reloc::Disp(SymRef::Label(Label(2)))),
            ),
            inst(MInst::Halt),
        ]);
        assert_eq!(
            check_asm(
                &f,
                Machine::BranchReg,
                Some(&plan),
                &BrOptions::default()
            ),
            Err(VerifyError::HoistClobbered {
                func: "t".into(),
                index: 3,
                breg: 1,
            })
        );
    }
}
