//! Abstract syntax tree for MiniC.

use br_ir::Ty;

/// A binary operator in the source language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    LogAnd,
    LogOr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinKind {
    /// Whether this operator yields a 0/1 boolean int.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinKind::Eq | BinKind::Ne | BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge
        )
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    Neg,
    Not,
    LogNot,
    Deref,
    AddrOf,
}

/// Pre/post increment/decrement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncDec {
    PreInc,
    PreDec,
    PostInc,
    PostDec,
}

/// An expression, tagged with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    FloatLit(f32),
    CharLit(u8),
    StrLit(Vec<u8>),
    Ident(String),
    Bin(BinKind, Box<Expr>, Box<Expr>),
    Un(UnKind, Box<Expr>),
    IncDec(IncDec, Box<Expr>),
    /// `lhs = rhs` or compound `lhs op= rhs` (op is `Some`).
    Assign(Option<BinKind>, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    Index(Box<Expr>, Box<Expr>),
    Call(String, Vec<Expr>),
    Cast(Ty, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Expr(Expr),
    /// Local declarations: `(type, name, init)` for each declarator.
    Decl(Vec<(Ty, String, Option<Expr>)>),
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    While(Expr, Box<Stmt>),
    DoWhile(Box<Stmt>, Expr),
    /// `for (init; cond; step) body` — all parts optional.
    For(
        Option<Box<Stmt>>,
        Option<Expr>,
        Option<Expr>,
        Box<Stmt>,
    ),
    Switch(Expr, Vec<SwitchArm>),
    Return(Option<Expr>),
    Break,
    Continue,
    Block(Vec<Stmt>),
    Empty,
}

/// One `case`/`default` arm of a switch. MiniC arms do not fall through:
/// each arm's statements run and then control leaves the switch (a
/// deliberate simplification; the workloads do not rely on fallthrough).
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchArm {
    /// `None` for `default`.
    pub value: Option<i64>,
    pub body: Vec<Stmt>,
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// Global variable with optional initializer.
    Global {
        ty: Ty,
        name: String,
        init: Option<GlobalInitAst>,
        line: u32,
    },
    /// Function definition (or prototype when `body` is `None`).
    Func {
        ret: Ty,
        name: String,
        params: Vec<(Ty, String)>,
        body: Option<Vec<Stmt>>,
        line: u32,
    },
}

/// Source-level global initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInitAst {
    Int(i64),
    Float(f32),
    Str(Vec<u8>),
    List(Vec<GlobalInitAst>),
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub decls: Vec<Decl>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_classification() {
        assert!(BinKind::Eq.is_comparison());
        assert!(BinKind::Ge.is_comparison());
        assert!(!BinKind::Add.is_comparison());
        assert!(!BinKind::LogAnd.is_comparison());
    }
}
