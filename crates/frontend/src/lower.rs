//! Lowering from the MiniC AST to `br-ir`.

use std::collections::{HashMap, HashSet};

use br_ir::{
    BinOp, BlockId, CastKind, Cond, FuncBuilder, Global, GlobalInit, Inst, Module, Operand,
    RegClass, SlotId, SymId, Ty, UnOp, VReg, Width,
};

use crate::ast::*;
use crate::error::CompileError;

/// Lower a parsed program to an IR module.
///
/// # Errors
///
/// Returns the first semantic error (unknown identifiers, type misuse,
/// malformed initializers, …).
pub fn lower(program: &Program) -> Result<Module, CompileError> {
    let mut module = Module::new();
    let mut sigs: HashMap<String, (Ty, Vec<Ty>)> = HashMap::new();
    let mut func_ids: HashMap<String, SymId> = HashMap::new();

    // Pass 1: globals and function symbols.
    for d in &program.decls {
        match d {
            Decl::Global {
                ty,
                name,
                init,
                line,
            } => {
                let (ty, init) = lower_global_init(ty, init.as_ref(), *line)?;
                module.add_global(Global {
                    name: name.clone(),
                    ty,
                    init,
                });
            }
            Decl::Func {
                ret, name, params, ..
            } => {
                if !sigs.contains_key(name) {
                    let ptys: Vec<Ty> = params.iter().map(|(t, _)| t.clone()).collect();
                    sigs.insert(name.clone(), (ret.clone(), ptys.clone()));
                    let id = module.declare_function(name, ret.clone(), ptys);
                    func_ids.insert(name.clone(), id);
                }
            }
        }
    }

    // Pass 2: function bodies.
    let mut strings: HashMap<Vec<u8>, SymId> = HashMap::new();
    for d in &program.decls {
        if let Decl::Func {
            ret,
            name,
            params,
            body: Some(body),
            line,
        } = d
        {
            let id = func_ids[name.as_str()];
            let mut ctx = FnLower::new(&mut module, &sigs, &func_ids, &mut strings);
            let f = ctx.lower_fn(name, ret, params, body, *line)?;
            module.define_function(id, f);
        }
    }
    module
        .validate()
        .map_err(|e| CompileError::new(0, format!("internal: invalid IR: {e}")))?;
    Ok(module)
}

/// Convert a global initializer; also resolves inferred (`[]`) dimensions.
fn lower_global_init(
    ty: &Ty,
    init: Option<&GlobalInitAst>,
    line: u32,
) -> Result<(Ty, GlobalInit), CompileError> {
    // Resolve inferred outer dimension.
    let ty = match (ty, init) {
        (Ty::Array(elem, 0), Some(GlobalInitAst::Str(s))) => {
            Ty::Array(elem.clone(), s.len() + 1)
        }
        (Ty::Array(elem, 0), Some(GlobalInitAst::List(items))) => {
            Ty::Array(elem.clone(), items.len())
        }
        (Ty::Array(_, 0), _) => {
            return Err(CompileError::new(
                line,
                "cannot infer array size without an initializer",
            ))
        }
        (t, _) => t.clone(),
    };
    let Some(init) = init else {
        return Ok((ty, GlobalInit::Zero));
    };
    let gi = match (&ty, init) {
        (Ty::Int | Ty::Ptr(_), GlobalInitAst::Int(v)) => GlobalInit::Words(vec![*v as i32]),
        (Ty::Char, GlobalInitAst::Int(v)) => GlobalInit::Bytes(vec![*v as u8]),
        (Ty::Float, GlobalInitAst::Float(v)) => {
            GlobalInit::Words(vec![v.to_bits() as i32])
        }
        (Ty::Float, GlobalInitAst::Int(v)) => {
            GlobalInit::Words(vec![(*v as f32).to_bits() as i32])
        }
        (Ty::Array(elem, n), GlobalInitAst::Str(s)) if **elem == Ty::Char => {
            if s.len() + 1 > *n {
                return Err(CompileError::new(line, "string longer than array"));
            }
            let mut bytes = s.clone();
            bytes.resize(*n, 0);
            GlobalInit::Bytes(bytes)
        }
        (Ty::Array(elem, n), GlobalInitAst::List(items)) => {
            flatten_list(elem, *n, items, line)?
        }
        _ => {
            return Err(CompileError::new(
                line,
                format!("initializer does not match type {ty}"),
            ))
        }
    };
    Ok((ty, gi))
}

/// Flatten a brace list (possibly nested for 2-D arrays) into raw data.
fn flatten_list(
    elem: &Ty,
    n: usize,
    items: &[GlobalInitAst],
    line: u32,
) -> Result<GlobalInit, CompileError> {
    if items.len() > n {
        return Err(CompileError::new(line, "too many initializers"));
    }
    match elem {
        Ty::Char => {
            let mut bytes = Vec::with_capacity(n);
            for it in items {
                match it {
                    GlobalInitAst::Int(v) => bytes.push(*v as u8),
                    _ => return Err(CompileError::new(line, "bad char initializer")),
                }
            }
            bytes.resize(n, 0);
            Ok(GlobalInit::Bytes(bytes))
        }
        Ty::Int | Ty::Ptr(_) => {
            let mut words = Vec::with_capacity(n);
            for it in items {
                match it {
                    GlobalInitAst::Int(v) => words.push(*v as i32),
                    _ => return Err(CompileError::new(line, "bad int initializer")),
                }
            }
            words.resize(n, 0);
            Ok(GlobalInit::Words(words))
        }
        Ty::Float => {
            let mut words = Vec::with_capacity(n);
            for it in items {
                match it {
                    GlobalInitAst::Float(v) => words.push(v.to_bits() as i32),
                    GlobalInitAst::Int(v) => words.push((*v as f32).to_bits() as i32),
                    _ => return Err(CompileError::new(line, "bad float initializer")),
                }
            }
            words.resize(n, 0);
            Ok(GlobalInit::Words(words))
        }
        Ty::Array(inner, m) => {
            // Nested: each item must itself be a list (or string for char rows).
            let mut words: Vec<i32> = Vec::new();
            let mut bytes: Vec<u8> = Vec::new();
            let char_rows = **inner == Ty::Char;
            for it in items {
                let sub = match it {
                    GlobalInitAst::List(sub) => flatten_list(inner, *m, sub, line)?,
                    GlobalInitAst::Str(s) if char_rows => {
                        let mut row = s.clone();
                        if row.len() > *m {
                            return Err(CompileError::new(line, "string longer than row"));
                        }
                        row.resize(*m, 0);
                        GlobalInit::Bytes(row)
                    }
                    _ => return Err(CompileError::new(line, "expected nested initializer list")),
                };
                match sub {
                    GlobalInit::Words(w) => words.extend(w),
                    GlobalInit::Bytes(b) => bytes.extend(b),
                    GlobalInit::Zero => unreachable!(),
                }
            }
            if char_rows {
                bytes.resize(n * m, 0);
                Ok(GlobalInit::Bytes(bytes))
            } else {
                let total = n * (Ty::Array(inner.clone(), *m).size() / 4);
                words.resize(total, 0);
                Ok(GlobalInit::Words(words))
            }
        }
        _ => Err(CompileError::new(line, "unsupported initializer element")),
    }
}

/// Where a named variable lives.
#[derive(Debug, Clone)]
enum VarPlace {
    Reg(VReg),
    Slot(SlotId),
    Global(SymId),
}

#[derive(Debug, Clone)]
struct Binding {
    ty: Ty,
    place: VarPlace,
}

/// An assignable location.
#[derive(Debug, Clone)]
enum Place {
    Reg(VReg, Ty),
    Mem { base: Operand, off: i32, ty: Ty },
}

impl Place {
    fn ty(&self) -> &Ty {
        match self {
            Place::Reg(_, t) => t,
            Place::Mem { ty, .. } => ty,
        }
    }
}

struct FnLower<'a> {
    module: &'a mut Module,
    sigs: &'a HashMap<String, (Ty, Vec<Ty>)>,
    func_ids: &'a HashMap<String, SymId>,
    strings: &'a mut HashMap<Vec<u8>, SymId>,
    b: Option<FuncBuilder>,
    scopes: Vec<HashMap<String, Binding>>,
    addr_taken: HashSet<String>,
    ret_ty: Ty,
    /// (break target, continue target) stack; continue is `None` inside
    /// `switch`.
    loop_stack: Vec<(BlockId, Option<BlockId>)>,
}

impl<'a> FnLower<'a> {
    fn new(
        module: &'a mut Module,
        sigs: &'a HashMap<String, (Ty, Vec<Ty>)>,
        func_ids: &'a HashMap<String, SymId>,
        strings: &'a mut HashMap<Vec<u8>, SymId>,
    ) -> FnLower<'a> {
        FnLower {
            module,
            sigs,
            func_ids,
            strings,
            b: None,
            scopes: Vec::new(),
            addr_taken: HashSet::new(),
            ret_ty: Ty::Void,
            loop_stack: Vec::new(),
        }
    }

    fn b(&mut self) -> &mut FuncBuilder {
        self.b.as_mut().expect("builder active")
    }

    fn lower_fn(
        &mut self,
        name: &str,
        ret: &Ty,
        params: &[(Ty, String)],
        body: &[Stmt],
        _line: u32,
    ) -> Result<br_ir::Function, CompileError> {
        self.ret_ty = ret.clone();
        collect_addr_taken(body, &mut self.addr_taken);
        let ptys: Vec<Ty> = params.iter().map(|(t, _)| t.clone()).collect();
        let mut fb = FuncBuilder::new(name, ret.clone(), ptys);
        self.scopes.push(HashMap::new());
        // Bind parameters; address-taken params are copied into slots.
        let mut entry_stores: Vec<(SlotId, VReg, Ty)> = Vec::new();
        for (i, (pty, pname)) in params.iter().enumerate() {
            let v = fb.param(i);
            if self.addr_taken.contains(pname.as_str()) {
                let slot = fb.new_slot(pty.size(), pty.align());
                entry_stores.push((slot, v, pty.clone()));
                self.scopes[0].insert(
                    pname.clone(),
                    Binding {
                        ty: pty.clone(),
                        place: VarPlace::Slot(slot),
                    },
                );
            } else {
                self.scopes[0].insert(
                    pname.clone(),
                    Binding {
                        ty: pty.clone(),
                        place: VarPlace::Reg(v),
                    },
                );
            }
        }
        self.b = Some(fb);
        for (slot, v, ty) in entry_stores {
            let addr = self.b().new_vreg(RegClass::Int);
            self.b().push(Inst::FrameAddr {
                dst: addr,
                slot,
                off: 0,
            });
            self.b().push(Inst::Store {
                a: Operand::Reg(v),
                base: Operand::Reg(addr),
                off: 0,
                width: width_of(&ty),
            });
        }
        for s in body {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(self.b.take().unwrap().finish())
    }

    // ----- statements -----

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for s in stmts {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl(items) => {
                for (ty, name, init) in items {
                    self.local_decl(ty, name, init.as_ref())?;
                }
                Ok(())
            }
            Stmt::If(cond, then_s, else_s) => {
                let then_bb = self.b().new_block();
                let else_bb = self.b().new_block();
                let end_bb = if else_s.is_some() {
                    self.b().new_block()
                } else {
                    else_bb
                };
                self.cond(cond, then_bb, else_bb)?;
                self.b().switch_to(then_bb);
                self.stmt(then_s)?;
                self.b().terminate(Inst::Jump(end_bb));
                if let Some(e) = else_s {
                    self.b().switch_to(else_bb);
                    self.stmt(e)?;
                    self.b().terminate(Inst::Jump(end_bb));
                }
                self.b().switch_to(end_bb);
                Ok(())
            }
            Stmt::While(cond, body) => {
                let hdr = self.b().new_block();
                let body_bb = self.b().new_block();
                let end = self.b().new_block();
                self.b().terminate(Inst::Jump(hdr));
                self.b().switch_to(hdr);
                self.cond(cond, body_bb, end)?;
                self.b().switch_to(body_bb);
                self.loop_stack.push((end, Some(hdr)));
                self.stmt(body)?;
                self.loop_stack.pop();
                self.b().terminate(Inst::Jump(hdr));
                self.b().switch_to(end);
                Ok(())
            }
            Stmt::DoWhile(body, cond) => {
                let body_bb = self.b().new_block();
                let cond_bb = self.b().new_block();
                let end = self.b().new_block();
                self.b().terminate(Inst::Jump(body_bb));
                self.b().switch_to(body_bb);
                self.loop_stack.push((end, Some(cond_bb)));
                self.stmt(body)?;
                self.loop_stack.pop();
                self.b().terminate(Inst::Jump(cond_bb));
                self.b().switch_to(cond_bb);
                self.cond(cond, body_bb, end)?;
                self.b().switch_to(end);
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let hdr = self.b().new_block();
                let body_bb = self.b().new_block();
                let step_bb = self.b().new_block();
                let end = self.b().new_block();
                self.b().terminate(Inst::Jump(hdr));
                self.b().switch_to(hdr);
                match cond {
                    Some(c) => self.cond(c, body_bb, end)?,
                    None => self.b().terminate(Inst::Jump(body_bb)),
                }
                self.b().switch_to(body_bb);
                self.loop_stack.push((end, Some(step_bb)));
                self.stmt(body)?;
                self.loop_stack.pop();
                self.b().terminate(Inst::Jump(step_bb));
                self.b().switch_to(step_bb);
                if let Some(s) = step {
                    self.expr(s)?;
                }
                self.b().terminate(Inst::Jump(hdr));
                self.b().switch_to(end);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Switch(scrut, arms) => self.switch(scrut, arms),
            Stmt::Return(v) => {
                let op = match v {
                    Some(e) => {
                        let (op, ty) = self.expr(e)?;
                        let want = self.ret_ty.clone();
                        Some(self.coerce(op, &ty, &want, e.line)?)
                    }
                    None => None,
                };
                self.b().terminate(Inst::Ret(op));
                Ok(())
            }
            Stmt::Break => {
                let Some((end, _)) = self.loop_stack.last().copied() else {
                    return Err(CompileError::new(0, "break outside loop or switch"));
                };
                self.b().terminate(Inst::Jump(end));
                Ok(())
            }
            Stmt::Continue => {
                let target = self
                    .loop_stack
                    .iter()
                    .rev()
                    .find_map(|(_, c)| *c)
                    .ok_or_else(|| CompileError::new(0, "continue outside loop"))?;
                self.b().terminate(Inst::Jump(target));
                Ok(())
            }
        }
    }

    fn local_decl(
        &mut self,
        ty: &Ty,
        name: &str,
        init: Option<&Expr>,
    ) -> Result<(), CompileError> {
        if matches!(ty, Ty::Array(_, 0)) {
            return Err(CompileError::new(0, "local arrays must have a size"));
        }
        let binding = if matches!(ty, Ty::Array(..)) || self.addr_taken.contains(name) {
            let slot = self.b().new_slot(ty.size(), ty.align());
            Binding {
                ty: ty.clone(),
                place: VarPlace::Slot(slot),
            }
        } else {
            let class = if ty.is_float() {
                RegClass::Float
            } else {
                RegClass::Int
            };
            let v = self.b().new_vreg(class);
            Binding {
                ty: ty.clone(),
                place: VarPlace::Reg(v),
            }
        };
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), binding.clone());
        if let Some(e) = init {
            if matches!(ty, Ty::Array(..)) {
                return Err(CompileError::new(e.line, "local arrays cannot be initialized"));
            }
            let (op, ety) = self.expr(e)?;
            let op = self.coerce(op, &ety, ty, e.line)?;
            match binding.place {
                VarPlace::Reg(v) => self.b().push(Inst::Copy { dst: v, a: op }),
                VarPlace::Slot(slot) => {
                    let addr = self.b().new_vreg(RegClass::Int);
                    self.b().push(Inst::FrameAddr {
                        dst: addr,
                        slot,
                        off: 0,
                    });
                    self.b().push(Inst::Store {
                        a: op,
                        base: Operand::Reg(addr),
                        off: 0,
                        width: width_of(ty),
                    });
                }
                VarPlace::Global(_) => unreachable!(),
            }
        }
        Ok(())
    }

    fn switch(&mut self, scrut: &Expr, arms: &[SwitchArm]) -> Result<(), CompileError> {
        let (op, ty) = self.expr(scrut)?;
        let op = self.coerce(op, &ty, &Ty::Int, scrut.line)?;
        let end = self.b().new_block();
        let mut cases: Vec<(i64, BlockId)> = Vec::new();
        let mut default_bb = end;
        let mut arm_blocks = Vec::new();
        for arm in arms {
            let bb = self.b().new_block();
            arm_blocks.push(bb);
            match arm.value {
                Some(v) => cases.push((v, bb)),
                None => default_bb = bb,
            }
        }
        // Dense value range → jump table; otherwise a compare chain.
        let dense = !cases.is_empty() && {
            let min = cases.iter().map(|c| c.0).min().unwrap();
            let max = cases.iter().map(|c| c.0).max().unwrap();
            let span = (max - min + 1) as usize;
            cases.len() >= 4 && span <= 3 * cases.len()
        };
        if dense {
            let min = cases.iter().map(|c| c.0).min().unwrap();
            let max = cases.iter().map(|c| c.0).max().unwrap();
            let mut targets = vec![default_bb; (max - min + 1) as usize];
            for (v, bb) in &cases {
                targets[(*v - min) as usize] = *bb;
            }
            self.b().terminate(Inst::Switch {
                idx: op,
                base: min,
                targets,
                default: default_bb,
            });
        } else {
            for (v, bb) in &cases {
                let next = self.b().new_block();
                self.b().terminate(Inst::Branch {
                    cond: Cond::Eq,
                    a: op,
                    b: Operand::Const(*v),
                    float: false,
                    then_bb: *bb,
                    else_bb: next,
                });
                self.b().switch_to(next);
            }
            self.b().terminate(Inst::Jump(default_bb));
        }
        // Arm bodies: `break` exits the switch; `continue` refers to an
        // enclosing loop.
        for (arm, bb) in arms.iter().zip(&arm_blocks) {
            self.b().switch_to(*bb);
            self.loop_stack.push((end, None));
            for s in &arm.body {
                self.stmt(s)?;
            }
            self.loop_stack.pop();
            self.b().terminate(Inst::Jump(end));
        }
        self.b().switch_to(end);
        Ok(())
    }

    // ----- conditions -----

    /// Lower `e` as a branch condition targeting `then_bb` / `else_bb`.
    fn cond(&mut self, e: &Expr, then_bb: BlockId, else_bb: BlockId) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Bin(k, a, b)
                if k.is_comparison() || matches!(k, BinKind::LogAnd | BinKind::LogOr) =>
            {
                self.cond_bin(*k, a, b, e.line, then_bb, else_bb)
            }
            ExprKind::Un(UnKind::LogNot, a) => self.cond(a, else_bb, then_bb),
            _ => {
                let (v, ty) = self.expr(e)?;
                let float = ty.is_float();
                let zero = if float {
                    Operand::FConst(0.0)
                } else {
                    Operand::Const(0)
                };
                self.b().terminate(Inst::Branch {
                    cond: Cond::Ne,
                    a: v,
                    b: zero,
                    float,
                    then_bb,
                    else_bb,
                });
                Ok(())
            }
        }
    }

    /// [`Lowerer::cond`] for a comparison or short-circuit binary whose
    /// operands are already in hand — callable directly (from
    /// [`Lowerer::bin_expr`]) without wrapping them back into an `Expr`.
    fn cond_bin(
        &mut self,
        k: BinKind,
        a: &Expr,
        b: &Expr,
        line: u32,
        then_bb: BlockId,
        else_bb: BlockId,
    ) -> Result<(), CompileError> {
        match k {
            BinKind::LogAnd => {
                let mid = self.b().new_block();
                self.cond(a, mid, else_bb)?;
                self.b().switch_to(mid);
                self.cond(b, then_bb, else_bb)
            }
            BinKind::LogOr => {
                let mid = self.b().new_block();
                self.cond(a, then_bb, mid)?;
                self.b().switch_to(mid);
                self.cond(b, then_bb, else_bb)
            }
            _ => {
                let (va, ta) = self.expr(a)?;
                let (vb, tb) = self.expr(b)?;
                let float = ta.is_float() || tb.is_float();
                let (va, vb) = if float {
                    (
                        self.coerce(va, &ta, &Ty::Float, line)?,
                        self.coerce(vb, &tb, &Ty::Float, line)?,
                    )
                } else {
                    (va, vb)
                };
                let cond = match k {
                    BinKind::Eq => Cond::Eq,
                    BinKind::Ne => Cond::Ne,
                    BinKind::Lt => Cond::Lt,
                    BinKind::Le => Cond::Le,
                    BinKind::Gt => Cond::Gt,
                    BinKind::Ge => Cond::Ge,
                    _ => unreachable!("cond_bin called on a non-condition operator"),
                };
                self.b().terminate(Inst::Branch {
                    cond,
                    a: va,
                    b: vb,
                    float,
                    then_bb,
                    else_bb,
                });
                Ok(())
            }
        }
    }

    // ----- expressions -----

    fn lookup(&self, name: &str, line: u32) -> Result<Binding, CompileError> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Ok(b.clone());
            }
        }
        if let Some(id) = self.module.lookup(name) {
            if let Some(g) = self.module.global_of(id) {
                return Ok(Binding {
                    ty: g.ty.clone(),
                    place: VarPlace::Global(id),
                });
            }
        }
        Err(CompileError::new(line, format!("unknown identifier '{name}'")))
    }

    /// Evaluate `e` as an rvalue.
    fn expr(&mut self, e: &Expr) -> Result<(Operand, Ty), CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok((Operand::Const(*v), Ty::Int)),
            ExprKind::FloatLit(v) => Ok((Operand::FConst(*v), Ty::Float)),
            ExprKind::CharLit(c) => Ok((Operand::Const(*c as i64), Ty::Int)),
            ExprKind::StrLit(s) => {
                let id = self.intern_string(s);
                let dst = self.b().new_vreg(RegClass::Int);
                self.b().push(Inst::AddrOf {
                    dst,
                    sym: id,
                    off: 0,
                });
                Ok((Operand::Reg(dst), Ty::Char.ptr_to()))
            }
            ExprKind::Ident(name) => {
                let b = self.lookup(name, e.line)?;
                if let Ty::Array(elem, _) = &b.ty {
                    // Array decays to the address of its first element.
                    let dst = self.b().new_vreg(RegClass::Int);
                    match b.place {
                        VarPlace::Slot(slot) => {
                            self.b().push(Inst::FrameAddr { dst, slot, off: 0 })
                        }
                        VarPlace::Global(sym) => {
                            self.b().push(Inst::AddrOf { dst, sym, off: 0 })
                        }
                        VarPlace::Reg(_) => unreachable!("arrays never live in registers"),
                    }
                    return Ok((Operand::Reg(dst), Ty::Ptr(elem.clone())));
                }
                let place = self.place_of_binding(b);
                self.load_place(&place)
            }
            ExprKind::Bin(k, a, b) => self.bin_expr(*k, a, b, e.line),
            ExprKind::Un(k, a) => self.un_expr(*k, a, e.line),
            ExprKind::IncDec(k, a) => self.incdec(*k, a, e.line),
            ExprKind::Assign(op, lhs, rhs) => self.assign(*op, lhs, rhs, e.line),
            ExprKind::Ternary(c, a, b) => self.ternary(c, a, b, e.line),
            ExprKind::Index(a, i) => {
                let place = self.index_place(a, i, e.line)?;
                self.load_place(&place)
            }
            ExprKind::Call(name, args) => self.call(name, args, e.line),
            ExprKind::Cast(ty, a) => {
                let (v, from) = self.expr(a)?;
                let v = self.coerce(v, &from, ty, e.line)?;
                Ok((v, ty.clone().decay()))
            }
        }
    }

    fn intern_string(&mut self, s: &[u8]) -> SymId {
        if let Some(&id) = self.strings.get(s) {
            return id;
        }
        let mut bytes = s.to_vec();
        bytes.push(0);
        let name = format!("__str{}", self.strings.len());
        let id = self.module.add_global(Global {
            name,
            ty: Ty::Array(Box::new(Ty::Char), bytes.len()),
            init: GlobalInit::Bytes(bytes),
        });
        self.strings.insert(s.to_vec(), id);
        id
    }

    fn place_of_binding(&mut self, b: Binding) -> Place {
        match b.place {
            VarPlace::Reg(v) => Place::Reg(v, b.ty),
            VarPlace::Slot(slot) => {
                let addr = self.b().new_vreg(RegClass::Int);
                self.b().push(Inst::FrameAddr {
                    dst: addr,
                    slot,
                    off: 0,
                });
                Place::Mem {
                    base: Operand::Reg(addr),
                    off: 0,
                    ty: b.ty,
                }
            }
            VarPlace::Global(sym) => {
                let addr = self.b().new_vreg(RegClass::Int);
                self.b().push(Inst::AddrOf {
                    dst: addr,
                    sym,
                    off: 0,
                });
                Place::Mem {
                    base: Operand::Reg(addr),
                    off: 0,
                    ty: b.ty,
                }
            }
        }
    }

    fn load_place(&mut self, p: &Place) -> Result<(Operand, Ty), CompileError> {
        match p {
            Place::Reg(v, ty) => Ok((Operand::Reg(*v), ty.clone().decay())),
            Place::Mem { base, off, ty } => {
                // An array-typed place decays to its address.
                if let Ty::Array(elem, _) = ty {
                    let addr = if *off == 0 {
                        *base
                    } else {
                        Operand::Reg(self.b().bin(
                            BinOp::Add,
                            RegClass::Int,
                            *base,
                            Operand::Const(*off as i64),
                        ))
                    };
                    return Ok((addr, Ty::Ptr(elem.clone())));
                }
                let class = if ty.is_float() {
                    RegClass::Float
                } else {
                    RegClass::Int
                };
                let dst = self.b().new_vreg(class);
                self.b().push(Inst::Load {
                    dst,
                    base: *base,
                    off: *off,
                    width: width_of(ty),
                });
                // Char loads produce an int value (unsigned promotion).
                let t = if *ty == Ty::Char {
                    Ty::Int
                } else {
                    ty.clone().decay()
                };
                Ok((Operand::Reg(dst), t))
            }
        }
    }

    fn store_place(&mut self, p: &Place, v: Operand) {
        match p {
            Place::Reg(dst, _) => self.b().push(Inst::Copy { dst: *dst, a: v }),
            Place::Mem { base, off, ty } => self.b().push(Inst::Store {
                a: v,
                base: *base,
                off: *off,
                width: width_of(ty),
            }),
        }
    }

    /// Compute the place denoted by an lvalue expression.
    fn place(&mut self, e: &Expr) -> Result<Place, CompileError> {
        match &e.kind {
            ExprKind::Ident(name) => {
                let b = self.lookup(name, e.line)?;
                if matches!(b.ty, Ty::Array(..)) {
                    return Err(CompileError::new(e.line, "array is not assignable"));
                }
                Ok(self.place_of_binding(b))
            }
            ExprKind::Un(UnKind::Deref, inner) => self.deref_place(inner, e.line),
            ExprKind::Index(a, i) => self.index_place(a, i, e.line),
            _ => Err(CompileError::new(e.line, "expression is not assignable")),
        }
    }

    /// The place denoted by `*inner` — shared by [`Lowerer::place`] and
    /// rvalue dereference, so neither has to re-wrap `inner` in an
    /// `Expr`.
    fn deref_place(&mut self, inner: &Expr, line: u32) -> Result<Place, CompileError> {
        let (v, ty) = self.expr(inner)?;
        let elem = ty
            .pointee()
            .cloned()
            .ok_or_else(|| CompileError::new(line, "cannot dereference non-pointer"))?;
        Ok(Place::Mem {
            base: v,
            off: 0,
            ty: elem,
        })
    }

    fn index_place(&mut self, a: &Expr, i: &Expr, line: u32) -> Result<Place, CompileError> {
        let (base, ty) = self.expr(a)?;
        let elem = ty
            .pointee()
            .cloned()
            .ok_or_else(|| CompileError::new(line, "cannot index non-pointer"))?;
        let (idx, ity) = self.expr(i)?;
        if ity.is_float() {
            return Err(CompileError::new(line, "array index must be an integer"));
        }
        let size = elem.size() as i64;
        match idx {
            Operand::Const(c) => Ok(Place::Mem {
                base,
                off: (c * size) as i32,
                ty: elem,
            }),
            _ => {
                let scaled = if size == 1 {
                    idx
                } else {
                    Operand::Reg(self.b().bin(BinOp::Mul, RegClass::Int, idx, Operand::Const(size)))
                };
                let addr = self.b().bin(BinOp::Add, RegClass::Int, base, scaled);
                Ok(Place::Mem {
                    base: Operand::Reg(addr),
                    off: 0,
                    ty: elem,
                })
            }
        }
    }

    fn bin_expr(
        &mut self,
        k: BinKind,
        a: &Expr,
        b: &Expr,
        line: u32,
    ) -> Result<(Operand, Ty), CompileError> {
        if k.is_comparison() || matches!(k, BinKind::LogAnd | BinKind::LogOr) {
            // Materialize a 0/1 value via control flow (the machines have
            // no set-on-condition instruction, as in the paper).
            let dst = self.b().new_vreg(RegClass::Int);
            let t = self.b().new_block();
            let f = self.b().new_block();
            let end = self.b().new_block();
            self.cond_bin(k, a, b, line, t, f)?;
            self.b().switch_to(t);
            self.b().push(Inst::Copy {
                dst,
                a: Operand::Const(1),
            });
            self.b().terminate(Inst::Jump(end));
            self.b().switch_to(f);
            self.b().push(Inst::Copy {
                dst,
                a: Operand::Const(0),
            });
            self.b().terminate(Inst::Jump(end));
            self.b().switch_to(end);
            return Ok((Operand::Reg(dst), Ty::Int));
        }
        let (va, ta) = self.expr(a)?;
        let (vb, tb) = self.expr(b)?;
        self.arith(k, va, ta, vb, tb, line)
    }

    fn arith(
        &mut self,
        k: BinKind,
        va: Operand,
        ta: Ty,
        vb: Operand,
        tb: Ty,
        line: u32,
    ) -> Result<(Operand, Ty), CompileError> {
        // Pointer arithmetic.
        if ta.is_ptr() || tb.is_ptr() {
            return self.ptr_arith(k, va, ta, vb, tb, line);
        }
        let float = ta.is_float() || tb.is_float();
        if float {
            let op = match k {
                BinKind::Add => BinOp::FAdd,
                BinKind::Sub => BinOp::FSub,
                BinKind::Mul => BinOp::FMul,
                BinKind::Div => BinOp::FDiv,
                _ => return Err(CompileError::new(line, "operator not defined for float")),
            };
            let va = self.coerce(va, &ta, &Ty::Float, line)?;
            let vb = self.coerce(vb, &tb, &Ty::Float, line)?;
            // Constant folding.
            if let (Operand::FConst(x), Operand::FConst(y)) = (va, vb) {
                let r = match op {
                    BinOp::FAdd => x + y,
                    BinOp::FSub => x - y,
                    BinOp::FMul => x * y,
                    BinOp::FDiv => x / y,
                    _ => unreachable!(),
                };
                return Ok((Operand::FConst(r), Ty::Float));
            }
            let dst = self.b().bin(op, RegClass::Float, va, vb);
            return Ok((Operand::Reg(dst), Ty::Float));
        }
        let op = match k {
            BinKind::Add => BinOp::Add,
            BinKind::Sub => BinOp::Sub,
            BinKind::Mul => BinOp::Mul,
            BinKind::Div => BinOp::Div,
            BinKind::Rem => BinOp::Rem,
            BinKind::And => BinOp::And,
            BinKind::Or => BinOp::Or,
            BinKind::Xor => BinOp::Xor,
            BinKind::Shl => BinOp::Shl,
            BinKind::Shr => BinOp::Sar, // MiniC ints are signed
            _ => unreachable!("handled above"),
        };
        if let (Operand::Const(x), Operand::Const(y)) = (va, vb) {
            if let Some(r) = fold_int(op, x as i32, y as i32) {
                return Ok((Operand::Const(r as i64), Ty::Int));
            }
        }
        let dst = self.b().bin(op, RegClass::Int, va, vb);
        Ok((Operand::Reg(dst), Ty::Int))
    }

    fn ptr_arith(
        &mut self,
        k: BinKind,
        va: Operand,
        ta: Ty,
        vb: Operand,
        tb: Ty,
        line: u32,
    ) -> Result<(Operand, Ty), CompileError> {
        match (k, ta.is_ptr(), tb.is_ptr()) {
            (BinKind::Sub, true, true) => {
                let size = ta
                    .pointee()
                    .ok_or_else(|| CompileError::new(line, "invalid pointer type"))?
                    .size() as i64;
                let diff = self.b().bin(BinOp::Sub, RegClass::Int, va, vb);
                let r = if size == 1 {
                    diff
                } else {
                    self.b().bin(
                        BinOp::Div,
                        RegClass::Int,
                        Operand::Reg(diff),
                        Operand::Const(size),
                    )
                };
                Ok((Operand::Reg(r), Ty::Int))
            }
            (BinKind::Add | BinKind::Sub, true, false) => {
                let size = ta
                    .pointee()
                    .ok_or_else(|| CompileError::new(line, "invalid pointer type"))?
                    .size() as i64;
                let scaled = match vb {
                    Operand::Const(c) => Operand::Const(c * size),
                    _ if size == 1 => vb,
                    _ => Operand::Reg(self.b().bin(
                        BinOp::Mul,
                        RegClass::Int,
                        vb,
                        Operand::Const(size),
                    )),
                };
                let op = if k == BinKind::Add { BinOp::Add } else { BinOp::Sub };
                let dst = self.b().bin(op, RegClass::Int, va, scaled);
                Ok((Operand::Reg(dst), ta))
            }
            (BinKind::Add, false, true) => self.ptr_arith(k, vb, tb, va, ta, line),
            _ => Err(CompileError::new(line, "invalid pointer arithmetic")),
        }
    }

    fn un_expr(&mut self, k: UnKind, a: &Expr, line: u32) -> Result<(Operand, Ty), CompileError> {
        match k {
            UnKind::Neg => {
                let (v, ty) = self.expr(a)?;
                if ty.is_float() {
                    if let Operand::FConst(c) = v {
                        return Ok((Operand::FConst(-c), Ty::Float));
                    }
                    let dst = self.b().new_vreg(RegClass::Float);
                    self.b().push(Inst::Un {
                        op: UnOp::FNeg,
                        dst,
                        a: v,
                    });
                    Ok((Operand::Reg(dst), Ty::Float))
                } else {
                    if let Operand::Const(c) = v {
                        return Ok((Operand::Const(-(c as i32) as i64), Ty::Int));
                    }
                    let dst = self.b().new_vreg(RegClass::Int);
                    self.b().push(Inst::Un {
                        op: UnOp::Neg,
                        dst,
                        a: v,
                    });
                    Ok((Operand::Reg(dst), Ty::Int))
                }
            }
            UnKind::Not => {
                let (v, _) = self.expr(a)?;
                if let Operand::Const(c) = v {
                    return Ok((Operand::Const(!(c as i32) as i64), Ty::Int));
                }
                let dst = self.b().new_vreg(RegClass::Int);
                self.b().push(Inst::Un {
                    op: UnOp::Not,
                    dst,
                    a: v,
                });
                Ok((Operand::Reg(dst), Ty::Int))
            }
            UnKind::LogNot => {
                // !(x) materialized through cond, with the branch targets
                // swapped (cond of `!x` is cond of `x` inverted).
                let dst = self.b().new_vreg(RegClass::Int);
                let t = self.b().new_block();
                let f = self.b().new_block();
                let end = self.b().new_block();
                self.cond(a, f, t)?;
                self.b().switch_to(t);
                self.b().push(Inst::Copy {
                    dst,
                    a: Operand::Const(1),
                });
                self.b().terminate(Inst::Jump(end));
                self.b().switch_to(f);
                self.b().push(Inst::Copy {
                    dst,
                    a: Operand::Const(0),
                });
                self.b().terminate(Inst::Jump(end));
                self.b().switch_to(end);
                Ok((Operand::Reg(dst), Ty::Int))
            }
            UnKind::Deref => {
                let p = self.deref_place(a, line)?;
                self.load_place(&p)
            }
            UnKind::AddrOf => {
                let p = self.place(a)?;
                match p {
                    Place::Reg(..) => Err(CompileError::new(
                        line,
                        "internal: address of register variable (pre-scan missed it)",
                    )),
                    Place::Mem { base, off, ty } => {
                        let addr = if off == 0 {
                            base
                        } else {
                            Operand::Reg(self.b().bin(
                                BinOp::Add,
                                RegClass::Int,
                                base,
                                Operand::Const(off as i64),
                            ))
                        };
                        Ok((addr, ty.ptr_to()))
                    }
                }
            }
        }
    }

    fn incdec(&mut self, k: IncDec, a: &Expr, line: u32) -> Result<(Operand, Ty), CompileError> {
        let p = self.place(a)?;
        let ty = p.ty().clone();
        let (old, vty) = self.load_place(&p)?;
        let delta: i64 = match &ty {
            Ty::Ptr(e) => e.size() as i64,
            _ => 1,
        };
        let inc = matches!(k, IncDec::PreInc | IncDec::PostInc);
        let (op, dclass) = if ty.is_float() {
            (
                if inc { BinOp::FAdd } else { BinOp::FSub },
                RegClass::Float,
            )
        } else {
            (if inc { BinOp::Add } else { BinOp::Sub }, RegClass::Int)
        };
        let delta_op = if ty.is_float() {
            Operand::FConst(1.0)
        } else {
            Operand::Const(delta)
        };
        // Keep the old value in a stable register for post-inc/dec (the
        // place may alias the value register).
        let old_saved = match (k, old) {
            (IncDec::PostInc | IncDec::PostDec, Operand::Reg(_)) => {
                let s = self.b().new_vreg(dclass);
                self.b().push(Inst::Copy { dst: s, a: old });
                Operand::Reg(s)
            }
            _ => old,
        };
        let _ = vty;
        let new = self.b().bin(op, dclass, old, delta_op);
        // The add result is a full-width int (or float/pointer); coercing
        // from that type masks char places back to 8 bits.
        let new_ty = if ty.is_float() {
            Ty::Float
        } else if ty.is_ptr() {
            ty.clone()
        } else {
            Ty::Int
        };
        let stored = self.coerce(Operand::Reg(new), &new_ty, &ty, line)?;
        self.store_place(&p, stored);
        let result = match k {
            IncDec::PreInc | IncDec::PreDec => stored,
            IncDec::PostInc | IncDec::PostDec => old_saved,
        };
        Ok((result, ty.decay()))
    }

    fn assign(
        &mut self,
        op: Option<BinKind>,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<(Operand, Ty), CompileError> {
        let p = self.place(lhs)?;
        let ty = p.ty().clone();
        let value = match op {
            None => {
                let (v, vty) = self.expr(rhs)?;
                self.coerce(v, &vty, &ty, line)?
            }
            Some(k) => {
                let (old, oty) = self.load_place(&p)?;
                let (rv, rty) = self.expr(rhs)?;
                let (res, resty) = self.arith(k, old, oty, rv, rty, line)?;
                self.coerce(res, &resty, &ty, line)?
            }
        };
        self.store_place(&p, value);
        Ok((value, ty.decay()))
    }

    fn ternary(
        &mut self,
        c: &Expr,
        a: &Expr,
        b: &Expr,
        line: u32,
    ) -> Result<(Operand, Ty), CompileError> {
        let t = self.b().new_block();
        let f = self.b().new_block();
        let end = self.b().new_block();
        self.cond(c, t, f)?;
        // Evaluate both arms into a common register. The result type is
        // float if either arm is float, else int/pointer from the first arm.
        self.b().switch_to(t);
        let (va, ta) = self.expr(a)?;
        let sealed_a = self.b().current_block();
        self.b().switch_to(f);
        let (vb, tb) = self.expr(b)?;
        let sealed_b = self.b().current_block();
        let rty = if ta.is_float() || tb.is_float() {
            Ty::Float
        } else {
            ta.clone()
        };
        let class = if rty.is_float() {
            RegClass::Float
        } else {
            RegClass::Int
        };
        let dst = self.b().new_vreg(class);
        self.b().switch_to(sealed_a);
        let va = self.coerce(va, &ta, &rty, line)?;
        self.b().push(Inst::Copy { dst, a: va });
        self.b().terminate(Inst::Jump(end));
        self.b().switch_to(sealed_b);
        let vb = self.coerce(vb, &tb, &rty, line)?;
        self.b().push(Inst::Copy { dst, a: vb });
        self.b().terminate(Inst::Jump(end));
        self.b().switch_to(end);
        Ok((Operand::Reg(dst), rty))
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: u32,
    ) -> Result<(Operand, Ty), CompileError> {
        let (ret, ptys) = self
            .sigs
            .get(name)
            .cloned()
            .ok_or_else(|| CompileError::new(line, format!("unknown function '{name}'")))?;
        if args.len() != ptys.len() {
            return Err(CompileError::new(
                line,
                format!(
                    "'{name}' expects {} arguments, got {}",
                    ptys.len(),
                    args.len()
                ),
            ));
        }
        let mut ops = Vec::with_capacity(args.len());
        for (a, pty) in args.iter().zip(&ptys) {
            let (v, vty) = self.expr(a)?;
            ops.push(self.coerce(v, &vty, pty, a.line)?);
        }
        let func = self.func_ids[name];
        let dst = if ret == Ty::Void {
            None
        } else {
            let class = if ret.is_float() {
                RegClass::Float
            } else {
                RegClass::Int
            };
            Some(self.b().new_vreg(class))
        };
        self.b().push(Inst::Call {
            dst,
            func,
            args: ops,
        });
        match dst {
            Some(d) => Ok((Operand::Reg(d), ret)),
            None => Ok((Operand::Const(0), Ty::Int)),
        }
    }

    /// Insert conversions so a value of type `from` can be used as `to`.
    fn coerce(
        &mut self,
        v: Operand,
        from: &Ty,
        to: &Ty,
        line: u32,
    ) -> Result<Operand, CompileError> {
        let from = from.decay();
        let to = to.decay();
        if from == to {
            return Ok(v);
        }
        match (&from, &to) {
            // int-ish → float
            (Ty::Int | Ty::Char, Ty::Float) => {
                if let Operand::Const(c) = v {
                    return Ok(Operand::FConst(c as f32));
                }
                let dst = self.b().new_vreg(RegClass::Float);
                self.b().push(Inst::Cast {
                    kind: CastKind::IntToFloat,
                    dst,
                    a: v,
                });
                Ok(Operand::Reg(dst))
            }
            // float → int-ish
            (Ty::Float, Ty::Int | Ty::Char) => {
                if let Operand::FConst(c) = v {
                    let i = c as i32 as i64;
                    return self.coerce(Operand::Const(i), &Ty::Int, &to, line);
                }
                let dst = self.b().new_vreg(RegClass::Int);
                self.b().push(Inst::Cast {
                    kind: CastKind::FloatToInt,
                    dst,
                    a: v,
                });
                self.coerce(Operand::Reg(dst), &Ty::Int, &to, line)
            }
            // int → char: mask to 8 bits (char is unsigned).
            (Ty::Int | Ty::Ptr(_), Ty::Char) => {
                if let Operand::Const(c) = v {
                    return Ok(Operand::Const((c as u8) as i64));
                }
                let dst = self.b().bin(BinOp::And, RegClass::Int, v, Operand::Const(0xFF));
                Ok(Operand::Reg(dst))
            }
            // char → int: already promoted.
            (Ty::Char, Ty::Int) => Ok(v),
            // pointer ↔ int and pointer ↔ pointer: bit-identical.
            (Ty::Ptr(_), Ty::Int) | (Ty::Int, Ty::Ptr(_)) | (Ty::Ptr(_), Ty::Ptr(_)) => Ok(v),
            // anything → void (expression statements): value dropped.
            (_, Ty::Void) => Ok(v),
            _ => Err(CompileError::new(
                line,
                format!("cannot convert {from} to {to}"),
            )),
        }
    }
}

fn width_of(ty: &Ty) -> Width {
    match ty {
        Ty::Char => Width::Byte,
        Ty::Float => Width::Float,
        _ => Width::Word,
    }
}

fn fold_int(op: BinOp, a: i32, b: i32) -> Option<i32> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 31),
        BinOp::Shr => ((a as u32) >> (b as u32 & 31)) as i32,
        BinOp::Sar => a >> (b as u32 & 31),
        _ => return None,
    })
}

/// Collect names that appear under unary `&` anywhere in the body.
fn collect_addr_taken(stmts: &[Stmt], out: &mut HashSet<String>) {
    fn walk_expr(e: &Expr, out: &mut HashSet<String>) {
        if let ExprKind::Un(UnKind::AddrOf, inner) = &e.kind {
            if let ExprKind::Ident(name) = &inner.kind {
                out.insert(name.clone());
            }
        }
        match &e.kind {
            ExprKind::Bin(_, a, b) | ExprKind::Assign(_, a, b) | ExprKind::Index(a, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            ExprKind::Un(_, a) | ExprKind::IncDec(_, a) | ExprKind::Cast(_, a) => {
                walk_expr(a, out)
            }
            ExprKind::Ternary(c, a, b) => {
                walk_expr(c, out);
                walk_expr(a, out);
                walk_expr(b, out);
            }
            ExprKind::Call(_, args) => args.iter().for_each(|a| walk_expr(a, out)),
            _ => {}
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut HashSet<String>) {
        match s {
            Stmt::Expr(e) => walk_expr(e, out),
            Stmt::Decl(items) => {
                for (_, _, init) in items {
                    if let Some(e) = init {
                        walk_expr(e, out);
                    }
                }
            }
            Stmt::If(c, t, e) => {
                walk_expr(c, out);
                walk_stmt(t, out);
                if let Some(e) = e {
                    walk_stmt(e, out);
                }
            }
            Stmt::While(c, b) => {
                walk_expr(c, out);
                walk_stmt(b, out);
            }
            Stmt::DoWhile(b, c) => {
                walk_stmt(b, out);
                walk_expr(c, out);
            }
            Stmt::For(i, c, st, b) => {
                if let Some(i) = i {
                    walk_stmt(i, out);
                }
                if let Some(c) = c {
                    walk_expr(c, out);
                }
                if let Some(st) = st {
                    walk_expr(st, out);
                }
                walk_stmt(b, out);
            }
            Stmt::Switch(e, arms) => {
                walk_expr(e, out);
                for arm in arms {
                    arm.body.iter().for_each(|s| walk_stmt(s, out));
                }
            }
            Stmt::Return(Some(e)) => walk_expr(e, out),
            Stmt::Block(b) => b.iter().for_each(|s| walk_stmt(s, out)),
            _ => {}
        }
    }
    stmts.iter().for_each(|s| walk_stmt(s, out));
}
