//! `br-frontend` — a MiniC compiler front end.
//!
//! This crate stands in for the authors' *vpcc* (Very Portable C Compiler)
//! front end: it turns a small-but-real C dialect into the [`br_ir`]
//! three-address IR that both code generators consume.
//!
//! # The MiniC language
//!
//! * Types: `int` (32-bit signed), `char` (8-bit unsigned), `float`
//!   (32-bit IEEE), pointers, and fixed-size (multi-dimensional) arrays.
//! * Declarations: globals with constant initializers (including string
//!   and brace-list initializers), functions with typed parameters,
//!   block-scoped locals.
//! * Statements: `if`/`else`, `while`, `do`/`while`, `for`, `switch`
//!   (non-fall-through arms), `break`, `continue`, `return`, blocks.
//! * Expressions: the usual C operator set — assignment and compound
//!   assignment, `?:`, `&&`/`||` (short-circuit), comparisons, bitwise
//!   and shift operators, `+ - * / %`, casts, pointer arithmetic, array
//!   indexing, `&`/`*`, `++`/`--` (pre and post), function calls.
//!
//! # Example
//!
//! ```
//! use br_frontend::compile;
//! use br_ir::Interpreter;
//!
//! let module = compile("int main() { int s = 0; for (int i = 1; i <= 4; i++) s += i; return s; }")?;
//! let mut interp = Interpreter::new(&module);
//! assert_eq!(interp.run("main", &[])?, 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod error;
pub mod lower;
pub mod parser;
pub mod token;

pub use error::CompileError;

use br_ir::Module;

/// Compile MiniC source text to an IR [`Module`].
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error.
pub fn compile(src: &str) -> Result<Module, CompileError> {
    let mut module = compile_unoptimized(src)?;
    br_ir::optimize_module(&mut module);
    Ok(module)
}

/// Compile without the IR cleanup passes (for optimizer testing).
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error.
pub fn compile_unoptimized(src: &str) -> Result<Module, CompileError> {
    let program = parser::parse(src)?;
    lower::lower(&program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use br_ir::Interpreter;

    fn run(src: &str) -> i32 {
        let m = compile(src).expect("compile");
        Interpreter::new(&m).run("main", &[]).expect("run")
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("int main() { return 2 + 3 * 4 - 6 / 2; }"), 11);
        assert_eq!(run("int main() { return (2 + 3) * 4 % 7; }"), 6);
        assert_eq!(run("int main() { return 1 << 4 | 3; }"), 19);
        assert_eq!(run("int main() { return -7 / 2; }"), -3);
        assert_eq!(run("int main() { return -7 % 2; }"), -1);
    }

    #[test]
    fn comparisons_yield_zero_or_one() {
        assert_eq!(run("int main() { return (3 < 5) + (5 < 3) + (4 == 4); }"), 2);
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        let src = r#"
            int g = 0;
            int bump() { g = g + 1; return 1; }
            int main() {
                int a = 0 && bump();
                int b = 1 || bump();
                return g * 10 + a + b;
            }
        "#;
        assert_eq!(run(src), 1);
    }

    #[test]
    fn while_and_for_loops() {
        assert_eq!(
            run("int main() { int s = 0; int i = 0; while (i < 10) { s += i; i++; } return s; }"),
            45
        );
        assert_eq!(
            run("int main() { int s = 0; for (int i = 0; i < 10; i += 2) s += i; return s; }"),
            20
        );
        assert_eq!(
            run("int main() { int i = 0; do { i++; } while (i < 5); return i; }"),
            5
        );
    }

    #[test]
    fn break_and_continue() {
        let src = r#"
            int main() {
                int s = 0;
                for (int i = 0; i < 100; i++) {
                    if (i == 10) break;
                    if (i % 2) continue;
                    s += i;
                }
                return s;  /* 0+2+4+6+8 = 20 */
            }
        "#;
        assert_eq!(run(src), 20);
    }

    #[test]
    fn functions_and_recursion() {
        let src = r#"
            int fib(int n) {
                if (n < 2) return n;
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(10); }
        "#;
        assert_eq!(run(src), 55);
    }

    #[test]
    fn pointers_and_address_of() {
        let src = r#"
            void set(int *p, int v) { *p = v; }
            int main() {
                int x = 1;
                set(&x, 42);
                return x;
            }
        "#;
        assert_eq!(run(src), 42);
    }

    #[test]
    fn arrays_and_pointer_walk() {
        let src = r#"
            int a[5] = {5, 4, 3, 2, 1};
            int main() {
                int s = 0;
                int *p = a;
                for (int i = 0; i < 5; i++) s += *p++;
                return s * 100 + a[2];
            }
        "#;
        assert_eq!(run(src), 1503);
    }

    #[test]
    fn strings_and_char_arithmetic() {
        let src = r#"
            int len(char *s) { int n = 0; while (*s++) n++; return n; }
            int main() { return len("hello") + ('b' - 'a'); }
        "#;
        assert_eq!(run(src), 6);
    }

    #[test]
    fn two_dimensional_arrays() {
        let src = r#"
            int m[3][3];
            int main() {
                for (int i = 0; i < 3; i++)
                    for (int j = 0; j < 3; j++)
                        m[i][j] = i * 3 + j;
                return m[2][1];
            }
        "#;
        assert_eq!(run(src), 7);
    }

    #[test]
    fn global_initializers() {
        let src = r#"
            int a = 3;
            int b[] = {1, 2, 3};
            char s[] = "ab";
            float f = 2.5;
            int main() { return a + b[1] + s[0] + (int)f; }
        "#;
        assert_eq!(run(src), 3 + 2 + 97 + 2);
    }

    #[test]
    fn float_arithmetic_and_casts() {
        let src = r#"
            float half(float x) { return x / 2.0; }
            int main() {
                float y = half(7.0);
                if (y > 3.4 && y < 3.6) return 1;
                return 0;
            }
        "#;
        assert_eq!(run(src), 1);
    }

    #[test]
    fn int_float_mixing() {
        assert_eq!(run("int main() { float x = 3; x = x + 1; return (int)(x * 2.0); }"), 8);
    }

    #[test]
    fn ternary_expression() {
        assert_eq!(run("int main() { int x = 5; return x > 3 ? 10 : 20; }"), 10);
        assert_eq!(run("int main() { int x = 1; return x > 3 ? 10 : 20; }"), 20);
    }

    #[test]
    fn switch_dense_uses_jump_table() {
        let src = r#"
            int classify(int c) {
                switch (c) {
                    case 0: return 10;
                    case 1: return 11;
                    case 2: return 12;
                    case 3: return 13;
                    case 4: return 14;
                    default: return -1;
                }
            }
            int main() { return classify(3) * 1000 + classify(99) + classify(0); }
        "#;
        let m = compile(src).unwrap();
        // The dense switch must lower to an IR jump table.
        let f = m.function("classify").unwrap();
        let has_switch = f
            .blocks
            .iter()
            .any(|b| matches!(b.term(), br_ir::Inst::Switch { .. }));
        assert!(has_switch, "expected a jump-table switch");
        assert_eq!(
            Interpreter::new(&m).run("main", &[]).unwrap(),
            13 * 1000 - 1 + 10
        );
    }

    #[test]
    fn switch_sparse_uses_compare_chain() {
        let src = r#"
            int f(int c) {
                switch (c) {
                    case 1: return 1;
                    case 100: return 2;
                    default: return 0;
                }
            }
            int main() { return f(100) * 10 + f(1) + f(7); }
        "#;
        let m = compile(src).unwrap();
        let f = m.function("f").unwrap();
        let has_switch = f
            .blocks
            .iter()
            .any(|b| matches!(b.term(), br_ir::Inst::Switch { .. }));
        assert!(!has_switch, "sparse switch should be a compare chain");
        assert_eq!(Interpreter::new(&m).run("main", &[]).unwrap(), 21);
    }

    #[test]
    fn compound_assignment_operators() {
        let src = r#"
            int main() {
                int x = 10;
                x += 5; x -= 3; x *= 2; x /= 4; x %= 4;  /* ((10+5-3)*2/4)%4 = 6%4 = 2 */
                x <<= 3; x |= 1; x ^= 2; x &= 0xF;       /* ((2<<3)|1)^2 = 19, &0xF = 3 */
                return x;
            }
        "#;
        assert_eq!(run(src), 3);
    }

    #[test]
    fn pre_and_post_incdec() {
        let src = r#"
            int main() {
                int i = 5;
                int a = i++;
                int b = ++i;
                int c = i--;
                int d = --i;
                return a * 1000 + b * 100 + c * 10 + d;  /* 5,7,7,5 */
            }
        "#;
        assert_eq!(run(src), 5775);
    }

    #[test]
    fn char_values_wrap_to_byte() {
        assert_eq!(run("int main() { char c = 300; return c; }"), 44);
        assert_eq!(run("int main() { char c = 255; c++; return c; }"), 0);
    }

    #[test]
    fn logical_not() {
        assert_eq!(run("int main() { return !0 * 10 + !5; }"), 10);
    }

    #[test]
    fn pointer_difference() {
        let src = r#"
            int a[10];
            int main() { int *p = &a[7]; int *q = &a[2]; return p - q; }
        "#;
        assert_eq!(run(src), 5);
    }

    #[test]
    fn address_taken_local_lives_in_memory() {
        let src = r#"
            void twice(int *p) { *p = *p * 2; }
            int main() { int v = 21; twice(&v); return v; }
        "#;
        assert_eq!(run(src), 42);
    }

    #[test]
    fn multiple_declarators_and_pointers_per_decl() {
        let src = r#"
            int main() {
                int x = 3, *p = &x, y = 4;
                *p = *p + y;
                return x;
            }
        "#;
        assert_eq!(run(src), 7);
    }

    #[test]
    fn nested_2d_global_init() {
        let src = r#"
            int m[2][3] = {{1, 2, 3}, {4, 5, 6}};
            int main() { return m[1][2] * 10 + m[0][1]; }
        "#;
        assert_eq!(run(src), 62);
    }

    #[test]
    fn unknown_identifier_is_an_error() {
        assert!(compile("int main() { return zzz; }").is_err());
        assert!(compile("int main() { return f(1); }").is_err());
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        assert!(compile("int f(int a) { return a; } int main() { return f(1, 2); }").is_err());
    }

    #[test]
    fn void_functions() {
        let src = r#"
            int g;
            void set(int v) { g = v; }
            int main() { set(9); return g; }
        "#;
        assert_eq!(run(src), 9);
    }

    #[test]
    fn prototype_then_definition() {
        let src = r#"
            int helper(int x);
            int main() { return helper(4); }
            int helper(int x) { return x * x; }
        "#;
        assert_eq!(run(src), 16);
    }

    #[test]
    fn hex_literals_and_bitops() {
        assert_eq!(run("int main() { return (0xFF & 0x0F) ^ 0xF0; }"), 0xFF);
    }

    #[test]
    fn shadowing_in_nested_scopes() {
        let src = r#"
            int main() {
                int x = 1;
                { int x = 2; { int x = 3; } x = x + 10; }
                return x;
            }
        "#;
        assert_eq!(run(src), 1);
    }

    #[test]
    fn string_literals_are_deduplicated() {
        let src = r#"
            int eq(char *a, char *b) { return a == b; }
            int main() { return eq("same", "same") + eq("same", "diff"); }
        "#;
        assert_eq!(run(src), 1);
    }

    #[test]
    fn array_of_chars_indexing_and_stores() {
        let src = r#"
            char buf[8];
            int main() {
                for (int i = 0; i < 8; i++) buf[i] = 'a' + i;
                return buf[0] + buf[7];  /* 'a' + 'h' */
            }
        "#;
        assert_eq!(run(src), 97 + 104);
    }
}
