//! Compilation errors with source-line information.

use std::fmt;

/// An error produced while lexing, parsing, or lowering MiniC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl CompileError {
    /// Create an error at `line`.
    pub fn new(line: u32, msg: impl Into<String>) -> CompileError {
        CompileError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = CompileError::new(7, "oops");
        assert_eq!(e.to_string(), "line 7: oops");
    }
}
