//! Lexical analysis for MiniC.

use std::fmt;

use crate::error::CompileError;

/// A MiniC token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals / identifiers
    Int(i64),
    Float(f32),
    Char(u8),
    Str(Vec<u8>),
    Ident(String),
    // keywords
    KwInt,
    KwChar,
    KwFloat,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwDo,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSwitch,
    KwCase,
    KwDefault,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    // operators
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    PlusPlus,
    MinusMinus,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Char(c) => write!(f, "'{}'", *c as char),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token tagged with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: u32,
}

/// Tokenize MiniC source.
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed literals, unterminated
/// strings/comments, or unknown characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    // MiniC averages a little under one token per four source bytes.
    let mut out = Vec::with_capacity(src.len() / 4);
    macro_rules! push {
        ($t:expr) => {
            out.push(Spanned { tok: $t, line })
        };
    }
    while i < b.len() {
        let c = b[i];
        match c {
            // Whitespace dominates the byte count (indentation-heavy
            // sources run ~9 bytes per token), so runs are consumed in
            // tight inner loops instead of one trip through the outer
            // match per byte.
            b'\n' => {
                line += 1;
                i += 1;
                while i < b.len() && matches!(b[i], b' ' | b'\t') {
                    i += 1;
                }
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
                while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\r') {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // `position` over a byte slice vectorizes (memchr).
                i = match b[i..].iter().position(|&c| c == b'\n') {
                    Some(off) => i + off,
                    None => b.len(),
                };
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(CompileError::new(start_line, "unterminated comment"));
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && i + 1 < b.len() && (b[i + 1] | 0x20) == b'x' {
                    i += 2;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text = &src[start + 2..i];
                    let v = i64::from_str_radix(text, 16)
                        .map_err(|_| CompileError::new(line, "bad hex literal"))?;
                    push!(Tok::Int(v));
                } else {
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                        i += 1;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                        let v: f32 = src[start..i]
                            .parse()
                            .map_err(|_| CompileError::new(line, "bad float literal"))?;
                        push!(Tok::Float(v));
                    } else {
                        let v: i64 = src[start..i]
                            .parse()
                            .map_err(|_| CompileError::new(line, "bad int literal"))?;
                        push!(Tok::Int(v));
                    }
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let t = match word {
                    "int" => Tok::KwInt,
                    "char" => Tok::KwChar,
                    "float" => Tok::KwFloat,
                    "void" => Tok::KwVoid,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "for" => Tok::KwFor,
                    "do" => Tok::KwDo,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    "switch" => Tok::KwSwitch,
                    "case" => Tok::KwCase,
                    "default" => Tok::KwDefault,
                    _ => Tok::Ident(word.to_string()),
                };
                push!(t);
            }
            b'\'' => {
                i += 1;
                let (ch, len) = escape(b, i, line)?;
                i += len;
                if i >= b.len() || b[i] != b'\'' {
                    return Err(CompileError::new(line, "unterminated char literal"));
                }
                i += 1;
                push!(Tok::Char(ch));
            }
            b'"' => {
                i += 1;
                let mut s = Vec::new();
                loop {
                    if i >= b.len() || b[i] == b'\n' {
                        return Err(CompileError::new(line, "unterminated string literal"));
                    }
                    if b[i] == b'"' {
                        i += 1;
                        break;
                    }
                    let (ch, len) = escape(b, i, line)?;
                    s.push(ch);
                    i += len;
                }
                push!(Tok::Str(s));
            }
            _ => {
                // Multi-character operators, longest match first,
                // dispatched on the leading byte (the seed scanned a
                // 43-entry pattern table per punctuation character).
                let b1 = if i + 1 < b.len() { b[i + 1] } else { 0 };
                let b2 = if i + 2 < b.len() { b[i + 2] } else { 0 };
                let (tok, len) = match (c, b1, b2) {
                    (b'<', b'<', b'=') => (Tok::ShlAssign, 3),
                    (b'>', b'>', b'=') => (Tok::ShrAssign, 3),
                    (b'=', b'=', _) => (Tok::Eq, 2),
                    (b'!', b'=', _) => (Tok::Ne, 2),
                    (b'<', b'=', _) => (Tok::Le, 2),
                    (b'>', b'=', _) => (Tok::Ge, 2),
                    (b'&', b'&', _) => (Tok::AmpAmp, 2),
                    (b'|', b'|', _) => (Tok::PipePipe, 2),
                    (b'<', b'<', _) => (Tok::Shl, 2),
                    (b'>', b'>', _) => (Tok::Shr, 2),
                    (b'+', b'+', _) => (Tok::PlusPlus, 2),
                    (b'-', b'-', _) => (Tok::MinusMinus, 2),
                    (b'+', b'=', _) => (Tok::PlusAssign, 2),
                    (b'-', b'=', _) => (Tok::MinusAssign, 2),
                    (b'*', b'=', _) => (Tok::StarAssign, 2),
                    (b'/', b'=', _) => (Tok::SlashAssign, 2),
                    (b'%', b'=', _) => (Tok::PercentAssign, 2),
                    (b'&', b'=', _) => (Tok::AmpAssign, 2),
                    (b'|', b'=', _) => (Tok::PipeAssign, 2),
                    (b'^', b'=', _) => (Tok::CaretAssign, 2),
                    (b'+', ..) => (Tok::Plus, 1),
                    (b'-', ..) => (Tok::Minus, 1),
                    (b'*', ..) => (Tok::Star, 1),
                    (b'/', ..) => (Tok::Slash, 1),
                    (b'%', ..) => (Tok::Percent, 1),
                    (b'&', ..) => (Tok::Amp, 1),
                    (b'|', ..) => (Tok::Pipe, 1),
                    (b'^', ..) => (Tok::Caret, 1),
                    (b'~', ..) => (Tok::Tilde, 1),
                    (b'!', ..) => (Tok::Bang, 1),
                    (b'<', ..) => (Tok::Lt, 1),
                    (b'>', ..) => (Tok::Gt, 1),
                    (b'=', ..) => (Tok::Assign, 1),
                    (b'(', ..) => (Tok::LParen, 1),
                    (b')', ..) => (Tok::RParen, 1),
                    (b'{', ..) => (Tok::LBrace, 1),
                    (b'}', ..) => (Tok::RBrace, 1),
                    (b'[', ..) => (Tok::LBracket, 1),
                    (b']', ..) => (Tok::RBracket, 1),
                    (b';', ..) => (Tok::Semi, 1),
                    (b',', ..) => (Tok::Comma, 1),
                    (b':', ..) => (Tok::Colon, 1),
                    (b'?', ..) => (Tok::Question, 1),
                    _ => {
                        return Err(CompileError::new(
                            line,
                            format!("unexpected character '{}'", c as char),
                        ))
                    }
                };
                push!(tok);
                i += len;
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

/// Decode one (possibly escaped) character at `b[i]`; returns the byte and
/// the number of source bytes consumed.
fn escape(b: &[u8], i: usize, line: u32) -> Result<(u8, usize), CompileError> {
    if i >= b.len() {
        return Err(CompileError::new(line, "unexpected end of input"));
    }
    if b[i] != b'\\' {
        return Ok((b[i], 1));
    }
    if i + 1 >= b.len() {
        return Err(CompileError::new(line, "bad escape"));
    }
    let c = match b[i + 1] {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        other => {
            return Err(CompileError::new(
                line,
                format!("unknown escape '\\{}'", other as char),
            ))
        }
    };
    Ok((c, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("int x while whilex"),
            vec![
                Tok::KwInt,
                Tok::Ident("x".into()),
                Tok::KwWhile,
                Tok::Ident("whilex".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 0x1F 3.5 0"),
            vec![
                Tok::Int(42),
                Tok::Int(31),
                Tok::Float(3.5),
                Tok::Int(0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a<<=b >>= == <= ++ +"),
            vec![
                Tok::Ident("a".into()),
                Tok::ShlAssign,
                Tok::Ident("b".into()),
                Tok::ShrAssign,
                Tok::Eq,
                Tok::Le,
                Tok::PlusPlus,
                Tok::Plus,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_and_chars_with_escapes() {
        assert_eq!(
            toks(r#" "a\nb" '\t' 'x' "#),
            vec![
                Tok::Str(vec![b'a', b'\n', b'b']),
                Tok::Char(b'\t'),
                Tok::Char(b'x'),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let ts = lex("x // hi\ny /* multi\nline */ z").unwrap();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
        assert!(lex("'a").is_err());
    }

    #[test]
    fn unknown_char_is_error() {
        assert!(lex("int $x;").is_err());
    }
}
