//! Recursive-descent parser for MiniC.

use br_ir::Ty;

use crate::ast::*;
use crate::error::CompileError;
use crate::token::{lex, Spanned, Tok};

/// Parse a MiniC translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        // The parser never rewinds, so consumed tokens can be moved out
        // rather than cloned; the final token is `Eof`, so re-bumping at
        // the end keeps returning `Eof`.
        let t = std::mem::replace(&mut self.toks[self.pos].tok, Tok::Eof);
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), CompileError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(CompileError::new(
                self.line(),
                format!("expected {t:?}, found {}", self.peek()),
            ))
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::new(self.line(), msg.into()))
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt | Tok::KwChar | Tok::KwFloat | Tok::KwVoid
        )
    }

    /// Base type plus pointer stars.
    fn parse_type(&mut self) -> Result<Ty, CompileError> {
        let base = match self.bump() {
            Tok::KwInt => Ty::Int,
            Tok::KwChar => Ty::Char,
            Tok::KwFloat => Ty::Float,
            Tok::KwVoid => Ty::Void,
            other => return self.err(format!("expected a type, found {other}")),
        };
        let mut ty = base;
        while self.eat(&Tok::Star) {
            ty = ty.ptr_to();
        }
        Ok(ty)
    }

    /// Trailing `[N][M]...` array dimensions applied to `base`.
    fn parse_array_dims(&mut self, base: Ty) -> Result<Ty, CompileError> {
        let mut dims = Vec::new();
        while self.eat(&Tok::LBracket) {
            if self.eat(&Tok::RBracket) {
                // `[]` — size inferred from the initializer during lowering
                // (represented as 0; only valid as the outermost dimension
                // of an initialized global).
                dims.push(0);
                continue;
            }
            match self.bump() {
                Tok::Int(n) if n > 0 => dims.push(n as usize),
                _ => return self.err("array dimension must be a positive integer literal"),
            }
            self.expect(&Tok::RBracket)?;
        }
        let mut ty = base;
        for &d in dims.iter().rev() {
            ty = Ty::Array(Box::new(ty), d);
        }
        Ok(ty)
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut decls = Vec::new();
        while *self.peek() != Tok::Eof {
            decls.push(self.top_decl()?);
        }
        Ok(Program { decls })
    }

    fn top_decl(&mut self) -> Result<Decl, CompileError> {
        let line = self.line();
        let ty = self.parse_type()?;
        let name = match self.bump() {
            Tok::Ident(s) => s,
            other => return self.err(format!("expected a name, found {other}")),
        };
        if *self.peek() == Tok::LParen {
            self.function(ty, name, line)
        } else {
            let ty = self.parse_array_dims(ty)?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.global_init()?)
            } else {
                None
            };
            self.expect(&Tok::Semi)?;
            Ok(Decl::Global {
                ty,
                name,
                init,
                line,
            })
        }
    }

    fn global_init(&mut self) -> Result<GlobalInitAst, CompileError> {
        match self.peek().clone() {
            Tok::LBrace => {
                self.bump();
                let mut items = Vec::new();
                if *self.peek() != Tok::RBrace {
                    loop {
                        items.push(self.global_init()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                        if *self.peek() == Tok::RBrace {
                            break; // trailing comma
                        }
                    }
                }
                self.expect(&Tok::RBrace)?;
                Ok(GlobalInitAst::List(items))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(GlobalInitAst::Str(s))
            }
            Tok::Minus => {
                self.bump();
                match self.bump() {
                    Tok::Int(v) => Ok(GlobalInitAst::Int(-v)),
                    Tok::Float(v) => Ok(GlobalInitAst::Float(-v)),
                    _ => self.err("expected a numeric literal after '-'"),
                }
            }
            Tok::Int(v) => {
                self.bump();
                Ok(GlobalInitAst::Int(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(GlobalInitAst::Float(v))
            }
            Tok::Char(c) => {
                self.bump();
                Ok(GlobalInitAst::Int(c as i64))
            }
            _ => self.err("expected a constant initializer"),
        }
    }

    fn function(&mut self, ret: Ty, name: String, line: u32) -> Result<Decl, CompileError> {
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() == Tok::KwVoid && *self.peek2() == Tok::RParen {
            self.bump();
        } else if *self.peek() != Tok::RParen {
            loop {
                let pty = self.parse_type()?;
                let pname = match self.bump() {
                    Tok::Ident(s) => s,
                    other => return self.err(format!("expected parameter name, found {other}")),
                };
                let pty = self.parse_array_dims(pty)?.decay();
                params.push((pty, pname));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let body = if self.eat(&Tok::Semi) {
            None
        } else {
            Some(self.block()?)
        };
        Ok(Decl::Func {
            ret,
            name,
            params,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if *self.peek() == Tok::Eof {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn local_decl(&mut self) -> Result<Stmt, CompileError> {
        let base = self.parse_type()?;
        let mut items = Vec::new();
        loop {
            // Per-declarator stars: `int x, *p;`
            let mut ty = base.clone();
            while self.eat(&Tok::Star) {
                ty = ty.ptr_to();
            }
            let name = match self.bump() {
                Tok::Ident(s) => s,
                other => return self.err(format!("expected variable name, found {other}")),
            };
            let ty = self.parse_array_dims(ty)?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            items.push((ty, name, init));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Decl(items))
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek() {
            _ if self.is_type_start() => self.local_decl(),
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::KwIf => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.eat(&Tok::KwElse) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Stmt::While(cond, Box::new(self.stmt()?)))
            }
            Tok::KwDo => {
                self.bump();
                let body = Box::new(self.stmt()?);
                self.expect(&Tok::KwWhile)?;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::DoWhile(body, cond))
            }
            Tok::KwFor => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else if self.is_type_start() {
                    Some(Box::new(self.local_decl()?))
                } else {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::RParen)?;
                Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?)))
            }
            Tok::KwSwitch => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let scrut = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::LBrace)?;
                let mut arms = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    let value = if self.eat(&Tok::KwCase) {
                        let neg = self.eat(&Tok::Minus);
                        match self.bump() {
                            Tok::Int(v) => Some(if neg { -v } else { v }),
                            Tok::Char(c) => Some(c as i64),
                            _ => return self.err("expected integer after 'case'"),
                        }
                    } else if self.eat(&Tok::KwDefault) {
                        None
                    } else {
                        return self.err("expected 'case' or 'default'");
                    };
                    self.expect(&Tok::Colon)?;
                    let mut body = Vec::new();
                    while !matches!(
                        self.peek(),
                        Tok::KwCase | Tok::KwDefault | Tok::RBrace | Tok::Eof
                    ) {
                        body.push(self.stmt()?);
                    }
                    arms.push(SwitchArm { value, body });
                }
                Ok(Stmt::Switch(scrut, arms))
            }
            Tok::KwReturn => {
                self.bump();
                let v = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(v))
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Continue)
            }
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    // ----- expressions, by precedence climbing -----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinKind::Add),
            Tok::MinusAssign => Some(BinKind::Sub),
            Tok::StarAssign => Some(BinKind::Mul),
            Tok::SlashAssign => Some(BinKind::Div),
            Tok::PercentAssign => Some(BinKind::Rem),
            Tok::AmpAssign => Some(BinKind::And),
            Tok::PipeAssign => Some(BinKind::Or),
            Tok::CaretAssign => Some(BinKind::Xor),
            Tok::ShlAssign => Some(BinKind::Shl),
            Tok::ShrAssign => Some(BinKind::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment()?;
        Ok(Expr {
            kind: ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
            line,
        })
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let cond = self.binary(0)?;
        if self.eat(&Tok::Question) {
            let a = self.expr()?;
            self.expect(&Tok::Colon)?;
            let b = self.ternary()?;
            Ok(Expr {
                kind: ExprKind::Ternary(Box::new(cond), Box::new(a), Box::new(b)),
                line,
            })
        } else {
            Ok(cond)
        }
    }

    /// Binary operators via precedence climbing. Levels (low → high):
    /// `||`, `&&`, `|`, `^`, `&`, `== !=`, `< <= > >=`, `<< >>`, `+ -`,
    /// `* / %`.
    fn binary(&mut self, min_lvl: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let (kind, lvl) = match self.peek() {
                Tok::PipePipe => (BinKind::LogOr, 0),
                Tok::AmpAmp => (BinKind::LogAnd, 1),
                Tok::Pipe => (BinKind::Or, 2),
                Tok::Caret => (BinKind::Xor, 3),
                Tok::Amp => (BinKind::And, 4),
                Tok::Eq => (BinKind::Eq, 5),
                Tok::Ne => (BinKind::Ne, 5),
                Tok::Lt => (BinKind::Lt, 6),
                Tok::Le => (BinKind::Le, 6),
                Tok::Gt => (BinKind::Gt, 6),
                Tok::Ge => (BinKind::Ge, 6),
                Tok::Shl => (BinKind::Shl, 7),
                Tok::Shr => (BinKind::Shr, 7),
                Tok::Plus => (BinKind::Add, 8),
                Tok::Minus => (BinKind::Sub, 8),
                Tok::Star => (BinKind::Mul, 9),
                Tok::Slash => (BinKind::Div, 9),
                Tok::Percent => (BinKind::Rem, 9),
                _ => break,
            };
            if lvl < min_lvl {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary(lvl + 1)?;
            lhs = Expr {
                kind: ExprKind::Bin(kind, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let kind = match self.peek() {
            Tok::Minus => Some(UnKind::Neg),
            Tok::Tilde => Some(UnKind::Not),
            Tok::Bang => Some(UnKind::LogNot),
            Tok::Star => Some(UnKind::Deref),
            Tok::Amp => Some(UnKind::AddrOf),
            _ => None,
        };
        if let Some(k) = kind {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Un(k, Box::new(e)),
                line,
            });
        }
        if *self.peek() == Tok::PlusPlus || *self.peek() == Tok::MinusMinus {
            let inc = matches!(self.bump(), Tok::PlusPlus);
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::IncDec(
                    if inc { IncDec::PreInc } else { IncDec::PreDec },
                    Box::new(e),
                ),
                line,
            });
        }
        // Cast: '(' type [stars] ')' unary
        if *self.peek() == Tok::LParen
            && matches!(
                self.peek2(),
                Tok::KwInt | Tok::KwChar | Tok::KwFloat | Tok::KwVoid
            )
        {
            self.bump();
            let ty = self.parse_type()?;
            self.expect(&Tok::RParen)?;
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Cast(ty, Box::new(e)),
                line,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        line,
                    };
                }
                Tok::PlusPlus | Tok::MinusMinus => {
                    let inc = matches!(self.bump(), Tok::PlusPlus);
                    e = Expr {
                        kind: ExprKind::IncDec(
                            if inc { IncDec::PostInc } else { IncDec::PostDec },
                            Box::new(e),
                        ),
                        line,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let kind = match self.bump() {
            Tok::Int(v) => ExprKind::IntLit(v),
            Tok::Float(v) => ExprKind::FloatLit(v),
            Tok::Char(c) => ExprKind::CharLit(c),
            Tok::Str(s) => ExprKind::StrLit(s),
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    ExprKind::Call(name, args)
                } else {
                    ExprKind::Ident(name)
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                return Ok(e);
            }
            other => {
                return Err(CompileError::new(
                    line,
                    format!("expected an expression, found {other}"),
                ))
            }
        };
        Ok(Expr { kind, line })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_global_and_function() {
        let p = parse("int g = 3;\nint main() { return g; }").unwrap();
        assert_eq!(p.decls.len(), 2);
        assert!(matches!(&p.decls[0], Decl::Global { name, .. } if name == "g"));
        assert!(matches!(&p.decls[1], Decl::Func { name, body: Some(_), .. } if name == "main"));
    }

    #[test]
    fn parses_array_globals() {
        let p = parse("int a[4] = {1, 2, 3, 4};\nchar s[10] = \"hi\";\nint m[2][3];").unwrap();
        match &p.decls[0] {
            Decl::Global { ty, .. } => assert_eq!(*ty, Ty::Array(Box::new(Ty::Int), 4)),
            _ => panic!(),
        }
        match &p.decls[2] {
            Decl::Global { ty, .. } => assert_eq!(ty.size(), 24),
            _ => panic!(),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let Decl::Func { body: Some(b), .. } = &p.decls[0] else {
            panic!()
        };
        let Stmt::Return(Some(e)) = &b[0] else {
            panic!()
        };
        let ExprKind::Bin(BinKind::Add, _, rhs) = &e.kind else {
            panic!("expected +, got {e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Bin(BinKind::Mul, _, _)));
    }

    #[test]
    fn assignment_is_right_associative() {
        let p = parse("int f() { int a; int b; a = b = 1; return a; }").unwrap();
        let Decl::Func { body: Some(b), .. } = &p.decls[0] else {
            panic!()
        };
        let Stmt::Expr(e) = &b[2] else { panic!() };
        let ExprKind::Assign(None, _, rhs) = &e.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Assign(None, _, _)));
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    if (i % 2 == 0) continue;
                    s += i;
                }
                while (s > 100) s -= 10;
                do { s++; } while (s < 0);
                switch (s) {
                    case 1: return 1;
                    default: break;
                }
                return s;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.decls.len(), 1);
    }

    #[test]
    fn parses_pointers_and_casts() {
        let src = "int f(char *s) { return *(s + 1) + (int)3.5; }";
        let p = parse(src).unwrap();
        let Decl::Func { params, .. } = &p.decls[0] else {
            panic!()
        };
        assert_eq!(params[0].0, Ty::Char.ptr_to());
    }

    #[test]
    fn array_params_decay() {
        let p = parse("int f(int a[10]) { return a[0]; }").unwrap();
        let Decl::Func { params, .. } = &p.decls[0] else {
            panic!()
        };
        assert_eq!(params[0].0, Ty::Int.ptr_to());
    }

    #[test]
    fn prototype_without_body() {
        let p = parse("int f(int x);").unwrap();
        assert!(matches!(&p.decls[0], Decl::Func { body: None, .. }));
    }

    #[test]
    fn reports_syntax_errors_with_line() {
        let e = parse("int main() {\n return 1 +; \n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn ternary_and_logical() {
        let p = parse("int f(int a, int b) { return a && b ? a : !b; }");
        assert!(p.is_ok());
    }

    #[test]
    fn negative_global_init() {
        let p = parse("int g = -5; float h = -2.5;").unwrap();
        match &p.decls[0] {
            Decl::Global {
                init: Some(GlobalInitAst::Int(v)),
                ..
            } => assert_eq!(*v, -5),
            _ => panic!(),
        }
    }
}
