//! 32-bit instruction encodings for both machines.
//!
//! The paper's Figure 10 (baseline) and Figure 11 (branch-register
//! machine) give the field structure; this module fixes concrete bit
//! positions. The architecturally significant differences are faithfully
//! preserved: the branch-register machine's data-register fields are 4
//! bits instead of 5, its signed immediates are 11 bits instead of 13,
//! and every encodable instruction (except `sethi`) carries a 3-bit `br`
//! field in bits 2:0.
//!
//! Concrete layouts (bit ranges inclusive, `op` always in 31:26):
//!
//! ```text
//! baseline  F3   op rd[25:21] rs1[20:16] i[15]  imm13[12:0] | rs2[4:0]
//! baseline  sethi op rd[25:21] imm21[20:0]
//! baseline  bcc  op cc[25:23] f[22] disp22[21:0]
//! baseline  ba/call op disp26[25:0]
//! br-mach   F3   op rd[25:22] rs1[21:18] i[17] imm11[13:3] | rs2[6:3]   br[2:0]
//! br-mach   sethi op rd[25:22] imm21[21:1]
//! br-mach   bcalc op bd[25:23] disp20[22:3]                              br[2:0]
//! br-mach   cmpbr op cc[25:23] bt[22:20] rs1[19:16] i[15] imm11|rs2      br[2:0]
//! br-mach   bmovr/bstore op b[25:23] rs1[22:19] imm13[15:3]              br[2:0]
//! ```

use std::fmt;

use crate::minst::{AluOp, BReg, Cc, FReg, FpuOp, MInst, MemWidth, Reg, Src2};
use crate::Machine;

/// Errors from encoding or decoding an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The instruction variant does not exist on the target machine.
    WrongMachine,
    /// A register number exceeds the machine's register-field width.
    RegOutOfRange,
    /// An immediate does not fit the machine's immediate field.
    ImmOutOfRange,
    /// A branch displacement does not fit its field.
    DispOutOfRange,
    /// A branch-register number is out of range (or nonzero on baseline).
    BrOutOfRange,
    /// Decoding met an unknown opcode or malformed fields.
    BadWord(u32),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::WrongMachine => write!(f, "instruction not available on this machine"),
            EncodeError::RegOutOfRange => write!(f, "register number out of range"),
            EncodeError::ImmOutOfRange => write!(f, "immediate out of range"),
            EncodeError::DispOutOfRange => write!(f, "displacement out of range"),
            EncodeError::BrOutOfRange => write!(f, "branch register out of range"),
            EncodeError::BadWord(w) => write!(f, "cannot decode word {w:#010x}"),
        }
    }
}

impl std::error::Error for EncodeError {}

// Opcode numbers (shared namespace).
const OP_NOP: u32 = 0;
const OP_HALT: u32 = 1;
const OP_ALU_BASE: u32 = 2; // 2..=13 in AluOp order
const OP_SETHI: u32 = 14;
const OP_LDW: u32 = 15;
const OP_LDB: u32 = 16;
const OP_LDF: u32 = 17;
const OP_STW: u32 = 18;
const OP_STB: u32 = 19;
const OP_STF: u32 = 20;
const OP_FPU_BASE: u32 = 21; // 21..=24 in FpuOp order
const OP_FNEG: u32 = 25;
const OP_ITOF: u32 = 26;
const OP_FTOI: u32 = 27;
const OP_CMP: u32 = 28;
const OP_FCMP: u32 = 29;
const OP_BCC: u32 = 30;
const OP_BA: u32 = 31;
const OP_CALL: u32 = 32;
const OP_JMPL: u32 = 33;
const OP_BCALC: u32 = 34;
const OP_CMPBR: u32 = 35;
const OP_FCMPBR: u32 = 36;
const OP_BMOVB: u32 = 37;
const OP_BMOVR: u32 = 38;
const OP_BLOAD: u32 = 39;
const OP_BSTORE: u32 = 40;
const OP_FMOV: u32 = 41;

const ALU_OPS: [AluOp; 12] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::OrLo,
];

const FPU_OPS: [FpuOp; 4] = [FpuOp::FAdd, FpuOp::FSub, FpuOp::FMul, FpuOp::FDiv];

fn alu_code(op: AluOp) -> u32 {
    OP_ALU_BASE + ALU_OPS.iter().position(|&o| o == op).unwrap() as u32
}

fn fpu_code(op: FpuOp) -> u32 {
    OP_FPU_BASE + FPU_OPS.iter().position(|&o| o == op).unwrap() as u32
}

/// Sign-extend the low `bits` of `v`.
fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

/// Whether `v` fits in a signed field of `bits`.
fn fits_signed(v: i32, bits: u32) -> bool {
    v >= -(1 << (bits - 1)) && v < (1 << (bits - 1))
}

fn mask(bits: u32) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1 << bits) - 1
    }
}

struct Enc {
    m: Machine,
}

impl Enc {
    fn reg(&self, r: Reg) -> Result<u32, EncodeError> {
        if r.0 < self.m.num_regs() {
            Ok(r.0 as u32)
        } else {
            Err(EncodeError::RegOutOfRange)
        }
    }
    fn freg(&self, r: FReg) -> Result<u32, EncodeError> {
        if r.0 < self.m.num_fregs() {
            Ok(r.0 as u32)
        } else {
            Err(EncodeError::RegOutOfRange)
        }
    }
    fn breg(&self, b: BReg) -> Result<u32, EncodeError> {
        if self.m == Machine::BranchReg && b.0 < 8 {
            Ok(b.0 as u32)
        } else {
            Err(EncodeError::BrOutOfRange)
        }
    }
    fn brf(&self, br: u8) -> Result<u32, EncodeError> {
        match self.m {
            Machine::Baseline if br == 0 => Ok(0),
            Machine::Baseline => Err(EncodeError::BrOutOfRange),
            Machine::BranchReg if br < 8 => Ok(br as u32),
            Machine::BranchReg => Err(EncodeError::BrOutOfRange),
        }
    }
    fn imm(&self, v: i32) -> Result<u32, EncodeError> {
        if self.m.imm_fits(v) {
            Ok(v as u32 & mask(self.m.imm_bits()))
        } else {
            Err(EncodeError::ImmOutOfRange)
        }
    }

    /// Three-address form shared by ALU, loads, stores and conversions.
    /// `rd`, `rs1` are raw field values (already range-checked).
    fn f3(&self, op: u32, rd: u32, rs1: u32, src2: Src2, br: u32) -> Result<u32, EncodeError> {
        match self.m {
            Machine::Baseline => Ok(match src2 {
                Src2::Reg(r) => {
                    (op << 26) | (rd << 21) | (rs1 << 16) | self.reg(r)?
                }
                Src2::Imm(v) => {
                    (op << 26) | (rd << 21) | (rs1 << 16) | (1 << 15) | self.imm(v)?
                }
            }),
            Machine::BranchReg => Ok(match src2 {
                Src2::Reg(r) => {
                    (op << 26) | (rd << 22) | (rs1 << 18) | (self.reg(r)? << 3) | br
                }
                Src2::Imm(v) => {
                    (op << 26)
                        | (rd << 22)
                        | (rs1 << 18)
                        | (1 << 17)
                        | (self.imm(v)? << 3)
                        | br
                }
            }),
        }
    }
}

/// Encode `inst` for `machine`.
///
/// # Errors
///
/// Any field-range or machine-availability violation (see [`EncodeError`]).
pub fn encode(machine: Machine, inst: MInst) -> Result<u32, EncodeError> {
    let e = Enc { m: machine };
    let base = machine == Machine::Baseline;
    match inst {
        MInst::Nop { br } => Ok((OP_NOP << 26) | e.brf(br)?),
        MInst::Halt => Ok(OP_HALT << 26),
        MInst::Alu {
            op,
            rd,
            rs1,
            src2,
            br,
        } => {
            // OrLo's immediate is unsigned; it must fit the imm field as a
            // non-negative value of imm_bits-or-fewer bits.
            if op == AluOp::OrLo {
                if let Src2::Imm(v) = src2 {
                    if v < 0 || (v as u32) > mask(machine.imm_bits()) {
                        return Err(EncodeError::ImmOutOfRange);
                    }
                    // Encode the unsigned value directly in the imm field.
                    let raw = v as u32;
                    let w = match machine {
                        Machine::Baseline => {
                            (alu_code(op) << 26)
                                | (e.reg(rd)? << 21)
                                | (e.reg(rs1)? << 16)
                                | (1 << 15)
                                | raw
                        }
                        Machine::BranchReg => {
                            (alu_code(op) << 26)
                                | (e.reg(rd)? << 22)
                                | (e.reg(rs1)? << 18)
                                | (1 << 17)
                                | (raw << 3)
                                | e.brf(br)?
                        }
                    };
                    return Ok(w);
                }
            }
            e.f3(alu_code(op), e.reg(rd)?, e.reg(rs1)?, src2, e.brf(br)?)
        }
        MInst::Sethi { rd, imm } => {
            if imm > mask(21) {
                return Err(EncodeError::ImmOutOfRange);
            }
            match machine {
                Machine::Baseline => Ok((OP_SETHI << 26) | (e.reg(rd)? << 21) | imm),
                Machine::BranchReg => Ok((OP_SETHI << 26) | (e.reg(rd)? << 22) | (imm << 1)),
            }
        }
        MInst::Load {
            w,
            rd,
            rs1,
            off,
            br,
        } => {
            let op = match w {
                MemWidth::Word => OP_LDW,
                MemWidth::Byte => OP_LDB,
            };
            e.f3(op, e.reg(rd)?, e.reg(rs1)?, Src2::Imm(off), e.brf(br)?)
        }
        MInst::LoadF { fd, rs1, off, br } => e.f3(
            OP_LDF,
            e.freg(fd)?,
            e.reg(rs1)?,
            Src2::Imm(off),
            e.brf(br)?,
        ),
        MInst::Store {
            w,
            rs,
            rs1,
            off,
            br,
        } => {
            let op = match w {
                MemWidth::Word => OP_STW,
                MemWidth::Byte => OP_STB,
            };
            e.f3(op, e.reg(rs)?, e.reg(rs1)?, Src2::Imm(off), e.brf(br)?)
        }
        MInst::StoreF { fs, rs1, off, br } => e.f3(
            OP_STF,
            e.freg(fs)?,
            e.reg(rs1)?,
            Src2::Imm(off),
            e.brf(br)?,
        ),
        MInst::Fpu {
            op,
            fd,
            fs1,
            fs2,
            br,
        } => e.f3(
            fpu_code(op),
            e.freg(fd)?,
            e.freg(fs1)?,
            Src2::Reg(Reg(fs2.0)),
            e.brf(br)?,
        ),
        MInst::FMov { fd, fs, br } => e.f3(
            OP_FMOV,
            e.freg(fd)?,
            e.freg(fs)?,
            Src2::Imm(0),
            e.brf(br)?,
        ),
        MInst::FNeg { fd, fs, br } => e.f3(
            OP_FNEG,
            e.freg(fd)?,
            e.freg(fs)?,
            Src2::Imm(0),
            e.brf(br)?,
        ),
        MInst::ItoF { fd, rs, br } => e.f3(
            OP_ITOF,
            e.freg(fd)?,
            e.reg(rs)?,
            Src2::Imm(0),
            e.brf(br)?,
        ),
        MInst::FtoI { rd, fs, br } => e.f3(
            OP_FTOI,
            e.reg(rd)?,
            e.freg(fs)?,
            Src2::Imm(0),
            e.brf(br)?,
        ),
        MInst::Cmp { rs1, src2 } => {
            if !base {
                return Err(EncodeError::WrongMachine);
            }
            e.f3(OP_CMP, 0, e.reg(rs1)?, src2, 0)
        }
        MInst::FCmp { fs1, fs2 } => {
            if !base {
                return Err(EncodeError::WrongMachine);
            }
            e.f3(OP_FCMP, 0, e.freg(fs1)?, Src2::Reg(Reg(fs2.0)), 0)
        }
        MInst::Bcc { cc, float, disp } => {
            if !base {
                return Err(EncodeError::WrongMachine);
            }
            if !fits_signed(disp, 22) {
                return Err(EncodeError::DispOutOfRange);
            }
            Ok((OP_BCC << 26)
                | (cc.code() << 23)
                | ((float as u32) << 22)
                | (disp as u32 & mask(22)))
        }
        MInst::Ba { disp } | MInst::Call { disp } => {
            if !base {
                return Err(EncodeError::WrongMachine);
            }
            if !fits_signed(disp, 26) {
                return Err(EncodeError::DispOutOfRange);
            }
            let op = if matches!(inst, MInst::Ba { .. }) {
                OP_BA
            } else {
                OP_CALL
            };
            Ok((op << 26) | (disp as u32 & mask(26)))
        }
        MInst::Jmpl { rd, rs1, off } => {
            if !base {
                return Err(EncodeError::WrongMachine);
            }
            e.f3(OP_JMPL, e.reg(rd)?, e.reg(rs1)?, Src2::Imm(off), 0)
        }
        MInst::Bcalc { bd, disp, br } => {
            if base {
                return Err(EncodeError::WrongMachine);
            }
            if !fits_signed(disp, 20) {
                return Err(EncodeError::DispOutOfRange);
            }
            Ok((OP_BCALC << 26)
                | (e.breg(bd)? << 23)
                | ((disp as u32 & mask(20)) << 3)
                | e.brf(br)?)
        }
        MInst::CmpBr {
            cc,
            bt,
            rs1,
            src2,
            br,
        } => {
            if base {
                return Err(EncodeError::WrongMachine);
            }
            let body = match src2 {
                Src2::Reg(r) => e.reg(r)? << 3,
                Src2::Imm(v) => (1 << 15) | (e.imm(v)? << 3),
            };
            Ok((OP_CMPBR << 26)
                | (cc.code() << 23)
                | (e.breg(bt)? << 20)
                | (e.reg(rs1)? << 16)
                | body
                | e.brf(br)?)
        }
        MInst::FCmpBr {
            cc,
            bt,
            fs1,
            fs2,
            br,
        } => {
            if base {
                return Err(EncodeError::WrongMachine);
            }
            Ok((OP_FCMPBR << 26)
                | (cc.code() << 23)
                | (e.breg(bt)? << 20)
                | (e.freg(fs1)? << 16)
                | (e.freg(fs2)? << 3)
                | e.brf(br)?)
        }
        MInst::BMovB { bd, bs, br } => {
            if base {
                return Err(EncodeError::WrongMachine);
            }
            Ok((OP_BMOVB << 26) | (e.breg(bd)? << 23) | (e.breg(bs)? << 20) | e.brf(br)?)
        }
        MInst::BMovR { bd, rs1, off, br } => {
            if base {
                return Err(EncodeError::WrongMachine);
            }
            if !fits_signed(off, 13) {
                return Err(EncodeError::ImmOutOfRange);
            }
            Ok((OP_BMOVR << 26)
                | (e.breg(bd)? << 23)
                | (e.reg(rs1)? << 19)
                | ((off as u32 & mask(13)) << 3)
                | e.brf(br)?)
        }
        MInst::BLoad { bd, rs1, src2, br } => {
            if base {
                return Err(EncodeError::WrongMachine);
            }
            let body = match src2 {
                Src2::Reg(r) => e.reg(r)? << 3,
                Src2::Imm(v) => (1 << 18) | (e.imm(v)? << 3),
            };
            Ok((OP_BLOAD << 26)
                | (e.breg(bd)? << 23)
                | (e.reg(rs1)? << 19)
                | body
                | e.brf(br)?)
        }
        MInst::BStore { bs, rs1, off, br } => {
            if base {
                return Err(EncodeError::WrongMachine);
            }
            if !fits_signed(off, 13) {
                return Err(EncodeError::ImmOutOfRange);
            }
            Ok((OP_BSTORE << 26)
                | (e.breg(bs)? << 23)
                | (e.reg(rs1)? << 19)
                | ((off as u32 & mask(13)) << 3)
                | e.brf(br)?)
        }
    }
}

/// Decode one instruction word for `machine`.
///
/// # Errors
///
/// [`EncodeError::BadWord`] for unknown opcodes or opcodes that do not
/// exist on `machine`.
pub fn decode(machine: Machine, word: u32) -> Result<MInst, EncodeError> {
    let op = word >> 26;
    let base = machine == Machine::Baseline;
    let bad = || EncodeError::BadWord(word);

    // Field extraction helpers.
    let (rd, rs1, ifl, imm, rs2, br);
    match machine {
        Machine::Baseline => {
            rd = (word >> 21) & 0x1F;
            rs1 = (word >> 16) & 0x1F;
            ifl = (word >> 15) & 1;
            imm = sext(word & mask(13), 13);
            rs2 = word & 0x1F;
            br = 0u8;
        }
        Machine::BranchReg => {
            rd = (word >> 22) & 0xF;
            rs1 = (word >> 18) & 0xF;
            ifl = (word >> 17) & 1;
            imm = sext((word >> 3) & mask(11), 11);
            rs2 = (word >> 3) & 0xF;
            br = (word & 7) as u8;
        }
    }
    let src2 = if ifl == 1 {
        Src2::Imm(imm)
    } else {
        Src2::Reg(Reg(rs2 as u8))
    };
    let off = if ifl == 1 { imm } else { 0 };

    Ok(match op {
        OP_NOP => MInst::Nop { br },
        OP_HALT => MInst::Halt,
        _ if (OP_ALU_BASE..OP_ALU_BASE + 12).contains(&op) => {
            let aop = ALU_OPS[(op - OP_ALU_BASE) as usize];
            // OrLo immediates decode as unsigned.
            let src2 = if aop == AluOp::OrLo && ifl == 1 {
                let raw = match machine {
                    Machine::Baseline => word & mask(13),
                    Machine::BranchReg => (word >> 3) & mask(11),
                };
                Src2::Imm(raw as i32)
            } else {
                src2
            };
            MInst::Alu {
                op: aop,
                rd: Reg(rd as u8),
                rs1: Reg(rs1 as u8),
                src2,
                br,
            }
        }
        OP_SETHI => match machine {
            Machine::Baseline => MInst::Sethi {
                rd: Reg(rd as u8),
                imm: word & mask(21),
            },
            Machine::BranchReg => MInst::Sethi {
                rd: Reg(rd as u8),
                imm: (word >> 1) & mask(21),
            },
        },
        OP_LDW | OP_LDB => MInst::Load {
            w: if op == OP_LDW {
                MemWidth::Word
            } else {
                MemWidth::Byte
            },
            rd: Reg(rd as u8),
            rs1: Reg(rs1 as u8),
            off,
            br,
        },
        OP_LDF => MInst::LoadF {
            fd: FReg(rd as u8),
            rs1: Reg(rs1 as u8),
            off,
            br,
        },
        OP_STW | OP_STB => MInst::Store {
            w: if op == OP_STW {
                MemWidth::Word
            } else {
                MemWidth::Byte
            },
            rs: Reg(rd as u8),
            rs1: Reg(rs1 as u8),
            off,
            br,
        },
        OP_STF => MInst::StoreF {
            fs: FReg(rd as u8),
            rs1: Reg(rs1 as u8),
            off,
            br,
        },
        _ if (OP_FPU_BASE..OP_FPU_BASE + 4).contains(&op) => MInst::Fpu {
            op: FPU_OPS[(op - OP_FPU_BASE) as usize],
            fd: FReg(rd as u8),
            fs1: FReg(rs1 as u8),
            fs2: FReg(rs2 as u8),
            br,
        },
        OP_FNEG => MInst::FNeg {
            fd: FReg(rd as u8),
            fs: FReg(rs1 as u8),
            br,
        },
        OP_FMOV => MInst::FMov {
            fd: FReg(rd as u8),
            fs: FReg(rs1 as u8),
            br,
        },
        OP_ITOF => MInst::ItoF {
            fd: FReg(rd as u8),
            rs: Reg(rs1 as u8),
            br,
        },
        OP_FTOI => MInst::FtoI {
            rd: Reg(rd as u8),
            fs: FReg(rs1 as u8),
            br,
        },
        OP_CMP if base => MInst::Cmp {
            rs1: Reg(rs1 as u8),
            src2,
        },
        OP_FCMP if base => MInst::FCmp {
            fs1: FReg(rs1 as u8),
            fs2: FReg(rs2 as u8),
        },
        OP_BCC if base => MInst::Bcc {
            cc: Cc::from_code((word >> 23) & 7).ok_or_else(bad)?,
            float: (word >> 22) & 1 == 1,
            disp: sext(word & mask(22), 22),
        },
        OP_BA if base => MInst::Ba {
            disp: sext(word & mask(26), 26),
        },
        OP_CALL if base => MInst::Call {
            disp: sext(word & mask(26), 26),
        },
        OP_JMPL if base => MInst::Jmpl {
            rd: Reg(rd as u8),
            rs1: Reg(rs1 as u8),
            off,
        },
        OP_BCALC if !base => MInst::Bcalc {
            bd: BReg(((word >> 23) & 7) as u8),
            disp: sext((word >> 3) & mask(20), 20),
            br,
        },
        OP_CMPBR if !base => {
            let i = (word >> 15) & 1;
            let s2 = if i == 1 {
                Src2::Imm(sext((word >> 3) & mask(11), 11))
            } else {
                Src2::Reg(Reg(((word >> 3) & 0xF) as u8))
            };
            MInst::CmpBr {
                cc: Cc::from_code((word >> 23) & 7).ok_or_else(bad)?,
                bt: BReg(((word >> 20) & 7) as u8),
                rs1: Reg(((word >> 16) & 0xF) as u8),
                src2: s2,
                br,
            }
        }
        OP_FCMPBR if !base => MInst::FCmpBr {
            cc: Cc::from_code((word >> 23) & 7).ok_or_else(bad)?,
            bt: BReg(((word >> 20) & 7) as u8),
            fs1: FReg(((word >> 16) & 0xF) as u8),
            fs2: FReg(((word >> 3) & 0xF) as u8),
            br,
        },
        OP_BMOVB if !base => MInst::BMovB {
            bd: BReg(((word >> 23) & 7) as u8),
            bs: BReg(((word >> 20) & 7) as u8),
            br,
        },
        OP_BMOVR if !base => MInst::BMovR {
            bd: BReg(((word >> 23) & 7) as u8),
            rs1: Reg(((word >> 19) & 0xF) as u8),
            off: sext((word >> 3) & mask(13), 13),
            br,
        },
        OP_BLOAD if !base => {
            let i = (word >> 18) & 1;
            let s2 = if i == 1 {
                Src2::Imm(sext((word >> 3) & mask(11), 11))
            } else {
                Src2::Reg(Reg(((word >> 3) & 0xF) as u8))
            };
            MInst::BLoad {
                bd: BReg(((word >> 23) & 7) as u8),
                rs1: Reg(((word >> 19) & 0xF) as u8),
                src2: s2,
                br,
            }
        }
        OP_BSTORE if !base => MInst::BStore {
            bs: BReg(((word >> 23) & 7) as u8),
            rs1: Reg(((word >> 19) & 0xF) as u8),
            off: sext((word >> 3) & mask(13), 13),
            br,
        },
        _ => return Err(bad()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Machine, i: MInst) {
        let w = encode(m, i).unwrap_or_else(|e| panic!("encode {i:?} on {m}: {e}"));
        let d = decode(m, w).unwrap();
        assert_eq!(d, i, "word {w:#010x}");
    }

    #[test]
    fn basic_roundtrips_baseline() {
        let m = Machine::Baseline;
        roundtrip(m, MInst::Nop { br: 0 });
        roundtrip(m, MInst::Halt);
        roundtrip(
            m,
            MInst::Alu {
                op: AluOp::Add,
                rd: Reg(31),
                rs1: Reg(17),
                src2: Src2::Imm(-4096),
                br: 0,
            },
        );
        roundtrip(
            m,
            MInst::Alu {
                op: AluOp::Xor,
                rd: Reg(5),
                rs1: Reg(6),
                src2: Src2::Reg(Reg(7)),
                br: 0,
            },
        );
        roundtrip(m, MInst::Sethi { rd: Reg(29), imm: (1 << 21) - 1 });
        roundtrip(
            m,
            MInst::Bcc {
                cc: Cc::Le,
                float: true,
                disp: -100,
            },
        );
        roundtrip(m, MInst::Ba { disp: 1 << 20 });
        roundtrip(m, MInst::Call { disp: -(1 << 20) });
        roundtrip(
            m,
            MInst::Jmpl {
                rd: Reg(31),
                rs1: Reg(31),
                off: 0,
            },
        );
        roundtrip(
            m,
            MInst::Cmp {
                rs1: Reg(3),
                src2: Src2::Imm(0),
            },
        );
        roundtrip(m, MInst::FCmp { fs1: FReg(30), fs2: FReg(1) });
    }

    #[test]
    fn basic_roundtrips_branchreg() {
        let m = Machine::BranchReg;
        roundtrip(m, MInst::Nop { br: 7 });
        roundtrip(
            m,
            MInst::Alu {
                op: AluOp::Sub,
                rd: Reg(15),
                rs1: Reg(14),
                src2: Src2::Imm(-1024),
                br: 3,
            },
        );
        roundtrip(m, MInst::Sethi { rd: Reg(13), imm: 0x1F_FFFF });
        roundtrip(
            m,
            MInst::Bcalc {
                bd: BReg(2),
                disp: -1000,
                br: 5,
            },
        );
        roundtrip(
            m,
            MInst::CmpBr {
                cc: Cc::Ne,
                bt: BReg(2),
                rs1: Reg(0),
                src2: Src2::Imm(0),
                br: 0,
            },
        );
        roundtrip(
            m,
            MInst::CmpBr {
                cc: Cc::Lt,
                bt: BReg(6),
                rs1: Reg(9),
                src2: Src2::Reg(Reg(4)),
                br: 1,
            },
        );
        roundtrip(
            m,
            MInst::FCmpBr {
                cc: Cc::Gt,
                bt: BReg(1),
                fs1: FReg(15),
                fs2: FReg(2),
                br: 0,
            },
        );
        roundtrip(m, MInst::BMovB { bd: BReg(1), bs: BReg(7), br: 2 });
        roundtrip(
            m,
            MInst::BMovR {
                bd: BReg(3),
                rs1: Reg(13),
                off: 2047,
                br: 0,
            },
        );
        roundtrip(
            m,
            MInst::BLoad {
                bd: BReg(3),
                rs1: Reg(1),
                src2: Src2::Reg(Reg(2)),
                br: 0,
            },
        );
        roundtrip(
            m,
            MInst::BStore {
                bs: BReg(1),
                rs1: Reg(14),
                off: -4,
                br: 0,
            },
        );
    }

    #[test]
    fn orlo_is_unsigned() {
        for m in [Machine::Baseline, Machine::BranchReg] {
            let i = MInst::Alu {
                op: AluOp::OrLo,
                rd: Reg(1),
                rs1: Reg(1),
                src2: Src2::Imm(0x7FF),
                br: 0,
            };
            roundtrip(m, i);
        }
        // 0x7FF would not fit as a *signed* 11-bit value; OrLo accepts it.
        assert!(!Machine::BranchReg.imm_fits(0x7FF));
    }

    #[test]
    fn machine_restrictions_enforced() {
        assert_eq!(
            encode(Machine::BranchReg, MInst::Ba { disp: 0 }),
            Err(EncodeError::WrongMachine)
        );
        assert_eq!(
            encode(
                Machine::Baseline,
                MInst::Bcalc {
                    bd: BReg(1),
                    disp: 0,
                    br: 0
                }
            ),
            Err(EncodeError::WrongMachine)
        );
        // Register 16 is fine on baseline, out of range on the BR machine.
        let add16 = |br| MInst::Alu {
            op: AluOp::Add,
            rd: Reg(16),
            rs1: Reg(0),
            src2: Src2::Imm(0),
            br,
        };
        assert!(encode(Machine::Baseline, add16(0)).is_ok());
        assert_eq!(
            encode(Machine::BranchReg, add16(0)),
            Err(EncodeError::RegOutOfRange)
        );
        // br field must be 0 on baseline.
        assert_eq!(
            encode(Machine::Baseline, MInst::Nop { br: 1 }),
            Err(EncodeError::BrOutOfRange)
        );
        // Immediate 2000 fits baseline (13-bit) but not BR machine (11-bit).
        let big_imm = |_m| MInst::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(1),
            src2: Src2::Imm(2000),
            br: 0,
        };
        assert!(encode(Machine::Baseline, big_imm(())).is_ok());
        assert_eq!(
            encode(Machine::BranchReg, big_imm(())),
            Err(EncodeError::ImmOutOfRange)
        );
    }

    #[test]
    fn unknown_opcode_fails_decode() {
        assert!(decode(Machine::Baseline, 63 << 26).is_err());
        assert!(decode(Machine::Baseline, OP_BCALC << 26).is_err());
        assert!(decode(Machine::BranchReg, OP_BCC << 26).is_err());
    }

    // ---- randomized tests (experiment E11: Figs 10-11 format validation) ----
    //
    // Deterministic seeded loops (SplitMix64) instead of a property-test
    // framework, so the crate builds with no external dependencies.

    struct TRng(u64);

    impl TRng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u32) -> u32 {
            (self.next() % n as u64) as u32
        }
        fn range(&mut self, lo: i32, hi: i32) -> i32 {
            lo + self.below((hi - lo) as u32) as i32
        }
    }

    const CASES: usize = 512;

    fn arb_reg(r: &mut TRng, m: Machine) -> Reg {
        Reg(r.below(m.num_regs() as u32) as u8)
    }
    fn arb_freg(r: &mut TRng, m: Machine) -> FReg {
        FReg(r.below(m.num_fregs() as u32) as u8)
    }
    fn arb_imm(r: &mut TRng, m: Machine) -> i32 {
        let b = m.imm_bits();
        r.range(-(1i32 << (b - 1)), 1i32 << (b - 1))
    }
    fn arb_br(r: &mut TRng, m: Machine) -> u8 {
        match m {
            Machine::Baseline => 0,
            Machine::BranchReg => r.below(8) as u8,
        }
    }
    fn arb_cc(r: &mut TRng) -> Cc {
        Cc::ALL[r.below(Cc::ALL.len() as u32) as usize]
    }

    fn arb_shared(r: &mut TRng, m: Machine) -> MInst {
        match r.below(5) {
            0 => MInst::Alu {
                // Exclude OrLo (unsigned imm).
                op: ALU_OPS[r.below(11) as usize],
                rd: arb_reg(r, m),
                rs1: arb_reg(r, m),
                src2: if r.below(2) == 0 {
                    Src2::Reg(arb_reg(r, m))
                } else {
                    Src2::Imm(arb_imm(r, m))
                },
                br: arb_br(r, m),
            },
            1 => MInst::Load {
                w: MemWidth::Byte,
                rd: arb_reg(r, m),
                rs1: arb_reg(r, m),
                off: arb_imm(r, m),
                br: arb_br(r, m),
            },
            2 => MInst::Store {
                w: MemWidth::Word,
                rs: arb_reg(r, m),
                rs1: arb_reg(r, m),
                off: arb_imm(r, m),
                br: arb_br(r, m),
            },
            3 => MInst::Fpu {
                op: FPU_OPS[r.below(FPU_OPS.len() as u32) as usize],
                fd: arb_freg(r, m),
                fs1: arb_freg(r, m),
                fs2: arb_freg(r, m),
                br: arb_br(r, m),
            },
            _ => MInst::Sethi {
                rd: arb_reg(r, m),
                imm: r.below(1 << 21),
            },
        }
    }

    #[test]
    fn shared_instructions_roundtrip_baseline() {
        let mut r = TRng(0xE11_0001);
        for _ in 0..CASES {
            let i = arb_shared(&mut r, Machine::Baseline);
            roundtrip(Machine::Baseline, i);
        }
    }

    #[test]
    fn shared_instructions_roundtrip_branchreg() {
        let mut r = TRng(0xE11_0002);
        for _ in 0..CASES {
            let i = arb_shared(&mut r, Machine::BranchReg);
            roundtrip(Machine::BranchReg, i);
        }
    }

    #[test]
    fn baseline_control_flow_roundtrips() {
        let mut r = TRng(0xE11_0003);
        for _ in 0..CASES {
            let cc = arb_cc(&mut r);
            let float = r.below(2) == 0;
            let disp = r.range(-(1i32 << 21), 1i32 << 21);
            let disp26 = r.range(-(1i32 << 25), 1i32 << 25);
            roundtrip(Machine::Baseline, MInst::Bcc { cc, float, disp });
            roundtrip(Machine::Baseline, MInst::Ba { disp: disp26 });
            roundtrip(Machine::Baseline, MInst::Call { disp: disp26 });
        }
    }

    #[test]
    fn br_control_flow_roundtrips() {
        let m = Machine::BranchReg;
        let mut r = TRng(0xE11_0004);
        for _ in 0..CASES {
            let cc = arb_cc(&mut r);
            let bd = r.below(8) as u8;
            let bt = r.below(8) as u8;
            let rs1 = arb_reg(&mut r, m);
            let imm = arb_imm(&mut r, m);
            let disp = r.range(-(1i32 << 19), 1i32 << 19);
            let br = r.below(8) as u8;
            roundtrip(m, MInst::Bcalc { bd: BReg(bd), disp, br });
            roundtrip(m, MInst::CmpBr { cc, bt: BReg(bt), rs1, src2: Src2::Imm(imm), br });
            roundtrip(m, MInst::BMovB { bd: BReg(bd), bs: BReg(bt), br });
            roundtrip(m, MInst::BMovR { bd: BReg(bd), rs1, off: imm, br });
            roundtrip(m, MInst::BStore { bs: BReg(bt), rs1, off: imm, br });
            roundtrip(m, MInst::BLoad { bd: BReg(bd), rs1, src2: Src2::Reg(Reg(3)), br });
        }
    }

    #[test]
    fn decode_never_panics() {
        let mut r = TRng(0xE11_0005);
        for _ in 0..4096 {
            let w = r.next() as u32;
            let _ = decode(Machine::Baseline, w);
            let _ = decode(Machine::BranchReg, w);
        }
    }

    #[test]
    fn decode_encode_decode_is_stable() {
        let mut r = TRng(0xE11_0006);
        for _ in 0..4096 {
            let w = r.next() as u32;
            for m in [Machine::Baseline, Machine::BranchReg] {
                if let Ok(i) = decode(m, w) {
                    // Decoded instructions may not re-encode to the same word
                    // (padding bits), but must re-encode and re-decode equal.
                    let w2 = encode(m, i).expect("decoded inst must encode");
                    assert_eq!(decode(m, w2).unwrap(), i);
                }
            }
        }
    }
}
