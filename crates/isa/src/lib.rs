//! `br-isa` — instruction-set definitions for the two machines of the paper.
//!
//! The study compares:
//!
//! * the **baseline machine** — a conventional RISC: 32-bit fixed-length
//!   instructions, load/store architecture, delayed branches, 32 data
//!   registers, 32 FP registers (the paper's Figure 10 formats), and
//! * the **branch-register machine** — 16 data registers, 16 FP
//!   registers, 8 branch registers `b[0..7]` with 8 paired instruction
//!   registers, *no branch instructions*: every instruction carries a
//!   3-bit `br` field naming the branch register that supplies the next
//!   instruction address (the paper's Figure 11 formats).
//!
//! This crate defines the shared instruction type [`MInst`], the per-machine
//! 32-bit encodings with their differing field widths (13-bit vs 11-bit
//! immediates, 5-bit vs 4-bit register numbers), an RTL-style [`Display`]
//! that matches the notation of the paper's Figures 3–4, and a two-pass
//! assembler producing loadable [`Program`] images.
//!
//! # Architectural conventions fixed by this reproduction
//!
//! * `b[0]` is the program counter; an instruction whose `br` field is 0
//!   falls through.
//! * Any instruction with `br != 0` transfers control to the address in
//!   `b[br]` *and*, as a side effect, stores the address of the next
//!   sequential instruction into `b[7]` (the paper's return-address rule).
//! * The compare-with-assignment instruction writes `b[7] = cond ?
//!   b[bt] : fall-through`, where the fall-through is the address after
//!   the *following* instruction (the compiler always places the carrier
//!   of the conditional jump immediately after the compare).
//! * `HI`/`LO` address halves split 21/11 on both machines; the low half
//!   is combined with [`AluOp::OrLo`], which zero-extends its immediate.
//!
//! [`Display`]: std::fmt::Display

pub mod asm;
pub mod decoded;
pub mod encode;
pub mod minst;
pub mod program;

pub use asm::{AsmFunc, AsmItem, AsmProgram, DataItem, Label, Reloc, SymRef, FRESH_LABEL_BASE};
pub use encode::{decode, encode, EncodeError};
pub use minst::{AluOp, BReg, Cc, FReg, FpuOp, MInst, MemWidth, Reg, Src2};
pub use program::{BlockMark, ImageError, Program, TextWord};

use std::fmt;

/// Which of the two evaluated machines an artefact belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Machine {
    /// Conventional RISC with delayed branches (32 data registers).
    Baseline,
    /// Branch-register machine (16 data registers, 8 branch registers).
    BranchReg,
}

impl Machine {
    /// Number of general-purpose data registers.
    pub fn num_regs(self) -> u8 {
        match self {
            Machine::Baseline => 32,
            Machine::BranchReg => 16,
        }
    }

    /// Number of floating-point registers.
    pub fn num_fregs(self) -> u8 {
        match self {
            Machine::Baseline => 32,
            Machine::BranchReg => 16,
        }
    }

    /// Number of branch registers (0 on the baseline).
    pub fn num_bregs(self) -> u8 {
        match self {
            Machine::Baseline => 0,
            Machine::BranchReg => 8,
        }
    }

    /// Width in bits of the signed immediate in three-address formats.
    /// The branch-register machine gives up two bits relative to the
    /// baseline ("smaller range of available constants").
    pub fn imm_bits(self) -> u32 {
        match self {
            Machine::Baseline => 13,
            Machine::BranchReg => 11,
        }
    }

    /// Whether a signed immediate fits this machine's three-address format.
    pub fn imm_fits(self, v: i32) -> bool {
        let b = self.imm_bits();
        v >= -(1 << (b - 1)) && v < (1 << (b - 1))
    }

    /// Human-readable machine name as used in the paper's Table I.
    pub fn name(self) -> &'static str {
        match self {
            Machine::Baseline => "baseline",
            Machine::BranchReg => "branch register",
        }
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Application binary interface constants shared by the code generator,
/// assembler, and emulators.
pub mod abi {
    use crate::minst::{BReg, Reg};

    /// Hardwired-zero register (both machines).
    pub const ZERO: Reg = Reg(0);
    /// Integer return-value register and first argument register.
    pub const RET: Reg = Reg(1);

    /// Baseline: stack pointer.
    pub const BASE_SP: Reg = Reg(30);
    /// Baseline: link register written by `call`/`jmpl`.
    pub const BASE_LINK: Reg = Reg(31);
    /// Baseline: assembler temporary.
    pub const BASE_TEMP: Reg = Reg(29);

    /// Branch-register machine: stack pointer.
    pub const BR_SP: Reg = Reg(14);
    /// Branch-register machine: assembler temporary.
    pub const BR_TEMP: Reg = Reg(13);

    /// The PC branch register.
    pub const B_PC: BReg = BReg(0);
    /// The scratch / return-address branch register (`b[7]`).
    pub const B_RET: BReg = BReg(7);

    /// Address where the text segment is loaded.
    pub const TEXT_BASE: u32 = 0x0000_1000;
    /// Address where the data segment is loaded (matches
    /// `br_ir::interp::DATA_BASE` so pointer values agree between the
    /// IR interpreter and the emulators).
    pub const DATA_BASE: u32 = 0x0001_0000;
    /// Total simulated memory size.
    pub const MEM_SIZE: u32 = 0x0080_0000;
    /// Initial stack pointer (top of memory, 16-byte aligned).
    pub const STACK_TOP: u32 = MEM_SIZE - 16;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_file_sizes_match_the_paper() {
        assert_eq!(Machine::Baseline.num_regs(), 32);
        assert_eq!(Machine::Baseline.num_fregs(), 32);
        assert_eq!(Machine::BranchReg.num_regs(), 16);
        assert_eq!(Machine::BranchReg.num_fregs(), 16);
        assert_eq!(Machine::BranchReg.num_bregs(), 8);
    }

    #[test]
    fn br_machine_has_smaller_immediates() {
        assert!(Machine::Baseline.imm_bits() > Machine::BranchReg.imm_bits());
        assert!(Machine::Baseline.imm_fits(4000));
        assert!(!Machine::BranchReg.imm_fits(4000));
        assert!(Machine::BranchReg.imm_fits(-1024));
        assert!(!Machine::BranchReg.imm_fits(-1025));
        assert!(Machine::BranchReg.imm_fits(1023));
        assert!(!Machine::BranchReg.imm_fits(1024));
    }

    #[test]
    fn hi_lo_split_covers_all_addresses() {
        // HI(21) << 11 | LO(11) must reconstruct any 32-bit address.
        let addr: u32 = 0xDEAD_BEEF;
        let hi = addr >> 11;
        let lo = addr & 0x7FF;
        assert_eq!((hi << 11) | lo, addr);
        assert!(lo < (1 << 11));
    }
}
