//! The two-pass assembler: symbolic instruction streams → [`Program`].

use std::collections::HashMap;
use std::fmt;

use crate::encode::{encode, EncodeError};
use crate::minst::{AluOp, MInst, Src2};
use crate::program::{BlockMark, Program, TextWord};
use crate::{abi, Machine};

/// A function-local label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

/// First label number used for emission-internal labels (jump tables,
/// out-of-line sequences). Labels below this base are IR block labels,
/// which both machine emitters bind in the same order for the same
/// module; labels at or above it are private to one emitter's stream.
/// Static analyses (the protocol lint, translation validation) rely on
/// this split to align the two machines' code block-for-block.
pub const FRESH_LABEL_BASE: u32 = 1_000_000;

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A symbolic reference used in relocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymRef {
    /// A data-segment symbol (global variable).
    Data(String),
    /// A function entry point.
    Func(String),
    /// A label in the current function.
    Label(Label),
}

/// A relocation: which value to compute from a [`SymRef`] and patch into
/// the instruction or data word it is attached to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reloc {
    /// High 21 address bits (patches `sethi`).
    Hi(SymRef),
    /// Low 11 address bits (patches `orlo` immediates and `bmovr`
    /// offsets).
    Lo(SymRef),
    /// Word displacement from the instruction's own address (patches
    /// `bcc`/`ba`/`call`/`bcalc`).
    Disp(SymRef),
    /// Absolute 32-bit address (patches `.word` jump-table entries).
    Abs(SymRef),
}

impl Reloc {
    fn sym(&self) -> &SymRef {
        match self {
            Reloc::Hi(s) | Reloc::Lo(s) | Reloc::Disp(s) | Reloc::Abs(s) => s,
        }
    }
}

/// One element of a function's instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmItem {
    /// Bind a label to the current address.
    Label(Label),
    /// An instruction, optionally patched by a relocation.
    Inst(MInst, Option<Reloc>),
    /// An embedded data word (jump tables), optionally relocated.
    Word(u32, Option<Reloc>),
}

/// A function's assembly stream.
#[derive(Debug, Clone, Default)]
pub struct AsmFunc {
    /// Function name (becomes a text symbol).
    pub name: String,
    /// Items in layout order.
    pub items: Vec<AsmItem>,
}

/// A named, aligned chunk of the data segment.
#[derive(Debug, Clone, PartialEq)]
pub struct DataItem {
    /// Symbol name.
    pub name: String,
    /// Required alignment in bytes.
    pub align: usize,
    /// Contents (length = size).
    pub bytes: Vec<u8>,
}

/// Assembler errors.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmError {
    /// A relocation referenced an unknown symbol.
    Undefined(String),
    /// An instruction failed to encode.
    Encode { func: String, index: usize, err: EncodeError },
    /// A relocation was attached to an instruction it cannot patch.
    BadReloc { func: String, index: usize },
    /// No `main` function was provided.
    NoMain,
    /// The assembled image failed structural validation.
    Image(crate::program::ImageError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Undefined(s) => write!(f, "undefined symbol '{s}'"),
            AsmError::Encode { func, index, err } => {
                write!(f, "in {func} at item {index}: {err}")
            }
            AsmError::BadReloc { func, index } => {
                write!(f, "in {func} at item {index}: relocation cannot patch instruction")
            }
            AsmError::NoMain => write!(f, "program has no 'main' function"),
            AsmError::Image(e) => write!(f, "invalid image: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

/// A whole program in symbolic form.
#[derive(Debug, Clone)]
pub struct AsmProgram {
    /// Target machine.
    pub machine: Machine,
    /// Functions, laid out in order after the entry stub.
    pub funcs: Vec<AsmFunc>,
    /// Data-segment items, laid out in order.
    pub data: Vec<DataItem>,
}

impl AsmProgram {
    /// Create an empty program for `machine`.
    pub fn new(machine: Machine) -> AsmProgram {
        AsmProgram {
            machine,
            funcs: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Assemble into a loadable [`Program`].
    ///
    /// A `_start` stub is synthesized at the entry that calls `main` and
    /// halts; `main`'s return value is left in `r[1]` as the exit value.
    ///
    /// # Errors
    ///
    /// See [`AsmError`].
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if !self.funcs.iter().any(|f| f.name == "main") {
            return Err(AsmError::NoMain);
        }
        let stub = self.entry_stub();

        // ---- data layout ----
        let mut symbols: HashMap<String, u32> = HashMap::new();
        let mut data: Vec<u8> = Vec::new();
        for item in &self.data {
            let align = item.align.max(1) as u32;
            while !(abi::DATA_BASE + data.len() as u32).is_multiple_of(align) {
                data.push(0);
            }
            symbols.insert(item.name.clone(), abi::DATA_BASE + data.len() as u32);
            data.extend_from_slice(&item.bytes);
        }

        // ---- pass 1: text layout ----
        let all_funcs: Vec<&AsmFunc> = std::iter::once(&stub).chain(self.funcs.iter()).collect();
        let mut labels: Vec<HashMap<Label, u32>> = Vec::with_capacity(all_funcs.len());
        let mut blocks: Vec<BlockMark> = Vec::new();
        let mut addr = abi::TEXT_BASE;
        for f in &all_funcs {
            symbols.insert(f.name.clone(), addr);
            blocks.push(BlockMark {
                word: (addr - abi::TEXT_BASE) / 4,
                func: f.name.clone(),
                label: None,
            });
            let mut lmap = HashMap::new();
            for item in &f.items {
                match item {
                    AsmItem::Label(l) => {
                        lmap.insert(*l, addr);
                        // Retain the bound label for profile attribution;
                        // when several labels bind one address (or a label
                        // binds the entry), the first mark wins.
                        let word = (addr - abi::TEXT_BASE) / 4;
                        if blocks.last().map(|b| b.word) != Some(word) {
                            blocks.push(BlockMark {
                                word,
                                func: f.name.clone(),
                                label: Some(l.0),
                            });
                        }
                    }
                    AsmItem::Inst(..) | AsmItem::Word(..) => addr += 4,
                }
            }
            labels.push(lmap);
        }

        // ---- pass 2: resolve and encode ----
        let mut code = Vec::new();
        let mut text = Vec::new();
        let mut addr = abi::TEXT_BASE;
        for (fi, f) in all_funcs.iter().enumerate() {
            for (ii, item) in f.items.iter().enumerate() {
                match item {
                    AsmItem::Label(_) => {}
                    AsmItem::Inst(inst, reloc) => {
                        let inst = match reloc {
                            None => *inst,
                            Some(r) => {
                                let target =
                                    self.resolve(r.sym(), &symbols, &labels[fi])?;
                                apply_reloc(*inst, r, target, addr).ok_or(
                                    AsmError::BadReloc {
                                        func: f.name.clone(),
                                        index: ii,
                                    },
                                )?
                            }
                        };
                        let w = encode(self.machine, inst).map_err(|err| AsmError::Encode {
                            func: f.name.clone(),
                            index: ii,
                            err,
                        })?;
                        code.push(w);
                        text.push(TextWord::Inst(inst));
                        addr += 4;
                    }
                    AsmItem::Word(v, reloc) => {
                        let v = match reloc {
                            None => *v,
                            Some(r) => self.resolve(r.sym(), &symbols, &labels[fi])?,
                        };
                        code.push(v);
                        text.push(TextWord::Data(v));
                        addr += 4;
                    }
                }
            }
        }

        let program = Program {
            machine: self.machine,
            code,
            text,
            data,
            entry: abi::TEXT_BASE,
            symbols,
            blocks,
        };
        program.validate_image().map_err(AsmError::Image)?;
        Ok(program)
    }

    fn resolve(
        &self,
        sym: &SymRef,
        symbols: &HashMap<String, u32>,
        labels: &HashMap<Label, u32>,
    ) -> Result<u32, AsmError> {
        match sym {
            SymRef::Data(n) | SymRef::Func(n) => symbols
                .get(n)
                .copied()
                .ok_or_else(|| AsmError::Undefined(n.clone())),
            SymRef::Label(l) => labels
                .get(l)
                .copied()
                .ok_or_else(|| AsmError::Undefined(l.to_string())),
        }
    }

    /// The synthesized `_start`: call `main`, then halt. The BR-machine
    /// variant demonstrates the two-instruction address calculation the
    /// paper describes for calls.
    fn entry_stub(&self) -> AsmFunc {
        let main = SymRef::Func("main".to_string());
        let items = match self.machine {
            Machine::Baseline => vec![
                AsmItem::Inst(MInst::Call { disp: 0 }, Some(Reloc::Disp(main))),
                AsmItem::Inst(MInst::Nop { br: 0 }, None), // delay slot
                AsmItem::Inst(MInst::Halt, None),
            ],
            Machine::BranchReg => vec![
                AsmItem::Inst(
                    MInst::Sethi {
                        rd: abi::BR_TEMP,
                        imm: 0,
                    },
                    Some(Reloc::Hi(main.clone())),
                ),
                AsmItem::Inst(
                    MInst::BMovR {
                        bd: crate::minst::BReg(1),
                        rs1: abi::BR_TEMP,
                        off: 0,
                        br: 0,
                    },
                    Some(Reloc::Lo(main)),
                ),
                // The transfer rides on a nop; its side effect leaves the
                // return address (the halt) in b[7].
                AsmItem::Inst(MInst::Nop { br: 1 }, None),
                AsmItem::Inst(MInst::Halt, None),
            ],
        };
        AsmFunc {
            name: "_start".to_string(),
            items,
        }
    }
}

/// Patch the field a relocation targets. Returns `None` if the reloc kind
/// does not match the instruction.
fn apply_reloc(inst: MInst, reloc: &Reloc, target: u32, inst_addr: u32) -> Option<MInst> {
    match (reloc, inst) {
        (Reloc::Hi(_), MInst::Sethi { rd, .. }) => Some(MInst::Sethi {
            rd,
            imm: target >> 11,
        }),
        (
            Reloc::Lo(_),
            MInst::Alu {
                op: AluOp::OrLo,
                rd,
                rs1,
                br,
                ..
            },
        ) => Some(MInst::Alu {
            op: AluOp::OrLo,
            rd,
            rs1,
            src2: Src2::Imm((target & 0x7FF) as i32),
            br,
        }),
        (Reloc::Lo(_), MInst::BMovR { bd, rs1, br, .. }) => Some(MInst::BMovR {
            bd,
            rs1,
            off: (target & 0x7FF) as i32,
            br,
        }),
        (Reloc::Disp(_), i) => {
            let disp = (target as i64 - inst_addr as i64) / 4;
            let disp = i32::try_from(disp).ok()?;
            match i {
                MInst::Bcc { cc, float, .. } => Some(MInst::Bcc { cc, float, disp }),
                MInst::Ba { .. } => Some(MInst::Ba { disp }),
                MInst::Call { .. } => Some(MInst::Call { disp }),
                MInst::Bcalc { bd, br, .. } => Some(MInst::Bcalc { bd, disp, br }),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minst::{BReg, Cc, Reg};

    fn ret42(machine: Machine) -> AsmFunc {
        // main: r1 = 42; return
        let items = match machine {
            Machine::Baseline => vec![
                AsmItem::Inst(
                    MInst::Alu {
                        op: AluOp::Add,
                        rd: Reg(1),
                        rs1: Reg(0),
                        src2: Src2::Imm(42),
                        br: 0,
                    },
                    None,
                ),
                AsmItem::Inst(
                    MInst::Jmpl {
                        rd: Reg(0),
                        rs1: abi::BASE_LINK,
                        off: 0,
                    },
                    None,
                ),
                AsmItem::Inst(MInst::Nop { br: 0 }, None),
            ],
            Machine::BranchReg => vec![AsmItem::Inst(
                MInst::Alu {
                    op: AluOp::Add,
                    rd: Reg(1),
                    rs1: Reg(0),
                    src2: Src2::Imm(42),
                    br: 7,
                },
                None,
            )],
        };
        AsmFunc {
            name: "main".to_string(),
            items,
        }
    }

    #[test]
    fn assembles_minimal_program_both_machines() {
        for m in [Machine::Baseline, Machine::BranchReg] {
            let mut p = AsmProgram::new(m);
            p.funcs.push(ret42(m));
            let prog = p.assemble().unwrap();
            assert_eq!(prog.entry, abi::TEXT_BASE);
            assert!(prog.symbol("main").unwrap() > abi::TEXT_BASE);
            assert_eq!(prog.code.len(), prog.text.len());
            assert!(prog.static_inst_count() >= 4);
        }
    }

    #[test]
    fn out_of_range_raw_branch_is_rejected_at_assembly() {
        // A hand-written `ba` with no relocation escapes the label
        // machinery entirely; image validation must still catch it.
        let mut p = AsmProgram::new(Machine::Baseline);
        let mut f = ret42(Machine::Baseline);
        f.items.insert(0, AsmItem::Inst(MInst::Ba { disp: 1000 }, None));
        p.funcs.push(f);
        match p.assemble() {
            Err(AsmError::Image(crate::program::ImageError::BranchTargetOutOfRange {
                ..
            })) => {}
            other => panic!("expected image error, got {other:?}"),
        }
    }

    #[test]
    fn missing_main_is_an_error() {
        let p = AsmProgram::new(Machine::Baseline);
        assert_eq!(p.assemble().unwrap_err(), AsmError::NoMain);
    }

    #[test]
    fn call_reloc_points_at_main() {
        let mut p = AsmProgram::new(Machine::Baseline);
        p.funcs.push(ret42(Machine::Baseline));
        let prog = p.assemble().unwrap();
        let main_addr = prog.symbol("main").unwrap();
        // First stub word is the call.
        match prog.fetch(abi::TEXT_BASE) {
            Some(TextWord::Inst(MInst::Call { disp })) => {
                assert_eq!(abi::TEXT_BASE as i64 + *disp as i64 * 4, main_addr as i64);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn labels_resolve_within_function() {
        let mut p = AsmProgram::new(Machine::Baseline);
        let l = Label(0);
        p.funcs.push(AsmFunc {
            name: "main".to_string(),
            items: vec![
                AsmItem::Inst(
                    MInst::Ba { disp: 0 },
                    Some(Reloc::Disp(SymRef::Label(l))),
                ),
                AsmItem::Inst(MInst::Nop { br: 0 }, None),
                AsmItem::Label(l),
                AsmItem::Inst(
                    MInst::Jmpl {
                        rd: Reg(0),
                        rs1: abi::BASE_LINK,
                        off: 0,
                    },
                    None,
                ),
                AsmItem::Inst(MInst::Nop { br: 0 }, None),
            ],
        });
        let prog = p.assemble().unwrap();
        let main_addr = prog.symbol("main").unwrap();
        match prog.fetch(main_addr) {
            Some(TextWord::Inst(MInst::Ba { disp })) => assert_eq!(*disp, 2),
            other => panic!("expected ba, got {other:?}"),
        }
    }

    #[test]
    fn block_table_retains_function_entries_and_labels() {
        let mut p = AsmProgram::new(Machine::Baseline);
        let l = Label(0);
        p.funcs.push(AsmFunc {
            name: "main".to_string(),
            items: vec![
                AsmItem::Inst(
                    MInst::Ba { disp: 0 },
                    Some(Reloc::Disp(SymRef::Label(l))),
                ),
                AsmItem::Inst(MInst::Nop { br: 0 }, None),
                AsmItem::Label(l),
                AsmItem::Inst(
                    MInst::Jmpl {
                        rd: Reg(0),
                        rs1: abi::BASE_LINK,
                        off: 0,
                    },
                    None,
                ),
                AsmItem::Inst(MInst::Nop { br: 0 }, None),
            ],
        });
        let prog = p.assemble().unwrap();
        // _start entry, main entry, main's bound label — sorted by word.
        let names: Vec<String> = prog.blocks.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["_start", "main", "main.L0"]);
        assert!(prog.blocks.windows(2).all(|w| w[0].word <= w[1].word));
        // The label mark sits two words into main.
        let main_addr = prog.symbol("main").unwrap();
        assert_eq!(prog.block_at(main_addr + 8).unwrap().name(), "main.L0");
        assert_eq!(prog.block_at(main_addr + 4).unwrap().name(), "main");
        // Every text word attributes to some block.
        for w in 0..prog.text.len() as u32 {
            assert!(prog.block_at(abi::TEXT_BASE + 4 * w).is_some());
        }
    }

    #[test]
    fn data_symbols_are_laid_out_with_alignment() {
        let mut p = AsmProgram::new(Machine::BranchReg);
        p.funcs.push(ret42(Machine::BranchReg));
        p.data.push(DataItem {
            name: "c".into(),
            align: 1,
            bytes: vec![1],
        });
        p.data.push(DataItem {
            name: "w".into(),
            align: 4,
            bytes: vec![2, 0, 0, 0],
        });
        let prog = p.assemble().unwrap();
        assert_eq!(prog.symbol("c"), Some(abi::DATA_BASE));
        assert_eq!(prog.symbol("w"), Some(abi::DATA_BASE + 4));
        assert_eq!(prog.data.len(), 8);
        assert_eq!(prog.data[4], 2);
    }

    #[test]
    fn undefined_symbol_reported() {
        let mut p = AsmProgram::new(Machine::Baseline);
        let mut f = ret42(Machine::Baseline);
        f.items.insert(
            0,
            AsmItem::Inst(
                MInst::Sethi { rd: Reg(1), imm: 0 },
                Some(Reloc::Hi(SymRef::Data("nope".into()))),
            ),
        );
        p.funcs.push(f);
        assert_eq!(
            p.assemble().unwrap_err(),
            AsmError::Undefined("nope".into())
        );
    }

    #[test]
    fn word_abs_reloc_builds_jump_tables() {
        let mut p = AsmProgram::new(Machine::BranchReg);
        let l = Label(3);
        p.funcs.push(AsmFunc {
            name: "main".to_string(),
            items: vec![
                AsmItem::Label(l),
                AsmItem::Inst(
                    MInst::Alu {
                        op: AluOp::Add,
                        rd: Reg(1),
                        rs1: Reg(0),
                        src2: Src2::Imm(0),
                        br: 7,
                    },
                    None,
                ),
                AsmItem::Word(0, Some(Reloc::Abs(SymRef::Label(l)))),
            ],
        });
        let prog = p.assemble().unwrap();
        let main_addr = prog.symbol("main").unwrap();
        match prog.fetch(main_addr + 4) {
            Some(TextWord::Data(v)) => assert_eq!(*v, main_addr),
            other => panic!("expected data word, got {other:?}"),
        }
    }

    #[test]
    fn hi_lo_reconstruct_address() {
        // sethi+orlo on baseline against a data symbol at a known address.
        let mut p = AsmProgram::new(Machine::Baseline);
        let mut f = ret42(Machine::Baseline);
        f.items.insert(
            0,
            AsmItem::Inst(
                MInst::Sethi { rd: Reg(2), imm: 0 },
                Some(Reloc::Hi(SymRef::Data("g".into()))),
            ),
        );
        f.items.insert(
            1,
            AsmItem::Inst(
                MInst::Alu {
                    op: AluOp::OrLo,
                    rd: Reg(2),
                    rs1: Reg(2),
                    src2: Src2::Imm(0),
                    br: 0,
                },
                Some(Reloc::Lo(SymRef::Data("g".into()))),
            ),
        );
        p.funcs.push(f);
        p.data.push(DataItem {
            name: "g".into(),
            align: 4,
            bytes: vec![0; 4],
        });
        let prog = p.assemble().unwrap();
        let g = prog.symbol("g").unwrap();
        let main_addr = prog.symbol("main").unwrap();
        let (hi, lo) = match (prog.fetch(main_addr), prog.fetch(main_addr + 4)) {
            (
                Some(TextWord::Inst(MInst::Sethi { imm, .. })),
                Some(TextWord::Inst(MInst::Alu {
                    src2: Src2::Imm(lo),
                    ..
                })),
            ) => (*imm, *lo),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!((hi << 11) | lo as u32, g);
    }

    #[test]
    fn br_entry_stub_shape() {
        let mut p = AsmProgram::new(Machine::BranchReg);
        p.funcs.push(ret42(Machine::BranchReg));
        let prog = p.assemble().unwrap();
        // stub: sethi, bmovr, nop[br=1], halt
        match prog.fetch(abi::TEXT_BASE + 8) {
            Some(TextWord::Inst(MInst::Nop { br: 1 })) => {}
            other => panic!("expected nop carrier, got {other:?}"),
        }
        match prog.fetch(abi::TEXT_BASE + 12) {
            Some(TextWord::Inst(MInst::Halt)) => {}
            other => panic!("expected halt, got {other:?}"),
        }
        // The bmovr's hi/lo must reconstruct main's address.
        let main_addr = prog.symbol("main").unwrap();
        match (prog.fetch(abi::TEXT_BASE), prog.fetch(abi::TEXT_BASE + 4)) {
            (
                Some(TextWord::Inst(MInst::Sethi { imm, .. })),
                Some(TextWord::Inst(MInst::BMovR { off, bd: BReg(1), .. })),
            ) => {
                assert_eq!((imm << 11) | *off as u32, main_addr);
            }
            other => panic!("unexpected stub {other:?}"),
        }
        let _ = Cc::Eq; // keep import used
    }
}
