//! Loadable program images produced by the assembler.

use std::collections::HashMap;

use crate::minst::MInst;
use crate::{abi, Machine};

/// One word of the text segment: an instruction or embedded data
/// (jump tables live in text, as in the paper's indirect-jump example).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TextWord {
    /// A decoded instruction.
    Inst(MInst),
    /// A raw data word (never executed).
    Data(u32),
}

/// One emitted code region retained from the assembler's label table: a
/// function entry or a bound label inside a function. Profilers use these
/// to attribute an executed address back to the block codegen emitted it
/// from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMark {
    /// Index of the region's first text word (`addr = TEXT_BASE + 4*word`).
    pub word: u32,
    /// Name of the owning function.
    pub func: String,
    /// Emitted label id within the function; `None` marks the function
    /// entry itself.
    pub label: Option<u32>,
}

impl BlockMark {
    /// Address of the region's first instruction.
    pub fn addr(&self) -> u32 {
        abi::TEXT_BASE + self.word * 4
    }

    /// Human-readable `func` or `func.Ln` name.
    pub fn name(&self) -> String {
        match self.label {
            None => self.func.clone(),
            Some(l) => format!("{}.L{l}", self.func),
        }
    }
}

/// A fully assembled program ready to load into an emulator.
#[derive(Debug, Clone)]
pub struct Program {
    /// The target machine.
    pub machine: Machine,
    /// Encoded text segment, one `u32` per word, loaded at
    /// [`abi::TEXT_BASE`].
    pub code: Vec<u32>,
    /// Pre-decoded text (parallel to `code`), so emulation need not
    /// re-decode on every fetch.
    pub text: Vec<TextWord>,
    /// Data segment, loaded at [`abi::DATA_BASE`].
    pub data: Vec<u8>,
    /// Entry address (the synthesized `_start` stub).
    pub entry: u32,
    /// Function and global symbol addresses.
    pub symbols: HashMap<String, u32>,
    /// Emitted code regions (function entries and bound labels), sorted
    /// by text-word index — the assembler's pass-1 label table, retained
    /// for profile attribution.
    pub blocks: Vec<BlockMark>,
}

impl Program {
    /// Base address of the text segment.
    pub fn text_base(&self) -> u32 {
        abi::TEXT_BASE
    }

    /// Address just past the last text word.
    pub fn text_end(&self) -> u32 {
        abi::TEXT_BASE + (self.code.len() * 4) as u32
    }

    /// The decoded text word at `addr`, if it is inside the text segment.
    pub fn fetch(&self, addr: u32) -> Option<&TextWord> {
        if addr < abi::TEXT_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        self.text.get(((addr - abi::TEXT_BASE) / 4) as usize)
    }

    /// Address of a symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// The emitted code region containing `addr`: the last block mark at
    /// or before it. `None` outside the text segment or when the program
    /// carries no block table.
    pub fn block_at(&self, addr: u32) -> Option<&BlockMark> {
        if addr < abi::TEXT_BASE || !addr.is_multiple_of(4) || addr >= self.text_end() {
            return None;
        }
        let word = (addr - abi::TEXT_BASE) / 4;
        let n = self.blocks.partition_point(|b| b.word <= word);
        self.blocks[..n].last()
    }

    /// Number of static instructions (excluding embedded data words).
    pub fn static_inst_count(&self) -> usize {
        self.text
            .iter()
            .filter(|w| matches!(w, TextWord::Inst(_)))
            .count()
    }

    /// Produce a human-readable listing (addresses, encodings, RTLs),
    /// annotated with symbol names — handy for examples and debugging.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut by_addr: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, &addr) in &self.symbols {
            by_addr.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        for (i, (w, enc)) in self.text.iter().zip(&self.code).enumerate() {
            let addr = abi::TEXT_BASE + (i * 4) as u32;
            if let Some(names) = by_addr.get(&addr) {
                for n in names {
                    let _ = writeln!(out, "{n}:");
                }
            }
            match w {
                TextWord::Inst(inst) => {
                    let _ = writeln!(out, "  {addr:#07x}: {enc:08x}  {inst}");
                }
                TextWord::Data(v) => {
                    let _ = writeln!(out, "  {addr:#07x}: {enc:08x}  .word {v:#x}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        Program {
            machine: Machine::Baseline,
            code: vec![crate::encode(Machine::Baseline, MInst::Halt).unwrap()],
            text: vec![TextWord::Inst(MInst::Halt)],
            data: vec![],
            entry: abi::TEXT_BASE,
            symbols: [("_start".to_string(), abi::TEXT_BASE)].into(),
            blocks: vec![BlockMark {
                word: 0,
                func: "_start".to_string(),
                label: None,
            }],
        }
    }

    #[test]
    fn fetch_bounds() {
        let p = tiny();
        assert!(p.fetch(abi::TEXT_BASE).is_some());
        assert!(p.fetch(abi::TEXT_BASE + 4).is_none());
        assert!(p.fetch(abi::TEXT_BASE - 4).is_none());
        assert!(p.fetch(abi::TEXT_BASE + 1).is_none());
        assert_eq!(p.text_end(), abi::TEXT_BASE + 4);
    }

    #[test]
    fn listing_contains_symbols_and_rtl() {
        let p = tiny();
        let l = p.listing();
        assert!(l.contains("_start:"));
        assert!(l.contains("halt"));
    }

    #[test]
    fn static_inst_count_skips_data() {
        let mut p = tiny();
        p.text.push(TextWord::Data(0x1234));
        p.code.push(0x1234);
        assert_eq!(p.static_inst_count(), 1);
    }

    #[test]
    fn block_at_picks_the_enclosing_mark() {
        let mut p = tiny();
        // Extend the program: words 0..4, marks at words 0 and 2.
        for _ in 0..3 {
            p.text.push(TextWord::Inst(MInst::Halt));
            p.code.push(crate::encode(Machine::Baseline, MInst::Halt).unwrap());
        }
        p.blocks.push(BlockMark {
            word: 2,
            func: "main".to_string(),
            label: Some(5),
        });
        let at = |off: u32| p.block_at(abi::TEXT_BASE + off).map(|b| b.name());
        assert_eq!(at(0).as_deref(), Some("_start"));
        assert_eq!(at(4).as_deref(), Some("_start"));
        assert_eq!(at(8).as_deref(), Some("main.L5"));
        assert_eq!(at(12).as_deref(), Some("main.L5"));
        assert_eq!(at(16), None, "past text end");
        assert_eq!(p.block_at(abi::TEXT_BASE + 2), None, "unaligned");
        assert_eq!(p.block_at(abi::TEXT_BASE - 4), None, "below text");
        assert_eq!(p.block_at(abi::TEXT_BASE + 8).unwrap().addr(), abi::TEXT_BASE + 8);
    }
}
