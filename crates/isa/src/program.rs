//! Loadable program images produced by the assembler.

use std::collections::HashMap;
use std::fmt;

use crate::minst::MInst;
use crate::{abi, Machine};

/// Why a program image fails structural validation.
///
/// These are loader-grade checks: every image the assembler emits must
/// pass, and any image an emulator or profiler is handed should be run
/// through [`Program::validate_image`] first so corruption surfaces as a
/// typed error here rather than as a panic (or silent misattribution)
/// deeper in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// `code` and `text` are not parallel — the image was truncated or
    /// corrupted after assembly.
    TruncatedText {
        /// Encoded words present.
        code: usize,
        /// Decoded words present.
        text: usize,
    },
    /// The entry address is not word-aligned.
    UnalignedEntry { entry: u32 },
    /// The entry address lies outside the text segment.
    EntryOutOfRange { entry: u32, end: u32 },
    /// A block mark points past the last text word.
    BlockMarkOutOfRange {
        /// `BlockMark::name()` of the offending mark.
        name: String,
        /// Its claimed word index.
        word: u32,
        /// Text words actually present.
        words: usize,
    },
    /// A pc-relative control transfer targets an address outside text.
    BranchTargetOutOfRange {
        /// Address of the branch instruction.
        addr: u32,
        /// Where it would transfer to.
        target: i64,
        /// End of the text segment.
        end: u32,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::TruncatedText { code, text } => write!(
                f,
                "image truncated: {code} encoded words but {text} decoded words"
            ),
            ImageError::UnalignedEntry { entry } => {
                write!(f, "entry address {entry:#x} is not 4-byte aligned")
            }
            ImageError::EntryOutOfRange { entry, end } => write!(
                f,
                "entry address {entry:#x} is outside the text segment [{:#x}, {end:#x})",
                abi::TEXT_BASE
            ),
            ImageError::BlockMarkOutOfRange { name, word, words } => write!(
                f,
                "block mark `{name}` claims word {word} but the image has {words} text words"
            ),
            ImageError::BranchTargetOutOfRange { addr, target, end } => write!(
                f,
                "branch at {addr:#x} targets {target:#x}, outside the text segment [{:#x}, {end:#x})",
                abi::TEXT_BASE
            ),
        }
    }
}

impl std::error::Error for ImageError {}

/// One word of the text segment: an instruction or embedded data
/// (jump tables live in text, as in the paper's indirect-jump example).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TextWord {
    /// A decoded instruction.
    Inst(MInst),
    /// A raw data word (never executed).
    Data(u32),
}

/// One emitted code region retained from the assembler's label table: a
/// function entry or a bound label inside a function. Profilers use these
/// to attribute an executed address back to the block codegen emitted it
/// from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMark {
    /// Index of the region's first text word (`addr = TEXT_BASE + 4*word`).
    pub word: u32,
    /// Name of the owning function.
    pub func: String,
    /// Emitted label id within the function; `None` marks the function
    /// entry itself.
    pub label: Option<u32>,
}

impl BlockMark {
    /// Address of the region's first instruction.
    pub fn addr(&self) -> u32 {
        abi::TEXT_BASE + self.word * 4
    }

    /// Human-readable `func` or `func.Ln` name.
    pub fn name(&self) -> String {
        match self.label {
            None => self.func.clone(),
            Some(l) => format!("{}.L{l}", self.func),
        }
    }
}

/// A fully assembled program ready to load into an emulator.
#[derive(Debug, Clone)]
pub struct Program {
    /// The target machine.
    pub machine: Machine,
    /// Encoded text segment, one `u32` per word, loaded at
    /// [`abi::TEXT_BASE`].
    pub code: Vec<u32>,
    /// Pre-decoded text (parallel to `code`), so emulation need not
    /// re-decode on every fetch.
    pub text: Vec<TextWord>,
    /// Data segment, loaded at [`abi::DATA_BASE`].
    pub data: Vec<u8>,
    /// Entry address (the synthesized `_start` stub).
    pub entry: u32,
    /// Function and global symbol addresses.
    pub symbols: HashMap<String, u32>,
    /// Emitted code regions (function entries and bound labels), sorted
    /// by text-word index — the assembler's pass-1 label table, retained
    /// for profile attribution.
    pub blocks: Vec<BlockMark>,
}

impl Program {
    /// Base address of the text segment.
    pub fn text_base(&self) -> u32 {
        abi::TEXT_BASE
    }

    /// Address just past the last text word.
    pub fn text_end(&self) -> u32 {
        abi::TEXT_BASE + (self.code.len() * 4) as u32
    }

    /// The decoded text word at `addr`, if it is inside the text segment.
    pub fn fetch(&self, addr: u32) -> Option<&TextWord> {
        if addr < abi::TEXT_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        self.text.get(((addr - abi::TEXT_BASE) / 4) as usize)
    }

    /// Address of a symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// The emitted code region containing `addr`: the last block mark at
    /// or before it. `None` outside the text segment or when the program
    /// carries no block table.
    pub fn block_at(&self, addr: u32) -> Option<&BlockMark> {
        if addr < abi::TEXT_BASE || !addr.is_multiple_of(4) || addr >= self.text_end() {
            return None;
        }
        let word = (addr - abi::TEXT_BASE) / 4;
        let n = self.blocks.partition_point(|b| b.word <= word);
        self.blocks[..n].last()
    }

    /// Structurally validate the image: parallel `code`/`text`, aligned
    /// in-range entry, in-range block marks, and every pc-relative
    /// control transfer landing inside the text segment.
    ///
    /// Indirect transfers (`jmpl`, branch-register jumps) are runtime
    /// properties and are checked by the emulator, not here.
    ///
    /// # Errors
    ///
    /// The first [`ImageError`] found, scanning header then marks then
    /// text in address order.
    pub fn validate_image(&self) -> Result<(), ImageError> {
        if self.code.len() != self.text.len() {
            return Err(ImageError::TruncatedText {
                code: self.code.len(),
                text: self.text.len(),
            });
        }
        let end = self.text_end();
        if !self.entry.is_multiple_of(4) {
            return Err(ImageError::UnalignedEntry { entry: self.entry });
        }
        if self.entry < abi::TEXT_BASE || self.entry >= end {
            return Err(ImageError::EntryOutOfRange { entry: self.entry, end });
        }
        for b in &self.blocks {
            if b.word as usize >= self.text.len() {
                return Err(ImageError::BlockMarkOutOfRange {
                    name: b.name(),
                    word: b.word,
                    words: self.text.len(),
                });
            }
        }
        for (i, w) in self.text.iter().enumerate() {
            let addr = abi::TEXT_BASE + 4 * i as u32;
            let disp = match w {
                TextWord::Inst(
                    MInst::Bcc { disp, .. }
                    | MInst::Ba { disp }
                    | MInst::Call { disp }
                    | MInst::Bcalc { disp, .. },
                ) => *disp,
                _ => continue,
            };
            let target = addr as i64 + 4 * disp as i64;
            if target < abi::TEXT_BASE as i64 || target >= end as i64 {
                return Err(ImageError::BranchTargetOutOfRange { addr, target, end });
            }
        }
        Ok(())
    }

    /// Number of static instructions (excluding embedded data words).
    pub fn static_inst_count(&self) -> usize {
        self.text
            .iter()
            .filter(|w| matches!(w, TextWord::Inst(_)))
            .count()
    }

    /// Produce a human-readable listing (addresses, encodings, RTLs),
    /// annotated with symbol names — handy for examples and debugging.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut by_addr: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, &addr) in &self.symbols {
            by_addr.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        for (i, (w, enc)) in self.text.iter().zip(&self.code).enumerate() {
            let addr = abi::TEXT_BASE + (i * 4) as u32;
            if let Some(names) = by_addr.get(&addr) {
                for n in names {
                    let _ = writeln!(out, "{n}:");
                }
            }
            match w {
                TextWord::Inst(inst) => {
                    let _ = writeln!(out, "  {addr:#07x}: {enc:08x}  {inst}");
                }
                TextWord::Data(v) => {
                    let _ = writeln!(out, "  {addr:#07x}: {enc:08x}  .word {v:#x}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        Program {
            machine: Machine::Baseline,
            code: vec![crate::encode(Machine::Baseline, MInst::Halt).unwrap()],
            text: vec![TextWord::Inst(MInst::Halt)],
            data: vec![],
            entry: abi::TEXT_BASE,
            symbols: [("_start".to_string(), abi::TEXT_BASE)].into(),
            blocks: vec![BlockMark {
                word: 0,
                func: "_start".to_string(),
                label: None,
            }],
        }
    }

    #[test]
    fn fetch_bounds() {
        let p = tiny();
        assert!(p.fetch(abi::TEXT_BASE).is_some());
        assert!(p.fetch(abi::TEXT_BASE + 4).is_none());
        assert!(p.fetch(abi::TEXT_BASE - 4).is_none());
        assert!(p.fetch(abi::TEXT_BASE + 1).is_none());
        assert_eq!(p.text_end(), abi::TEXT_BASE + 4);
    }

    #[test]
    fn listing_contains_symbols_and_rtl() {
        let p = tiny();
        let l = p.listing();
        assert!(l.contains("_start:"));
        assert!(l.contains("halt"));
    }

    #[test]
    fn static_inst_count_skips_data() {
        let mut p = tiny();
        p.text.push(TextWord::Data(0x1234));
        p.code.push(0x1234);
        assert_eq!(p.static_inst_count(), 1);
    }

    #[test]
    fn validate_accepts_a_well_formed_image() {
        assert_eq!(tiny().validate_image(), Ok(()));
    }

    #[test]
    fn validate_rejects_truncated_text() {
        let mut p = tiny();
        p.code.push(0); // encoded word with no decoded counterpart
        assert_eq!(
            p.validate_image(),
            Err(ImageError::TruncatedText { code: 2, text: 1 })
        );
        let msg = p.validate_image().unwrap_err().to_string();
        assert!(msg.contains("truncated"), "{msg}");
    }

    #[test]
    fn validate_rejects_unaligned_entry() {
        let mut p = tiny();
        p.entry = abi::TEXT_BASE + 2;
        assert_eq!(
            p.validate_image(),
            Err(ImageError::UnalignedEntry { entry: abi::TEXT_BASE + 2 })
        );
    }

    #[test]
    fn validate_rejects_out_of_range_entry() {
        let mut p = tiny();
        p.entry = p.text_end(); // one past the last word
        assert!(matches!(
            p.validate_image(),
            Err(ImageError::EntryOutOfRange { .. })
        ));
        p.entry = abi::TEXT_BASE - 4;
        assert!(matches!(
            p.validate_image(),
            Err(ImageError::EntryOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_block_mark_past_text() {
        let mut p = tiny();
        p.blocks.push(BlockMark {
            word: 1,
            func: "ghost".to_string(),
            label: Some(3),
        });
        let err = p.validate_image().unwrap_err();
        assert_eq!(
            err,
            ImageError::BlockMarkOutOfRange {
                name: "ghost.L3".to_string(),
                word: 1,
                words: 1,
            }
        );
        assert!(err.to_string().contains("ghost.L3"), "{err}");
    }

    #[test]
    fn validate_rejects_out_of_range_branch_targets() {
        // Forward past the end, and backward before the base — for each
        // pc-relative transfer kind.
        for inst in [
            MInst::Ba { disp: 99 },
            MInst::Ba { disp: -99 },
            MInst::Call { disp: 1000 },
            MInst::Bcc {
                cc: crate::minst::Cc::Eq,
                float: false,
                disp: -1000,
            },
        ] {
            let mut p = tiny();
            p.text.insert(0, TextWord::Inst(inst));
            p.code.insert(0, 0);
            assert!(
                matches!(
                    p.validate_image(),
                    Err(ImageError::BranchTargetOutOfRange { .. })
                ),
                "{inst:?} should be rejected"
            );
        }
        // An embedded data word is never a branch, whatever its bits.
        let mut p = tiny();
        p.text.insert(0, TextWord::Data(0xFFFF_FFFF));
        p.code.insert(0, 0xFFFF_FFFF);
        p.entry = abi::TEXT_BASE + 4;
        assert_eq!(p.validate_image(), Ok(()));
    }

    #[test]
    fn block_at_picks_the_enclosing_mark() {
        let mut p = tiny();
        // Extend the program: words 0..4, marks at words 0 and 2.
        for _ in 0..3 {
            p.text.push(TextWord::Inst(MInst::Halt));
            p.code.push(crate::encode(Machine::Baseline, MInst::Halt).unwrap());
        }
        p.blocks.push(BlockMark {
            word: 2,
            func: "main".to_string(),
            label: Some(5),
        });
        let at = |off: u32| p.block_at(abi::TEXT_BASE + off).map(|b| b.name());
        assert_eq!(at(0).as_deref(), Some("_start"));
        assert_eq!(at(4).as_deref(), Some("_start"));
        assert_eq!(at(8).as_deref(), Some("main.L5"));
        assert_eq!(at(12).as_deref(), Some("main.L5"));
        assert_eq!(at(16), None, "past text end");
        assert_eq!(p.block_at(abi::TEXT_BASE + 2), None, "unaligned");
        assert_eq!(p.block_at(abi::TEXT_BASE - 4), None, "below text");
        assert_eq!(p.block_at(abi::TEXT_BASE + 8).unwrap().addr(), abi::TEXT_BASE + 8);
    }
}
