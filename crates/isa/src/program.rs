//! Loadable program images produced by the assembler.

use std::collections::HashMap;

use crate::minst::MInst;
use crate::{abi, Machine};

/// One word of the text segment: an instruction or embedded data
/// (jump tables live in text, as in the paper's indirect-jump example).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TextWord {
    /// A decoded instruction.
    Inst(MInst),
    /// A raw data word (never executed).
    Data(u32),
}

/// A fully assembled program ready to load into an emulator.
#[derive(Debug, Clone)]
pub struct Program {
    /// The target machine.
    pub machine: Machine,
    /// Encoded text segment, one `u32` per word, loaded at
    /// [`abi::TEXT_BASE`].
    pub code: Vec<u32>,
    /// Pre-decoded text (parallel to `code`), so emulation need not
    /// re-decode on every fetch.
    pub text: Vec<TextWord>,
    /// Data segment, loaded at [`abi::DATA_BASE`].
    pub data: Vec<u8>,
    /// Entry address (the synthesized `_start` stub).
    pub entry: u32,
    /// Function and global symbol addresses.
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Base address of the text segment.
    pub fn text_base(&self) -> u32 {
        abi::TEXT_BASE
    }

    /// Address just past the last text word.
    pub fn text_end(&self) -> u32 {
        abi::TEXT_BASE + (self.code.len() * 4) as u32
    }

    /// The decoded text word at `addr`, if it is inside the text segment.
    pub fn fetch(&self, addr: u32) -> Option<&TextWord> {
        if addr < abi::TEXT_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        self.text.get(((addr - abi::TEXT_BASE) / 4) as usize)
    }

    /// Address of a symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Number of static instructions (excluding embedded data words).
    pub fn static_inst_count(&self) -> usize {
        self.text
            .iter()
            .filter(|w| matches!(w, TextWord::Inst(_)))
            .count()
    }

    /// Produce a human-readable listing (addresses, encodings, RTLs),
    /// annotated with symbol names — handy for examples and debugging.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut by_addr: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, &addr) in &self.symbols {
            by_addr.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        for (i, (w, enc)) in self.text.iter().zip(&self.code).enumerate() {
            let addr = abi::TEXT_BASE + (i * 4) as u32;
            if let Some(names) = by_addr.get(&addr) {
                for n in names {
                    let _ = writeln!(out, "{n}:");
                }
            }
            match w {
                TextWord::Inst(inst) => {
                    let _ = writeln!(out, "  {addr:#07x}: {enc:08x}  {inst}");
                }
                TextWord::Data(v) => {
                    let _ = writeln!(out, "  {addr:#07x}: {enc:08x}  .word {v:#x}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        Program {
            machine: Machine::Baseline,
            code: vec![crate::encode(Machine::Baseline, MInst::Halt).unwrap()],
            text: vec![TextWord::Inst(MInst::Halt)],
            data: vec![],
            entry: abi::TEXT_BASE,
            symbols: [("_start".to_string(), abi::TEXT_BASE)].into(),
        }
    }

    #[test]
    fn fetch_bounds() {
        let p = tiny();
        assert!(p.fetch(abi::TEXT_BASE).is_some());
        assert!(p.fetch(abi::TEXT_BASE + 4).is_none());
        assert!(p.fetch(abi::TEXT_BASE - 4).is_none());
        assert!(p.fetch(abi::TEXT_BASE + 1).is_none());
        assert_eq!(p.text_end(), abi::TEXT_BASE + 4);
    }

    #[test]
    fn listing_contains_symbols_and_rtl() {
        let p = tiny();
        let l = p.listing();
        assert!(l.contains("_start:"));
        assert!(l.contains("halt"));
    }

    #[test]
    fn static_inst_count_skips_data() {
        let mut p = tiny();
        p.text.push(TextWord::Data(0x1234));
        p.code.push(0x1234);
        assert_eq!(p.static_inst_count(), 1);
    }
}
