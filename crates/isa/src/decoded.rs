//! Predecoded operand cache: a flat, dispatch-ready form of [`MInst`].
//!
//! The emulator's threaded-dispatch tier indexes a handler table by a
//! dense [`Kind`] discriminant instead of matching on [`MInst`] per
//! dynamic instruction. Flattening happens once per program
//! ([`predecode`]) and constant-folds everything that does not depend
//! on runtime state:
//!
//! * `Alu` is split per operation *and* per `src2` shape, so handlers
//!   never re-inspect [`Src2`];
//! * PC-relative displacements (`Bcc`, `Ba`, `Call`, `Bcalc`) become
//!   absolute byte addresses;
//! * `sethi` immediates are pre-shifted;
//! * condition codes are stored as their [`Cc::code`] index.
//!
//! The flattening is **machine-aware**: an instruction that is illegal
//! for the program's machine flattens to [`Kind::Wrong`], preserving
//! the interpreter's [`WrongMachine`] behaviour, and embedded data
//! words flatten to [`Kind::Data`].
//!
//! [`WrongMachine`]: crate::Machine

use crate::minst::{MInst, MemWidth, Src2};
use crate::program::{Program, TextWord};
use crate::Machine;

/// Dense discriminant of a [`Decoded`] word. `RR`/`RI` suffixes name
/// the register/immediate `src2` shapes of the original instruction.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// An embedded data word (jump table) — executing it is an error.
    Data = 0,
    /// An instruction illegal for the program's machine.
    Wrong,
    Nop,
    Halt,
    /// `imm` holds the already-shifted high half.
    Sethi,
    AddRR,
    AddRI,
    SubRR,
    SubRI,
    MulRR,
    MulRI,
    DivRR,
    DivRI,
    RemRR,
    RemRI,
    AndRR,
    AndRI,
    OrRR,
    OrRI,
    XorRR,
    XorRI,
    SllRR,
    SllRI,
    SrlRR,
    SrlRI,
    SraRR,
    SraRI,
    OrLoRR,
    OrLoRI,
    LoadByte,
    LoadWord,
    LoadF,
    StoreByte,
    StoreWord,
    StoreF,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FNeg,
    FMov,
    ItoF,
    FtoI,
    // ---- baseline machine only ----
    CmpRR,
    CmpRI,
    FCmp,
    /// Integer conditional branch; `imm` holds the absolute target.
    Bcc,
    /// Float conditional branch; `imm` holds the absolute target.
    FBcc,
    Ba,
    Call,
    Jmpl,
    // ---- branch-register machine only ----
    /// `imm` holds the absolute target.
    Bcalc,
    CmpBrRR,
    CmpBrRI,
    FCmpBr,
    BMovB,
    BMovR,
    BLoadRR,
    BLoadRI,
    BStore,
}

/// Number of [`Kind`] values (handler-table length).
pub const KIND_COUNT: usize = Kind::BStore as usize + 1;

impl Kind {
    /// Whether executing this kind writes a branch register through the
    /// emulator's prefetch-tracking assignment path (`bcalc`, the
    /// `bmov` forms, and `bload` — *not* the compare-with-assignment,
    /// whose `b[7]` write is not an i-cache prefetch).
    pub fn assigns_breg(self) -> bool {
        matches!(
            self,
            Kind::Bcalc | Kind::BMovB | Kind::BMovR | Kind::BLoadRR | Kind::BLoadRI
        )
    }

    /// Whether this is a compare-with-assignment (the Section 9 "fast
    /// compare" when it also carries a `br` transfer).
    pub fn is_cmpbr(self) -> bool {
        matches!(self, Kind::CmpBrRR | Kind::CmpBrRI | Kind::FCmpBr)
    }

    /// Whether this is baseline control flow (delayed-branch family).
    pub fn is_baseline_control(self) -> bool {
        matches!(
            self,
            Kind::Bcc | Kind::FBcc | Kind::Ba | Kind::Call | Kind::Jmpl
        )
    }

    /// Whether executing this kind writes memory (and so carries a
    /// store to the emulator's retire hook).
    pub fn is_store(self) -> bool {
        matches!(
            self,
            Kind::StoreByte | Kind::StoreWord | Kind::StoreF | Kind::BStore
        )
    }
}

/// One predecoded text word: 12 bytes, fully resolved operands.
///
/// Field meaning depends on `kind` (see [`flatten`]); by convention `a`
/// is the destination (or store source), `b`/`c` are sources, `d` is a
/// condition-code index, and `imm` is the immediate / offset / absolute
/// branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    pub kind: Kind,
    pub a: u8,
    pub b: u8,
    pub c: u8,
    /// Condition-code index in [`Cc::ALL`](crate::Cc::ALL) order.
    pub d: u8,
    /// The branch-register transfer field (0 = fall through).
    pub br: u8,
    pub imm: i32,
}

impl Decoded {
    const EMPTY: Decoded = Decoded {
        kind: Kind::Wrong,
        a: 0,
        b: 0,
        c: 0,
        d: 0,
        br: 0,
        imm: 0,
    };

    fn op(kind: Kind) -> Decoded {
        Decoded {
            kind,
            ..Decoded::EMPTY
        }
    }
}

fn alu_kinds(op: crate::AluOp) -> (Kind, Kind) {
    use crate::AluOp as A;
    match op {
        A::Add => (Kind::AddRR, Kind::AddRI),
        A::Sub => (Kind::SubRR, Kind::SubRI),
        A::Mul => (Kind::MulRR, Kind::MulRI),
        A::Div => (Kind::DivRR, Kind::DivRI),
        A::Rem => (Kind::RemRR, Kind::RemRI),
        A::And => (Kind::AndRR, Kind::AndRI),
        A::Or => (Kind::OrRR, Kind::OrRI),
        A::Xor => (Kind::XorRR, Kind::XorRI),
        A::Sll => (Kind::SllRR, Kind::SllRI),
        A::Srl => (Kind::SrlRR, Kind::SrlRI),
        A::Sra => (Kind::SraRR, Kind::SraRI),
        A::OrLo => (Kind::OrLoRR, Kind::OrLoRI),
    }
}

/// Flatten one instruction at byte address `pc` for `machine`.
/// Instructions of the *other* machine flatten to [`Kind::Wrong`].
pub fn flatten(machine: Machine, inst: MInst, pc: u32) -> Decoded {
    let z = Decoded::EMPTY;
    let abs = |disp: i32| pc.wrapping_add((disp as u32) << 2) as i32;
    let base_only = machine == Machine::Baseline;
    let br_only = machine == Machine::BranchReg;
    match inst {
        MInst::Nop { br } => Decoded {
            kind: Kind::Nop,
            br,
            ..z
        },
        MInst::Halt => Decoded::op(Kind::Halt),
        MInst::Alu {
            op,
            rd,
            rs1,
            src2,
            br,
        } => {
            let (rr, ri) = alu_kinds(op);
            match src2 {
                Src2::Reg(r) => Decoded {
                    kind: rr,
                    a: rd.0,
                    b: rs1.0,
                    c: r.0,
                    br,
                    ..z
                },
                Src2::Imm(v) => Decoded {
                    kind: ri,
                    a: rd.0,
                    b: rs1.0,
                    br,
                    imm: v,
                    ..z
                },
            }
        }
        MInst::Sethi { rd, imm } => Decoded {
            kind: Kind::Sethi,
            a: rd.0,
            imm: (imm << 11) as i32,
            ..z
        },
        MInst::Load {
            w,
            rd,
            rs1,
            off,
            br,
        } => Decoded {
            kind: match w {
                MemWidth::Byte => Kind::LoadByte,
                MemWidth::Word => Kind::LoadWord,
            },
            a: rd.0,
            b: rs1.0,
            br,
            imm: off,
            ..z
        },
        MInst::LoadF { fd, rs1, off, br } => Decoded {
            kind: Kind::LoadF,
            a: fd.0,
            b: rs1.0,
            br,
            imm: off,
            ..z
        },
        MInst::Store {
            w,
            rs,
            rs1,
            off,
            br,
        } => Decoded {
            kind: match w {
                MemWidth::Byte => Kind::StoreByte,
                MemWidth::Word => Kind::StoreWord,
            },
            a: rs.0,
            b: rs1.0,
            br,
            imm: off,
            ..z
        },
        MInst::StoreF { fs, rs1, off, br } => Decoded {
            kind: Kind::StoreF,
            a: fs.0,
            b: rs1.0,
            br,
            imm: off,
            ..z
        },
        MInst::Fpu {
            op,
            fd,
            fs1,
            fs2,
            br,
        } => Decoded {
            kind: match op {
                crate::FpuOp::FAdd => Kind::FAdd,
                crate::FpuOp::FSub => Kind::FSub,
                crate::FpuOp::FMul => Kind::FMul,
                crate::FpuOp::FDiv => Kind::FDiv,
            },
            a: fd.0,
            b: fs1.0,
            c: fs2.0,
            br,
            ..z
        },
        MInst::FNeg { fd, fs, br } => Decoded {
            kind: Kind::FNeg,
            a: fd.0,
            b: fs.0,
            br,
            ..z
        },
        MInst::FMov { fd, fs, br } => Decoded {
            kind: Kind::FMov,
            a: fd.0,
            b: fs.0,
            br,
            ..z
        },
        MInst::ItoF { fd, rs, br } => Decoded {
            kind: Kind::ItoF,
            a: fd.0,
            b: rs.0,
            br,
            ..z
        },
        MInst::FtoI { rd, fs, br } => Decoded {
            kind: Kind::FtoI,
            a: rd.0,
            b: fs.0,
            br,
            ..z
        },

        MInst::Cmp { rs1, src2 } if base_only => match src2 {
            Src2::Reg(r) => Decoded {
                kind: Kind::CmpRR,
                b: rs1.0,
                c: r.0,
                ..z
            },
            Src2::Imm(v) => Decoded {
                kind: Kind::CmpRI,
                b: rs1.0,
                imm: v,
                ..z
            },
        },
        MInst::FCmp { fs1, fs2 } if base_only => Decoded {
            kind: Kind::FCmp,
            b: fs1.0,
            c: fs2.0,
            ..z
        },
        MInst::Bcc { cc, float, disp } if base_only => Decoded {
            kind: if float { Kind::FBcc } else { Kind::Bcc },
            d: cc.code() as u8,
            imm: abs(disp),
            ..z
        },
        MInst::Ba { disp } if base_only => Decoded {
            kind: Kind::Ba,
            imm: abs(disp),
            ..z
        },
        MInst::Call { disp } if base_only => Decoded {
            kind: Kind::Call,
            imm: abs(disp),
            ..z
        },
        MInst::Jmpl { rd, rs1, off } if base_only => Decoded {
            kind: Kind::Jmpl,
            a: rd.0,
            b: rs1.0,
            imm: off,
            ..z
        },

        MInst::Bcalc { bd, disp, br } if br_only => Decoded {
            kind: Kind::Bcalc,
            a: bd.0,
            br,
            imm: abs(disp),
            ..z
        },
        MInst::CmpBr {
            cc,
            bt,
            rs1,
            src2,
            br,
        } if br_only => {
            let d = cc.code() as u8;
            match src2 {
                Src2::Reg(r) => Decoded {
                    kind: Kind::CmpBrRR,
                    a: bt.0,
                    b: rs1.0,
                    c: r.0,
                    d,
                    br,
                    ..z
                },
                Src2::Imm(v) => Decoded {
                    kind: Kind::CmpBrRI,
                    a: bt.0,
                    b: rs1.0,
                    d,
                    br,
                    imm: v,
                    ..z
                },
            }
        }
        MInst::FCmpBr {
            cc,
            bt,
            fs1,
            fs2,
            br,
        } if br_only => Decoded {
            kind: Kind::FCmpBr,
            a: bt.0,
            b: fs1.0,
            c: fs2.0,
            d: cc.code() as u8,
            br,
            ..z
        },
        MInst::BMovB { bd, bs, br } if br_only => Decoded {
            kind: Kind::BMovB,
            a: bd.0,
            b: bs.0,
            br,
            ..z
        },
        MInst::BMovR { bd, rs1, off, br } if br_only => Decoded {
            kind: Kind::BMovR,
            a: bd.0,
            b: rs1.0,
            br,
            imm: off,
            ..z
        },
        MInst::BLoad { bd, rs1, src2, br } if br_only => match src2 {
            Src2::Reg(r) => Decoded {
                kind: Kind::BLoadRR,
                a: bd.0,
                b: rs1.0,
                c: r.0,
                br,
                ..z
            },
            Src2::Imm(v) => Decoded {
                kind: Kind::BLoadRI,
                a: bd.0,
                b: rs1.0,
                br,
                imm: v,
                ..z
            },
        },
        MInst::BStore { bs, rs1, off, br } if br_only => Decoded {
            kind: Kind::BStore,
            a: bs.0,
            b: rs1.0,
            br,
            imm: off,
            ..z
        },

        // The remaining combinations are instructions of the other
        // machine: preserve the interpreter's WrongMachine error.
        _ => Decoded::op(Kind::Wrong),
    }
}

/// Predecode a whole program into the flat dispatch form, one entry per
/// text word, data words included (as [`Kind::Data`]).
pub fn predecode(prog: &Program) -> Vec<Decoded> {
    let base = prog.text_base();
    prog.text
        .iter()
        .enumerate()
        .map(|(i, w)| match w {
            TextWord::Data(_) => Decoded::op(Kind::Data),
            TextWord::Inst(inst) => flatten(prog.machine, *inst, base + (i as u32) * 4),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, BReg, Cc, FReg, Reg};

    #[test]
    fn decoded_is_small() {
        assert_eq!(std::mem::size_of::<Decoded>(), 12);
    }

    #[test]
    fn alu_splits_per_op_and_src2_shape() {
        let rr = flatten(
            Machine::Baseline,
            MInst::Alu {
                op: AluOp::Sub,
                rd: Reg(3),
                rs1: Reg(4),
                src2: Src2::Reg(Reg(5)),
                br: 0,
            },
            0x1000,
        );
        assert_eq!(rr.kind, Kind::SubRR);
        assert_eq!((rr.a, rr.b, rr.c), (3, 4, 5));
        let ri = flatten(
            Machine::BranchReg,
            MInst::Alu {
                op: AluOp::Srl,
                rd: Reg(1),
                rs1: Reg(2),
                src2: Src2::Imm(-9),
                br: 6,
            },
            0x1000,
        );
        assert_eq!(ri.kind, Kind::SrlRI);
        assert_eq!(ri.imm, -9);
        assert_eq!(ri.br, 6);
    }

    #[test]
    fn branch_targets_become_absolute() {
        let d = flatten(
            Machine::Baseline,
            MInst::Bcc {
                cc: Cc::Lt,
                float: false,
                disp: -2,
            },
            0x1010,
        );
        assert_eq!(d.kind, Kind::Bcc);
        assert_eq!(d.imm as u32, 0x1008);
        assert_eq!(d.d, Cc::Lt.code() as u8);
        let b = flatten(
            Machine::BranchReg,
            MInst::Bcalc {
                bd: BReg(2),
                disp: 3,
                br: 1,
            },
            0x1000,
        );
        assert_eq!(b.kind, Kind::Bcalc);
        assert_eq!(b.imm as u32, 0x100c);
        assert_eq!((b.a, b.br), (2, 1));
    }

    #[test]
    fn sethi_immediate_is_preshifted() {
        let d = flatten(
            Machine::Baseline,
            MInst::Sethi { rd: Reg(9), imm: 7 },
            0x1000,
        );
        assert_eq!(d.imm, 7 << 11);
    }

    #[test]
    fn wrong_machine_instructions_flatten_to_wrong() {
        // Baseline-only control on the BR machine and vice versa.
        let d = flatten(Machine::BranchReg, MInst::Ba { disp: 0 }, 0x1000);
        assert_eq!(d.kind, Kind::Wrong);
        let d = flatten(
            Machine::Baseline,
            MInst::BMovB {
                bd: BReg(1),
                bs: BReg(7),
                br: 0,
            },
            0x1000,
        );
        assert_eq!(d.kind, Kind::Wrong);
        let d = flatten(
            Machine::Baseline,
            MInst::FCmpBr {
                cc: Cc::Ge,
                bt: BReg(1),
                fs1: FReg(0),
                fs2: FReg(1),
                br: 0,
            },
            0x1000,
        );
        assert_eq!(d.kind, Kind::Wrong);
    }

    #[test]
    fn kind_classifications_are_consistent() {
        assert!(Kind::Bcalc.assigns_breg());
        assert!(Kind::BLoadRI.assigns_breg());
        assert!(!Kind::CmpBrRR.assigns_breg());
        assert!(!Kind::BStore.assigns_breg());
        assert!(Kind::FCmpBr.is_cmpbr());
        assert!(!Kind::FCmp.is_cmpbr());
        assert!(Kind::Jmpl.is_baseline_control());
        assert!(!Kind::Halt.is_baseline_control());
        assert!((Kind::BStore as usize) < KIND_COUNT);
    }
}
