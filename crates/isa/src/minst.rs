//! Machine instructions shared by the baseline and branch-register
//! machines, displayed in the paper's RTL notation.

use std::fmt;

/// A general-purpose data register (`r[n]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// A floating-point register (`f[n]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(pub u8);

/// A branch register (`b[n]`, branch-register machine only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BReg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r[{}]", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f[{}]", self.0)
    }
}

impl fmt::Display for BReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b[{}]", self.0)
    }
}

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    /// `rd = rs1 | zext(imm)` — combines the low address half after
    /// `sethi` (the immediate is treated as unsigned).
    OrLo,
}

impl AluOp {
    /// RTL operator spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            AluOp::Add => "+",
            AluOp::Sub => "-",
            AluOp::Mul => "*",
            AluOp::Div => "/",
            AluOp::Rem => "%",
            AluOp::And => "&",
            AluOp::Or => "|",
            AluOp::Xor => "^",
            AluOp::Sll => "<<",
            AluOp::Srl => ">>u",
            AluOp::Sra => ">>",
            AluOp::OrLo => "|lo",
        }
    }
}

/// Floating-point ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    FAdd,
    FSub,
    FMul,
    FDiv,
}

impl FpuOp {
    /// RTL operator spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            FpuOp::FAdd => "+f",
            FpuOp::FSub => "-f",
            FpuOp::FMul => "*f",
            FpuOp::FDiv => "/f",
        }
    }
}

/// Comparison conditions (integer and float variants share the code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cc {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cc {
    /// All conditions, in encoding order.
    pub const ALL: [Cc; 6] = [Cc::Eq, Cc::Ne, Cc::Lt, Cc::Le, Cc::Gt, Cc::Ge];

    /// 3-bit encoding.
    pub fn code(self) -> u32 {
        match self {
            Cc::Eq => 0,
            Cc::Ne => 1,
            Cc::Lt => 2,
            Cc::Le => 3,
            Cc::Gt => 4,
            Cc::Ge => 5,
        }
    }

    /// Decode a 3-bit condition code.
    pub fn from_code(c: u32) -> Option<Cc> {
        Cc::ALL.get(c as usize).copied()
    }

    /// The complementary condition.
    pub fn negate(self) -> Cc {
        match self {
            Cc::Eq => Cc::Ne,
            Cc::Ne => Cc::Eq,
            Cc::Lt => Cc::Ge,
            Cc::Le => Cc::Gt,
            Cc::Gt => Cc::Le,
            Cc::Ge => Cc::Lt,
        }
    }

    /// Evaluate over signed 32-bit integers.
    pub fn eval_int(self, a: i32, b: i32) -> bool {
        match self {
            Cc::Eq => a == b,
            Cc::Ne => a != b,
            Cc::Lt => a < b,
            Cc::Le => a <= b,
            Cc::Gt => a > b,
            Cc::Ge => a >= b,
        }
    }

    /// Evaluate over floats.
    pub fn eval_float(self, a: f32, b: f32) -> bool {
        match self {
            Cc::Eq => a == b,
            Cc::Ne => a != b,
            Cc::Lt => a < b,
            Cc::Le => a <= b,
            Cc::Gt => a > b,
            Cc::Ge => a >= b,
        }
    }
}

impl fmt::Display for Cc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cc::Eq => "==",
            Cc::Ne => "!=",
            Cc::Lt => "<",
            Cc::Le => "<=",
            Cc::Gt => ">",
            Cc::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Second operand of a three-address instruction: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src2 {
    Reg(Reg),
    Imm(i32),
}

impl fmt::Display for Src2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src2::Reg(r) => write!(f, "{r}"),
            Src2::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// Unsigned byte (`B[...]` in the paper's RTLs).
    Byte,
    /// 32-bit word (`L[...]`).
    Word,
}

/// A machine instruction, fully resolved (no symbolic references).
///
/// The `br` field present on most variants is the branch-register field of
/// the branch-register machine; it must be 0 when targeting the baseline.
/// Baseline-only variants (`Bcc`, `Ba`, `Call`, `Jmpl`, `Cmp`, `FCmp`) and
/// branch-register-only variants (`Bcalc`, `CmpBr`, `FCmpBr`, `BMovB`,
/// `BMovR`, `BLoad`, `BStore`) are rejected by the encoder for the wrong
/// machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MInst {
    /// No operation (may still carry a `br` transfer on the BR machine).
    Nop { br: u8 },
    /// Stop the emulation; the exit value is read from `r[1]`.
    Halt,
    /// `rd = rs1 op src2`.
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        src2: Src2,
        br: u8,
    },
    /// `rd = imm << 11` (set the high 21 address bits). Carries no `br`
    /// field even on the BR machine (paper Figure 11, Format 2).
    Sethi { rd: Reg, imm: u32 },
    /// `rd = M[rs1 + off]` (byte loads zero-extend).
    Load {
        w: MemWidth,
        rd: Reg,
        rs1: Reg,
        off: i32,
        br: u8,
    },
    /// `fd = MF[rs1 + off]`.
    LoadF { fd: FReg, rs1: Reg, off: i32, br: u8 },
    /// `M[rs1 + off] = rs`.
    Store {
        w: MemWidth,
        rs: Reg,
        rs1: Reg,
        off: i32,
        br: u8,
    },
    /// `MF[rs1 + off] = fs`.
    StoreF { fs: FReg, rs1: Reg, off: i32, br: u8 },
    /// `fd = fs1 op fs2`.
    Fpu {
        op: FpuOp,
        fd: FReg,
        fs1: FReg,
        fs2: FReg,
        br: u8,
    },
    /// `fd = -fs`.
    FNeg { fd: FReg, fs: FReg, br: u8 },
    /// `fd = fs`.
    FMov { fd: FReg, fs: FReg, br: u8 },
    /// `fd = float(rs)`.
    ItoF { fd: FReg, rs: Reg, br: u8 },
    /// `rd = int(fs)` (truncating).
    FtoI { rd: Reg, fs: FReg, br: u8 },

    // ---- baseline machine only ----
    /// `cc = rs1 ? src2` — set the integer condition codes.
    Cmp { rs1: Reg, src2: Src2 },
    /// `fcc = fs1 ? fs2` — set the float condition codes.
    FCmp { fs1: FReg, fs2: FReg },
    /// Delayed conditional branch on the (f)cc: `PC = cc -> pc + disp*4`.
    Bcc { cc: Cc, float: bool, disp: i32 },
    /// Delayed unconditional branch: `PC = pc + disp*4`.
    Ba { disp: i32 },
    /// Delayed call: `r[31] = pc + 8; PC = pc + disp*4`.
    Call { disp: i32 },
    /// Delayed indirect jump with link: `rd = pc + 8; PC = rs1 + off`.
    Jmpl { rd: Reg, rs1: Reg, off: i32 },

    // ---- branch-register machine only ----
    /// `b[bd] = pc + disp*4` — branch-target address calculation
    /// (prefetches the target into `i[bd]`).
    Bcalc { bd: BReg, disp: i32, br: u8 },
    /// `b[7] = rs1 cc src2 -> b[bt] | b[0]` — compare with assignment.
    CmpBr {
        cc: Cc,
        bt: BReg,
        rs1: Reg,
        src2: Src2,
        br: u8,
    },
    /// Float compare with assignment.
    FCmpBr {
        cc: Cc,
        bt: BReg,
        fs1: FReg,
        fs2: FReg,
        br: u8,
    },
    /// `b[bd] = b[bs]`.
    BMovB { bd: BReg, bs: BReg, br: u8 },
    /// `b[bd] = rs1 + off` — move a computed address into a branch
    /// register (used with `sethi` for far targets such as calls).
    BMovR { bd: BReg, rs1: Reg, off: i32, br: u8 },
    /// `b[bd] = L[rs1 + src2]` — load a branch target from memory
    /// (indirect jumps through switch tables; register restores).
    BLoad { bd: BReg, rs1: Reg, src2: Src2, br: u8 },
    /// `M[rs1 + off] = b[bs]` — spill a branch register.
    BStore { bs: BReg, rs1: Reg, off: i32, br: u8 },
}

impl MInst {
    /// The `br` field (0 for baseline-only instructions and `sethi`).
    pub fn br(self) -> u8 {
        match self {
            MInst::Nop { br }
            | MInst::Alu { br, .. }
            | MInst::Load { br, .. }
            | MInst::LoadF { br, .. }
            | MInst::Store { br, .. }
            | MInst::StoreF { br, .. }
            | MInst::Fpu { br, .. }
            | MInst::FNeg { br, .. }
            | MInst::FMov { br, .. }
            | MInst::ItoF { br, .. }
            | MInst::FtoI { br, .. }
            | MInst::Bcalc { br, .. }
            | MInst::CmpBr { br, .. }
            | MInst::FCmpBr { br, .. }
            | MInst::BMovB { br, .. }
            | MInst::BMovR { br, .. }
            | MInst::BLoad { br, .. }
            | MInst::BStore { br, .. } => br,
            _ => 0,
        }
    }

    /// Set the `br` field.
    ///
    /// # Panics
    ///
    /// Panics if the variant cannot carry a transfer (`sethi`, `halt`,
    /// and all baseline-only control flow).
    pub fn with_br(mut self, new_br: u8) -> MInst {
        match &mut self {
            MInst::Nop { br }
            | MInst::Alu { br, .. }
            | MInst::Load { br, .. }
            | MInst::LoadF { br, .. }
            | MInst::Store { br, .. }
            | MInst::StoreF { br, .. }
            | MInst::Fpu { br, .. }
            | MInst::FNeg { br, .. }
            | MInst::FMov { br, .. }
            | MInst::ItoF { br, .. }
            | MInst::FtoI { br, .. }
            | MInst::Bcalc { br, .. }
            | MInst::CmpBr { br, .. }
            | MInst::FCmpBr { br, .. }
            | MInst::BMovB { br, .. }
            | MInst::BMovR { br, .. }
            | MInst::BLoad { br, .. }
            | MInst::BStore { br, .. } => *br = new_br,
            other => panic!("{other:?} cannot carry a br field"),
        }
        self
    }

    /// Whether this variant can carry a `br` transfer on the BR machine.
    pub fn can_carry_br(self) -> bool {
        !matches!(
            self,
            MInst::Sethi { .. }
                | MInst::Halt
                | MInst::Cmp { .. }
                | MInst::FCmp { .. }
                | MInst::Bcc { .. }
                | MInst::Ba { .. }
                | MInst::Call { .. }
                | MInst::Jmpl { .. }
        )
    }

    /// Whether this instruction references data memory (the paper's
    /// "data memory references" metric counts exactly these).
    pub fn is_data_ref(self) -> bool {
        matches!(
            self,
            MInst::Load { .. }
                | MInst::LoadF { .. }
                | MInst::Store { .. }
                | MInst::StoreF { .. }
                | MInst::BLoad { .. }
                | MInst::BStore { .. }
        )
    }

    /// Whether this is a baseline control-transfer instruction.
    pub fn is_baseline_transfer(self) -> bool {
        matches!(
            self,
            MInst::Bcc { .. } | MInst::Ba { .. } | MInst::Call { .. } | MInst::Jmpl { .. }
        )
    }
}

impl fmt::Display for MInst {
    /// RTL notation closely following the paper's Figures 3 and 4.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show_br = |f: &mut fmt::Formatter<'_>, br: u8| -> fmt::Result {
            if br != 0 {
                write!(f, "; b[0]=b[{br}]")
            } else {
                Ok(())
            }
        };
        match self {
            MInst::Nop { br } => {
                write!(f, "NL=NL")?;
                show_br(f, *br)
            }
            MInst::Halt => write!(f, "halt"),
            MInst::Alu {
                op,
                rd,
                rs1,
                src2,
                br,
            } => {
                write!(f, "{rd}={rs1}{}{src2}", op.symbol())?;
                show_br(f, *br)
            }
            MInst::Sethi { rd, imm } => write!(f, "{rd}=HI({:#x})", imm << 11),
            MInst::Load {
                w,
                rd,
                rs1,
                off,
                br,
            } => {
                let m = match w {
                    MemWidth::Byte => "B",
                    MemWidth::Word => "L",
                };
                write!(f, "{rd}={m}[{rs1}+{off}]")?;
                show_br(f, *br)
            }
            MInst::LoadF { fd, rs1, off, br } => {
                write!(f, "{fd}=F[{rs1}+{off}]")?;
                show_br(f, *br)
            }
            MInst::Store {
                w,
                rs,
                rs1,
                off,
                br,
            } => {
                let m = match w {
                    MemWidth::Byte => "B",
                    MemWidth::Word => "L",
                };
                write!(f, "{m}[{rs1}+{off}]={rs}")?;
                show_br(f, *br)
            }
            MInst::StoreF { fs, rs1, off, br } => {
                write!(f, "F[{rs1}+{off}]={fs}")?;
                show_br(f, *br)
            }
            MInst::Fpu {
                op,
                fd,
                fs1,
                fs2,
                br,
            } => {
                write!(f, "{fd}={fs1}{}{fs2}", op.symbol())?;
                show_br(f, *br)
            }
            MInst::FNeg { fd, fs, br } => {
                write!(f, "{fd}=-{fs}")?;
                show_br(f, *br)
            }
            MInst::FMov { fd, fs, br } => {
                write!(f, "{fd}={fs}")?;
                show_br(f, *br)
            }
            MInst::ItoF { fd, rs, br } => {
                write!(f, "{fd}=float({rs})")?;
                show_br(f, *br)
            }
            MInst::FtoI { rd, fs, br } => {
                write!(f, "{rd}=int({fs})")?;
                show_br(f, *br)
            }
            MInst::Cmp { rs1, src2 } => write!(f, "cc={rs1}?{src2}"),
            MInst::FCmp { fs1, fs2 } => write!(f, "fcc={fs1}?{fs2}"),
            MInst::Bcc { cc, float, disp } => {
                let c = if *float { "fcc" } else { "cc" };
                write!(f, "PC={c}{cc}->pc{disp:+}w")
            }
            MInst::Ba { disp } => write!(f, "PC=pc{disp:+}w"),
            MInst::Call { disp } => write!(f, "r[31]=pc+8; PC=pc{disp:+}w"),
            MInst::Jmpl { rd, rs1, off } => write!(f, "{rd}=pc+8; PC={rs1}+{off}"),
            MInst::Bcalc { bd, disp, br } => {
                write!(f, "{bd}=pc{disp:+}w")?;
                show_br(f, *br)
            }
            MInst::CmpBr {
                cc,
                bt,
                rs1,
                src2,
                br,
            } => {
                write!(f, "b[7]={rs1}{cc}{src2}->{bt}|b[0]")?;
                show_br(f, *br)
            }
            MInst::FCmpBr {
                cc,
                bt,
                fs1,
                fs2,
                br,
            } => {
                write!(f, "b[7]={fs1}{cc}{fs2}->{bt}|b[0]")?;
                show_br(f, *br)
            }
            MInst::BMovB { bd, bs, br } => {
                write!(f, "{bd}={bs}")?;
                show_br(f, *br)
            }
            MInst::BMovR { bd, rs1, off, br } => {
                write!(f, "{bd}={rs1}+{off}")?;
                show_br(f, *br)
            }
            MInst::BLoad { bd, rs1, src2, br } => {
                write!(f, "{bd}=L[{rs1}+{src2}]")?;
                show_br(f, *br)
            }
            MInst::BStore { bs, rs1, off, br } => {
                write!(f, "L[{rs1}+{off}]={bs}")?;
                show_br(f, *br)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_code_roundtrip() {
        for c in Cc::ALL {
            assert_eq!(Cc::from_code(c.code()), Some(c));
        }
        assert_eq!(Cc::from_code(7), None);
    }

    #[test]
    fn cc_negate_complements() {
        for c in Cc::ALL {
            for (a, b) in [(1, 2), (2, 2), (3, 1)] {
                assert_ne!(c.eval_int(a, b), c.negate().eval_int(a, b));
            }
        }
    }

    #[test]
    fn br_field_accessors() {
        let i = MInst::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(2),
            src2: Src2::Imm(3),
            br: 0,
        };
        assert_eq!(i.br(), 0);
        assert_eq!(i.with_br(5).br(), 5);
        assert!(i.can_carry_br());
        assert!(!MInst::Sethi { rd: Reg(1), imm: 0 }.can_carry_br());
        assert!(!MInst::Halt.can_carry_br());
    }

    #[test]
    #[should_panic(expected = "cannot carry")]
    fn sethi_rejects_br() {
        let _ = MInst::Sethi { rd: Reg(1), imm: 0 }.with_br(1);
    }

    #[test]
    fn data_reference_classification() {
        assert!(MInst::Load {
            w: MemWidth::Word,
            rd: Reg(1),
            rs1: Reg(2),
            off: 0,
            br: 0
        }
        .is_data_ref());
        assert!(MInst::BStore {
            bs: BReg(1),
            rs1: Reg(14),
            off: 4,
            br: 0
        }
        .is_data_ref());
        assert!(!MInst::Nop { br: 0 }.is_data_ref());
        assert!(!MInst::Bcalc {
            bd: BReg(1),
            disp: 2,
            br: 0
        }
        .is_data_ref());
    }

    #[test]
    fn every_variant_displays_nonempty_rtl() {
        let all = [
            MInst::Nop { br: 0 },
            MInst::Halt,
            MInst::Alu {
                op: AluOp::Sub,
                rd: Reg(1),
                rs1: Reg(2),
                src2: Src2::Reg(Reg(3)),
                br: 1,
            },
            MInst::Sethi { rd: Reg(4), imm: 7 },
            MInst::Load {
                w: MemWidth::Byte,
                rd: Reg(1),
                rs1: Reg(2),
                off: -4,
                br: 0,
            },
            MInst::LoadF {
                fd: FReg(1),
                rs1: Reg(2),
                off: 0,
                br: 0,
            },
            MInst::Store {
                w: MemWidth::Word,
                rs: Reg(1),
                rs1: Reg(2),
                off: 8,
                br: 0,
            },
            MInst::StoreF {
                fs: FReg(1),
                rs1: Reg(2),
                off: 8,
                br: 0,
            },
            MInst::Fpu {
                op: FpuOp::FMul,
                fd: FReg(1),
                fs1: FReg(2),
                fs2: FReg(3),
                br: 0,
            },
            MInst::FNeg {
                fd: FReg(1),
                fs: FReg(2),
                br: 0,
            },
            MInst::FMov {
                fd: FReg(1),
                fs: FReg(2),
                br: 0,
            },
            MInst::ItoF {
                fd: FReg(1),
                rs: Reg(2),
                br: 0,
            },
            MInst::FtoI {
                rd: Reg(1),
                fs: FReg(2),
                br: 0,
            },
            MInst::Cmp {
                rs1: Reg(1),
                src2: Src2::Imm(0),
            },
            MInst::FCmp {
                fs1: FReg(1),
                fs2: FReg(2),
            },
            MInst::Bcc {
                cc: Cc::Ne,
                float: false,
                disp: 4,
            },
            MInst::Ba { disp: -4 },
            MInst::Call { disp: 100 },
            MInst::Jmpl {
                rd: Reg(0),
                rs1: Reg(31),
                off: 0,
            },
            MInst::Bcalc {
                bd: BReg(2),
                disp: 6,
                br: 0,
            },
            MInst::CmpBr {
                cc: Cc::Lt,
                bt: BReg(2),
                rs1: Reg(5),
                src2: Src2::Imm(0),
                br: 0,
            },
            MInst::FCmpBr {
                cc: Cc::Gt,
                bt: BReg(2),
                fs1: FReg(1),
                fs2: FReg(2),
                br: 0,
            },
            MInst::BMovB {
                bd: BReg(1),
                bs: BReg(7),
                br: 0,
            },
            MInst::BMovR {
                bd: BReg(3),
                rs1: Reg(13),
                off: 16,
                br: 0,
            },
            MInst::BLoad {
                bd: BReg(3),
                rs1: Reg(1),
                src2: Src2::Reg(Reg(2)),
                br: 0,
            },
            MInst::BStore {
                bs: BReg(1),
                rs1: Reg(14),
                off: 4,
                br: 0,
            },
        ];
        for i in all {
            let s = i.to_string();
            assert!(!s.is_empty(), "{i:?}");
            // Transfers render the paper's `b[0]=b[n]` notation.
            if i.br() != 0 {
                assert!(s.contains("b[0]=b["), "{s}");
            }
        }
    }

    #[test]
    fn rtl_display_matches_paper_flavor() {
        let add = MInst::Alu {
            op: AluOp::Add,
            rd: Reg(2),
            rs1: Reg(2),
            src2: Src2::Imm(1),
            br: 0,
        };
        assert_eq!(add.to_string(), "r[2]=r[2]+1");
        let jump = MInst::Nop { br: 2 };
        assert_eq!(jump.to_string(), "NL=NL; b[0]=b[2]");
        let cmp = MInst::CmpBr {
            cc: Cc::Ne,
            bt: BReg(2),
            rs1: Reg(0),
            src2: Src2::Imm(0),
            br: 0,
        };
        assert_eq!(cmp.to_string(), "b[7]=r[0]!=0->b[2]|b[0]");
    }
}
