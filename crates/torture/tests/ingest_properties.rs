//! Property tests for the RV32I ingest path — the acceptance gate for
//! the foreign-ISA translator:
//!
//! * 1000 seeded instruction streams execute with **zero divergence**
//!   across the reference interpreter, the translated baseline binary,
//!   and the translated branch-register binary (exit value, full final
//!   guest memory, and the guest store-event stream all equal);
//! * every image in the checked-in regression corpus
//!   (`tests/corpus/rv32/*.hex`) replays clean with the stage verifier
//!   on;
//! * the NOP-out minimizer preserves a genuine wrong-code failure.

use br_torture::{check_rv32, generate_rv32, iter_seed, minimize_rv32, rv32};

const FUEL: u64 = 1 << 20;

#[test]
fn thousand_seeded_streams_have_zero_divergence() {
    let idxs: Vec<u64> = (0..1000).collect();
    let jobs = br_core::parallel::available_jobs();
    let results = br_core::parallel::map_ordered(&idxs, jobs, |_, &i| {
        let seed = iter_seed(0x1256_CA5E, i);
        let prog = generate_rv32(seed);
        check_rv32(&prog, FUEL, false).map_err(|d| (seed, d))
    });
    let mut ref_steps = 0u64;
    for r in results {
        let a = r.unwrap_or_else(|(seed, d)| {
            panic!(
                "seed {seed:#x} diverged: {d}\nreplay: cargo run -p br-torture -- \
                 --rv32 --seed {seed:#x} --iters 1"
            )
        });
        ref_steps += a.ref_steps;
    }
    assert!(ref_steps > 10_000, "streams did too little work: {ref_steps}");
}

#[test]
fn regression_corpus_replays_clean_with_verify() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus/rv32");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "hex"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 4, "corpus unexpectedly small: {entries:?}");
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let prog = br_ingest::Rv32Program::from_hex(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        check_rv32(&prog, FUEL, true)
            .unwrap_or_else(|d| panic!("{}: {d}", path.display()));
    }
}

#[test]
fn minimizer_preserves_a_real_wrong_code_failure() {
    // Negating the first compare-and-branch of the BR binary is a real
    // miscompile; find a seed whose program witnesses it, then shrink.
    let nop = br_ingest::rv32::encode(br_ingest::rv32::asm::nop());
    for i in 0..60u64 {
        let prog = generate_rv32(iter_seed(0x313_713, i));
        if !rv32::sabotaged_rv32_misbehaves(&prog, FUEL) {
            continue;
        }
        let min = minimize_rv32(&prog, |p| rv32::sabotaged_rv32_misbehaves(p, FUEL));
        assert!(
            rv32::sabotaged_rv32_misbehaves(&min, FUEL),
            "minimized program no longer witnesses the miscompile"
        );
        assert_eq!(min.words.len(), prog.words.len(), "minimizer must not resize");
        let nops = min.words.iter().filter(|&&w| w == nop).count();
        assert!(nops > 0, "nothing was minimized away");
        return;
    }
    panic!("no sabotage-detectable program in 60 seeds");
}
