//! Property tests for the static branch-cost analyzer
//! ([`br_verify::tv`]) over seeded torture modules: randomly generated
//! programs with nested branches, switch tables, and call DAGs — code
//! the hand-written suite cannot be trusted to cover.
//!
//! Three soundness properties, at every pipeline depth the paper
//! sweeps (stages 2..=8):
//!
//! 1. **Baseline exactness.** The baseline's transfer mix is fully
//!    static, so the static estimate must equal the delay table applied
//!    to the emulator's measurements — not bound it, *equal* it.
//! 2. **BR upper bound.** On the branch-register machine the static
//!    model may overestimate (it charges every carried transfer its
//!    taken-path address distance) but must never undercut the dynamic
//!    prefetch-stall accounting.
//! 3. **Icache bound.** The per-line miss bound must dominate the
//!    cold-start LRU simulator's actual misses with prefetching off.

use br_emu::{Emulator, ExecHook, Measurements};
use br_icache::{CacheConfig, ICacheSim};
use br_isa::{abi, Machine, Program};
use br_pipeline::{br_machine_cycles, cycles, BranchScheme};
use br_torture::{gen::GenConfig, generate, iter_seed, render};
use br_verify::tv::{icache_miss_bound, static_cycles};

const SEEDS: u64 = 12;
const FUEL: u64 = 20_000_000;

/// Per-text-word retirement counts plus the emulator's measurements.
struct Counts {
    counts: Vec<u64>,
}

impl ExecHook for Counts {
    fn retire(&mut self, pc: u32, _store: Option<(u32, i32)>) {
        let w = ((pc - abi::TEXT_BASE) >> 2) as usize;
        if let Some(c) = self.counts.get_mut(w) {
            *c += 1;
        }
    }
}

fn compile(src: &str, machine: Machine) -> Program {
    let module = br_frontend::compile(src).expect("frontend");
    br_codegen::compile_module(&module, machine, Default::default(), Default::default())
        .expect("codegen")
        .asm
        .assemble()
        .expect("assemble")
}

fn run_counted(prog: &Program) -> (Vec<u64>, Measurements) {
    let mut emu = Emulator::new(prog);
    let mut hook = Counts {
        counts: vec![0; prog.text.len()],
    };
    emu.run_with_hook(FUEL, &mut hook).expect("clean run");
    (hook.counts, emu.measurements().clone())
}

fn seeded_sources() -> Vec<(u64, String)> {
    (0..SEEDS)
        .map(|i| {
            let s = iter_seed(0xC057, i);
            (s, render(&generate(s, GenConfig::default())))
        })
        .collect()
}

#[test]
fn baseline_static_cost_is_exact_at_every_depth() {
    for (seed, src) in seeded_sources() {
        let prog = compile(&src, Machine::Baseline);
        let (counts, meas) = run_counted(&prog);
        for stages in 2..=8u32 {
            let est = static_cycles(&prog, &counts, stages).total;
            let dynamic = cycles(BranchScheme::Delayed, &meas, stages);
            assert_eq!(
                est.total, dynamic.total,
                "seed {seed:#x} stages {stages}: baseline static {} != dynamic {}",
                est.total, dynamic.total
            );
        }
    }
}

#[test]
fn br_static_cost_bounds_dynamic_at_every_depth() {
    for (seed, src) in seeded_sources() {
        let prog = compile(&src, Machine::BranchReg);
        let (counts, meas) = run_counted(&prog);
        for stages in 2..=8u32 {
            let est = static_cycles(&prog, &counts, stages).total;
            let dynamic = br_machine_cycles(&meas, stages);
            assert!(
                est.total >= dynamic.total,
                "seed {seed:#x} stages {stages}: static {} below dynamic {}",
                est.total,
                dynamic.total
            );
        }
    }
}

#[test]
fn icache_miss_bound_dominates_simulation() {
    // Prefetch off: the bound models demand misses only; the BR
    // machine's prefetch queue can only remove misses it cannot add.
    let cfg = CacheConfig {
        prefetch: false,
        ..CacheConfig::default()
    };
    for (seed, src) in seeded_sources() {
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let prog = compile(&src, machine);
            let (counts, _) = run_counted(&prog);
            let mut emu = Emulator::new(&prog);
            let mut sim = ICacheSim::new(cfg);
            emu.run_with_hook(FUEL, &mut sim).expect("clean run");
            let bound = icache_miss_bound(&prog, &counts, &cfg);
            let actual = sim.stats().misses;
            assert!(
                bound >= actual,
                "seed {seed:#x} {machine:?}: bound {bound} below simulated misses {actual}"
            );
        }
    }
}
