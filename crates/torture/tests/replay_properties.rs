//! Replay-equivalence property tests for the record-once /
//! replay-many evaluation path (`br_emu::FetchTrace` +
//! `br_icache::replay` + `br_pipeline::depth_sweep`) over seeded
//! torture modules — randomly generated programs with nested branches,
//! switch tables, and call DAGs, on both machines.
//!
//! The contract `br-explore` stands on: replaying one recorded trace
//! through a cache geometry must be **byte-identical** to wiring a live
//! `ICacheSim` hook into the emulation — every `CacheStats` field, for
//! every geometry, and the recorded measurements must price every
//! pipeline depth identically to the live run's. Recording itself must
//! be execution-tier-invariant.

use br_emu::{Emulator, ExecTier, FetchTrace};
use br_icache::{replay, CacheConfig, ICacheSim};
use br_isa::{Machine, Program};
use br_pipeline::depth_sweep;
use br_torture::{gen::GenConfig, generate, iter_seed, render};

const SEEDS: u64 = 8;
const FUEL: u64 = 20_000_000;

/// Six cache geometries spanning the axes `br-explore` sweeps:
/// associativity 1/2/4, line size 4/8 words, a small-capacity point,
/// and a prefetch ablation.
fn geometries() -> [CacheConfig; 6] {
    [
        CacheConfig::default(),
        CacheConfig {
            sets: 128,
            assoc: 1,
            ..CacheConfig::default()
        },
        CacheConfig {
            sets: 32,
            assoc: 4,
            ..CacheConfig::default()
        },
        CacheConfig {
            line_words: 8,
            ..CacheConfig::default()
        },
        CacheConfig {
            sets: 16,
            prefetch_queue: 2,
            ..CacheConfig::default()
        },
        CacheConfig {
            prefetch: false,
            ..CacheConfig::default()
        },
    ]
}

fn compile(src: &str, machine: Machine) -> Program {
    let module = br_frontend::compile(src).expect("frontend");
    br_codegen::compile_module(&module, machine, Default::default(), Default::default())
        .expect("codegen")
        .asm
        .assemble()
        .expect("assemble")
}

fn seeded_sources() -> Vec<(u64, String)> {
    (0..SEEDS)
        .map(|i| {
            let s = iter_seed(0x4E71, i);
            (s, render(&generate(s, GenConfig::default())))
        })
        .collect()
}

#[test]
fn replay_is_byte_identical_to_live_hooks_everywhere() {
    for (seed, src) in seeded_sources() {
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let prog = compile(&src, machine);
            let (_, trace) =
                FetchTrace::record(&prog, FUEL, ExecTier::Interp).expect("clean recording");
            for cfg in geometries() {
                // Live: the hook simulates the cache during emulation.
                let mut sim = ICacheSim::new(cfg);
                let mut emu = Emulator::new(&prog);
                emu.run_with_hook(FUEL, &mut sim).expect("clean run");

                // Replayed: the same geometry driven from the trace.
                let replayed = replay(cfg, &trace).expect("valid geometry");
                assert_eq!(
                    &replayed,
                    sim.stats(),
                    "seed {seed:#x} {machine:?} {cfg:?}: replayed stats diverged"
                );

                // The recorded measurements price every pipeline depth
                // exactly as the live run's do.
                assert_eq!(
                    depth_sweep(machine, trace.measurements(), 2..=8),
                    depth_sweep(machine, emu.measurements(), 2..=8),
                    "seed {seed:#x} {machine:?}: cycle estimates diverged"
                );
            }
        }
    }
}

#[test]
fn recording_is_execution_tier_invariant() {
    for (seed, src) in seeded_sources() {
        for machine in [Machine::Baseline, Machine::BranchReg] {
            let prog = compile(&src, machine);
            let (exit, interp) =
                FetchTrace::record(&prog, FUEL, ExecTier::Interp).expect("clean recording");
            for tier in [ExecTier::Threaded, ExecTier::Traced] {
                let (e, t) = FetchTrace::record(&prog, FUEL, tier).expect("clean recording");
                assert_eq!(exit, e, "seed {seed:#x} {machine:?} {tier:?}: exit code");
                assert_eq!(
                    interp, t,
                    "seed {seed:#x} {machine:?} {tier:?}: packed trace diverged across tiers"
                );
            }
        }
    }
}
