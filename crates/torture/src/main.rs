//! `br-torture` CLI — see TORTURE.md at the repo root.
//!
//! ```text
//! br-torture --seed N --iters M [--fuel F]     differential fuzz run
//! br-torture ... --jobs J                      fan iterations across J threads
//! br-torture ... --verify                      also gate every stage with br-verify
//! br-torture ... --tv                          also cross-check the static translation validator
//! br-torture ... --tiers                       also cross-check the threaded/traced execution tiers
//! br-torture --rv32 --seed N --iters M         RV32I ingest fuzz (reference interp vs both machines)
//! br-torture --demo-fault                      fault-injection demo
//! br-torture --demo-miscompile                 wrong-code-catch demo
//! ```
//!
//! Exit status is 0 only if every iteration agreed (or the demo behaved
//! as documented); any divergence prints a minimized reproduction and
//! exits 1.

use br_emu::{EmuError, Emulator, Fault};
use br_isa::Machine;
use br_torture::{
    check_rv32, check_src_budgeted, check_src_tv, count_stmts, gen::GenConfig, generate,
    generate_rv32, iter_seed, minimize, minimize_rv32, oracle, render, Agreement, Divergence,
    DEFAULT_FUEL,
};

struct Args {
    seed: u64,
    iters: u64,
    fuel: u64,
    jobs: usize,
    verify: bool,
    /// Run the static translation validator as a third oracle against
    /// the dynamic differential result on every iteration.
    tv: bool,
    /// Cross-check the threaded and traced execution tiers against the
    /// interpreter on every iteration (exit, measurements, stores,
    /// errors must all be identical).
    tiers: bool,
    /// Per-case wall budget in milliseconds; 0 = unlimited.
    budget_ms: u64,
    /// Fuzz the RV32I ingest path instead of the MiniC front end:
    /// generated foreign binaries, checked reference-interpreter vs
    /// translated-baseline vs translated-BR.
    rv32: bool,
    demo_fault: bool,
    demo_miscompile: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        iters: 1000,
        fuel: DEFAULT_FUEL,
        jobs: 1,
        verify: false,
        tv: false,
        tiers: false,
        budget_ms: 0,
        rv32: false,
        demo_fault: false,
        demo_miscompile: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            let v = it.next().ok_or_else(|| format!("{name} needs a value"))?;
            // Divergence reports print seeds in hex; accept them back.
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.map_err(|e| format!("{name}: {e}"))
        };
        match a.as_str() {
            "--seed" => args.seed = num("--seed")?,
            "--iters" => args.iters = num("--iters")?,
            "--fuel" => args.fuel = num("--fuel")?,
            "--jobs" => args.jobs = num("--jobs")? as usize,
            "--verify" => args.verify = true,
            "--tv" => args.tv = true,
            "--tiers" => args.tiers = true,
            "--budget-ms" => args.budget_ms = num("--budget-ms")?,
            "--rv32" => args.rv32 = true,
            "--demo-fault" => args.demo_fault = true,
            "--demo-miscompile" => args.demo_miscompile = true,
            "--help" | "-h" => {
                return Err("usage: br-torture [--seed N] [--iters M] [--fuel F] \
                            [--jobs J] [--verify] [--tv] [--tiers] [--budget-ms MS] \
                            [--rv32] [--demo-fault] [--demo-miscompile]"
                    .into())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if args.rv32 && (args.tv || args.tiers || args.budget_ms > 0) {
        return Err("--rv32 does not combine with --tv/--tiers/--budget-ms".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let code = if args.demo_fault {
        demo_fault(args.fuel)
    } else if args.demo_miscompile {
        demo_miscompile(args.seed, args.fuel)
    } else if args.rv32 {
        fuzz_rv32(&args)
    } else {
        fuzz(&args)
    };
    std::process::exit(code);
}

// ------------------------------------------------------------------ fuzz

/// One case through the configured oracle stack: dynamic differential
/// always, plus the static translation validator in `--tv` mode, plus
/// the execution-tier cross-check in `--tiers` mode.
fn check_case(args: &Args, src: &str, budget_ms: Option<u64>) -> Result<Agreement, Divergence> {
    let a = if args.tv {
        check_src_tv(src, args.fuel, args.verify, budget_ms)?
    } else {
        check_src_budgeted(src, args.fuel, args.verify, budget_ms)?
    };
    if args.tiers {
        br_torture::check_src_tiers(src, args.fuel)?;
    }
    Ok(a)
}

fn fuzz(args: &Args) -> i32 {
    let cfg = GenConfig::default();
    let jobs = if args.jobs == 0 {
        br_core::parallel::available_jobs()
    } else {
        args.jobs
    };
    let budget_ms = (args.budget_ms > 0).then_some(args.budget_ms);
    let mut base_insts = 0u64;
    let mut br_insts = 0u64;
    let mut stores = 0usize;
    let mut budget_timeouts = 0u64;
    // Iterations run in blocks fanned across `jobs` threads; each block's
    // results are then consumed strictly in iteration order, so progress
    // lines and the first-divergence report are byte-identical to a
    // `--jobs 1` run. At most one block of work runs past a divergence.
    let block = (jobs as u64 * 16).max(64);
    let mut start = 0u64;
    while start < args.iters {
        let idxs: Vec<u64> = (start..(start + block).min(args.iters)).collect();
        start += idxs.len() as u64;
        let results = br_core::parallel::map_ordered(&idxs, jobs, |_, &i| {
            let s = iter_seed(args.seed, i);
            let ast = generate(s, cfg);
            let src = render(&ast);
            check_case(args, &src, budget_ms).map_err(|d| (s, ast, d))
        });
        for (&i, result) in idxs.iter().zip(results) {
            match result {
                Ok(a) => {
                    base_insts += a.base_instructions;
                    br_insts += a.br_instructions;
                    stores += a.global_stores;
                    if (i + 1) % 200 == 0 {
                        println!(
                            "[{}/{}] ok — {} baseline insts, {} br insts, {} global stores so far",
                            i + 1,
                            args.iters,
                            base_insts,
                            br_insts,
                            stores
                        );
                    }
                }
                Err((s, _ast, d @ Divergence::Budget { .. })) => {
                    // A timeout is recorded, not minimized: the case
                    // is pathological for throughput, not (known to
                    // be) miscompiled, and re-running the minimizer
                    // would spend many more budgets.
                    budget_timeouts += 1;
                    println!("iteration {i} (seed {s:#x}) TIMED OUT: {d} — recorded, continuing");
                }
                Err((s, ast, d)) => {
                    println!("iteration {i} (seed {s:#x}) DIVERGED: {d}");
                    println!("minimizing ({} statements)...", count_stmts(&ast));
                    let min = minimize(&ast, |cand| {
                        check_case(args, &render(cand), None).is_err()
                    });
                    let min_src = render(&min);
                    let final_d = check_case(args, &min_src, None)
                        .expect_err("minimizer preserves failure");
                    println!(
                        "minimized to {} statements; divergence: {final_d}",
                        count_stmts(&min)
                    );
                    println!("---- minimized reproduction ----\n{min_src}");
                    println!(
                        "replay with: cargo run -p br-torture -- --seed {s} --iters 1"
                    );
                    return 1;
                }
            }
        }
    }
    if budget_timeouts > 0 {
        println!(
            "{} iterations, 0 divergences, {} budget timeouts \
             ({} baseline insts, {} br insts, {} global stores)",
            args.iters, budget_timeouts, base_insts, br_insts, stores
        );
    } else {
        println!(
            "{} iterations, 0 divergences ({} baseline insts, {} br insts, {} global stores)",
            args.iters, base_insts, br_insts, stores
        );
    }
    0
}

// ------------------------------------------------------------- rv32 fuzz

/// The `--rv32` mode: seeded RV32I binaries through the three-way ingest
/// oracle (reference interpreter vs translated code on both machines).
/// Divergences are minimized by NOP-ing out instruction words and
/// reported as a replayable hex image.
fn fuzz_rv32(args: &Args) -> i32 {
    let jobs = if args.jobs == 0 {
        br_core::parallel::available_jobs()
    } else {
        args.jobs
    };
    let mut base_insts = 0u64;
    let mut br_insts = 0u64;
    let mut stores = 0usize;
    let block = (jobs as u64 * 16).max(64);
    let mut start = 0u64;
    while start < args.iters {
        let idxs: Vec<u64> = (start..(start + block).min(args.iters)).collect();
        start += idxs.len() as u64;
        let results = br_core::parallel::map_ordered(&idxs, jobs, |_, &i| {
            let s = iter_seed(args.seed, i);
            let prog = generate_rv32(s);
            check_rv32(&prog, args.fuel, args.verify).map_err(|d| (s, prog, d))
        });
        for (&i, result) in idxs.iter().zip(results) {
            match result {
                Ok(a) => {
                    base_insts += a.base_instructions;
                    br_insts += a.br_instructions;
                    stores += a.guest_stores;
                    if (i + 1) % 200 == 0 {
                        println!(
                            "[{}/{}] ok — {} baseline insts, {} br insts, {} guest stores so far",
                            i + 1,
                            args.iters,
                            base_insts,
                            br_insts,
                            stores
                        );
                    }
                }
                Err((s, prog, d)) => {
                    println!("iteration {i} (seed {s:#x}) DIVERGED: {d}");
                    println!("minimizing ({} text words)...", prog.words.len());
                    // Match on the divergence *kind*: NOP-ing a loop's
                    // decrement can otherwise morph a real failure into
                    // an uninteresting out-of-fuel witness.
                    let want = std::mem::discriminant(&d);
                    let min = minimize_rv32(&prog, |cand| {
                        check_rv32(cand, args.fuel, args.verify)
                            .err()
                            .is_some_and(|e| std::mem::discriminant(&e) == want)
                    });
                    let final_d = check_rv32(&min, args.fuel, args.verify)
                        .expect_err("minimizer preserves failure");
                    println!("minimized; divergence: {final_d}");
                    println!("---- minimized reproduction (rv32 hex image) ----");
                    println!("{}", min.to_hex());
                    println!(
                        "replay with: cargo run -p br-torture -- --rv32 --seed {s} --iters 1"
                    );
                    return 1;
                }
            }
        }
    }
    println!(
        "{} rv32 iterations, 0 divergences ({} baseline insts, {} br insts, {} guest stores)",
        args.iters, base_insts, br_insts, stores
    );
    0
}

// ----------------------------------------------------------------- demos

/// Compile a small fixed program and inject each fault kind, showing that
/// the emulator surfaces a *typed* error (or a changed-but-clean result)
/// instead of wedging or panicking.
fn demo_fault(fuel: u64) -> i32 {
    let src = "
        int g;
        int main() {
            int s = 0;
            for (int i = 0; i < 20; i++) { s = s + i; g = s; }
            return s & 255;
        }
    ";
    let module = br_frontend::compile(src).expect("demo source compiles");
    let mut failures = 0;
    for machine in [Machine::Baseline, Machine::BranchReg] {
        let prog = match oracle::compile_for(&module, machine) {
            Ok(p) => p,
            Err(e) => {
                println!("compile failed: {e}");
                return 1;
            }
        };
        let clean = Emulator::new(&prog).run(fuel).expect("clean run succeeds");
        println!("{machine:?}: clean exit = {clean}");
        let faults: [(&str, Fault); 3] = [
            (
                "corrupt r3 at step 40 (xor 0x10)",
                Fault::CorruptReg {
                    at_step: 40,
                    reg: 3,
                    xor_mask: 0x10,
                },
            ),
            (
                "flip instruction word at step 25 to all-ones",
                Fault::CorruptInst {
                    at_step: 25,
                    xor_mask: 0xFFFF_FFFF,
                },
            ),
            (
                "fail the next memory access after step 10",
                Fault::FailMem { at_step: 10 },
            ),
        ];
        for (what, fault) in faults {
            let mut emu = Emulator::new(&prog);
            emu.inject(fault);
            match emu.run(fuel) {
                Ok(v) => println!("  {what}: completed with exit {v} (pc {:#x})", emu.pc()),
                Err(e) => {
                    println!("  {what}: typed error `{e}` at pc {:#x}", emu.pc());
                    // The typed errors the injector is expected to raise.
                    if !matches!(
                        e,
                        EmuError::WrongMachine(_)
                            | EmuError::BadMem { .. }
                            | EmuError::BadFetch(_)
                            | EmuError::ExecutedData(_)
                            | EmuError::DivByZero(_)
                            | EmuError::OutOfFuel
                            | EmuError::BranchInDelaySlot(_)
                    ) {
                        failures += 1;
                    }
                }
            }
        }
    }
    if failures == 0 {
        println!("all injected faults surfaced as typed errors — no panics, no hangs");
        0
    } else {
        1
    }
}

/// Generate a program, deliberately miscompile it (negate the first
/// compare-and-branch of the BR binary), let the oracle catch it, and
/// minimize the witness program.
fn demo_miscompile(seed: u64, fuel: u64) -> i32 {
    let cfg = GenConfig::default();
    for i in 0..1000u64 {
        let s = iter_seed(seed, i);
        let ast = generate(s, cfg);
        let still_fails = |cand: &br_torture::TortureAst| -> bool {
            let Ok(module) = br_frontend::compile(&render(cand)) else {
                return false;
            };
            oracle::sabotaged_br_misbehaves(&module, fuel)
        };
        if !still_fails(&ast) {
            continue; // sabotage happened to be benign — try the next seed
        }
        println!(
            "seed {s:#x}: negating the first compare-and-branch changes behaviour \
             ({} statements); minimizing...",
            count_stmts(&ast)
        );
        let min = minimize(&ast, still_fails);
        println!(
            "minimized witness ({} statements):\n---- source ----\n{}",
            count_stmts(&min),
            render(&min)
        );
        println!("the differential oracle catches this miscompile; build is honest");
        return 0;
    }
    println!("no sensitive program found (unexpected)");
    1
}
