//! Greedy test-case minimizer.
//!
//! Given a failing [`TortureAst`] and a predicate that re-checks whether a
//! candidate still fails, repeatedly tries structural simplifications and
//! keeps every one that preserves the failure, until a fixpoint:
//!
//! * remove a statement (with its whole subtree),
//! * flatten a compound statement (replace an `if`/loop/`switch` with the
//!   concatenation of its child blocks),
//! * empty the body of a function `main` can no longer reach,
//! * simplify a function's return expression to `0`.
//!
//! The predicate is invoked O(statements · rounds) times; generated
//! programs are small, so this stays well under a second per repro.

use crate::gen::{Expr, FuncGen, Stmt, TortureAst};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Edit {
    Remove,
    Flatten,
}

/// Pre-order statement count over the whole program.
pub fn count_stmts(ast: &TortureAst) -> usize {
    fn block(b: &[Stmt]) -> usize {
        b.iter().map(stmt).sum()
    }
    fn stmt(s: &Stmt) -> usize {
        1 + match s {
            Stmt::If(_, t, e) => block(t) + block(e),
            Stmt::For { body, .. } | Stmt::While { body, .. } => block(body),
            Stmt::Switch(_, cases) => cases.iter().map(|c| block(c)).sum(),
            _ => 0,
        }
    }
    ast.funcs.iter().map(|f| block(&f.body)).sum()
}

fn edit_block(b: &[Stmt], target: usize, counter: &mut usize, edit: Edit) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in b {
        let idx = *counter;
        *counter += 1;
        if idx == target {
            match edit {
                Edit::Remove => continue,
                Edit::Flatten => {
                    match s {
                        Stmt::If(_, t, e) => {
                            out.extend(t.iter().cloned());
                            out.extend(e.iter().cloned());
                        }
                        Stmt::For { body, .. } | Stmt::While { body, .. } => {
                            out.extend(body.iter().cloned());
                        }
                        Stmt::Switch(_, cases) => {
                            for c in cases {
                                out.extend(c.iter().cloned());
                            }
                        }
                        other => out.push(other.clone()),
                    }
                    continue;
                }
            }
        }
        out.push(match s {
            Stmt::If(c, t, e) => Stmt::If(
                c.clone(),
                edit_block(t, target, counter, edit),
                edit_block(e, target, counter, edit),
            ),
            Stmt::For { id, n, body } => Stmt::For {
                id: *id,
                n: *n,
                body: edit_block(body, target, counter, edit),
            },
            Stmt::While { id, n, body } => Stmt::While {
                id: *id,
                n: *n,
                body: edit_block(body, target, counter, edit),
            },
            Stmt::Switch(e, cases) => Stmt::Switch(
                e.clone(),
                cases
                    .iter()
                    .map(|c| edit_block(c, target, counter, edit))
                    .collect(),
            ),
            other => other.clone(),
        });
    }
    out
}

fn edit_ast(ast: &TortureAst, target: usize, edit: Edit) -> TortureAst {
    let mut counter = 0;
    TortureAst {
        funcs: ast
            .funcs
            .iter()
            .map(|f| FuncGen {
                nparams: f.nparams,
                body: edit_block(&f.body, target, &mut counter, edit),
                ret: f.ret.clone(),
            })
            .collect(),
    }
}

/// Function indices reachable (as call targets) from any remaining code.
fn called_funcs(ast: &TortureAst) -> Vec<bool> {
    fn expr(e: &Expr, seen: &mut Vec<bool>) {
        match e {
            Expr::ArrLoad(i) => expr(i, seen),
            Expr::Bin(_, a, b) => {
                expr(a, seen);
                expr(b, seen);
            }
            Expr::Call(k, args) => {
                if (*k as usize) < seen.len() {
                    seen[*k as usize] = true;
                }
                for a in args {
                    expr(a, seen);
                }
            }
            _ => {}
        }
    }
    fn stmt(s: &Stmt, seen: &mut Vec<bool>) {
        match s {
            Stmt::AssignLocal(_, e) | Stmt::AssignGlobal(_, e) => expr(e, seen),
            Stmt::ArrStore(i, v) => {
                expr(i, seen);
                expr(v, seen);
            }
            Stmt::If(c, t, els) => {
                expr(&c.a, seen);
                expr(&c.b, seen);
                for s in t.iter().chain(els) {
                    stmt(s, seen);
                }
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                for s in body {
                    stmt(s, seen);
                }
            }
            Stmt::Switch(e, cases) => {
                expr(e, seen);
                for s in cases.iter().flatten() {
                    stmt(s, seen);
                }
            }
        }
    }
    let mut seen = vec![false; ast.funcs.len()];
    seen[0] = true; // main
    for f in &ast.funcs {
        for s in &f.body {
            stmt(s, &mut seen);
        }
        expr(&f.ret, &mut seen);
    }
    seen
}

/// Shrink `ast` while `still_failing` keeps returning `true`.
///
/// `still_failing(&ast)` must return `true` for the input, or the input is
/// returned unchanged.
pub fn minimize(
    ast: &TortureAst,
    mut still_failing: impl FnMut(&TortureAst) -> bool,
) -> TortureAst {
    if !still_failing(ast) {
        return ast.clone();
    }
    let mut cur = ast.clone();
    loop {
        let mut changed = false;

        for edit in [Edit::Remove, Edit::Flatten] {
            let mut i = 0;
            while i < count_stmts(&cur) {
                let cand = edit_ast(&cur, i, edit);
                if cand != cur && still_failing(&cand) {
                    cur = cand;
                    changed = true;
                    // The tree shrank (or was restructured) — indices past
                    // `i` have shifted, so retry the same position.
                } else {
                    i += 1;
                }
            }
        }

        // Empty functions nothing reaches (keeps indices/names stable).
        let seen = called_funcs(&cur);
        for (k, reachable) in seen.iter().enumerate() {
            let f = &cur.funcs[k];
            if !reachable && (!f.body.is_empty() || f.ret != Expr::Const(0)) {
                let mut cand = cur.clone();
                cand.funcs[k].body = Vec::new();
                cand.funcs[k].ret = Expr::Const(0);
                if still_failing(&cand) {
                    cur = cand;
                    changed = true;
                }
            }
        }

        // Simplify return expressions.
        for k in 0..cur.funcs.len() {
            if cur.funcs[k].ret != Expr::Const(0) {
                let mut cand = cur.clone();
                cand.funcs[k].ret = Expr::Const(0);
                if still_failing(&cand) {
                    cur = cand;
                    changed = true;
                }
            }
        }

        if !changed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Cmp, Cond, GenConfig};

    /// Predicate: "fails" iff the program still assigns to global 0.
    fn assigns_g0(ast: &TortureAst) -> bool {
        fn in_block(b: &[Stmt]) -> bool {
            b.iter().any(|s| match s {
                Stmt::AssignGlobal(0, _) => true,
                Stmt::If(_, t, e) => in_block(t) || in_block(e),
                Stmt::For { body, .. } | Stmt::While { body, .. } => in_block(body),
                Stmt::Switch(_, cases) => cases.iter().any(|c| in_block(c)),
                _ => false,
            })
        }
        ast.funcs.iter().any(|f| in_block(&f.body))
    }

    #[test]
    fn shrinks_to_the_one_guilty_statement() {
        // Build a program with one `g0 = ...` buried in nested control
        // flow plus plenty of irrelevant statements.
        let guilty = Stmt::AssignGlobal(0, Expr::Const(7));
        let ast = TortureAst {
            funcs: vec![FuncGen {
                nparams: 0,
                body: vec![
                    Stmt::AssignLocal(0, Expr::Const(1)),
                    Stmt::For {
                        id: 0,
                        n: 3,
                        body: vec![
                            Stmt::AssignLocal(1, Expr::Const(2)),
                            Stmt::If(
                                Cond {
                                    op: Cmp::Lt,
                                    a: Expr::Local(0),
                                    b: Expr::Const(5),
                                },
                                vec![guilty.clone(), Stmt::AssignLocal(2, Expr::Const(3))],
                                vec![Stmt::AssignLocal(3, Expr::Const(4))],
                            ),
                        ],
                    },
                    Stmt::AssignGlobal(1, Expr::Const(9)),
                ],
                ret: Expr::Local(0),
            }],
        };
        assert!(assigns_g0(&ast));
        let min = minimize(&ast, assigns_g0);
        assert_eq!(count_stmts(&min), 1, "minimal repro is one statement: {min:?}");
        assert_eq!(min.funcs[0].body, vec![guilty]);
        assert_eq!(min.funcs[0].ret, Expr::Const(0));
    }

    #[test]
    fn minimization_never_loses_the_failure() {
        for seed in [3u64, 17, 99] {
            let ast = generate(seed, GenConfig::default());
            if !assigns_g0(&ast) {
                continue;
            }
            let min = minimize(&ast, assigns_g0);
            assert!(assigns_g0(&min));
            assert!(count_stmts(&min) <= count_stmts(&ast));
        }
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let ast = generate(5, GenConfig::default());
        let min = minimize(&ast, |_| false);
        assert_eq!(min, ast);
    }
}
