//! RV32 ingest torture: a seeded RV32I instruction-stream generator plus
//! the *third* differential oracle the ingest path makes possible —
//!
//! 1. the in-crate RV32I reference interpreter (`br_ingest::interp`),
//! 2. the translated program on the baseline machine,
//! 3. the translated program on the branch-register machine,
//!
//! cross-checked on exit value, final guest memory (all 16 K words), and
//! the guest store-event stream (machine addresses normalised by the
//! `mem` symbol so all three streams are guest-relative).
//!
//! Generated programs are correct by construction and always terminate:
//! loops are counted down in reserved registers (`x29`/`x30`) the body
//! never touches, branches inside a body only jump forward, calls go to
//! straight-line leaves that return through `x1`, and every *wild* `jalr`
//! is deliberately steered to a trapping target (misaligned or far out of
//! text) so it exercises the dispatcher's trap edges deterministically.

use crate::oracle::{self, Divergence};
use br_ingest::rv32::asm::*;
use br_ingest::rv32::{encode, AluOp, BrCond, Label, MemW, Rv32Builder};
use br_ingest::translate::MEM_SYMBOL;
use br_ingest::{interp, translate, Rv32Program};
use br_isa::Machine;
use br_workloads::rng::Rng64;

/// Everything the three RV32 executions agreed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rv32Agreement {
    /// The common exit value.
    pub exit: i32,
    /// Reference-interpreter RV32 instructions retired.
    pub ref_steps: u64,
    /// Dynamic machine instructions, baseline.
    pub base_instructions: u64,
    /// Dynamic machine instructions, branch-register.
    pub br_instructions: u64,
    /// Guest store events (identical across all three by construction
    /// once the oracle passes).
    pub guest_stores: usize,
}

/// Machine fuel per reference step: one RV32 instruction expands to a
/// bounded handful of machine instructions (worst case the `slt` diamond
/// plus dispatch), so this leaves generous headroom without letting a
/// translator bug hang the harness.
const MACHINE_FUEL_FACTOR: u64 = 64;

/// Run the full three-way differential check on one RV32 program.
///
/// `fuel` bounds the reference interpreter in RV32 steps; the machine
/// runs get `fuel * MACHINE_FUEL_FACTOR` machine instructions.
pub fn check_rv32(
    prog: &Rv32Program,
    fuel: u64,
    verify: bool,
) -> Result<Rv32Agreement, Divergence> {
    let module = translate(prog).map_err(Divergence::Ingest)?;

    // 1. Reference execution.
    let reference = interp::run(prog, fuel).map_err(|e| match e {
        interp::RefError::Untranslatable(i) => Divergence::Ingest(i),
        oof @ interp::RefError::OutOfFuel { .. } => Divergence::Interp(oof.to_string()),
    })?;

    // 2. Both machines, via the shared pipeline + store-capturing runner.
    let machine_fuel = fuel.saturating_mul(MACHINE_FUEL_FACTOR);
    let base_prog = oracle::compile_for_with(&module, Machine::Baseline, verify)?;
    let br_prog = oracle::compile_for_with(&module, Machine::BranchReg, verify)?;
    let base = oracle::run_machine(&module, &base_prog, machine_fuel)?;
    let br = oracle::run_machine(&module, &br_prog, machine_fuel)?;

    // 3. Exit values.
    if reference.exit != base.exit || reference.exit != br.exit {
        return Err(Divergence::ExitMismatch {
            interp: reference.exit,
            base: base.exit,
            br: br.exit,
        });
    }

    // 4. Final guest memory, word by word, across all three.
    for (gi, g) in module.globals.iter().enumerate() {
        for w in 0..g.size() / 4 {
            let rv = reference.mem_word(w);
            let bv = base.globals[gi].1[w];
            let mv = br.globals[gi].1[w];
            if rv != bv || rv != mv {
                return Err(Divergence::GlobalMismatch {
                    name: g.name.clone(),
                    word: w,
                    interp: rv,
                    base: bv,
                    br: mv,
                });
            }
        }
    }

    // 5. Store streams, guest-normalised, each machine vs the reference.
    for (machine, bin, run) in [
        (Machine::Baseline, &base_prog, &base),
        (Machine::BranchReg, &br_prog, &br),
    ] {
        let mem_base = bin.symbol(MEM_SYMBOL).unwrap_or(0);
        let n = reference.stores.len().max(run.global_stores.len());
        for pos in 0..n {
            let want = reference.stores.get(pos).copied();
            let got = run
                .global_stores
                .get(pos)
                .map(|&(a, v)| (a.wrapping_sub(mem_base), v));
            if want != got {
                return Err(Divergence::RvStoreMismatch {
                    machine,
                    pos,
                    reference: want,
                    got,
                });
            }
        }
    }

    Ok(Rv32Agreement {
        exit: reference.exit,
        ref_steps: reference.steps,
        base_instructions: base.instructions,
        br_instructions: br.instructions,
        guest_stores: reference.stores.len(),
    })
}

/// General-purpose scratch registers the generator draws from.  Excludes
/// `x0` (hardwired), `x1` (call link), `x29`/`x30` (loop counters) and
/// `x31` (wild-`jalr` staging), so structured control flow can never be
/// corrupted by body instructions.
const GP: [u8; 14] = [2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];

struct Gen {
    rng: Rng64,
    b: Rv32Builder,
    /// Leaf-call labels whose bodies are emitted after the main `ecall`.
    leaves: Vec<Label>,
}

impl Gen {
    fn reg(&mut self) -> u8 {
        *self.rng.pick(&GP)
    }

    fn imm12(&mut self) -> i32 {
        self.rng.random_range(-2048i32..2048)
    }

    fn alu_inst(&mut self) {
        const OPS: [AluOp; 10] = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
        ];
        let op = *self.rng.pick(&OPS);
        let (rd, rs1) = (self.reg(), self.reg());
        if self.rng.chance(1, 2) && op != AluOp::Sub {
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => self.rng.random_range(0i32..32),
                _ => self.imm12(),
            };
            self.b.push(br_ingest::rv32::Rv32Inst::AluImm { op, rd, rs1, imm });
        } else {
            let rs2 = self.reg();
            self.b.push(alu(op, rd, rs1, rs2));
        }
    }

    fn mem_inst(&mut self) {
        let (r1, r2) = (self.reg(), self.reg());
        let imm = self.imm12();
        if self.rng.chance(1, 2) {
            let w = *self.rng.pick(&[MemW::B, MemW::H, MemW::W, MemW::Bu, MemW::Hu]);
            self.b.push(load(w, r1, r2, imm));
        } else {
            let w = *self.rng.pick(&[MemW::B, MemW::H, MemW::W]);
            self.b.push(store(w, r1, r2, imm));
        }
    }

    fn cond(&mut self) -> BrCond {
        *self.rng.pick(&[
            BrCond::Eq,
            BrCond::Ne,
            BrCond::Lt,
            BrCond::Ge,
            BrCond::Ltu,
            BrCond::Geu,
        ])
    }

    /// Emit a structured body of roughly `budget` instructions.
    fn body(&mut self, depth: u8, budget: u32) {
        let mut left = budget;
        while left > 0 {
            left -= 1;
            match self.rng.random_range(0u32..100) {
                // Straight-line compute: the bulk of every program.
                0..=49 => self.alu_inst(),
                50..=64 => self.mem_inst(),
                // Forward skip over a short sub-block.
                65..=74 if left >= 3 => {
                    let (a, b2) = (self.reg(), self.reg());
                    let c = self.cond();
                    let skip = self.b.label();
                    self.b.br(c, a, b2, skip);
                    let inner = 1 + self.rng.random_range(0u32..left.min(5));
                    self.body(depth, inner);
                    left = left.saturating_sub(inner);
                    self.b.bind(skip);
                }
                // Bounded counted loop (reserved counter register).
                75..=84 if depth < 2 && left >= 5 => {
                    let counter = 29 + depth;
                    let count = self.rng.random_range(2i32..6);
                    self.b.push(addi(counter, 0, count));
                    let top = self.b.label();
                    self.b.bind(top);
                    let inner = 1 + self.rng.random_range(0u32..left.min(8));
                    self.body(depth + 1, inner);
                    left = left.saturating_sub(inner + 2);
                    self.b.push(addi(counter, counter, -1));
                    self.b.br(BrCond::Ne, counter, 0, top);
                }
                // Call a straight-line leaf (body emitted after ecall).
                85..=89 => {
                    let leaf = self.b.label();
                    self.b.jal_to(1, leaf);
                    self.leaves.push(leaf);
                }
                // Upper-immediate coverage.
                90..=93 => {
                    let rd = self.reg();
                    let hi = self.rng.random_range(0i32..0x10_0000);
                    if self.rng.chance(1, 2) {
                        self.b.push(lui(rd, hi));
                    } else {
                        self.b.push(auipc(rd, hi));
                    }
                }
                // jal over exactly one instruction: link-register write
                // plus an architecturally skipped slot.
                _ => {
                    let rd = self.reg();
                    self.b.push(jal(rd, 8));
                    self.alu_inst();
                }
            }
        }
    }
}

/// Generate a seeded, always-terminating RV32I torture program.
pub fn generate_rv32(seed: u64) -> Rv32Program {
    let mut g = Gen {
        rng: Rng64::seed_from_u64(seed),
        b: Rv32Builder::new(),
        leaves: Vec::new(),
    };

    // Prologue: give the register pool varied, seed-dependent contents.
    for _ in 0..g.rng.random_range(4u32..9) {
        let rd = g.reg();
        match g.rng.random_range(0u32..3) {
            0 => {
                let imm = g.imm12();
                g.b.push(addi(rd, 0, imm));
            }
            1 => {
                let hi = g.rng.random_range(0i32..0x10_0000);
                g.b.push(lui(rd, hi));
            }
            _ => {
                let hi = g.rng.random_range(0i32..0x10_0000);
                let lo = g.imm12();
                g.b.push(lui(rd, hi));
                g.b.push(addi(rd, rd, lo));
            }
        }
    }

    let budget = g.rng.random_range(16u32..56);
    g.body(0, budget);

    // Rarely, end the program with a wild jalr steered to a target that
    // traps deterministically (misaligned, or far outside text), so the
    // dispatcher's trap edges stay in the differential corpus without
    // cutting most programs short of their ecall.
    if g.rng.chance(1, 6) {
        let src = g.reg();
        if g.rng.chance(1, 2) {
            g.b.push(ori(31, src, 2));
        } else {
            g.b.push(lui(31, 0x40000));
        }
        g.b.push(jalr(0, 31, 0));
    }

    // Epilogue: fold live state into a0 and halt.
    let (ra, rb) = (g.reg(), g.reg());
    g.b.push(add(10, 10, ra));
    g.b.push(xor(10, 10, rb));
    g.b.push(ecall());

    // Leaf bodies: short straight-line compute, return through x1.
    let leaves = std::mem::take(&mut g.leaves);
    for leaf in leaves {
        g.b.bind(leaf);
        for _ in 0..g.rng.random_range(1u32..4) {
            g.alu_inst();
        }
        g.b.push(jalr(0, 1, 0));
    }
    g.b.finish()
}

/// Greedily shrink a failing RV32 program by NOP-ing out instruction
/// words, to a fixpoint.  Replacement (rather than deletion) keeps every
/// pc and branch offset stable, so the candidate stays decodable and the
/// failure stays reachable.
pub fn minimize_rv32(
    prog: &Rv32Program,
    mut still_failing: impl FnMut(&Rv32Program) -> bool,
) -> Rv32Program {
    let nop_word = encode(nop());
    let mut cur = prog.clone();
    loop {
        let mut changed = false;
        for i in 0..cur.words.len() {
            if cur.words[i] == nop_word {
                continue;
            }
            let mut cand = cur.clone();
            cand.words[i] = nop_word;
            if still_failing(&cand) {
                cur = cand;
                changed = true;
            }
        }
        if !changed {
            return cur;
        }
    }
}

/// Whether a deliberately sabotaged branch-register binary (first
/// compare-and-branch negated) visibly misbehaves against the RV32
/// reference — the ingest analogue of
/// [`oracle::sabotaged_br_misbehaves`], used to prove the oracle and
/// minimizer detect real wrong-code bugs.
pub fn sabotaged_rv32_misbehaves(prog: &Rv32Program, fuel: u64) -> bool {
    let Ok(module) = translate(prog) else {
        return false;
    };
    let Ok(reference) = interp::run(prog, fuel) else {
        return false;
    };
    let Ok(mut bin) = oracle::compile_for(&module, Machine::BranchReg) else {
        return false;
    };
    if !oracle::flip_first_cmpbr(&mut bin) {
        return false;
    }
    let mem_base = bin.symbol(MEM_SYMBOL).unwrap_or(0);
    match oracle::run_machine(&module, &bin, fuel.saturating_mul(MACHINE_FUEL_FACTOR)) {
        Ok(run) => {
            if run.exit != reference.exit {
                return true;
            }
            // Exit values can survive a negated branch by luck (much of
            // a random program's data flow is dead); the store stream and
            // final memory are far more sensitive witnesses.
            let guest: Vec<(u32, i32)> = run
                .global_stores
                .iter()
                .map(|&(a, v)| (a.wrapping_sub(mem_base), v))
                .collect();
            if guest != reference.stores {
                return true;
            }
            (0..run.globals[0].1.len())
                .any(|w| run.globals[0].1[w] != reference.mem_word(w))
        }
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter_seed;

    #[test]
    fn generated_programs_translate_and_terminate() {
        for i in 0..25 {
            let seed = iter_seed(0xC0FFEE, i);
            let prog = generate_rv32(seed);
            assert!(translate(&prog).is_ok(), "seed {seed:#x} untranslatable");
            let r = interp::run(&prog, 200_000)
                .unwrap_or_else(|e| panic!("seed {seed:#x}: {e}"));
            assert!(r.steps > 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate_rv32(7), generate_rv32(7));
        assert_ne!(generate_rv32(7), generate_rv32(8));
    }

    #[test]
    fn three_way_oracle_agrees_on_generated_programs() {
        for i in 0..10 {
            let seed = iter_seed(0xBEEF, i);
            let prog = generate_rv32(seed);
            check_rv32(&prog, 200_000, false)
                .unwrap_or_else(|d| panic!("seed {seed:#x}: {d}"));
        }
    }

    #[test]
    fn oracle_catches_a_sabotaged_binary() {
        // Find a generated program whose sabotage visibly misbehaves,
        // then check the minimizer preserves the failure.
        let mut found = false;
        for i in 0..40 {
            let prog = generate_rv32(iter_seed(0x5AB0, i));
            if !sabotaged_rv32_misbehaves(&prog, 200_000) {
                continue;
            }
            found = true;
            let min = minimize_rv32(&prog, |p| sabotaged_rv32_misbehaves(p, 200_000));
            assert!(
                sabotaged_rv32_misbehaves(&min, 200_000),
                "minimized program must still fail"
            );
            let nops = |p: &Rv32Program| {
                p.words.iter().filter(|&&w| w == encode(nop())).count()
            };
            assert!(nops(&min) >= nops(&prog), "minimizer must not grow the program");
            break;
        }
        assert!(found, "no sabotage-detectable program in 40 seeds");
    }

    #[test]
    fn wild_jalr_traps_identically_everywhere() {
        // Distil the generator's wild-jalr idiom and check all three
        // executions agree it traps.
        let words = [lui(5, 0x40000), jalr(0, 5, 0), ecall()]
            .into_iter()
            .map(encode)
            .collect();
        let a = check_rv32(&Rv32Program::new(words), 10_000, false).unwrap();
        assert_eq!(a.exit, br_ingest::TRAP_EXIT);
        let words = [addi(5, 0, 0x32), jalr(0, 5, 0), ecall()]
            .into_iter()
            .map(encode)
            .collect();
        let a = check_rv32(&Rv32Program::new(words), 10_000, false).unwrap();
        assert_eq!(a.exit, br_ingest::TRAP_EXIT);
    }
}
