//! Seeded structured-program generator.
//!
//! Emits random but *well-formed, always-terminating* MiniC programs:
//! nested branches, bounded loops, switch dispatch, global arrays, and a
//! DAG of function calls. Every construct is correct by construction —
//! loop counters live in their own namespace and are only ever stepped
//! by the loop itself, divisors are forced nonzero, array indices are
//! masked into bounds — so any disagreement between the interpreter and
//! the two machines is a pipeline bug, not a generator artifact.

use br_workloads::rng::Rng64;

/// Number of scalar locals per function (`v0..`).
pub const NLOCALS: u8 = 4;
/// Number of scalar globals (`g0..`).
pub const NGLOBALS: u8 = 3;
/// Global array length (power of two: indices are masked with `& 7`).
pub const ARR_LEN: u32 = 8;

/// Binary operators the generator emits in value position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Div,
    Rem,
}

impl BinOp {
    fn render(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Div => "/",
            BinOp::Rem => "%",
        }
    }
}

/// Comparison operators (condition position only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl Cmp {
    fn render(self) -> &'static str {
        match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
        }
    }
}

/// Expressions. Loop variables are referenced by the *unique id* of the
/// enclosing loop that declared them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    Const(i32),
    Local(u8),
    Param(u8),
    LoopVar(u32),
    Global(u8),
    /// `ga[(e) & 7]`
    ArrLoad(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Call to `f<n>` — always a higher-numbered function (call DAG).
    Call(u8, Vec<Expr>),
}

/// A branch condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond {
    pub op: Cmp,
    pub a: Expr,
    pub b: Expr,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    AssignLocal(u8, Expr),
    AssignGlobal(u8, Expr),
    /// `ga[(e0) & 7] = e1;`
    ArrStore(Expr, Expr),
    If(Cond, Vec<Stmt>, Vec<Stmt>),
    /// `for (int L<id> = 0; L<id> < n; L<id>++) { body }`
    For { id: u32, n: i32, body: Vec<Stmt> },
    /// `int L<id> = 0; while (L<id> < n) { body; L<id> = L<id> + 1; }`
    While { id: u32, n: i32, body: Vec<Stmt> },
    /// `switch ((e) & 3) { case 0.. }` — exercises jump tables.
    Switch(Expr, Vec<Vec<Stmt>>),
}

/// One generated function: `int f<k>(int p0, ..) { body; return ret; }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncGen {
    pub nparams: u8,
    pub body: Vec<Stmt>,
    pub ret: Expr,
}

/// A whole generated program. `funcs[0]` is `main` (no parameters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TortureAst {
    pub funcs: Vec<FuncGen>,
}

/// Generator tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of functions including `main` (call DAG: `fK` calls only
    /// `fJ` with `J > K`).
    pub max_funcs: u8,
    /// Statements per block.
    pub max_stmts: u8,
    /// Maximum statement nesting depth.
    pub max_depth: u8,
    /// Maximum expression depth.
    pub max_expr_depth: u8,
    /// Maximum loop trip count.
    pub max_trip: i32,
    /// Maximum product of trip counts along any loop-nesting path. Keeps
    /// the dynamic step count of a generated program bounded (and small),
    /// so the fuel watchdog only ever fires on a genuine hang.
    pub loop_budget: u64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_funcs: 4,
            max_stmts: 5,
            max_depth: 3,
            max_expr_depth: 3,
            max_trip: 9,
            loop_budget: 48,
        }
    }
}

struct Gen<'a> {
    r: &'a mut Rng64,
    cfg: GenConfig,
    /// Index of the function being generated (callees must be higher).
    fidx: u8,
    nfuncs: u8,
    nparams: u8,
    /// Stack of loop ids currently in scope.
    loops: Vec<u32>,
    next_loop_id: u32,
    /// Product of the trip counts of the loops currently being nested.
    loop_mult: u64,
    /// Call expressions already emitted inside a loop in this function —
    /// capped so transitive call-in-loop chains cannot blow up the
    /// dynamic step count.
    calls_in_loops: u32,
}

impl Gen<'_> {
    fn expr(&mut self, depth: u8) -> Expr {
        // Leaves when depth is exhausted.
        if depth == 0 || self.r.chance(1, 3) {
            return match self.r.random_range(0u32..6) {
                0 => Expr::Const(self.r.random_range(-64i32..64)),
                1 => Expr::Local(self.r.random_range(0u8..NLOCALS)),
                2 if self.nparams > 0 => Expr::Param(self.r.random_range(0u8..self.nparams)),
                3 if !self.loops.is_empty() => {
                    Expr::LoopVar(*self.r.pick(&self.loops))
                }
                4 => Expr::Global(self.r.random_range(0u8..NGLOBALS)),
                _ => Expr::Const(self.r.random_range(0i32..16)),
            };
        }
        match self.r.random_range(0u32..8) {
            0 => Expr::ArrLoad(Box::new(self.expr(depth - 1))),
            1 if self.fidx + 1 < self.nfuncs
                && (self.loop_mult == 1
                    || (self.loop_mult <= 4 && self.calls_in_loops < 1)) =>
            {
                if self.loop_mult > 1 {
                    self.calls_in_loops += 1;
                }
                let callee = self.r.random_range(self.fidx + 1..self.nfuncs);
                // Parameter counts are fixed per function index (see
                // `generate`): f1, f2, .. take 2, 1, 2, 1, .. params.
                let nargs = callee_params(callee);
                let args = (0..nargs).map(|_| self.expr(depth - 1)).collect();
                Expr::Call(callee, args)
            }
            2..=4 => {
                // Guarded division: divisor is `(e & 7) + 1`, never zero.
                if self.r.chance(1, 4) {
                    let op = if self.r.chance(1, 2) { BinOp::Div } else { BinOp::Rem };
                    let num = self.expr(depth - 1);
                    let den = Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Bin(
                            BinOp::And,
                            Box::new(self.expr(depth - 1)),
                            Box::new(Expr::Const(7)),
                        )),
                        Box::new(Expr::Const(1)),
                    );
                    Expr::Bin(op, Box::new(num), Box::new(den))
                } else {
                    let op = *self.r.pick(&[
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::And,
                        BinOp::Or,
                        BinOp::Xor,
                    ]);
                    Expr::Bin(op, Box::new(self.expr(depth - 1)), Box::new(self.expr(depth - 1)))
                }
            }
            5 => {
                // Shift by a small constant amount.
                let op = if self.r.chance(1, 2) { BinOp::Shl } else { BinOp::Shr };
                let amt = self.r.random_range(1i32..5);
                Expr::Bin(op, Box::new(self.expr(depth - 1)), Box::new(Expr::Const(amt)))
            }
            _ => Expr::Bin(
                BinOp::Add,
                Box::new(self.expr(depth - 1)),
                Box::new(self.expr(depth - 1)),
            ),
        }
    }

    fn cond(&mut self) -> Cond {
        let op = *self.r.pick(&[Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge, Cmp::Eq, Cmp::Ne]);
        Cond {
            op,
            a: self.expr(self.cfg.max_expr_depth.min(2)),
            b: self.expr(self.cfg.max_expr_depth.min(2)),
        }
    }

    fn stmt(&mut self, depth: u8) -> Stmt {
        let e = self.cfg.max_expr_depth;
        if depth == 0 {
            return match self.r.random_range(0u32..3) {
                0 => Stmt::AssignLocal(self.r.random_range(0u8..NLOCALS), self.expr(e)),
                1 => Stmt::AssignGlobal(self.r.random_range(0u8..NGLOBALS), self.expr(e)),
                _ => Stmt::ArrStore(self.expr(2), self.expr(e)),
            };
        }
        match self.r.random_range(0u32..10) {
            0 | 1 => Stmt::AssignLocal(self.r.random_range(0u8..NLOCALS), self.expr(e)),
            2 => Stmt::AssignGlobal(self.r.random_range(0u8..NGLOBALS), self.expr(e)),
            3 => Stmt::ArrStore(self.expr(2), self.expr(e)),
            4 | 5 => {
                let c = self.cond();
                let then = self.block(depth - 1);
                let els = if self.r.chance(1, 2) {
                    self.block(depth - 1)
                } else {
                    Vec::new()
                };
                Stmt::If(c, then, els)
            }
            6 | 7 => match self.trip_count() {
                None => Stmt::AssignLocal(self.r.random_range(0u8..NLOCALS), self.expr(e)),
                Some(n) => {
                    let id = self.fresh_loop();
                    self.loops.push(id);
                    self.loop_mult *= n as u64;
                    let body = self.block(depth - 1);
                    self.loop_mult /= n as u64;
                    self.loops.pop();
                    Stmt::For { id, n, body }
                }
            },
            8 => match self.trip_count() {
                None => Stmt::AssignGlobal(self.r.random_range(0u8..NGLOBALS), self.expr(e)),
                Some(n) => {
                    let id = self.fresh_loop();
                    self.loops.push(id);
                    self.loop_mult *= n as u64;
                    let body = self.block(depth - 1);
                    self.loop_mult /= n as u64;
                    self.loops.pop();
                    Stmt::While { id, n, body }
                }
            },
            _ => {
                let scrut = self.expr(2);
                let ncases = self.r.random_range(4u32..6) as usize;
                let cases = (0..ncases).map(|_| self.block(depth - 1)).collect();
                Stmt::Switch(scrut, cases)
            }
        }
    }

    fn block(&mut self, depth: u8) -> Vec<Stmt> {
        let n = self.r.random_range(1u32..self.cfg.max_stmts as u32 + 1);
        (0..n).map(|_| self.stmt(depth)).collect()
    }

    fn fresh_loop(&mut self) -> u32 {
        let id = self.next_loop_id;
        self.next_loop_id += 1;
        id
    }

    /// Pick a trip count that keeps the nesting within `loop_budget`, or
    /// `None` if another loop level would exceed it.
    fn trip_count(&mut self) -> Option<i32> {
        let max_n = (self.cfg.loop_budget / self.loop_mult).min(self.cfg.max_trip as u64) as i32;
        if max_n < 1 {
            return None;
        }
        Some(self.r.random_range(1i32..max_n + 1))
    }
}

/// Parameter count of generated function `k` (fixed so call sites can be
/// built without looking the callee up): `main` takes 0, then 2, 1, 2, 1…
pub fn callee_params(k: u8) -> u8 {
    if k == 0 {
        0
    } else if k % 2 == 1 {
        2
    } else {
        1
    }
}

/// Generate a program from `seed`.
pub fn generate(seed: u64, cfg: GenConfig) -> TortureAst {
    let mut r = Rng64::seed_from_u64(seed);
    let nfuncs = r.random_range(1u8..cfg.max_funcs.max(1) + 1);
    let mut funcs = Vec::new();
    let mut next_loop_id = 0;
    for fidx in 0..nfuncs {
        let nparams = callee_params(fidx);
        let mut g = Gen {
            r: &mut r,
            cfg,
            fidx,
            nfuncs,
            nparams,
            loops: Vec::new(),
            next_loop_id,
            loop_mult: 1,
            calls_in_loops: 0,
        };
        let body = g.block(cfg.max_depth);
        let ret = g.expr(cfg.max_expr_depth);
        next_loop_id = g.next_loop_id;
        funcs.push(FuncGen { nparams, body, ret });
    }
    TortureAst { funcs }
}

// ---------------------------------------------------------------- render

fn render_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Const(c) => {
            if *c < 0 {
                out.push_str(&format!("({c})"));
            } else {
                out.push_str(&c.to_string());
            }
        }
        Expr::Local(v) => out.push_str(&format!("v{v}")),
        Expr::Param(p) => out.push_str(&format!("p{p}")),
        Expr::LoopVar(id) => out.push_str(&format!("L{id}")),
        Expr::Global(g) => out.push_str(&format!("g{g}")),
        Expr::ArrLoad(i) => {
            out.push_str("ga[(");
            render_expr(i, out);
            out.push_str(") & 7]");
        }
        Expr::Bin(op, a, b) => {
            out.push('(');
            render_expr(a, out);
            out.push(' ');
            out.push_str(op.render());
            out.push(' ');
            render_expr(b, out);
            out.push(')');
        }
        Expr::Call(k, args) => {
            out.push_str(&format!("f{k}("));
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_expr(a, out);
            }
            out.push(')');
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render_stmt(s: &Stmt, out: &mut String, level: usize) {
    match s {
        Stmt::AssignLocal(v, e) => {
            indent(out, level);
            out.push_str(&format!("v{v} = "));
            render_expr(e, out);
            out.push_str(";\n");
        }
        Stmt::AssignGlobal(g, e) => {
            indent(out, level);
            out.push_str(&format!("g{g} = "));
            render_expr(e, out);
            out.push_str(";\n");
        }
        Stmt::ArrStore(i, e) => {
            indent(out, level);
            out.push_str("ga[(");
            render_expr(i, out);
            out.push_str(") & 7] = ");
            render_expr(e, out);
            out.push_str(";\n");
        }
        Stmt::If(c, then, els) => {
            indent(out, level);
            out.push_str("if (");
            render_expr(&c.a, out);
            out.push(' ');
            out.push_str(c.op.render());
            out.push(' ');
            render_expr(&c.b, out);
            out.push_str(") {\n");
            for s in then {
                render_stmt(s, out, level + 1);
            }
            indent(out, level);
            out.push('}');
            if !els.is_empty() {
                out.push_str(" else {\n");
                for s in els {
                    render_stmt(s, out, level + 1);
                }
                indent(out, level);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::For { id, n, body } => {
            indent(out, level);
            out.push_str(&format!("for (int L{id} = 0; L{id} < {n}; L{id}++) {{\n"));
            for s in body {
                render_stmt(s, out, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::While { id, n, body } => {
            indent(out, level);
            out.push_str(&format!("int L{id} = 0;\n"));
            indent(out, level);
            out.push_str(&format!("while (L{id} < {n}) {{\n"));
            for s in body {
                render_stmt(s, out, level + 1);
            }
            indent(out, level + 1);
            out.push_str(&format!("L{id} = L{id} + 1;\n"));
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Switch(e, cases) => {
            indent(out, level);
            out.push_str("switch (((");
            render_expr(e, out);
            out.push_str(&format!(") & {})) {{\n", cases.len() as i32 - 1));
            for (i, c) in cases.iter().enumerate() {
                indent(out, level + 1);
                out.push_str(&format!("case {i}:\n"));
                for s in c {
                    render_stmt(s, out, level + 2);
                }
                indent(out, level + 2);
                out.push_str("break;\n");
            }
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

/// Render the AST to MiniC source.
pub fn render(ast: &TortureAst) -> String {
    let mut out = String::new();
    for g in 0..NGLOBALS {
        out.push_str(&format!("int g{g};\n"));
    }
    out.push_str(&format!("int ga[{ARR_LEN}];\n\n"));
    // Forward order: MiniC resolves calls at link time, so definition
    // order does not matter; emit callees after callers for readability.
    for (k, f) in ast.funcs.iter().enumerate() {
        let params = (0..f.nparams)
            .map(|p| format!("int p{p}"))
            .collect::<Vec<_>>()
            .join(", ");
        let name = if k == 0 {
            "main".to_string()
        } else {
            format!("f{k}")
        };
        out.push_str(&format!("int {name}({params}) {{\n"));
        for v in 0..NLOCALS {
            indent(&mut out, 1);
            out.push_str(&format!("int v{v} = {};\n", (v as i32 + 1) * 3));
        }
        for s in &f.body {
            render_stmt(s, &mut out, 1);
        }
        indent(&mut out, 1);
        out.push_str("return (");
        render_expr(&f.ret, &mut out);
        // Keep exit values in a friendly range for cross-checking.
        out.push_str(") & 255;\n}\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, GenConfig::default());
        let b = generate(42, GenConfig::default());
        assert_eq!(a, b);
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = render(&generate(1, GenConfig::default()));
        let b = render(&generate(2, GenConfig::default()));
        assert_ne!(a, b);
    }

    #[test]
    fn generated_source_compiles() {
        for seed in 0..50 {
            let src = render(&generate(seed, GenConfig::default()));
            br_frontend::compile(&src)
                .unwrap_or_else(|e| panic!("seed {seed} does not compile: {e}\n{src}"));
        }
    }
}
