//! The differential oracle.
//!
//! Runs one MiniC source through three independent executions — the IR
//! interpreter, the baseline machine, and the branch-register machine —
//! under a fuel watchdog, and checks that every observable agrees:
//!
//! 1. the exit value (`main`'s return),
//! 2. the final contents of every global variable,
//! 3. the ordered stream of stores into the global data region
//!    (baseline vs branch-register, captured via the `retire` hook).
//!
//! Stack traffic is deliberately excluded from (3): the two machines
//! have different spill patterns and calling conventions, so their stack
//! stores legitimately differ. Stores to named globals follow the same
//! IR order on both machines and must match exactly.

use br_emu::{EmuError, Emulator, ExecHook};
use br_ir::{InterpError, Interpreter, Module};
use br_isa::{abi, Machine, Program};
use br_verify::{PipelineError, VerifyError};

/// Default fuel for each execution (dynamic instructions / IR steps).
/// Generated programs finish in well under a million steps; anything that
/// reaches this bound has hung.
pub const DEFAULT_FUEL: u64 = 20_000_000;

/// Everything that agreed, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agreement {
    /// The common exit value.
    pub exit: i32,
    /// IR interpreter step count.
    pub interp_steps: u64,
    /// Dynamic instruction count on the baseline machine.
    pub base_instructions: u64,
    /// Dynamic instruction count on the branch-register machine.
    pub br_instructions: u64,
    /// Number of stores into the global data region (identical on both
    /// machines by construction once the oracle passes).
    pub global_stores: usize,
}

/// One way the three executions can disagree (or fail to complete).
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// The front end rejected the program.
    Frontend(String),
    /// Code generation failed on one machine.
    Codegen { machine: Machine, err: String },
    /// A `br-verify` stage gate rejected the compiler's intermediate
    /// output on one machine (only produced in `--verify` mode).
    Verify { machine: Machine, err: VerifyError },
    /// The assembler rejected the generated assembly.
    Asm { machine: Machine, err: String },
    /// The IR interpreter faulted (including running out of fuel).
    Interp(String),
    /// An emulator faulted (including running out of fuel).
    Emu { machine: Machine, err: EmuError },
    /// The three exit values are not all equal.
    ExitMismatch { interp: i32, base: i32, br: i32 },
    /// A global's final value differs between executions.
    GlobalMismatch {
        name: String,
        /// Word offset within the global (0 for scalars).
        word: usize,
        interp: i32,
        base: i32,
        br: i32,
    },
    /// The data-region store streams of the two machines differ at
    /// position `pos` (`None` = that machine's stream ended first).
    StoreMismatch {
        pos: usize,
        base: Option<(u32, i32)>,
        br: Option<(u32, i32)>,
    },
    /// The static translation validator and the dynamic differential
    /// oracle contradict each other (`--tv` mode): either the TV engine
    /// *refuted* a function pair while all three executions agree on
    /// every observable, or it *proved* the whole module equivalent
    /// while the machines dynamically diverge. An `Unproven` verdict is
    /// never a divergence — the engine is deliberately incomplete and
    /// abstains rather than guesses.
    TvMismatch {
        /// Function the refutation names; empty when the mismatch is a
        /// proven module contradicted by a dynamic divergence.
        func: String,
        /// The refutation finding, or the dynamic divergence the static
        /// proof contradicts.
        detail: String,
    },
    /// An execution tier disagreed with the interpreter on the same
    /// program (`--tiers` mode): different exit value, measurements,
    /// global-store stream, or error. Always a real emulator bug — the
    /// tiers are defined to be observationally identical.
    TierMismatch {
        machine: Machine,
        /// Name of the disagreeing tier (`threaded` / `traced`).
        tier: &'static str,
        /// What differed, rendered human-readable.
        detail: String,
    },
    /// The RV32 translator rejected a generated image (`--rv32` mode).
    /// The generator only emits the supported subset, so this is always
    /// a harness or translator defect, never an expected outcome.
    Ingest(br_ingest::IngestError),
    /// An RV32 machine execution's store stream differs from the
    /// reference interpreter's at position `pos` (`--rv32` mode;
    /// `None` = that stream ended first). Addresses are guest-relative.
    RvStoreMismatch {
        machine: Machine,
        pos: usize,
        /// The reference interpreter's event at `pos`.
        reference: Option<(u32, i32)>,
        /// The translated machine's event at `pos`.
        got: Option<(u32, i32)>,
    },
    /// The per-case wall-clock budget expired (see
    /// [`check_module_budgeted`]). A recorded timeout, not a
    /// correctness verdict: the program may be pathological for the
    /// compiler or emulators without being miscompiled.
    Budget {
        /// Pipeline stage that was about to start when the check fired.
        stage: &'static str,
        /// Milliseconds elapsed since the case started.
        elapsed_ms: u64,
        /// The configured budget.
        limit_ms: u64,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Divergences are reported to users (and now cross process
        // boundaries in logs), so every arm renders through `Display`
        // impls — no `{:?}` debug leaks.
        fn store(s: &Option<(u32, i32)>) -> String {
            match s {
                Some((addr, v)) => format!("[{addr:#x}] = {v}"),
                None => "stream ended".to_string(),
            }
        }
        match self {
            Divergence::Frontend(e) => write!(f, "frontend: {e}"),
            Divergence::Codegen { machine, err } => {
                write!(f, "codegen ({machine}): {err}")
            }
            Divergence::Verify { machine, err } => {
                write!(f, "verify ({machine}): {err}")
            }
            Divergence::Asm { machine, err } => write!(f, "assembler ({machine}): {err}"),
            Divergence::Interp(e) => write!(f, "interpreter: {e}"),
            Divergence::Emu { machine, err } => write!(f, "emulator ({machine}): {err}"),
            Divergence::ExitMismatch { interp, base, br } => write!(
                f,
                "exit mismatch: interp={interp} baseline={base} branch-reg={br}"
            ),
            Divergence::GlobalMismatch {
                name,
                word,
                interp,
                base,
                br,
            } => write!(
                f,
                "global `{name}` word {word}: interp={interp} baseline={base} branch-reg={br}"
            ),
            Divergence::StoreMismatch { pos, base, br } => write!(
                f,
                "store stream diverges at #{pos}: baseline {} vs branch-reg {}",
                store(base),
                store(br)
            ),
            Divergence::TvMismatch { func, detail } => {
                if func.is_empty() {
                    write!(f, "tv proved the module but execution diverged: {detail}")
                } else {
                    write!(
                        f,
                        "tv refuted `{func}` but all executions agree: {detail}"
                    )
                }
            }
            Divergence::TierMismatch {
                machine,
                tier,
                detail,
            } => write!(f, "tier `{tier}` diverged from interpreter ({machine}): {detail}"),
            Divergence::Ingest(e) => write!(f, "ingest: {e}"),
            Divergence::RvStoreMismatch {
                machine,
                pos,
                reference,
                got,
            } => write!(
                f,
                "rv32 store stream ({machine}) diverges from reference at #{pos}: reference {} vs machine {}",
                store(reference),
                store(got)
            ),
            Divergence::Budget {
                stage,
                elapsed_ms,
                limit_ms,
            } => write!(
                f,
                "case budget exceeded: {elapsed_ms} ms elapsed (limit {limit_ms} ms) entering {stage}"
            ),
        }
    }
}

/// Result of one emulated execution.
pub(crate) struct EmuRun {
    pub(crate) exit: i32,
    pub(crate) instructions: u64,
    /// Stores into the program's global data region, in retirement order.
    pub(crate) global_stores: Vec<(u32, i32)>,
    /// Final word values of each named global, in `module.globals` order.
    pub(crate) globals: Vec<(String, Vec<i32>)>,
}

/// Compile `module` for `machine` all the way to an executable program.
pub fn compile_for(module: &Module, machine: Machine) -> Result<Program, Divergence> {
    compile_for_with(module, machine, false)
}

/// Compile `module` for `machine`, optionally running the `br-verify`
/// stage gates after every compilation stage.
pub fn compile_for_with(
    module: &Module,
    machine: Machine,
    verify: bool,
) -> Result<Program, Divergence> {
    let out = if verify {
        br_verify::compile_module_verified(
            module,
            machine,
            Default::default(),
            Default::default(),
        )
        .map_err(|e| match e {
            PipelineError::Verify(err) => Divergence::Verify { machine, err },
            PipelineError::Codegen(c) => Divergence::Codegen {
                machine,
                err: c.to_string(),
            },
        })?
    } else {
        br_codegen::compile_module(
            module,
            machine,
            Default::default(),
            Default::default(),
        )
        .map_err(|e| Divergence::Codegen {
            machine,
            err: e.to_string(),
        })?
    };
    out.asm.assemble().map_err(|e| Divergence::Asm {
        machine,
        err: e.to_string(),
    })
}

/// [`compile_for_with`], threading an optional wall-clock deadline
/// through the pipeline's stage gates. `None` takes the exact
/// unbudgeted path (no behaviour change for existing callers).
fn compile_budgeted(
    module: &Module,
    machine: Machine,
    verify: bool,
    budget: Option<(std::time::Instant, u64)>,
) -> Result<Program, Divergence> {
    let Some((deadline, limit_ms)) = budget else {
        return compile_for_with(module, machine, verify);
    };
    let exp = br_core::Experiment {
        verify,
        ..br_core::Experiment::new()
    };
    exp.compile_module_budgeted(module, machine, Some(deadline))
        .map(|(prog, _stats)| prog)
        .map_err(|e| match e {
            br_core::Error::Compile(br_core::CompileError::Deadline { elapsed_ms }) => {
                Divergence::Budget {
                    stage: "compile stage gate",
                    elapsed_ms,
                    limit_ms,
                }
            }
            br_core::Error::Compile(br_core::CompileError::Codegen(c)) => Divergence::Codegen {
                machine,
                err: c.to_string(),
            },
            br_core::Error::Compile(br_core::CompileError::Verify(v)) => {
                Divergence::Verify { machine, err: v }
            }
            br_core::Error::Compile(br_core::CompileError::Asm(a)) => {
                Divergence::Asm { machine, err: a }
            }
            other => Divergence::Codegen {
                machine,
                err: other.to_string(),
            },
        })
}

/// Extent of the named-globals region `[DATA_BASE, DATA_BASE + n)` in a
/// program, computed from the module's globals and the program's symbols.
fn globals_end(module: &Module, prog: &Program) -> u32 {
    let mut end = abi::DATA_BASE;
    for g in &module.globals {
        if let Some(base) = prog.symbol(&g.name) {
            end = end.max(base + g.size() as u32);
        }
    }
    end
}

/// Streaming store filter: keeps only stores into `[lo, hi)`, so the
/// oracle's buffer is bounded by the program's *global* traffic rather
/// than its full retirement trace (stack stores never accumulate).
struct GlobalStores {
    lo: u32,
    hi: u32,
    stores: Vec<(u32, i32)>,
}

impl ExecHook for GlobalStores {
    fn retire(&mut self, _pc: u32, store: Option<(u32, i32)>) {
        if let Some((addr, v)) = store {
            if addr >= self.lo && addr < self.hi {
                self.stores.push((addr, v));
            }
        }
    }
}

pub(crate) fn run_machine(
    module: &Module,
    prog: &Program,
    fuel: u64,
) -> Result<EmuRun, Divergence> {
    let machine = prog.machine;
    let mut emu = Emulator::new(prog);
    let mut hook = GlobalStores {
        lo: abi::DATA_BASE,
        hi: globals_end(module, prog),
        stores: Vec::new(),
    };
    let exit = emu
        .run_with_hook(fuel, &mut hook)
        .map_err(|err| Divergence::Emu { machine, err })?;
    let global_stores = hook.stores;
    let mut globals = Vec::new();
    for g in &module.globals {
        let Some(base) = prog.symbol(&g.name) else {
            continue;
        };
        let words = (0..g.size() / 4)
            .map(|w| emu.read_word(base + 4 * w as u32).unwrap_or(0))
            .collect();
        globals.push((g.name.clone(), words));
    }
    Ok(EmuRun {
        exit,
        instructions: emu.measurements().instructions,
        global_stores,
        globals,
    })
}

/// Run the full differential check on one MiniC source.
pub fn check_src(src: &str, fuel: u64) -> Result<Agreement, Divergence> {
    check_src_with(src, fuel, false)
}

/// [`check_src`], optionally with `br-verify` stage gates enabled.
pub fn check_src_with(src: &str, fuel: u64, verify: bool) -> Result<Agreement, Divergence> {
    check_src_budgeted(src, fuel, verify, None)
}

/// [`check_src_with`] under an optional per-case wall-clock budget.
pub fn check_src_budgeted(
    src: &str,
    fuel: u64,
    verify: bool,
    budget_ms: Option<u64>,
) -> Result<Agreement, Divergence> {
    let module =
        br_frontend::compile(src).map_err(|e| Divergence::Frontend(e.to_string()))?;
    check_module_budgeted(&module, fuel, verify, budget_ms)
}

/// Run the full differential check on an already-lowered module.
pub fn check_module(module: &Module, fuel: u64) -> Result<Agreement, Divergence> {
    check_module_with(module, fuel, false)
}

/// [`check_module`], optionally with `br-verify` stage gates enabled.
pub fn check_module_with(
    module: &Module,
    fuel: u64,
    verify: bool,
) -> Result<Agreement, Divergence> {
    check_module_budgeted(module, fuel, verify, None)
}

/// [`check_module_with`] under an optional per-case wall-clock budget.
///
/// With `budget_ms` set, the case cannot wedge the harness: the budget
/// is checked cooperatively between pipeline stages, the compiles run
/// through [`br_core::Experiment::compile_module_budgeted`] (which
/// checks it at every stage gate), and the emulations are already
/// bounded by `fuel`. An expired budget is reported as the typed
/// [`Divergence::Budget`] — recorded by the fuzz driver, never hung on.
pub fn check_module_budgeted(
    module: &Module,
    fuel: u64,
    verify: bool,
    budget_ms: Option<u64>,
) -> Result<Agreement, Divergence> {
    let start = std::time::Instant::now();
    let over = |stage: &'static str| -> Result<(), Divergence> {
        if let Some(limit_ms) = budget_ms {
            let elapsed_ms = start.elapsed().as_millis() as u64;
            if elapsed_ms > limit_ms {
                return Err(Divergence::Budget {
                    stage,
                    elapsed_ms,
                    limit_ms,
                });
            }
        }
        Ok(())
    };
    let budget = budget_ms.map(|ms| (start + std::time::Duration::from_millis(ms), ms));

    // 1. Reference execution: the IR interpreter.
    let mut interp = Interpreter::new(module).with_fuel(fuel);
    let interp_exit = interp
        .run("main", &[])
        .map_err(|e: InterpError| Divergence::Interp(e.to_string()))?;
    let interp_steps = interp.steps();

    // 2. Both machines.
    over("baseline compile")?;
    let base_prog = compile_budgeted(module, Machine::Baseline, verify, budget)?;
    over("branch-register compile")?;
    let br_prog = compile_budgeted(module, Machine::BranchReg, verify, budget)?;
    over("baseline emulation")?;
    let base = run_machine(module, &base_prog, fuel)?;
    over("branch-register emulation")?;
    let br = run_machine(module, &br_prog, fuel)?;

    // 3. Exit values.
    if interp_exit != base.exit || interp_exit != br.exit {
        return Err(Divergence::ExitMismatch {
            interp: interp_exit,
            base: base.exit,
            br: br.exit,
        });
    }

    // 4. Final global memory, word by word, across all three.
    let mut global_words = 0usize;
    for (gi, g) in module.globals.iter().enumerate() {
        let Some(ibase) = interp.global_address(&g.name) else {
            continue;
        };
        for w in 0..g.size() / 4 {
            let iv = interp.read_word(ibase + 4 * w as u32).unwrap_or(0);
            let bv = base.globals[gi].1[w];
            let rv = br.globals[gi].1[w];
            if iv != bv || iv != rv {
                return Err(Divergence::GlobalMismatch {
                    name: g.name.clone(),
                    word: w,
                    interp: iv,
                    base: bv,
                    br: rv,
                });
            }
            global_words += 1;
        }
    }
    let _ = global_words;

    // 5. Ordered store streams into the global region.
    let n = base.global_stores.len().max(br.global_stores.len());
    for pos in 0..n {
        let b = base.global_stores.get(pos).copied();
        let r = br.global_stores.get(pos).copied();
        if b != r {
            return Err(Divergence::StoreMismatch { pos, base: b, br: r });
        }
    }

    Ok(Agreement {
        exit: interp_exit,
        interp_steps,
        base_instructions: base.instructions,
        br_instructions: br.instructions,
        global_stores: base.global_stores.len(),
    })
}

/// [`check_module_budgeted`] plus a third, *static* oracle: whole-module
/// translation validation ([`br_verify::tv`]). The static and dynamic
/// oracles check each other:
///
/// * a **refuted** function while the dynamic executions fully agree is
///   [`Divergence::TvMismatch`] — the validator's refutation logic and
///   the machines cannot both be right;
/// * a fully **proven** module while the machines diverge in behaviour
///   (exit value, final globals, or the store stream) is the converse
///   mismatch — execution disproving a static equivalence proof;
/// * **unproven** functions contradict nothing: the engine abstains on
///   code it cannot align rather than guessing either way.
///
/// Tooling failures (frontend, codegen, interpreter or emulator faults,
/// expired budgets) say nothing a static proof could contradict, so the
/// validator is skipped for those and the dynamic result passes through.
pub fn check_module_tv(
    module: &Module,
    fuel: u64,
    verify: bool,
    budget_ms: Option<u64>,
) -> Result<Agreement, Divergence> {
    let dynamic = check_module_budgeted(module, fuel, verify, budget_ms);
    let behavioural = matches!(
        dynamic,
        Ok(_)
            | Err(Divergence::ExitMismatch { .. })
            | Err(Divergence::GlobalMismatch { .. })
            | Err(Divergence::StoreMismatch { .. })
    );
    if !behavioural {
        return dynamic;
    }
    let report =
        match br_verify::tv::validate_module(module, Default::default(), Default::default()) {
            Ok(r) => r,
            Err(e) => {
                // The dynamic path compiled this module moments ago with
                // the same options; an error here is real toolchain skew.
                return Err(Divergence::Codegen {
                    machine: Machine::BranchReg,
                    err: format!("tv recompile: {e}"),
                });
            }
        };
    match &dynamic {
        Ok(_) => {
            if let Some(f) = report
                .funcs
                .iter()
                .find(|f| f.status == br_verify::tv::TvStatus::Refuted)
            {
                let detail = f
                    .findings
                    .iter()
                    .find(|x| x.refuted)
                    .or_else(|| f.findings.first())
                    .map(|x| x.detail.clone())
                    .unwrap_or_default();
                return Err(Divergence::TvMismatch {
                    func: f.func.clone(),
                    detail,
                });
            }
            dynamic
        }
        Err(d) => {
            if report.all_proven() {
                return Err(Divergence::TvMismatch {
                    func: String::new(),
                    detail: d.to_string(),
                });
            }
            // Refuted or unproven alongside a dynamic divergence: the
            // oracles agree something is wrong; the dynamic report is
            // the actionable one.
            dynamic
        }
    }
}

/// [`check_module_tv`] from source text.
pub fn check_src_tv(
    src: &str,
    fuel: u64,
    verify: bool,
    budget_ms: Option<u64>,
) -> Result<Agreement, Divergence> {
    let module = br_frontend::compile(src).map_err(|e| Divergence::Frontend(e.to_string()))?;
    check_module_tv(&module, fuel, verify, budget_ms)
}

/// One tier's observable outcome on a single program, for comparison.
struct TierRun {
    result: Result<i32, EmuError>,
    meas: br_emu::Measurements,
    global_stores: Vec<(u32, i32)>,
}

fn run_tier(prog: &Program, fuel: u64, tier: br_emu::ExecTier, hi: u32) -> TierRun {
    let mut emu = Emulator::new(prog).with_tier(tier);
    let mut hook = GlobalStores {
        lo: abi::DATA_BASE,
        hi,
        stores: Vec::new(),
    };
    let result = emu.run_with_hook(fuel, &mut hook);
    TierRun {
        result,
        meas: emu.measurements().clone(),
        global_stores: hook.stores,
    }
}

/// Differential check of the execution tiers themselves: runs `prog`
/// once per [`br_emu::ExecTier`] and demands the threaded and traced
/// tiers reproduce the interpreter's exit value (or its exact typed
/// error), its [`br_emu::Measurements`], and its ordered global-store
/// stream. Unlike the three-way machine oracle, this needs no IR
/// reference — the interpreter tier *is* the reference.
pub fn check_tiers(module: &Module, prog: &Program, fuel: u64) -> Result<(), Divergence> {
    let machine = prog.machine;
    let hi = globals_end(module, prog);
    let reference = run_tier(prog, fuel, br_emu::ExecTier::Interp, hi);
    for tier in [br_emu::ExecTier::Threaded, br_emu::ExecTier::Traced] {
        let got = run_tier(prog, fuel, tier, hi);
        let detail = match (&reference.result, &got.result) {
            (Ok(a), Ok(b)) if a != b => Some(format!("exit {a} vs {b}")),
            (Err(a), Err(b)) if a != b => Some(format!("error `{a}` vs `{b}`")),
            (Ok(a), Err(b)) => Some(format!("interpreter exited {a}, tier failed: {b}")),
            (Err(a), Ok(b)) => Some(format!("interpreter failed ({a}), tier exited {b}")),
            _ => None,
        };
        let detail = detail.or_else(|| {
            if reference.meas != got.meas {
                Some(format!(
                    "measurements differ (instructions {} vs {}, transfers {} vs {})",
                    reference.meas.instructions,
                    got.meas.instructions,
                    reference.meas.transfers,
                    got.meas.transfers
                ))
            } else if reference.global_stores != got.global_stores {
                let pos = reference
                    .global_stores
                    .iter()
                    .zip(&got.global_stores)
                    .position(|(a, b)| a != b)
                    .unwrap_or(reference.global_stores.len().min(got.global_stores.len()));
                Some(format!("global-store stream diverges at #{pos}"))
            } else {
                None
            }
        });
        if let Some(detail) = detail {
            return Err(Divergence::TierMismatch {
                machine,
                tier: tier.name(),
                detail,
            });
        }
    }
    Ok(())
}

/// `--tiers` oracle entry point: compile one module for both machines
/// and run [`check_tiers`] on each binary.
pub fn check_module_tiers(module: &Module, fuel: u64) -> Result<(), Divergence> {
    for machine in [Machine::Baseline, Machine::BranchReg] {
        let prog = compile_for(module, machine)?;
        check_tiers(module, &prog, fuel)?;
    }
    Ok(())
}

/// [`check_module_tiers`] from source text.
pub fn check_src_tiers(src: &str, fuel: u64) -> Result<(), Divergence> {
    let module = br_frontend::compile(src).map_err(|e| Divergence::Frontend(e.to_string()))?;
    check_module_tiers(&module, fuel)
}

/// Sabotage an assembled branch-register program by negating the
/// condition of its first compare-and-branch. Returns `false` if the
/// program contains none. Used by the `--demo-miscompile` mode (and its
/// tests) to prove the oracle catches a real wrong-code bug.
pub fn flip_first_cmpbr(prog: &mut Program) -> bool {
    use br_isa::{MInst, TextWord};
    for tw in prog.text.iter_mut() {
        match tw {
            TextWord::Inst(MInst::CmpBr { cc, .. })
            | TextWord::Inst(MInst::Bcc { cc, .. }) => {
                *cc = cc.negate();
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Check whether a module, once compiled for the BR machine and run
/// through [`flip_first_cmpbr`], visibly misbehaves (wrong exit value or
/// a typed emulator error — never a panic or a hang).
pub fn sabotaged_br_misbehaves(module: &Module, fuel: u64) -> bool {
    let Ok(expected) = Interpreter::new(module).with_fuel(fuel).run("main", &[]) else {
        return false;
    };
    let Ok(mut prog) = compile_for(module, Machine::BranchReg) else {
        return false;
    };
    if !flip_first_cmpbr(&mut prog) {
        return false;
    }
    match Emulator::new(&prog).run(fuel) {
        Ok(v) => v != expected,
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_program_agrees() {
        let src = "
            int g;
            int main() {
                int s = 0;
                for (int i = 0; i < 10; i++) { s = s + i; g = s; }
                return s;
            }
        ";
        let a = check_src(src, DEFAULT_FUEL).expect("oracle should agree");
        assert_eq!(a.exit, 45);
        assert!(a.global_stores > 0, "loop stores to g must be observed");
    }

    #[test]
    fn infinite_loop_is_caught_by_fuel() {
        let src = "int main() { while (1) { } return 0; }";
        match check_src(src, 10_000) {
            // The message is the InterpError Display rendering — user-
            // readable, no Debug leak.
            Err(Divergence::Interp(e)) => {
                assert!(e.contains("interpreter ran out of fuel"), "{e}")
            }
            other => panic!("expected interpreter fuel exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_budget_is_a_recorded_timeout_not_a_hang() {
        // A budget of zero must expire at the first cooperative check
        // after the interpreter pass, with a typed Budget divergence.
        let src = "int main() { return 3; }";
        match check_src_budgeted(src, DEFAULT_FUEL, false, Some(0)) {
            Err(Divergence::Budget { limit_ms: 0, .. }) => {}
            other => panic!("expected Budget divergence, got {other:?}"),
        }
        // A generous budget changes nothing.
        let a = check_src_budgeted(src, DEFAULT_FUEL, false, Some(60_000))
            .expect("well within budget");
        assert_eq!(a.exit, 3);
    }

    #[test]
    fn divergence_displays_are_self_contained() {
        // Every variant must render human-readable text with no `{:?}`
        // debug formatting of payload types (reports cross process
        // boundaries via logs and CI output).
        let cases: Vec<(Divergence, &str)> = vec![
            (Divergence::Frontend("line 3: bad token".into()), "frontend: line 3"),
            (
                Divergence::Codegen {
                    machine: Machine::Baseline,
                    err: "spill failed".into(),
                },
                "codegen (baseline)",
            ),
            (
                Divergence::Emu {
                    machine: Machine::BranchReg,
                    err: EmuError::OutOfFuel,
                },
                "emulator (branch register)",
            ),
            (
                Divergence::Interp("interpreter ran out of fuel".into()),
                "interpreter: interpreter ran out of fuel",
            ),
            (
                Divergence::StoreMismatch {
                    pos: 2,
                    base: Some((0x400010, 7)),
                    br: None,
                },
                "baseline [0x400010] = 7 vs branch-reg stream ended",
            ),
            (
                Divergence::Budget {
                    stage: "baseline compile",
                    elapsed_ms: 120,
                    limit_ms: 100,
                },
                "120 ms elapsed (limit 100 ms) entering baseline compile",
            ),
            (
                Divergence::TierMismatch {
                    machine: Machine::BranchReg,
                    tier: "traced",
                    detail: "exit 3 vs 4".into(),
                },
                "tier `traced` diverged from interpreter (branch register): exit 3 vs 4",
            ),
            (
                Divergence::Ingest(br_ingest::IngestError::UnalignedEntry { entry: 0x1002 }),
                "ingest: rv32 entry point 0x1002 is not 4-byte aligned",
            ),
            (
                Divergence::RvStoreMismatch {
                    machine: Machine::Baseline,
                    pos: 4,
                    reference: Some((0x40, -1)),
                    got: None,
                },
                "rv32 store stream (baseline) diverges from reference at #4: reference [0x40] = -1 vs machine stream ended",
            ),
        ];
        for (d, want) in cases {
            let s = d.to_string();
            assert!(s.contains(want), "display `{s}` missing `{want}`");
            assert!(
                !s.contains("Some(") && !s.contains("None") && !s.contains("OutOfFuel"),
                "debug leak in `{s}`"
            );
        }
    }

    #[test]
    fn store_streams_match_on_globals() {
        // Both machines must store the same values to `g` in the same
        // order even though their stack traffic differs wildly.
        let src = "
            int g;
            int bump(int x) { g = g + x; return g; }
            int main() {
                int t = 0;
                for (int i = 1; i < 6; i++) { t = bump(i); }
                return t;
            }
        ";
        let a = check_src(src, DEFAULT_FUEL).expect("oracle should agree");
        assert_eq!(a.exit, 15);
        assert_eq!(a.global_stores, 5);
    }

    #[test]
    fn tiers_agree_on_a_looping_program() {
        // Hot enough (10 × 16+ iterations) that the traced tier forms
        // and executes real superblocks on both machines.
        let src = "
            int g;
            int main() {
                int s = 0;
                for (int i = 0; i < 200; i++) { s = s + i; g = s; }
                return s % 97;
            }
        ";
        check_src_tiers(src, DEFAULT_FUEL).expect("tiers must agree");
    }

    #[test]
    fn tiers_agree_on_errors_too() {
        // Fuel exhaustion mid-loop must produce the identical typed
        // error and identical measurements on every tier.
        let src = "int main() { int s = 0; while (1) { s = s + 1; } return s; }";
        let module = br_frontend::compile(src).unwrap();
        check_module_tiers(&module, 50_000).expect("tiers must agree on OutOfFuel");
    }

    #[test]
    fn deliberate_miscompile_is_caught() {
        let src = "
            int main() {
                int s = 0;
                for (int i = 0; i < 8; i++) { if (i < 4) { s = s + 10; } }
                return s;
            }
        ";
        let module = br_frontend::compile(src).unwrap();
        assert!(
            sabotaged_br_misbehaves(&module, DEFAULT_FUEL),
            "negating a compare-and-branch must change observable behaviour"
        );
    }
}
