//! `br-torture` — differential torture harness for the compile→emulate
//! pipeline.
//!
//! The paper's claims rest on the two machines computing *identical*
//! results from identical source; only the dynamic instruction mix may
//! differ. This crate stresses that invariant:
//!
//! * [`gen`] produces seeded, random-but-well-formed MiniC programs
//!   (nested branches, bounded loops, switch dispatch, call DAGs, global
//!   arrays);
//! * [`oracle`] runs each program through the IR interpreter, the
//!   baseline machine, and the branch-register machine under a fuel
//!   watchdog and cross-checks exit values, final global memory, and the
//!   per-instruction store streams;
//! * [`minimize`] greedily shrinks any failing program to a minimal
//!   reproduction.
//!
//! Run it with `cargo run -p br-torture -- --seed 42 --iters 1000`.

pub mod gen;
pub mod minimize;
pub mod oracle;
pub mod rv32;

pub use gen::{generate, render, GenConfig, TortureAst};
pub use minimize::{count_stmts, minimize};
pub use rv32::{check_rv32, generate_rv32, minimize_rv32, Rv32Agreement};
pub use oracle::{
    check_module, check_module_budgeted, check_module_tiers, check_module_tv, check_module_with,
    check_src, check_src_budgeted, check_src_tiers, check_src_tv, check_src_with, check_tiers,
    Agreement, Divergence, DEFAULT_FUEL,
};

/// Derive the seed for iteration `i` of a run started with `seed`.
///
/// SplitMix64 finalizer over the pair, so consecutive iterations get
/// decorrelated generator streams and any single iteration can be
/// replayed with `--seed <iter_seed> --iters 1`.
pub fn iter_seed(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_seed_is_deterministic_and_spread() {
        assert_eq!(iter_seed(42, 0), iter_seed(42, 0));
        assert_ne!(iter_seed(42, 0), iter_seed(42, 1));
        assert_ne!(iter_seed(42, 0), iter_seed(43, 0));
    }

    /// The tentpole invariant, in miniature: many seeds, all three
    /// executions agree. The CLI run extends this to thousands.
    #[test]
    fn torture_smoke_100_seeds_agree() {
        for i in 0..100u64 {
            let s = iter_seed(0xD1FF, i);
            let src = render(&generate(s, GenConfig::default()));
            if let Err(d) = check_src(&src, DEFAULT_FUEL) {
                panic!("seed {s:#x} (iter {i}) diverged: {d}\n{src}");
            }
        }
    }

    /// The `--tv` oracle stack over a band of seeds: the static
    /// translation validator must never refute a module the dynamic
    /// executions agree on (and proofs must never contradict them).
    #[test]
    fn torture_tv_smoke_25_seeds_agree() {
        for i in 0..25u64 {
            let s = iter_seed(0x7111, i);
            let src = render(&generate(s, GenConfig::default()));
            if let Err(d) = check_src_tv(&src, DEFAULT_FUEL, false, None) {
                panic!("seed {s:#x} (iter {i}) diverged under --tv: {d}\n{src}");
            }
        }
    }
}
