//! `br-icache` — an instruction-cache simulator with branch-register
//! prefetch, modelling the paper's Sections 8–9.
//!
//! Assigning a branch register "has the side effect of directing the
//! instruction cache to prefetch the line associated with the instruction
//! address". The cache honours prefetch requests through a queue whose
//! depth equals the number of branch registers; a line being filled
//! carries a *busy* time, and a demand fetch that arrives while its line
//! is still busy stalls only for the remaining cycles. Prefetched lines
//! that are evicted before ever being used count as *cache pollution*
//! (Section 9's open question).
//!
//! The simulator implements [`br_emu::ExecHook`], so it can ride along
//! any emulation:
//!
//! ```no_run
//! use br_emu::Emulator;
//! use br_icache::{CacheConfig, ICacheSim};
//! # fn get_program() -> br_isa::Program { unimplemented!() }
//! let program = get_program();
//! let mut cache = ICacheSim::new(CacheConfig::default());
//! let mut emu = Emulator::new(&program);
//! emu.run_with_hook(u64::MAX, &mut cache)?;
//! println!("{:?}", cache.stats());
//! # Ok::<(), br_emu::EmuError>(())
//! ```

use br_emu::{ExecHook, FetchTrace, TraceEvent};
use std::fmt;

/// Cache geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (lines per set).
    pub assoc: usize,
    /// Words (4 bytes each) per line.
    pub line_words: usize,
    /// Cycles to fill a line from main memory.
    pub miss_penalty: u32,
    /// Maximum in-flight prefetches ("the size of the queue equal to the
    /// number of available branch registers").
    pub prefetch_queue: usize,
    /// Whether prefetch requests are honoured at all (off for the
    /// baseline machine).
    pub prefetch: bool,
}

impl Default for CacheConfig {
    /// A small late-1980s on-chip cache: 2 KiB, 2-way, 4-word lines,
    /// with an 8-entry prefetch queue (one slot per branch register).
    fn default() -> CacheConfig {
        CacheConfig {
            sets: 64,
            assoc: 2,
            line_words: 4,
            miss_penalty: 8,
            prefetch_queue: 8,
            prefetch: true,
        }
    }
}

/// A rejected [`CacheConfig`]: a geometry the simulator cannot model.
///
/// Every reject is typed so sweep drivers can report *which* axis of a
/// generated configuration was invalid instead of dying on an assert
/// (or a divide-by-zero) deep inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheConfigError {
    /// `sets == 0` — the placement function divides by the set count.
    ZeroSets,
    /// `assoc == 0` — every set needs at least one line.
    ZeroAssoc,
    /// `line_words == 0` — lines must hold at least one instruction.
    ZeroLineWords,
    /// `sets` is not a power of two (set indexing is a mask).
    SetsNotPowerOfTwo(usize),
    /// `line_words` is not a power of two (line offset is a mask).
    LineWordsNotPowerOfTwo(usize),
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CacheConfigError::ZeroSets => write!(f, "cache must have at least one set"),
            CacheConfigError::ZeroAssoc => {
                write!(f, "cache associativity must be at least 1")
            }
            CacheConfigError::ZeroLineWords => {
                write!(f, "cache lines must hold at least one word")
            }
            CacheConfigError::SetsNotPowerOfTwo(n) => {
                write!(f, "sets must be a power of two (got {n})")
            }
            CacheConfigError::LineWordsNotPowerOfTwo(n) => {
                write!(f, "line_words must be a power of two (got {n})")
            }
        }
    }
}

impl std::error::Error for CacheConfigError {}

impl CacheConfig {
    /// Check the geometry the simulator requires: nonzero `sets`,
    /// `assoc` and `line_words`, with `sets` and `line_words` powers of
    /// two. Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        if self.sets == 0 {
            return Err(CacheConfigError::ZeroSets);
        }
        if self.assoc == 0 {
            return Err(CacheConfigError::ZeroAssoc);
        }
        if self.line_words == 0 {
            return Err(CacheConfigError::ZeroLineWords);
        }
        if !self.sets.is_power_of_two() {
            return Err(CacheConfigError::SetsNotPowerOfTwo(self.sets));
        }
        if !self.line_words.is_power_of_two() {
            return Err(CacheConfigError::LineWordsNotPowerOfTwo(self.line_words));
        }
        Ok(())
    }

    /// The default geometry sized for a machine with `num_bregs` branch
    /// registers: the paper's "size of the queue equal to the number of
    /// available branch registers" rule, so breg sweeps shrink the
    /// prefetch queue along with the register file instead of keeping
    /// the 8-register machine's queue.
    pub fn for_bregs(num_bregs: usize) -> CacheConfig {
        CacheConfig {
            prefetch_queue: num_bregs,
            ..CacheConfig::default()
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.assoc * self.line_words * 4
    }

    /// The line-granular address (`addr / line bytes`) a byte address
    /// falls into. Line addresses identify cache lines uniquely.
    pub fn line_addr(&self, addr: u32) -> u32 {
        addr / (self.line_words as u32 * 4)
    }

    /// The set a byte address maps to and the tag stored for it. This
    /// is the one placement function shared by the simulator and the
    /// static conflict classifier in `br-verify`, so the two can never
    /// disagree about which lines compete.
    pub fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        let line_addr = self.line_addr(addr);
        let set = (line_addr as usize) % self.sets;
        let tag = line_addr / self.sets as u32;
        (set, tag)
    }
}

/// Dynamic cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand instruction fetches.
    pub fetches: u64,
    /// Demand fetches that hit a ready line.
    pub hits: u64,
    /// Demand fetches that missed entirely.
    pub misses: u64,
    /// Demand fetches that hit a line still being prefetched
    /// (partial stall).
    pub late_prefetch_hits: u64,
    /// Demand fetches whose line was fully prefetched in time.
    pub prefetch_hits: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Prefetch requests dropped because the queue was full.
    pub prefetch_dropped: u64,
    /// Prefetch requests for lines already present.
    pub prefetch_redundant: u64,
    /// Prefetched lines evicted before any use (pollution).
    pub pollution: u64,
    /// Total stall cycles charged to instruction fetch.
    pub stall_cycles: u64,
    /// Total simulated cycles (1 per fetch + stalls).
    pub cycles: u64,
}

impl CacheStats {
    /// Miss ratio over demand fetches.
    pub fn miss_ratio(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.misses as f64 / self.fetches as f64
        }
    }

    /// Accumulate another run's counters into this one (suite totals).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.fetches += other.fetches;
        self.hits += other.hits;
        self.misses += other.misses;
        self.late_prefetch_hits += other.late_prefetch_hits;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetches += other.prefetches;
        self.prefetch_dropped += other.prefetch_dropped;
        self.prefetch_redundant += other.prefetch_redundant;
        self.pollution += other.pollution;
        self.stall_cycles += other.stall_cycles;
        self.cycles += other.cycles;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u32,
    /// Cycle at which the fill completes.
    ready_at: u64,
    /// LRU timestamp.
    last_used: u64,
    /// Filled by prefetch and not yet demanded.
    prefetched_unused: bool,
}

/// The cache simulator. Attach to an emulator via
/// [`Emulator::run_with_hook`](br_emu::Emulator::run_with_hook).
#[derive(Debug, Clone)]
pub struct ICacheSim {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets * assoc, row-major by set
    stats: CacheStats,
    cycle: u64,
    /// `log2(line bytes)` — placement is shift/mask, not division
    /// (geometry is validated power-of-two at construction).
    line_shift: u32,
    /// `sets - 1`.
    set_mask: u32,
    /// `log2(sets)`.
    set_shift: u32,
    /// Candidate in-flight prefetches as `(ready_at, line index)`,
    /// pushed at install time. An entry goes stale when its line is
    /// overwritten (the line's `ready_at` no longer matches) or the
    /// clock passes `ready_at`; [`in_flight`](Self::in_flight) filters
    /// entries against the live line state, so the count equals the
    /// full-scan definition (valid lines with `ready_at > now`) at
    /// O(queue depth) cost instead of O(lines) per prefetch.
    pending: Vec<(u64, u32)>,
}

impl ICacheSim {
    /// Create an empty (cold) cache, rejecting impossible geometries
    /// with a typed error (see [`CacheConfig::validate`]).
    pub fn try_new(cfg: CacheConfig) -> Result<ICacheSim, CacheConfigError> {
        cfg.validate()?;
        Ok(ICacheSim {
            cfg,
            lines: vec![Line::default(); cfg.sets * cfg.assoc],
            stats: CacheStats::default(),
            cycle: 0,
            line_shift: 2 + (cfg.line_words as u32).trailing_zeros(),
            set_mask: cfg.sets as u32 - 1,
            set_shift: (cfg.sets as u32).trailing_zeros(),
            pending: Vec::new(),
        })
    }

    /// Create an empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is zero or `sets`/`line_words`
    /// are not powers of two; use [`try_new`](Self::try_new) to handle
    /// generated configurations gracefully.
    pub fn new(cfg: CacheConfig) -> ICacheSim {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The collected statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Shift/mask placement — identical to [`CacheConfig::set_and_tag`]
    /// for the validated power-of-two geometries this simulator holds
    /// (pinned by a test below), but cheap enough for the replay hot
    /// loop.
    fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        let line_addr = addr >> self.line_shift;
        ((line_addr & self.set_mask) as usize, line_addr >> self.set_shift)
    }

    fn lookup(&mut self, set: usize, tag: u32) -> Option<usize> {
        let base = set * self.cfg.assoc;
        (0..self.cfg.assoc)
            .map(|i| base + i)
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// Pick a victim way in `set` (invalid first, else LRU).
    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.cfg.assoc;
        if let Some(i) = (0..self.cfg.assoc)
            .map(|i| base + i)
            .find(|&i| !self.lines[i].valid)
        {
            return i;
        }
        let i = (0..self.cfg.assoc)
            .map(|i| base + i)
            .min_by_key(|&i| self.lines[i].last_used)
            .expect("assoc > 0");
        if self.lines[i].prefetched_unused {
            self.stats.pollution += 1;
        }
        i
    }

    /// Valid lines whose fill has not completed — the full-scan
    /// definition `lines.iter().filter(|l| l.valid && l.ready_at > now)`
    /// evaluated through the `pending` candidate list (every line with a
    /// future `ready_at` was installed by a prefetch, the only writer of
    /// future ready times, so it has a matching candidate entry).
    fn in_flight(&mut self) -> usize {
        let now = self.cycle;
        let lines = &self.lines;
        self.pending.retain(|&(ready, i)| {
            let l = &lines[i as usize];
            l.valid && l.ready_at == ready && ready > now
        });
        self.pending.len()
    }

    /// Simulate `len` sequential fetches starting at `addr` (addresses
    /// `addr, addr+4, …`) — one recorded straight-line extent.
    ///
    /// Byte-identical to calling [`fetch`](ExecHook::fetch) `len` times,
    /// but only the first fetch of each cache line takes the full
    /// lookup path: once a line has been demand-fetched, the remaining
    /// fetches inside it are guaranteed plain hits (the line is valid,
    /// its fill is complete — `fetch` never returns with
    /// `ready_at > cycle` — it is MRU, and no other access intervenes
    /// within a run), so they are charged in one batched step. This is
    /// what makes trace replay line-granular rather than
    /// instruction-granular.
    pub fn fetch_run(&mut self, addr: u32, len: u32) {
        let line_bytes = (self.cfg.line_words as u32) << 2;
        let mut addr = addr;
        let mut remaining = len;
        while remaining > 0 {
            self.fetch(addr);
            remaining -= 1;
            let in_line = (line_bytes - (addr & (line_bytes - 1))) / 4 - 1;
            let batched = in_line.min(remaining);
            if batched > 0 {
                let k = u64::from(batched);
                self.cycle += k;
                self.stats.cycles += k;
                self.stats.fetches += k;
                self.stats.hits += k;
                let (set, tag) = self.set_and_tag(addr);
                let i = self.lookup(set, tag).expect("line fetched above");
                self.lines[i].last_used = self.cycle;
                remaining -= batched;
            }
            addr = addr.wrapping_add((1 + batched) << 2);
        }
    }
}

/// Replay a recorded [`FetchTrace`] through one cache geometry,
/// returning the statistics a live [`ICacheSim`] hook would have
/// collected on the recorded execution — byte-identical, per the replay
/// contract pinned in `crates/torture/tests/replay_properties.rs` —
/// without re-executing the program.
pub fn replay(cfg: CacheConfig, trace: &FetchTrace) -> Result<CacheStats, CacheConfigError> {
    let mut sim = ICacheSim::try_new(cfg)?;
    for ev in trace.events() {
        match ev {
            TraceEvent::FetchRun { addr, len } => sim.fetch_run(addr, len),
            TraceEvent::Prefetch { addr } => sim.prefetch(addr),
        }
    }
    Ok(sim.stats)
}

impl ExecHook for ICacheSim {
    fn fetch(&mut self, addr: u32) {
        self.cycle += 1;
        self.stats.cycles += 1;
        self.stats.fetches += 1;
        let (set, tag) = self.set_and_tag(addr);
        match self.lookup(set, tag) {
            Some(i) => {
                let line = &mut self.lines[i];
                if line.ready_at > self.cycle {
                    // Line still filling (late prefetch): partial stall.
                    let stall = line.ready_at - self.cycle;
                    self.stats.late_prefetch_hits += 1;
                    self.stats.stall_cycles += stall;
                    self.stats.cycles += stall;
                    self.cycle = line.ready_at;
                } else if line.prefetched_unused {
                    self.stats.prefetch_hits += 1;
                } else {
                    self.stats.hits += 1;
                }
                let line = &mut self.lines[i];
                line.prefetched_unused = false;
                line.last_used = self.cycle;
            }
            None => {
                self.stats.misses += 1;
                let stall = self.cfg.miss_penalty as u64;
                self.stats.stall_cycles += stall;
                self.stats.cycles += stall;
                self.cycle += stall;
                let now = self.cycle;
                let i = self.victim(set);
                self.lines[i] = Line {
                    valid: true,
                    tag,
                    ready_at: now,
                    last_used: now,
                    prefetched_unused: false,
                };
            }
        }
    }

    fn prefetch(&mut self, addr: u32) {
        if !self.cfg.prefetch {
            return;
        }
        let (set, tag) = self.set_and_tag(addr);
        if self.lookup(set, tag).is_some() {
            self.stats.prefetch_redundant += 1;
            return;
        }
        if self.in_flight() >= self.cfg.prefetch_queue {
            self.stats.prefetch_dropped += 1;
            return;
        }
        self.stats.prefetches += 1;
        let ready = self.cycle + self.cfg.miss_penalty as u64;
        let i = self.victim(set);
        self.lines[i] = Line {
            valid: true,
            tag,
            ready_at: ready,
            last_used: self.cycle,
            prefetched_unused: true,
        };
        if ready > self.cycle {
            // Overwriting a line retires its old candidate entry (a
            // direct-mapped set can evict a same-cycle prefetch).
            self.pending.retain(|&(_, j)| j as usize != i);
            self.pending.push((ready, i as u32));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ICacheSim {
        ICacheSim::new(CacheConfig {
            sets: 4,
            assoc: 1,
            line_words: 4,
            miss_penalty: 10,
            prefetch_queue: 2,
            prefetch: true,
        })
    }

    #[test]
    fn capacity_math() {
        assert_eq!(CacheConfig::default().capacity(), 64 * 2 * 4 * 4);
    }

    #[test]
    fn sequential_fetches_hit_within_a_line() {
        let mut c = tiny();
        c.fetch(0x1000); // miss
        c.fetch(0x1004); // hit (same 16-byte line)
        c.fetch(0x1008);
        c.fetch(0x100C);
        c.fetch(0x1010); // next line: miss
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 3);
        assert_eq!(c.stats().stall_cycles, 20);
    }

    #[test]
    fn prefetch_turns_miss_into_hit() {
        // Loop body lives in set 1; the prefetched target in set 0.
        let mut c = tiny();
        c.fetch(0x1010); // warm up, sets cycle
        c.prefetch(0x2000);
        // Execute enough instructions to cover the fill latency.
        for i in 0..12 {
            c.fetch(0x1010 + (i % 4) * 4);
        }
        let before = c.stats().stall_cycles;
        c.fetch(0x2000);
        assert_eq!(c.stats().stall_cycles, before, "fully hidden prefetch");
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn late_prefetch_gives_partial_stall() {
        let mut c = tiny();
        c.fetch(0x1010); // set 1
        c.prefetch(0x2000); // set 0
        c.fetch(0x1014); // 1 cycle passes
        let before = c.stats().stall_cycles;
        c.fetch(0x2000); // fill needs 10 total, ~9 remain
        let stall = c.stats().stall_cycles - before;
        assert!(stall > 0 && stall < 10, "partial stall, got {stall}");
        assert_eq!(c.stats().late_prefetch_hits, 1);
    }

    #[test]
    fn queue_limits_inflight_prefetches() {
        let mut c = tiny();
        c.fetch(0x1000);
        // Distinct sets so the prefetches do not evict each other.
        c.prefetch(0x2000);
        c.prefetch(0x2010);
        c.prefetch(0x2020); // queue (2) full
        assert_eq!(c.stats().prefetches, 2);
        assert_eq!(c.stats().prefetch_dropped, 1);
    }

    #[test]
    fn redundant_prefetch_counted() {
        let mut c = tiny();
        c.fetch(0x1000);
        c.prefetch(0x1000);
        assert_eq!(c.stats().prefetch_redundant, 1);
        assert_eq!(c.stats().prefetches, 0);
    }

    #[test]
    fn pollution_counts_unused_prefetched_lines() {
        let mut c = tiny();
        c.fetch(0x1000);
        // Prefetch a line into set 0, never use it, then force its
        // eviction by a conflicting fetch in the same set.
        c.prefetch(0x2000);
        for _ in 0..12 {
            c.fetch(0x1010); // set 1: let the fill finish
        }
        c.fetch(0x2040); // different tag, same set as 0x2000 → evicts it
        assert_eq!(c.stats().pollution, 1);
    }

    #[test]
    fn prefetch_disabled_is_inert() {
        let mut c = ICacheSim::new(CacheConfig {
            prefetch: false,
            ..CacheConfig::default()
        });
        c.prefetch(0x2000);
        assert_eq!(c.stats().prefetches, 0);
        c.fetch(0x2000);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = ICacheSim::new(CacheConfig {
            sets: 1,
            assoc: 2,
            line_words: 4,
            miss_penalty: 1,
            prefetch_queue: 8,
            prefetch: true,
        });
        c.fetch(0x1000); // way A
        c.fetch(0x2000); // way B
        c.fetch(0x1000); // touch A
        c.fetch(0x3000); // evicts B (LRU)
        c.fetch(0x1000); // still a hit
        assert_eq!(c.stats().misses, 3);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = ICacheSim::new(CacheConfig {
            sets: 3,
            ..CacheConfig::default()
        });
    }

    #[test]
    fn validate_rejects_each_bad_axis() {
        let ok = CacheConfig::default();
        assert_eq!(ok.validate(), Ok(()));
        assert_eq!(
            CacheConfig { sets: 0, ..ok }.validate(),
            Err(CacheConfigError::ZeroSets)
        );
        assert_eq!(
            CacheConfig { assoc: 0, ..ok }.validate(),
            Err(CacheConfigError::ZeroAssoc)
        );
        assert_eq!(
            CacheConfig {
                line_words: 0,
                ..ok
            }
            .validate(),
            Err(CacheConfigError::ZeroLineWords)
        );
        assert_eq!(
            CacheConfig { sets: 48, ..ok }.validate(),
            Err(CacheConfigError::SetsNotPowerOfTwo(48))
        );
        assert_eq!(
            CacheConfig {
                line_words: 3,
                ..ok
            }
            .validate(),
            Err(CacheConfigError::LineWordsNotPowerOfTwo(3))
        );
        // try_new surfaces the same typed error instead of panicking.
        assert_eq!(
            ICacheSim::try_new(CacheConfig { sets: 0, ..ok }).err(),
            Some(CacheConfigError::ZeroSets)
        );
        assert!(ICacheSim::try_new(ok).is_ok());
    }

    #[test]
    fn error_display_names_the_constraint() {
        assert!(CacheConfigError::SetsNotPowerOfTwo(3)
            .to_string()
            .contains("power of two (got 3)"));
        assert!(CacheConfigError::ZeroSets.to_string().contains("set"));
        assert!(CacheConfigError::ZeroAssoc
            .to_string()
            .contains("associativity"));
        assert!(CacheConfigError::ZeroLineWords.to_string().contains("word"));
    }

    #[test]
    fn for_bregs_sizes_the_queue_to_the_register_file() {
        for n in [2usize, 4, 6, 8] {
            let cfg = CacheConfig::for_bregs(n);
            assert_eq!(cfg.prefetch_queue, n);
            // Everything else is the paper's default geometry.
            assert_eq!(
                CacheConfig {
                    prefetch_queue: 8,
                    ..cfg
                },
                CacheConfig::default()
            );
        }
    }

    #[test]
    fn stats_accumulate_sums_every_field() {
        let mut c = tiny();
        c.fetch(0x1000);
        c.prefetch(0x2000);
        c.fetch(0x2000);
        let one = *c.stats();
        let mut total = one;
        total.accumulate(&one);
        assert_eq!(total.fetches, 2 * one.fetches);
        assert_eq!(total.cycles, 2 * one.cycles);
        assert_eq!(total.stall_cycles, 2 * one.stall_cycles);
        assert_eq!(total.late_prefetch_hits, 2 * one.late_prefetch_hits);
        assert_eq!(total.prefetches, 2 * one.prefetches);
    }

    /// `fetch_run` must be indistinguishable from the per-fetch loop —
    /// full simulator state, not just stats — across runs that start
    /// mid-line, span lines, collide in sets, and interleave with
    /// prefetches.
    #[test]
    fn fetch_run_matches_per_fetch_loop() {
        // Deterministic pseudo-random walk (splitmix-style) producing
        // runs of varied length/alignment plus occasional prefetches.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let geoms = [
            CacheConfig::default(),
            CacheConfig {
                sets: 4,
                assoc: 1,
                line_words: 4,
                miss_penalty: 10,
                prefetch_queue: 2,
                prefetch: true,
            },
            CacheConfig {
                sets: 8,
                assoc: 2,
                line_words: 8,
                miss_penalty: 6,
                prefetch_queue: 4,
                prefetch: true,
            },
        ];
        for cfg in geoms {
            let mut batched = ICacheSim::new(cfg);
            let mut scalar = ICacheSim::new(cfg);
            for _ in 0..400 {
                let r = step();
                if r % 5 == 0 {
                    let addr = ((r >> 8) as u32 & 0xFFFF) << 2;
                    batched.prefetch(addr);
                    scalar.prefetch(addr);
                } else {
                    let addr = ((r >> 8) as u32 & 0xFFFF) << 2;
                    let len = 1 + ((r >> 24) as u32 % 13);
                    batched.fetch_run(addr, len);
                    for i in 0..len {
                        scalar.fetch(addr.wrapping_add(i << 2));
                    }
                }
            }
            assert_eq!(batched.stats(), scalar.stats(), "stats diverged: {cfg:?}");
            assert_eq!(batched.cycle, scalar.cycle, "clock diverged: {cfg:?}");
            for (i, (a, b)) in batched.lines.iter().zip(scalar.lines.iter()).enumerate() {
                assert_eq!(
                    (a.valid, a.tag, a.ready_at, a.last_used, a.prefetched_unused),
                    (b.valid, b.tag, b.ready_at, b.last_used, b.prefetched_unused),
                    "line {i} diverged: {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn fast_placement_matches_config_placement() {
        let geoms = [
            CacheConfig::default(),
            CacheConfig {
                sets: 1,
                assoc: 2,
                line_words: 1,
                ..CacheConfig::default()
            },
            CacheConfig {
                sets: 128,
                assoc: 1,
                line_words: 8,
                ..CacheConfig::default()
            },
        ];
        for cfg in geoms {
            let c = ICacheSim::new(cfg);
            for addr in (0..0x4_0000u32).step_by(4).chain([!3u32, 0x7FFF_FFFC]) {
                assert_eq!(
                    c.set_and_tag(addr),
                    cfg.set_and_tag(addr),
                    "placement diverged at {addr:#x} for {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn pending_in_flight_matches_full_scan() {
        // Stress the candidate list (including same-cycle eviction in a
        // direct-mapped cache) and compare against the full-scan
        // definition after every operation.
        let cfgs = [
            CacheConfig {
                sets: 2,
                assoc: 1,
                line_words: 4,
                miss_penalty: 7,
                prefetch_queue: 4,
                prefetch: true,
            },
            CacheConfig {
                sets: 8,
                assoc: 2,
                line_words: 4,
                miss_penalty: 3,
                prefetch_queue: 2,
                prefetch: true,
            },
        ];
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut step = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        for cfg in cfgs {
            let mut c = ICacheSim::new(cfg);
            for _ in 0..600 {
                let r = step();
                let addr = ((r >> 4) as u32 & 0xFFF) << 2;
                if r % 3 == 0 {
                    c.prefetch(addr);
                } else {
                    c.fetch(addr);
                }
                let now = c.cycle;
                let scan = c
                    .lines
                    .iter()
                    .filter(|l| l.valid && l.ready_at > now)
                    .count();
                assert_eq!(c.in_flight(), scan, "in-flight count diverged: {cfg:?}");
            }
        }
    }

    #[test]
    fn replay_equals_live_hook_on_a_recorded_stream() {
        // Drive the same event sequence through a live sim (as the
        // emulator hook would) and through record → replay.
        let cfg = tiny().cfg;
        let mut live = ICacheSim::new(cfg);
        let mut rec = br_emu::FetchRecorder::new();
        let feed = |live: &mut ICacheSim, rec: &mut br_emu::FetchRecorder| {
            for i in 0..6u32 {
                let a = 0x1000 + i * 4;
                live.fetch(a);
                rec.fetch(a);
            }
            live.prefetch(0x2000);
            rec.prefetch(0x2000);
            for i in 0..12u32 {
                let a = 0x1010 + (i % 4) * 4;
                live.fetch(a);
                rec.fetch(a);
            }
            live.fetch(0x2000);
            rec.fetch(0x2000);
        };
        feed(&mut live, &mut rec);
        let trace = rec.finish(&br_emu::Measurements::new());
        let replayed = replay(cfg, &trace).expect("valid geometry");
        assert_eq!(&replayed, live.stats());
        // And an invalid geometry comes back as the typed error.
        assert_eq!(
            replay(CacheConfig { sets: 0, ..cfg }, &trace),
            Err(CacheConfigError::ZeroSets)
        );
    }
}
