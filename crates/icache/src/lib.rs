//! `br-icache` — an instruction-cache simulator with branch-register
//! prefetch, modelling the paper's Sections 8–9.
//!
//! Assigning a branch register "has the side effect of directing the
//! instruction cache to prefetch the line associated with the instruction
//! address". The cache honours prefetch requests through a queue whose
//! depth equals the number of branch registers; a line being filled
//! carries a *busy* time, and a demand fetch that arrives while its line
//! is still busy stalls only for the remaining cycles. Prefetched lines
//! that are evicted before ever being used count as *cache pollution*
//! (Section 9's open question).
//!
//! The simulator implements [`br_emu::ExecHook`], so it can ride along
//! any emulation:
//!
//! ```no_run
//! use br_emu::Emulator;
//! use br_icache::{CacheConfig, ICacheSim};
//! # fn get_program() -> br_isa::Program { unimplemented!() }
//! let program = get_program();
//! let mut cache = ICacheSim::new(CacheConfig::default());
//! let mut emu = Emulator::new(&program);
//! emu.run_with_hook(u64::MAX, &mut cache)?;
//! println!("{:?}", cache.stats());
//! # Ok::<(), br_emu::EmuError>(())
//! ```

use br_emu::ExecHook;

/// Cache geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (lines per set).
    pub assoc: usize,
    /// Words (4 bytes each) per line.
    pub line_words: usize,
    /// Cycles to fill a line from main memory.
    pub miss_penalty: u32,
    /// Maximum in-flight prefetches ("the size of the queue equal to the
    /// number of available branch registers").
    pub prefetch_queue: usize,
    /// Whether prefetch requests are honoured at all (off for the
    /// baseline machine).
    pub prefetch: bool,
}

impl Default for CacheConfig {
    /// A small late-1980s on-chip cache: 2 KiB, 2-way, 4-word lines,
    /// with an 8-entry prefetch queue (one slot per branch register).
    fn default() -> CacheConfig {
        CacheConfig {
            sets: 64,
            assoc: 2,
            line_words: 4,
            miss_penalty: 8,
            prefetch_queue: 8,
            prefetch: true,
        }
    }
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.assoc * self.line_words * 4
    }

    /// The line-granular address (`addr / line bytes`) a byte address
    /// falls into. Line addresses identify cache lines uniquely.
    pub fn line_addr(&self, addr: u32) -> u32 {
        addr / (self.line_words as u32 * 4)
    }

    /// The set a byte address maps to and the tag stored for it. This
    /// is the one placement function shared by the simulator and the
    /// static conflict classifier in `br-verify`, so the two can never
    /// disagree about which lines compete.
    pub fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        let line_addr = self.line_addr(addr);
        let set = (line_addr as usize) % self.sets;
        let tag = line_addr / self.sets as u32;
        (set, tag)
    }
}

/// Dynamic cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand instruction fetches.
    pub fetches: u64,
    /// Demand fetches that hit a ready line.
    pub hits: u64,
    /// Demand fetches that missed entirely.
    pub misses: u64,
    /// Demand fetches that hit a line still being prefetched
    /// (partial stall).
    pub late_prefetch_hits: u64,
    /// Demand fetches whose line was fully prefetched in time.
    pub prefetch_hits: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Prefetch requests dropped because the queue was full.
    pub prefetch_dropped: u64,
    /// Prefetch requests for lines already present.
    pub prefetch_redundant: u64,
    /// Prefetched lines evicted before any use (pollution).
    pub pollution: u64,
    /// Total stall cycles charged to instruction fetch.
    pub stall_cycles: u64,
    /// Total simulated cycles (1 per fetch + stalls).
    pub cycles: u64,
}

impl CacheStats {
    /// Miss ratio over demand fetches.
    pub fn miss_ratio(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.misses as f64 / self.fetches as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u32,
    /// Cycle at which the fill completes.
    ready_at: u64,
    /// LRU timestamp.
    last_used: u64,
    /// Filled by prefetch and not yet demanded.
    prefetched_unused: bool,
}

/// The cache simulator. Attach to an emulator via
/// [`Emulator::run_with_hook`](br_emu::Emulator::run_with_hook).
#[derive(Debug, Clone)]
pub struct ICacheSim {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets * assoc, row-major by set
    stats: CacheStats,
    cycle: u64,
}

impl ICacheSim {
    /// Create an empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is zero or `sets`/`line_words`
    /// are not powers of two.
    pub fn new(cfg: CacheConfig) -> ICacheSim {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            cfg.line_words.is_power_of_two(),
            "line_words must be a power of two"
        );
        assert!(cfg.assoc > 0);
        ICacheSim {
            cfg,
            lines: vec![Line::default(); cfg.sets * cfg.assoc],
            stats: CacheStats::default(),
            cycle: 0,
        }
    }

    /// The collected statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        self.cfg.set_and_tag(addr)
    }

    fn lookup(&mut self, set: usize, tag: u32) -> Option<usize> {
        let base = set * self.cfg.assoc;
        (0..self.cfg.assoc)
            .map(|i| base + i)
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// Pick a victim way in `set` (invalid first, else LRU).
    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.cfg.assoc;
        if let Some(i) = (0..self.cfg.assoc)
            .map(|i| base + i)
            .find(|&i| !self.lines[i].valid)
        {
            return i;
        }
        let i = (0..self.cfg.assoc)
            .map(|i| base + i)
            .min_by_key(|&i| self.lines[i].last_used)
            .expect("assoc > 0");
        if self.lines[i].prefetched_unused {
            self.stats.pollution += 1;
        }
        i
    }

    fn in_flight(&self) -> usize {
        let now = self.cycle;
        self.lines
            .iter()
            .filter(|l| l.valid && l.ready_at > now)
            .count()
    }
}

impl ExecHook for ICacheSim {
    fn fetch(&mut self, addr: u32) {
        self.cycle += 1;
        self.stats.cycles += 1;
        self.stats.fetches += 1;
        let (set, tag) = self.set_and_tag(addr);
        match self.lookup(set, tag) {
            Some(i) => {
                let line = &mut self.lines[i];
                if line.ready_at > self.cycle {
                    // Line still filling (late prefetch): partial stall.
                    let stall = line.ready_at - self.cycle;
                    self.stats.late_prefetch_hits += 1;
                    self.stats.stall_cycles += stall;
                    self.stats.cycles += stall;
                    self.cycle = line.ready_at;
                } else if line.prefetched_unused {
                    self.stats.prefetch_hits += 1;
                } else {
                    self.stats.hits += 1;
                }
                let line = &mut self.lines[i];
                line.prefetched_unused = false;
                line.last_used = self.cycle;
            }
            None => {
                self.stats.misses += 1;
                let stall = self.cfg.miss_penalty as u64;
                self.stats.stall_cycles += stall;
                self.stats.cycles += stall;
                self.cycle += stall;
                let now = self.cycle;
                let i = self.victim(set);
                self.lines[i] = Line {
                    valid: true,
                    tag,
                    ready_at: now,
                    last_used: now,
                    prefetched_unused: false,
                };
            }
        }
    }

    fn prefetch(&mut self, addr: u32) {
        if !self.cfg.prefetch {
            return;
        }
        let (set, tag) = self.set_and_tag(addr);
        if self.lookup(set, tag).is_some() {
            self.stats.prefetch_redundant += 1;
            return;
        }
        if self.in_flight() >= self.cfg.prefetch_queue {
            self.stats.prefetch_dropped += 1;
            return;
        }
        self.stats.prefetches += 1;
        let ready = self.cycle + self.cfg.miss_penalty as u64;
        let i = self.victim(set);
        self.lines[i] = Line {
            valid: true,
            tag,
            ready_at: ready,
            last_used: self.cycle,
            prefetched_unused: true,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ICacheSim {
        ICacheSim::new(CacheConfig {
            sets: 4,
            assoc: 1,
            line_words: 4,
            miss_penalty: 10,
            prefetch_queue: 2,
            prefetch: true,
        })
    }

    #[test]
    fn capacity_math() {
        assert_eq!(CacheConfig::default().capacity(), 64 * 2 * 4 * 4);
    }

    #[test]
    fn sequential_fetches_hit_within_a_line() {
        let mut c = tiny();
        c.fetch(0x1000); // miss
        c.fetch(0x1004); // hit (same 16-byte line)
        c.fetch(0x1008);
        c.fetch(0x100C);
        c.fetch(0x1010); // next line: miss
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 3);
        assert_eq!(c.stats().stall_cycles, 20);
    }

    #[test]
    fn prefetch_turns_miss_into_hit() {
        // Loop body lives in set 1; the prefetched target in set 0.
        let mut c = tiny();
        c.fetch(0x1010); // warm up, sets cycle
        c.prefetch(0x2000);
        // Execute enough instructions to cover the fill latency.
        for i in 0..12 {
            c.fetch(0x1010 + (i % 4) * 4);
        }
        let before = c.stats().stall_cycles;
        c.fetch(0x2000);
        assert_eq!(c.stats().stall_cycles, before, "fully hidden prefetch");
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn late_prefetch_gives_partial_stall() {
        let mut c = tiny();
        c.fetch(0x1010); // set 1
        c.prefetch(0x2000); // set 0
        c.fetch(0x1014); // 1 cycle passes
        let before = c.stats().stall_cycles;
        c.fetch(0x2000); // fill needs 10 total, ~9 remain
        let stall = c.stats().stall_cycles - before;
        assert!(stall > 0 && stall < 10, "partial stall, got {stall}");
        assert_eq!(c.stats().late_prefetch_hits, 1);
    }

    #[test]
    fn queue_limits_inflight_prefetches() {
        let mut c = tiny();
        c.fetch(0x1000);
        // Distinct sets so the prefetches do not evict each other.
        c.prefetch(0x2000);
        c.prefetch(0x2010);
        c.prefetch(0x2020); // queue (2) full
        assert_eq!(c.stats().prefetches, 2);
        assert_eq!(c.stats().prefetch_dropped, 1);
    }

    #[test]
    fn redundant_prefetch_counted() {
        let mut c = tiny();
        c.fetch(0x1000);
        c.prefetch(0x1000);
        assert_eq!(c.stats().prefetch_redundant, 1);
        assert_eq!(c.stats().prefetches, 0);
    }

    #[test]
    fn pollution_counts_unused_prefetched_lines() {
        let mut c = tiny();
        c.fetch(0x1000);
        // Prefetch a line into set 0, never use it, then force its
        // eviction by a conflicting fetch in the same set.
        c.prefetch(0x2000);
        for _ in 0..12 {
            c.fetch(0x1010); // set 1: let the fill finish
        }
        c.fetch(0x2040); // different tag, same set as 0x2000 → evicts it
        assert_eq!(c.stats().pollution, 1);
    }

    #[test]
    fn prefetch_disabled_is_inert() {
        let mut c = ICacheSim::new(CacheConfig {
            prefetch: false,
            ..CacheConfig::default()
        });
        c.prefetch(0x2000);
        assert_eq!(c.stats().prefetches, 0);
        c.fetch(0x2000);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = ICacheSim::new(CacheConfig {
            sets: 1,
            assoc: 2,
            line_words: 4,
            miss_penalty: 1,
            prefetch_queue: 8,
            prefetch: true,
        });
        c.fetch(0x1000); // way A
        c.fetch(0x2000); // way B
        c.fetch(0x1000); // touch A
        c.fetch(0x3000); // evicts B (LRU)
        c.fetch(0x1000); // still a hit
        assert_eq!(c.stats().misses, 3);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = ICacheSim::new(CacheConfig {
            sets: 3,
            ..CacheConfig::default()
        });
    }
}
